//! Ad-hoc parameter sweeps over the simulated cluster.
//!
//! Usage:
//! `sweep --strategy zero2 --sizes 0.7,1.4,2.9 --nodes 1 [--batch 16] [--csv]`
//!
//! Strategies: ddp, megatron, zero1, zero2, zero3, zero1-cpu, zero2-cpu,
//! zero3-cpu, infinity.

use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass, NvmeId};
use zerosim_model::GptConfig;
use zerosim_report::Table;
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

struct Args {
    strategy: String,
    sizes: Vec<f64>,
    nodes: usize,
    batch: usize,
    csv: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut strategy = "zero2".to_string();
    let mut sizes = vec![0.7, 1.4, 2.9, 5.5];
    let mut nodes = 1usize;
    let mut batch = 16usize;
    let mut csv = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--strategy" => {
                strategy = need(i)?.clone();
                i += 2;
            }
            "--sizes" => {
                sizes = need(i)?
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--nodes" => {
                nodes = need(i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                i += 2;
            }
            "--batch" => {
                batch = need(i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                i += 2;
            }
            "--csv" => {
                csv = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        strategy,
        sizes,
        nodes,
        batch,
        csv,
    })
}

fn build_strategy(name: &str, nodes: usize, sim: &mut TrainingSim) -> Result<Strategy, String> {
    Ok(match name {
        "ddp" => Strategy::Ddp,
        "megatron" => Strategy::Megatron {
            tp: 4 * nodes,
            pp: 1,
        },
        "zero1" => Strategy::Zero {
            stage: ZeroStage::One,
        },
        "zero2" => Strategy::Zero {
            stage: ZeroStage::Two,
        },
        "zero3" => Strategy::Zero {
            stage: ZeroStage::Three,
        },
        "zero1-cpu" => Strategy::ZeroOffload {
            stage: ZeroStage::One,
            offload_params: false,
        },
        "zero2-cpu" => Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
        "zero3-cpu" => Strategy::ZeroOffload {
            stage: ZeroStage::Three,
            offload_params: false,
        },
        "infinity" => {
            let d = |drive| NvmeId { node: 0, drive };
            let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
            Strategy::ZeroInfinity {
                offload_params: false,
                placement: InfinityPlacement::new(vec![vol]),
            }
        }
        other => return Err(format!("unknown strategy {other:?}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: sweep --strategy <name> --sizes 0.7,1.4 --nodes 1 [--batch 16] [--csv]"
            );
            std::process::exit(2);
        }
    };

    let mut t = Table::new(vec![
        "size B",
        "fits",
        "iter s",
        "TFLOP/s",
        "GPU GB/gpu",
        "NVLink GBps",
        "RoCE GBps",
    ]);
    for &billions in &args.sizes {
        let mut sim = TrainingSim::new(ClusterSpec::default()).expect("default spec");
        let strategy = match build_strategy(&args.strategy, args.nodes, &mut sim) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let opts = TrainOptions {
            per_gpu_batch: args.batch,
            nodes: args.nodes,
            ..TrainOptions::default()
        };
        let model = GptConfig::paper_model_with_params(billions);
        match sim.run(&strategy, &model, &opts, &RunConfig::default()) {
            Ok(report) => {
                t.row(vec![
                    format!("{billions}"),
                    "yes".into(),
                    format!("{:.3}", report.iter_time.as_secs()),
                    format!("{:.0}", report.throughput_tflops()),
                    format!("{:.0}", report.memory.per_gpu_bytes / 1e9),
                    format!(
                        "{:.1}",
                        report.bandwidth.stats(0, LinkClass::NvLink).avg / 1e9
                    ),
                    format!(
                        "{:.1}",
                        report.bandwidth.stats(0, LinkClass::Roce).avg / 1e9
                    ),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    format!("{billions}"),
                    format!("no ({e})"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        println!(
            "sweep: {} on {} node(s), batch {}\n{}",
            args.strategy,
            args.nodes,
            args.batch,
            t.render()
        );
    }
}
