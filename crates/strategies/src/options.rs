//! Training-run options shared by every strategy.

use zerosim_hw::{Cluster, GpuId};

/// Options for a simulated training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainOptions {
    /// Sequences per GPU per iteration (the paper uses 16 everywhere).
    pub per_gpu_batch: usize,
    /// Number of nodes participating (1 or 2 on the paper's cluster).
    pub nodes: usize,
    /// Seed for the per-kernel duration jitter of this iteration; the
    /// characterization engine varies it per iteration so sampled
    /// percentile statistics behave like real hardware counters.
    pub jitter_seed: u64,
    /// Gradient-accumulation micro-steps per optimizer step (DeepSpeed's
    /// `gradient_accumulation_steps`). Communication for non-partitioned
    /// gradients happens only at the accumulation boundary.
    pub grad_accum: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            per_gpu_batch: 16,
            nodes: 1,
            jitter_seed: 0,
            grad_accum: 1,
        }
    }
}

impl TrainOptions {
    /// Single-node run with the paper's batch size.
    pub fn single_node() -> Self {
        Self::default()
    }

    /// Dual-node run with the paper's batch size.
    pub fn dual_node() -> Self {
        Self::for_nodes(2)
    }

    /// Run spanning `nodes` nodes with the paper's batch size (generated
    /// topologies go well beyond the paper's two).
    pub fn for_nodes(nodes: usize) -> Self {
        TrainOptions {
            nodes,
            ..Self::default()
        }
    }

    /// This configuration with a different jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// This configuration with `steps` gradient-accumulation micro-steps.
    ///
    /// # Panics
    /// Panics if `steps` is zero.
    pub fn with_grad_accum(mut self, steps: usize) -> Self {
        assert!(steps >= 1, "gradient accumulation needs at least one step");
        self.grad_accum = steps;
        self
    }

    /// The GPUs participating in this run, node-major.
    ///
    /// # Panics
    /// Panics if the cluster has fewer nodes than requested.
    pub fn gpus(&self, cluster: &Cluster) -> Vec<GpuId> {
        assert!(
            self.nodes <= cluster.spec().nodes,
            "run wants {} nodes, cluster has {}",
            self.nodes,
            cluster.spec().nodes
        );
        (0..self.nodes).flat_map(|n| cluster.node_gpus(n)).collect()
    }

    /// Total participating GPUs.
    pub fn num_gpus(&self, cluster: &Cluster) -> usize {
        self.nodes * cluster.spec().gpus_per_node
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct TrainOptions { per_gpu_batch, nodes, jitter_seed, grad_accum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    #[test]
    fn gpu_selection() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        assert_eq!(TrainOptions::single_node().gpus(&c).len(), 4);
        assert_eq!(TrainOptions::dual_node().gpus(&c).len(), 8);
        assert_eq!(TrainOptions::dual_node().num_gpus(&c), 8);
    }

    #[test]
    #[should_panic(expected = "wants 2 nodes")]
    fn too_many_nodes_panics() {
        let c = Cluster::new(ClusterSpec::default().with_nodes(1)).unwrap();
        TrainOptions::dual_node().gpus(&c);
    }
}
