//! Serving characterization: continuous batching of synthetic request
//! traces over prefill/decode workload plans.
//!
//! [`serve`] drives a [`zerosim_strategies::ServingStrategy`] the way
//! [`TrainingSim::run`] drives a training strategy: plans are lowered
//! through the same `lower` → `stamp` → engine pipeline, flows share the
//! same network solver, and the result is a [`ServeReport`] with the two
//! latency metrics serving papers report — **TTFT** (time to first
//! token: request arrival → end of its prefill) and **TPOT** (time per
//! output token over the decode phase) — as p50/p99 percentiles.
//!
//! The scheduler is continuous batching (Orca-style): a waiting queue
//! feeds a running batch of at most `max_batch` sequences; admission
//! runs a batched prefill (prefill-priority), and every scheduler tick
//! otherwise advances the whole running batch by one decode step.
//! Decode plans depend on the batch size and the KV length only through
//! [`zerosim_strategies::kv_bucket`] granularity, so a serve run lowers
//! O(batch-shapes × KV-buckets) plans, not O(tokens) — the serving
//! equivalent of training's lower-once/re-stamp cache.
//!
//! Traces are synthetic and deterministic: [`TraceConfig::sample`] draws
//! arrivals and token lengths from the workspace RNG
//! ([`zerosim_testkit::rng::Rng`]), so the same seed replays the same
//! trace on every platform, and [`ServeRunner`] fans specs across the
//! hermetic thread pool with input-ordered, width-independent results —
//! the same determinism contract as [`crate::SweepRunner`].

use std::collections::{HashMap, VecDeque};

use zerosim_hw::{ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_simkit::{DagEngine, EngineMode, SimTime};
use zerosim_strategies::{
    kv_bucket, kv_bytes_per_token, lower, Calibration, IterCtx, LoweredPlan, ServingStrategy,
    TrainOptions,
};
use zerosim_testkit::pool::ThreadPool;
use zerosim_testkit::rng::Rng;

use crate::engine::TrainingSim;
use crate::error::CoreError;
use crate::report::{mix, mix_str};

/// How requests enter the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: Poisson arrivals at `rate_rps` requests per second,
    /// independent of completions (the load-test that exposes queueing).
    Open {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Closed loop: `concurrency` clients, each issuing its next request
    /// the moment the previous one completes.
    Closed {
        /// Number of always-busy clients.
        concurrency: usize,
    },
}

/// A synthetic request-trace distribution (deterministic per seed).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Total requests in the trace.
    pub requests: usize,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Inclusive `[min, max]` prompt length in tokens.
    pub prompt_tokens: (usize, usize),
    /// Inclusive `[min, max]` output length in tokens.
    pub output_tokens: (usize, usize),
    /// RNG seed; the trace is a pure function of this config.
    pub seed: u64,
}

impl TraceConfig {
    /// A small closed-loop trace for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        TraceConfig {
            requests: 8,
            arrivals: ArrivalProcess::Closed { concurrency: 4 },
            prompt_tokens: (64, 256),
            output_tokens: (8, 32),
            seed,
        }
    }

    /// Materializes the trace. Deterministic: the same config always
    /// yields the same requests, on every platform and worker count.
    ///
    /// Closed-loop traces mark requests beyond the initial `concurrency`
    /// window with [`f64::INFINITY`] arrivals; the driver releases one
    /// each time a request completes.
    pub fn sample(&self) -> Vec<Request> {
        let mut rng = Rng::new(self.seed);
        let mut t = 0.0f64;
        (0..self.requests)
            .map(|i| {
                let arrival_s = match self.arrivals {
                    ArrivalProcess::Open { rate_rps } => {
                        // Exponential inter-arrival via inverse transform.
                        let u = rng.next_f64();
                        t += -(1.0 - u).ln() / rate_rps.max(1e-9);
                        t
                    }
                    ArrivalProcess::Closed { concurrency } => {
                        if i < concurrency.max(1) {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    }
                };
                Request {
                    arrival_s,
                    prompt_tokens: sample_range(&mut rng, self.prompt_tokens),
                    output_tokens: sample_range(&mut rng, self.output_tokens).max(1),
                }
            })
            .collect()
    }
}

fn sample_range(rng: &mut Rng, (lo, hi): (usize, usize)) -> usize {
    if hi <= lo {
        lo
    } else {
        rng.usize_in(lo, hi + 1)
    }
}

/// One request of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival time in seconds ([`f64::INFINITY`] for closed-loop
    /// requests released on completion of an earlier one).
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Tokens to generate (≥ 1; the first is produced by prefill).
    pub output_tokens: usize,
}

/// The measured outcome of one serving characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Serving strategy display name.
    pub strategy: &'static str,
    /// Model parameter count.
    pub model_params: f64,
    /// Nodes the deployment spans.
    pub nodes: usize,
    /// Requests served to completion.
    pub requests: usize,
    /// Tokens generated (first tokens + decode tokens).
    pub tokens_generated: usize,
    /// Median time-to-first-token.
    pub ttft_p50: SimTime,
    /// 99th-percentile time-to-first-token.
    pub ttft_p99: SimTime,
    /// Median time-per-output-token over the decode phase.
    pub tpot_p50: SimTime,
    /// 99th-percentile time-per-output-token.
    pub tpot_p99: SimTime,
    /// Virtual wall-clock from first arrival to last completion.
    pub wall: SimTime,
    /// Batched prefills executed.
    pub prefills: usize,
    /// Decode steps executed (each advances the whole running batch).
    pub decode_steps: usize,
    /// Distinct plans lowered (cache misses); decode reuse makes this
    /// O(batch-shapes × KV-buckets), not O(steps).
    pub plan_lowerings: usize,
    /// Peak KV-cache residency across the deployment, in bytes.
    pub kv_peak_bytes: f64,
}

impl ServeReport {
    /// Aggregate generation throughput in tokens per second.
    pub fn tokens_per_s(&self) -> f64 {
        self.tokens_generated as f64 / self.wall.as_secs().max(1e-12)
    }

    /// Order-insensitive digest over everything *measured*. Excludes
    /// `plan_lowerings` — cache behavior describes how the run was
    /// computed, not what it measured (same rationale as
    /// [`crate::TrainingReport::digest`] excluding solver counters).
    pub fn digest(&self) -> u64 {
        let mut h = mix_str(0x5E57_u64, self.strategy);
        h = mix(h, self.model_params.to_bits());
        h = mix(h, self.nodes as u64);
        h = mix(h, self.requests as u64);
        h = mix(h, self.tokens_generated as u64);
        for t in [
            self.ttft_p50,
            self.ttft_p99,
            self.tpot_p50,
            self.tpot_p99,
            self.wall,
        ] {
            h = mix(h, t.as_nanos());
        }
        h = mix(h, self.prefills as u64);
        h = mix(h, self.decode_steps as u64);
        h = mix(h, self.kv_peak_bytes.to_bits());
        h
    }
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    arrival: SimTime,
    prompt: usize,
    output: usize,
    first_token: SimTime,
    generated: usize,
    kv_tokens: usize,
}

/// Runs one serving characterization on `sim`'s cluster.
///
/// The scheduler loop: release arrivals up to the virtual clock; when
/// waiting requests and batch slots exist, admit them with one batched
/// prefill (TTFT = prefill end − arrival); otherwise advance the running
/// batch one decode step. Completed requests free their slots; under a
/// closed-loop trace each completion releases the next request.
///
/// # Errors
/// [`CoreError::DoesNotFit`] when the strategy's resident footprint
/// overflows a tier; [`CoreError::InvalidConfig`] when a plan fails
/// validation; [`CoreError::Sim`] if a DAG cannot execute.
#[allow(clippy::too_many_lines)]
pub fn serve(
    sim: &mut TrainingSim,
    strategy: &ServingStrategy,
    model: &GptConfig,
    opts: &TrainOptions,
    trace: &TraceConfig,
    max_batch: usize,
) -> Result<ServeReport, CoreError> {
    let memory = strategy.plan_memory(&IterCtx {
        cluster: sim.cluster(),
        model,
        opts,
        calib: sim.calibration(),
    });
    if let Some(tier) = memory.bottleneck(sim.cluster()) {
        let requested = match tier {
            "gpu" => memory.per_gpu_bytes,
            "cpu" => memory.per_node_cpu_bytes,
            _ => memory.nvme_bytes,
        };
        return Err(CoreError::DoesNotFit { tier, requested });
    }

    let requests = trace.sample();
    // Quantize finite arrivals onto the simulator's tick grid up front.
    // The loop compares them against tick-quantized [`SimTime`] clocks;
    // a sub-tick remainder makes `arrival <= t` unsatisfiable after the
    // idle branch jumps `t` to that same (rounded-down) arrival, and the
    // scheduler spins forever re-arming the jump — the open-loop
    // admission hang. Closed-loop infinite arrivals stay infinite.
    let mut arrivals: Vec<f64> = requests
        .iter()
        .map(|r| {
            if r.arrival_s.is_finite() {
                SimTime::from_secs(r.arrival_s).as_secs()
            } else {
                r.arrival_s
            }
        })
        .collect();
    let mut st: Vec<ReqState> = requests
        .iter()
        .map(|r| ReqState {
            arrival: SimTime::ZERO,
            prompt: r.prompt_tokens,
            output: r.output_tokens,
            first_token: SimTime::ZERO,
            generated: 0,
            kv_tokens: 0,
        })
        .collect();

    let mut engine = DagEngine::new(sim.cluster().resource_slots());
    engine.set_mode(sim.engine_mode());
    // Plan caches: decode keyed by (batch, KV bucket), prefill by the
    // admitted (total prompt tokens, request count) shape.
    let mut decode_cache: HashMap<(usize, usize), LoweredPlan> = HashMap::new();
    let mut prefill_cache: HashMap<(usize, usize), LoweredPlan> = HashMap::new();
    let mut plan_lowerings = 0usize;

    let max_batch = max_batch.max(1);
    let kv_per_token = kv_bytes_per_token(model);
    let mut pending: VecDeque<usize> = (0..st.len()).collect();
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<usize> = Vec::new();

    let mut t = SimTime::ZERO;
    let mut seed = opts.jitter_seed;
    let mut prefills = 0usize;
    let mut decode_steps = 0usize;
    let mut tokens_generated = 0usize;
    let mut kv_peak_bytes = 0.0f64;
    let mut ttft: Vec<SimTime> = Vec::new();
    let mut tpot: Vec<SimTime> = Vec::new();
    let mut done = 0usize;

    while done < st.len() {
        // Release every pending request that has arrived by now.
        while let Some(&i) = pending.front() {
            if arrivals[i] <= t.as_secs() {
                st[i].arrival = SimTime::from_secs(arrivals[i]);
                waiting.push_back(i);
                pending.pop_front();
            } else {
                break;
            }
        }
        if running.is_empty() && waiting.is_empty() {
            // Idle: jump to the next (finite) arrival.
            let next = pending
                .front()
                .map(|&i| arrivals[i])
                .filter(|a| a.is_finite());
            match next {
                Some(a) => {
                    t = SimTime::from_secs(a);
                    continue;
                }
                None => break, // nothing left that can ever arrive
            }
        }

        if !waiting.is_empty() && running.len() < max_batch {
            // Admission: one batched prefill over the free slots.
            let mut admitted = Vec::new();
            while running.len() + admitted.len() < max_batch {
                match waiting.pop_front() {
                    Some(i) => admitted.push(i),
                    None => break,
                }
            }
            let prompt_sum: usize = admitted.iter().map(|&i| st[i].prompt).sum();
            let lowered = match prefill_cache.entry((prompt_sum, admitted.len())) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let ctx = IterCtx {
                        cluster: sim.cluster(),
                        model,
                        opts,
                        calib: sim.calibration(),
                    };
                    let plan = strategy.plan_prefill(&ctx, prompt_sum, admitted.len())?;
                    plan.validate(sim.cluster())?;
                    plan_lowerings += 1;
                    e.insert(lower(&plan, sim.cluster(), sim.calibration())?)
                }
            };
            let dag = lowered.stamp(seed);
            seed += 1;
            let out = engine.run(sim.cluster_mut().net_mut(), dag, t, None)?;
            t = out.finished;
            prefills += 1;
            for &i in &admitted {
                // Prefill emits each admitted request's first token.
                st[i].first_token = t;
                st[i].generated = 1;
                st[i].kv_tokens = st[i].prompt + 1;
                tokens_generated += 1;
                ttft.push(t - st[i].arrival);
            }
            running.extend(admitted);
        } else {
            // One decode step for the whole running batch.
            let batch = running.len();
            let kv_len = running.iter().map(|&i| st[i].kv_tokens).max().unwrap_or(1);
            let bucket = kv_bucket(kv_len);
            let lowered = match decode_cache.entry((batch, bucket)) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let ctx = IterCtx {
                        cluster: sim.cluster(),
                        model,
                        opts,
                        calib: sim.calibration(),
                    };
                    let plan = strategy.plan_decode(&ctx, 0, batch, bucket)?;
                    plan.validate(sim.cluster())?;
                    plan_lowerings += 1;
                    e.insert(lower(&plan, sim.cluster(), sim.calibration())?)
                }
            };
            let dag = lowered.stamp(seed);
            seed += 1;
            let out = engine.run(sim.cluster_mut().net_mut(), dag, t, None)?;
            t = out.finished;
            decode_steps += 1;

            let mut still_running = Vec::with_capacity(running.len());
            for &i in &running {
                st[i].generated += 1;
                st[i].kv_tokens += 1;
                tokens_generated += 1;
                if st[i].generated >= st[i].output {
                    // Completed: decode latency per token after the first.
                    done += 1;
                    if st[i].output > 1 {
                        tpot.push((t - st[i].first_token) / (st[i].output as u64 - 1));
                    }
                    // Closed loop: the client immediately issues its next
                    // request (one release per completion, even when
                    // several requests finish in the same step).
                    if let Some(j) = pending.iter().copied().find(|&j| arrivals[j].is_infinite()) {
                        arrivals[j] = t.as_secs();
                    }
                } else {
                    still_running.push(i);
                }
            }
            running = still_running;
        }

        let kv_now: f64 = running
            .iter()
            .map(|&i| st[i].kv_tokens as f64 * kv_per_token)
            .sum();
        kv_peak_bytes = kv_peak_bytes.max(kv_now);
    }

    ttft.sort_unstable();
    tpot.sort_unstable();
    Ok(ServeReport {
        strategy: strategy.display_name(),
        model_params: model.num_params(),
        nodes: opts.nodes,
        requests: done,
        tokens_generated,
        ttft_p50: percentile(&ttft, 0.50),
        ttft_p99: percentile(&ttft, 0.99),
        tpot_p50: percentile(&tpot, 0.50),
        tpot_p99: percentile(&tpot, 0.99),
        wall: t,
        prefills,
        decode_steps,
        plan_lowerings,
        kv_peak_bytes,
    })
}

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[SimTime], q: f64) -> SimTime {
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    // q in [0,1], so the rank is bounded by len: exact as usize.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((q * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// A complete, self-contained description of one serving run — the
/// serving analogue of [`crate::SweepSpec`]: everything needed to
/// rebuild the run from nothing, so it executes identically on any
/// worker.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Caller-chosen identifier carried through to [`ServeRun::label`].
    pub label: String,
    /// The cluster to build (each run owns a fresh one).
    pub cluster: ClusterSpec,
    /// Performance-model constants.
    pub calibration: Calibration,
    /// NVMe volumes to create, in order, before the run (volume `i`
    /// becomes `VolumeId(i)`).
    pub volumes: Vec<Vec<NvmeId>>,
    /// The serving strategy to characterize.
    pub strategy: ServingStrategy,
    /// The model being served.
    pub model: GptConfig,
    /// Topology options (`nodes`, jitter seed; batch fields unused).
    pub opts: TrainOptions,
    /// The request trace to replay.
    pub trace: TraceConfig,
    /// Continuous-batching slot count.
    pub max_batch: usize,
    /// The DAG-executor implementation to run with.
    pub engine: EngineMode,
}

impl ServeSpec {
    /// A spec over the default paper cluster with default calibration.
    pub fn new(
        label: impl Into<String>,
        strategy: ServingStrategy,
        model: GptConfig,
        opts: TrainOptions,
        trace: TraceConfig,
    ) -> Self {
        ServeSpec {
            label: label.into(),
            cluster: ClusterSpec::default(),
            calibration: Calibration::default(),
            volumes: Vec::new(),
            strategy,
            model,
            opts,
            trace,
            max_batch: 8,
            engine: EngineMode::default(),
        }
    }

    /// Replaces the cluster spec.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Appends an NVMe volume (created before the run, in call order).
    pub fn with_volume(mut self, members: Vec<NvmeId>) -> Self {
        self.volumes.push(members);
        self
    }

    /// Replaces the continuous-batching slot count.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Pins the DAG-executor implementation for this spec.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Builds a fresh simulator and executes this spec to completion.
    ///
    /// # Errors
    /// Whatever [`TrainingSim::new`] or [`serve`] return.
    pub fn execute(&self) -> Result<ServeRun, CoreError> {
        let mut sim = TrainingSim::with_calibration(self.cluster.clone(), self.calibration)?;
        sim.set_engine_mode(self.engine);
        for members in &self.volumes {
            sim.cluster_mut().create_volume(members.clone());
        }
        let report = serve(
            &mut sim,
            &self.strategy,
            &self.model,
            &self.opts,
            &self.trace,
            self.max_batch,
        )?;
        Ok(ServeRun {
            label: self.label.clone(),
            digest: report.digest(),
            report,
        })
    }
}

/// One completed serving entry: label, full report, and its digest.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// The originating [`ServeSpec::label`].
    pub label: String,
    /// [`ServeReport::digest`] of `report`.
    pub digest: u64,
    /// The full serving result.
    pub report: ServeReport,
}

/// Fans [`ServeSpec`]s across the hermetic thread pool with the same
/// determinism contract as [`crate::SweepRunner`]: input-ordered results
/// independent of worker count.
#[derive(Debug, Clone)]
pub struct ServeRunner {
    pool: ThreadPool,
}

impl ServeRunner {
    /// A runner with `workers` threads (clamped to the machine).
    pub fn new(workers: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServeRunner {
            pool: ThreadPool::new(workers.max(1).min(cores)),
        }
    }

    /// Executes every spec, in parallel, returning results in **input
    /// order** regardless of worker count or scheduling.
    ///
    /// # Errors
    /// The input-order-first [`CoreError`] among failed specs, if any.
    pub fn run_parallel(&self, specs: Vec<ServeSpec>) -> Result<Vec<ServeRun>, CoreError> {
        self.pool
            .map(specs, |spec| spec.execute())
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_spec(seed: u64) -> ServeSpec {
        ServeSpec::new(
            "dense-1n",
            ServingStrategy::Dense,
            GptConfig::paper_model_with_params(1.4),
            TrainOptions::single_node(),
            TraceConfig::quick(seed),
        )
        .with_max_batch(4)
    }

    #[test]
    fn trace_sampling_is_deterministic_per_seed() {
        let cfg = TraceConfig {
            requests: 32,
            arrivals: ArrivalProcess::Open { rate_rps: 10.0 },
            prompt_tokens: (64, 512),
            output_tokens: (16, 128),
            seed: 7,
        };
        let a = cfg.sample();
        let b = cfg.sample();
        assert_eq!(a, b, "same seed, same trace");
        let c = TraceConfig { seed: 8, ..cfg }.sample();
        assert_ne!(a, c, "different seed, different trace");
        // Open-loop arrivals are strictly increasing and finite.
        for w in a.windows(2) {
            assert!(w[0].arrival_s < w[1].arrival_s);
        }
        for r in &a {
            assert!(r.arrival_s.is_finite());
            assert!((64..=512).contains(&r.prompt_tokens));
            assert!((16..=128).contains(&r.output_tokens));
        }
    }

    #[test]
    fn closed_loop_marks_late_requests_infinite() {
        let t = TraceConfig::quick(0).sample();
        assert_eq!(t.iter().filter(|r| r.arrival_s == 0.0).count(), 4);
        assert_eq!(t.iter().filter(|r| r.arrival_s.is_infinite()).count(), 4);
    }

    #[test]
    fn dense_serve_reports_sane_latencies() {
        let run = dense_spec(42).execute().unwrap();
        let r = &run.report;
        assert_eq!(r.requests, 8, "every request completes");
        assert!(r.tokens_generated >= 8 * 8, "at least min output each");
        // Decode is token-at-a-time: TPOT well under TTFT (which pays a
        // whole prompt's compute).
        assert!(
            r.tpot_p50 < r.ttft_p50,
            "{:?} vs {:?}",
            r.tpot_p50,
            r.ttft_p50
        );
        assert!(r.ttft_p50 > SimTime::ZERO);
        assert!(r.ttft_p99 >= r.ttft_p50);
        assert!(r.tpot_p99 >= r.tpot_p50);
        assert!(r.tokens_per_s() > 1.0);
        assert!(r.kv_peak_bytes > 0.0);
        // The (batch, KV-bucket) cache keeps lowering sublinear in steps.
        assert!(r.decode_steps > r.plan_lowerings, "cache must hit");
    }

    #[test]
    fn serve_is_deterministic_per_seed_and_worker_width() {
        let base = dense_spec(42).execute().unwrap();
        let again = dense_spec(42).execute().unwrap();
        assert_eq!(base.digest, again.digest);
        let other = dense_spec(43).execute().unwrap();
        assert_ne!(base.digest, other.digest, "seed must matter");

        let specs = |n: u64| (0..4).map(|i| dense_spec(n + i)).collect::<Vec<_>>();
        let serial: Vec<u64> = specs(0)
            .iter()
            .map(|s| s.execute().unwrap().digest)
            .collect();
        for workers in [1, 4] {
            let par = ServeRunner::new(workers).run_parallel(specs(0)).unwrap();
            let digests: Vec<u64> = par.iter().map(|r| r.digest).collect();
            assert_eq!(digests, serial, "width {workers} changed results");
        }
    }

    #[test]
    fn oversized_dense_model_is_rejected() {
        let mut spec = dense_spec(0);
        spec.model = GptConfig::paper_model_with_params(90.0);
        let err = spec.execute().unwrap_err();
        assert!(
            matches!(err, CoreError::DoesNotFit { tier: "gpu", .. }),
            "{err}"
        );
    }
}
