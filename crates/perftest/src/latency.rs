//! Inter-node RoCE latency tests — the OFED `perftest` substitute
//! (Sec. III-C1, Fig. 3).

use zerosim_hw::{Cluster, ClusterSpec, SocketId};
use zerosim_simkit::{NullObserver, SimTime};

/// RDMA verb / semantic under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaSemantic {
    /// Channel semantic SEND (receiver posts a buffer).
    Send,
    /// Memory semantic RDMA READ (initiator pulls; round trip).
    Read,
    /// Memory semantic RDMA WRITE (initiator pushes).
    Write,
}

impl RdmaSemantic {
    /// All three semantics the paper plots.
    pub const ALL: [RdmaSemantic; 3] =
        [RdmaSemantic::Send, RdmaSemantic::Read, RdmaSemantic::Write];

    /// Display name matching the figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            RdmaSemantic::Send => "SEND",
            RdmaSemantic::Read => "RDMA READ",
            RdmaSemantic::Write => "RDMA WRITE",
        }
    }
}

/// One latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub msg_bytes: usize,
    /// Measured one-sided completion latency.
    pub latency: SimTime,
}

/// Measures the completion latency of one message between node-0 and
/// node-1 CPU memory.
///
/// Same-socket uses each side's local NIC; cross-socket forces the
/// neighbouring CPU's NIC so the message crosses xGMI and the I/O-die
/// crossbar (Sec. III-C).
pub fn roce_latency(
    cluster: &mut Cluster,
    semantic: RdmaSemantic,
    msg_bytes: usize,
    cross_socket: bool,
) -> SimTime {
    let a = SocketId { node: 0, socket: 0 };
    let b = SocketId { node: 1, socket: 0 };
    let nic = if cross_socket { 1 } else { 0 };
    let route = cluster.route_internode_cpu_via(a, b, nic, nic);

    // Semantic adjustments: SEND involves the remote CPU posting the
    // receive (a fixed software cost); READ is a round trip.
    let sw = match semantic {
        RdmaSemantic::Send => SimTime::from_us(0.8),
        RdmaSemantic::Write => SimTime::ZERO,
        // The read request is a small wire message; its cost is about half
        // the full path latency before data starts flowing back.
        RdmaSemantic::Read => route.latency / 2,
    };

    let net = cluster.net_mut();
    let before_flows = net.flow_count();
    net.start_flow_capped(&route.links, msg_bytes.max(1) as f64, route.cap)
        .expect("routes from a validated cluster are non-empty and known");
    let mut t = 0.0;
    while net.flow_count() > before_flows {
        match net.advance_to_next_event(SimTime::from_secs(t), &mut NullObserver) {
            Some((dt, _)) => t += dt,
            None => break,
        }
    }
    route.latency + sw + SimTime::from_secs(t)
}

/// Sweeps message sizes (powers of two), as in Fig. 3.
pub fn latency_sweep(
    spec: &ClusterSpec,
    semantic: RdmaSemantic,
    cross_socket: bool,
    sizes: &[usize],
) -> Vec<LatencyPoint> {
    let mut cluster = Cluster::new(spec.clone()).expect("valid spec");
    sizes
        .iter()
        .map(|&msg_bytes| LatencyPoint {
            msg_bytes,
            latency: roce_latency(&mut cluster, semantic, msg_bytes, cross_socket),
        })
        .collect()
}

/// The message sizes the paper sweeps (2 B – 8 MB).
pub fn paper_message_sizes() -> Vec<usize> {
    (1..=23).map(|i| 1usize << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_socket_small_messages_under_6us() {
        let spec = ClusterSpec::default();
        for semantic in RdmaSemantic::ALL {
            let pts = latency_sweep(&spec, semantic, false, &[2, 1024, 65536]);
            for p in &pts[..2] {
                assert!(
                    p.latency < SimTime::from_us(6.0),
                    "{} {}B: {}",
                    semantic.label(),
                    p.msg_bytes,
                    p.latency
                );
            }
        }
    }

    #[test]
    fn cross_socket_is_several_times_slower_but_under_40us() {
        let spec = ClusterSpec::default();
        for semantic in RdmaSemantic::ALL {
            let same = latency_sweep(&spec, semantic, false, &[4096])[0].latency;
            let cross = latency_sweep(&spec, semantic, true, &[4096])[0].latency;
            let ratio = cross.as_secs() / same.as_secs();
            assert!(ratio > 3.0, "{}: ratio {ratio}", semantic.label());
            assert!(
                cross < SimTime::from_us(40.0),
                "{}: cross {cross}",
                semantic.label()
            );
        }
    }

    #[test]
    fn latency_grows_with_message_size() {
        let spec = ClusterSpec::default();
        let pts = latency_sweep(&spec, RdmaSemantic::Write, false, &paper_message_sizes());
        assert_eq!(pts.len(), 23);
        assert!(pts.last().unwrap().latency > pts[0].latency * 10);
        for w in pts.windows(2) {
            assert!(w[1].latency >= w[0].latency, "latency must be monotone");
        }
    }

    #[test]
    fn read_is_slower_than_write() {
        let spec = ClusterSpec::default();
        let r = latency_sweep(&spec, RdmaSemantic::Read, false, &[256])[0].latency;
        let w = latency_sweep(&spec, RdmaSemantic::Write, false, &[256])[0].latency;
        assert!(r > w);
    }
}
