//! Micro-benchmark harness for `harness = false` bench targets.
//!
//! A drop-in (API-compatible-enough) replacement for the slice of
//! criterion the workspace used: groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and an `iter` closure. Each
//! benchmark is measured as:
//!
//! 1. **warmup** — the closure runs until the warmup budget elapses,
//!    which also calibrates how many iterations fit in one sample;
//! 2. **samples** — `samples` batches are timed; each batch runs the
//!    calibrated iteration count and records mean ns/iter;
//! 3. **report** — min / median / p90 per-iteration times are printed in
//!    an aligned table as each benchmark finishes.
//!
//! # CLI
//!
//! Bench binaries accept (and ignore unknown) libtest/cargo flags:
//!
//! * `--quick` (or env `ZEROSIM_BENCH_QUICK=1`) — tiny budgets, for CI
//!   smoke runs;
//! * `--warmup-ms N`, `--sample-ms N`, `--samples N` — explicit budgets;
//! * `--bench`, `--test` — accepted for cargo compatibility, no effect;
//! * any bare argument — substring filter on `group/benchmark` names.
//!
//! `cargo bench -p zerosim-bench --bench flow_solver -- --quick` runs the
//! flow-solver benches in smoke mode.

use std::time::{Duration, Instant};

/// Re-export so bench files can `use zerosim_testkit::bench::black_box`.
pub use std::hint::black_box;

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// `group/name` label.
    pub id: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 90th-percentile sample.
    pub p90_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Top-level harness state: parsed CLI options plus collected results.
pub struct Bench {
    filter: Option<String>,
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
    quiet: bool,
    results: Vec<Summary>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            filter: None,
            warmup: Duration::from_millis(300),
            sample_target: Duration::from_millis(10),
            samples: 30,
            quiet: false,
            results: Vec::new(),
        }
    }
}

impl Bench {
    /// Harness with default budgets and no filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses `std::env::args`, honouring the flags described in the
    /// module docs and ignoring everything it does not understand.
    pub fn from_args() -> Self {
        let mut b = Bench::new();
        if std::env::var("ZEROSIM_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false)
        {
            b.set_quick();
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            match arg {
                "--quick" => b.set_quick(),
                "--quiet" => b.quiet = true,
                "--warmup-ms" | "--sample-ms" | "--samples" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
                        #[allow(clippy::cast_possible_truncation)] // CLI count
                        match arg {
                            "--warmup-ms" => b.warmup = Duration::from_millis(v),
                            "--sample-ms" => b.sample_target = Duration::from_millis(v),
                            _ => b.samples = v.max(1) as usize,
                        }
                        i += 1;
                    }
                }
                // cargo/libtest compatibility flags: accepted, ignored.
                "--bench" | "--test" | "--nocapture" | "--exact" => {}
                _ => {
                    if !arg.starts_with('-') {
                        b.filter = Some(arg.to_string());
                    }
                }
            }
            i += 1;
        }
        b
    }

    fn set_quick(&mut self) {
        self.warmup = Duration::from_millis(20);
        self.sample_target = Duration::from_millis(2);
        self.samples = 8;
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Alias for [`Bench::group`] — criterion API parity, so bench files
    /// port with only an import change.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        self.group(name)
    }

    /// All summaries collected so far.
    pub fn results(&self) -> &[Summary] {
        &self.results
    }

    /// Prints the closing line. Called by [`crate::bench_main!`].
    pub fn finish(&self) {
        if !self.quiet {
            println!("\n{} benchmark(s) complete", self.results.len());
        }
    }

    fn run_one(&mut self, id: String, sample_size: Option<usize>, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warmup: self.warmup,
            sample_target: self.sample_target,
            samples: sample_size.unwrap_or(self.samples),
            sample_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let mut ns = bencher.sample_ns;
        if ns.is_empty() {
            // The closure never called `iter`; nothing to report.
            return;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let summary = Summary {
            id,
            min_ns: ns[0],
            median_ns: percentile(&ns, 50.0),
            p90_ns: percentile(&ns, 90.0),
            samples: ns.len(),
            iters_per_sample: bencher.iters_per_sample,
        };
        if !self.quiet {
            println!(
                "{:<44} median {:>10}  p90 {:>10}  min {:>10}  ({} samples × {} iters)",
                summary.id,
                fmt_ns(summary.median_ns),
                fmt_ns(summary.p90_ns),
                fmt_ns(summary.min_ns),
                summary.samples,
                summary.iters_per_sample,
            );
        }
        self.results.push(summary);
    }
}

/// Percentile over a pre-sorted slice (nearest-rank with interpolation).
#[allow(clippy::cast_possible_truncation)] // rank < len, floors to an index
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A benchmark group: shares the group name prefix and an optional
/// per-group sample-size override (criterion's `sample_size`).
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: Option<usize>,
}

impl Group<'_> {
    /// Overrides the number of timed samples for benchmarks in this
    /// group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark; the closure receives a [`Bencher`] and must
    /// call [`Bencher::iter`].
    pub fn bench_function(&mut self, id: impl Into<BenchId>, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into().0);
        self.bench.run_one(full, self.sample_size, &mut f);
    }

    /// Runs a benchmark parameterized by `input` (criterion's
    /// `bench_with_input`).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.into().0);
        self.bench
            .run_one(full, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (no-op; exists for criterion API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: plain string or `BenchmarkId::new(fn, param)`.
#[derive(Debug, Clone)]
pub struct BenchId(pub String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

/// Criterion-compatible two-part benchmark id.
pub struct BenchmarkId;

impl BenchmarkId {
    /// `function_name/parameter` id.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchId {
        BenchId(format!("{function}/{parameter}"))
    }
}

/// Passed to the benchmark closure; times the workload.
pub struct Bencher {
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`: warmup + calibration, then `samples` timed batches.
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the workload.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup and calibration: run until the warmup budget elapses,
        // counting iterations to size one sample batch.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // A sample batch is bounded by wall-clock budget / per-iter time;
        // the ceil always fits a u64 for any feasible bench.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let iters = ((self.sample_target.as_secs_f64() / per_iter).ceil() as u64).max(1);
        self.iters_per_sample = iters;

        self.sample_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.sample_ns.push(elapsed * 1e9 / iters as f64);
        }
    }
}

/// Declares the `main` of a `harness = false` bench target:
///
/// ```ignore
/// fn bench_solver(c: &mut zerosim_testkit::bench::Bench) { /* … */ }
/// zerosim_testkit::bench_main!(bench_solver);
/// ```
#[macro_export]
macro_rules! bench_main {
    ($($bench_fn:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Bench::from_args();
            $($bench_fn(&mut harness);)+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench() -> Bench {
        let mut b = Bench::new();
        b.warmup = Duration::from_micros(200);
        b.sample_target = Duration::from_micros(50);
        b.samples = 5;
        b.quiet = true;
        b
    }

    #[test]
    fn collects_ordered_statistics() {
        let mut b = quick_bench();
        {
            let mut g = b.group("g");
            g.bench_function("work", |bencher| {
                bencher.iter(|| (0..100u64).sum::<u64>());
            });
            g.finish();
        }
        let r = &b.results()[0];
        assert_eq!(r.id, "g/work");
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns + 1e-9);
        assert!(r.median_ns <= r.p90_ns + 1e-9);
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = quick_bench();
        b.filter = Some("keep".into());
        {
            let mut g = b.group("g");
            g.bench_function("keep_me", |bencher| bencher.iter(|| 1 + 1));
            g.bench_function("skip_me", |bencher| bencher.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].id, "g/keep_me");
    }

    #[test]
    fn benchmark_id_formats_two_parts() {
        let id = BenchmarkId::new("drain", 64);
        assert_eq!(id.0, "drain/64");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
