//! `zerosim-report` — presentation utilities for paper-style output:
//! aligned text tables (with CSV export), terminal sparklines and bar
//! charts for utilization patterns, and the paper's number formats.
//!
//! ```
//! use zerosim_report::{sparkline, Table};
//! let mut t = Table::new(vec!["config", "NVLink avg GBps"]);
//! t.row(vec!["PyTorch DDP".into(), "83.0".into()]);
//! println!("{}", t.render());
//! println!("{}", sparkline(&[60.0, 80.0, 95.0, 70.0], Some(100.0)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod fmt;
mod table;

pub use chart::{bar_chart, downsample, scatter, sparkline};
pub use fmt::{billions, gb, gbps, sig3, tflops};
pub use table::{ReportError, Table};
