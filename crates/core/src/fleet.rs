//! Fleet-scale resilience economics: per-component hazard models sampled
//! into [`FaultSchedule`]s, Young/Daly checkpoint-interval selection, and
//! the Monte-Carlo ensemble runner behind the `fleetplan` cost search.
//!
//! The fault layer so far (PR 3) answered "what does *one* fault cost"
//! with hand-written scenarios. At production scale the question becomes
//! statistical: given a *failure rate* λ, what checkpoint cadence and
//! cluster configuration minimize dollars-to-train? This module provides
//! the three pieces:
//!
//! 1. **Hazard sampling** — [`FleetProfile`] holds per-component
//!    ([`ComponentHazard`]) failure-rate distributions ([`HazardDist`]:
//!    exponential or Weibull) with mean-time-to-repair, and
//!    [`FleetProfile::sample_schedule`] draws a renewal process per
//!    component into an ordinary [`FaultSchedule`]. Sampling is
//!    deterministic: each component owns an RNG stream forked from the
//!    schedule seed and a stable component tag, so the same seed yields a
//!    byte-identical schedule regardless of which other hazards are
//!    enabled, and sampled schedules pass planlint ZL007 clean by
//!    construction (windows never overlap per component, restores never
//!    precede degradations, events never exceed the horizon).
//! 2. **Young/Daly** — [`young_interval_s`] (τ = √(2·C·M)) and the
//!    higher-order [`daly_interval_s`] refinement convert a *measured*
//!    checkpoint cost ([`crate::TrainingSim::checkpoint_cost`]) and a
//!    system MTBF into the optimal checkpoint interval;
//!    [`waste_fraction`] is the first-order waste model
//!    `W = C/τ + (τ/2 + R)/M` they minimize.
//! 3. **Monte-Carlo validation** — [`run_ensemble`] fans N sampled
//!    schedules of one configuration across the deterministic
//!    [`SweepRunner`] (input-ordered, so results are byte-identical at
//!    any worker width) into goodput/TTR distributions, and
//!    [`young_daly_bracket`] replays the *same* sampled fault sequences
//!    at 0.5×, 1×, and 2× the Young/Daly interval to check the analytic
//!    optimum against simulated goodput.
//!
//! [`fleet_search`] composes all of it with [`crate::search_plans`] and
//! the [`CostModel`]/[`PowerModel`] layers to rank
//! (strategy × placement × checkpoint-interval) by dollars-to-train —
//! ROADMAP item 5's "cheapest configuration to train model X in T days
//! at failure rate λ".

use zerosim_hw::{Cluster, GpuId, LinkClass, TopologySpec};
use zerosim_model::GptConfig;
use zerosim_simkit::{FaultKind, FaultSchedule};
use zerosim_strategies::{CheckpointSink, RecoveryPolicy, Strategy, TrainOptions};
use zerosim_testkit::rng::Rng;

use crate::cost::CostModel;
use crate::energy::PowerModel;
use crate::engine::{RunConfig, TrainingSim};
use crate::error::CoreError;
use crate::faults::FaultConfig;
use crate::report::{mix, mix_str};
use crate::search::{search_plans, SearchConfig};
use crate::sweep::{SweepRunner, SweepSpec};

/// Hours per simulated-fleet day, used to convert per-day failure rates
/// into MTBF seconds.
const SECS_PER_DAY: f64 = 86_400.0;

/// Runaway guard: a single component never samples more than this many
/// outage windows into one schedule (a pathological sub-second MTBF would
/// otherwise spin forever). Hitting the cap truncates deterministically.
const MAX_WINDOWS_PER_COMPONENT: usize = 4_096;

/// A failure-rate distribution for one component class.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum HazardDist {
    /// Memoryless failures at a constant rate (the classic MTBF model).
    Exponential {
        /// Mean time between failures, seconds.
        mtbf_s: f64,
    },
    /// Weibull-distributed failures: `shape < 1` models infant mortality
    /// (burn-in), `shape > 1` wear-out.
    Weibull {
        /// Scale parameter η, seconds.
        scale_s: f64,
        /// Shape parameter β (dimensionless, > 0).
        shape: f64,
    },
}

impl HazardDist {
    /// Draws one time-to-failure (seconds) by inverse-CDF sampling.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // `next_f64` is in [0, 1); `1 - u` is in (0, 1], so the log is
        // finite and the sampled time non-negative.
        let u = rng.next_f64();
        match *self {
            HazardDist::Exponential { mtbf_s } => -mtbf_s * (1.0 - u).ln(),
            HazardDist::Weibull { scale_s, shape } => scale_s * (-(1.0 - u).ln()).powf(1.0 / shape),
        }
    }

    /// The distribution mean (MTBF), seconds.
    pub fn mean_s(&self) -> f64 {
        match *self {
            HazardDist::Exponential { mtbf_s } => mtbf_s,
            HazardDist::Weibull { scale_s, shape } => scale_s * gamma(1.0 + 1.0 / shape),
        }
    }

    /// The same distribution with every time scaled by `f` (used to
    /// compress fleet-scale MTBFs into a seconds-scale simulation window
    /// for Monte-Carlo validation).
    pub fn scale_time(&self, f: f64) -> Self {
        match *self {
            HazardDist::Exponential { mtbf_s } => HazardDist::Exponential { mtbf_s: mtbf_s * f },
            HazardDist::Weibull { scale_s, shape } => HazardDist::Weibull {
                scale_s: scale_s * f,
                shape,
            },
        }
    }

    fn digest_into(&self, h: u64) -> u64 {
        match *self {
            HazardDist::Exponential { mtbf_s } => mix(mix(h, 1), mtbf_s.to_bits()),
            HazardDist::Weibull { scale_s, shape } => {
                mix(mix(mix(h, 2), scale_s.to_bits()), shape.to_bits())
            }
        }
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), used for
/// the Weibull mean. Accurate to ~15 significant digits for the x > 1
/// arguments the hazard models produce.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps small shapes (β < 1 ⇒ 1 + 1/β > 2,
        // so this branch is defensive).
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// One component class's failure behaviour: when it breaks
/// ([`HazardDist`]), how long the outage lasts (`mttr_s`), and how hard
/// the degradation bites while it lasts (`factor`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentHazard {
    /// Time-to-failure distribution.
    pub dist: HazardDist,
    /// Mean time to repair: the degradation window length, seconds.
    /// Ignored for node-fatal hazards (recovery is the checkpoint/restart
    /// machinery's job, not the schedule's).
    pub mttr_s: f64,
    /// Capacity/speed fraction of nominal during the outage, in `(0, 1]`.
    /// Ignored for node-fatal hazards.
    pub factor: f64,
}

impl ComponentHazard {
    /// A memoryless hazard with the given MTBF.
    pub fn exponential(mtbf_s: f64, mttr_s: f64, factor: f64) -> Self {
        ComponentHazard {
            dist: HazardDist::Exponential { mtbf_s },
            mttr_s,
            factor,
        }
    }

    /// A Weibull hazard *targeted at* a mean time between failures: the
    /// scale is chosen so the distribution mean equals `mtbf_s` at the
    /// given shape.
    pub fn weibull(mtbf_s: f64, shape: f64, mttr_s: f64, factor: f64) -> Self {
        ComponentHazard {
            dist: HazardDist::Weibull {
                scale_s: mtbf_s / gamma(1.0 + 1.0 / shape),
                shape,
            },
            mttr_s,
            factor,
        }
    }

    /// The hazard with failure times *and* repair times scaled by `f`.
    pub fn scale_time(&self, f: f64) -> Self {
        ComponentHazard {
            dist: self.dist.scale_time(f),
            mttr_s: self.mttr_s * f,
            factor: self.factor,
        }
    }

    fn digest_into(&self, h: u64) -> u64 {
        mix(
            mix(self.dist.digest_into(h), self.mttr_s.to_bits()),
            self.factor.to_bits(),
        )
    }
}

/// Per-component hazard models for a fleet: which classes fail, how
/// often, and how hard. `None` disables a class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetProfile {
    /// Node-fatal failures (kernel panic, PSU, baseboard): one
    /// [`FaultKind::NodeLoss`] per node at most, aborting the run into
    /// the checkpoint/restart path.
    pub node: Option<ComponentHazard>,
    /// Per-node network (NIC) outages: every RoCE link of the node runs
    /// at `factor` × nominal for `mttr_s` seconds.
    pub link: Option<ComponentHazard>,
    /// Per-GPU stragglers: the GPU computes at `factor` × nominal for
    /// `mttr_s` seconds (thermal throttling, ECC retirement storms).
    pub gpu: Option<ComponentHazard>,
    /// Per-node NVMe stalls: the node's NVMe device-service links run at
    /// `factor` × nominal for `mttr_s` seconds (write-cache exhaustion,
    /// GC pauses).
    pub nvme: Option<ComponentHazard>,
}

/// Fraction of per-node failures that are node-fatal in
/// [`FleetProfile::from_node_rate`]'s canonical mix.
const FATAL_FRACTION: f64 = 0.4;

impl FleetProfile {
    /// No hazards: every sampled schedule is empty.
    pub fn healthy() -> Self {
        FleetProfile::default()
    }

    /// Only node-fatal failures, exponentially distributed with the given
    /// per-node MTBF — the profile Young/Daly analysis assumes, and the
    /// one the bracket validation uses.
    pub fn node_only(mtbf_s: f64) -> Self {
        FleetProfile {
            node: Some(ComponentHazard::exponential(mtbf_s, 0.0, 1.0)),
            ..FleetProfile::default()
        }
    }

    /// A canonical production mix for an aggregate failure rate of
    /// `failures_per_node_day` (failures per node per day, all classes
    /// combined): 40% node-fatal, 25% NIC outages (12.5% of nominal for
    /// 2 minutes), 20% GPU stragglers (Weibull β = 0.7 infant-mortality
    /// shape, half speed for 5 minutes), 15% NVMe stalls (25% of nominal
    /// service for 1 minute). The split follows the fleet-incident
    /// breakdowns reported for large GPU training clusters: roughly half
    /// the incidents kill the job, the rest degrade it.
    pub fn from_node_rate(failures_per_node_day: f64) -> Self {
        let mtbf = |fraction: f64| SECS_PER_DAY / (failures_per_node_day * fraction);
        FleetProfile {
            node: Some(ComponentHazard::exponential(mtbf(FATAL_FRACTION), 0.0, 1.0)),
            link: Some(ComponentHazard::exponential(mtbf(0.25), 120.0, 0.125)),
            gpu: Some(ComponentHazard::weibull(mtbf(0.20), 0.7, 300.0, 0.5)),
            nvme: Some(ComponentHazard::exponential(mtbf(0.15), 60.0, 0.25)),
        }
    }

    /// The profile with every time constant scaled by `f`: MTBFs and
    /// MTTRs alike. Used to compress day-scale failure rates into a
    /// seconds-scale simulation window — Young/Daly is self-similar in
    /// `√(C·M)`, so the compressed system exercises the same trade-off.
    pub fn scale_time(&self, f: f64) -> Self {
        let s = |c: &Option<ComponentHazard>| c.as_ref().map(|h| h.scale_time(f));
        FleetProfile {
            node: s(&self.node),
            link: s(&self.link),
            gpu: s(&self.gpu),
            nvme: s(&self.nvme),
        }
    }

    /// System MTBF for *fatal* (node-loss) failures across `nodes` nodes:
    /// the per-node mean divided by the node count, or `None` when the
    /// profile has no node-fatal hazard. This is the `M` Young/Daly
    /// consumes at fleet scale, where losses are far rarer than the
    /// sampling horizon.
    pub fn fatal_mtbf_s(&self, nodes: usize) -> Option<f64> {
        self.node
            .as_ref()
            .map(|h| h.dist.mean_s() / nodes.max(1) as f64)
    }

    /// The *effective* fatal MTBF the sampled process realizes over a
    /// finite horizon: [`FleetProfile::sample_schedule`] caps losses at
    /// one per node (a lost node stays lost), so over a window `W` the
    /// expected loss count is `n·(1 − e^{−W/M_node})` — below the
    /// uncapped `n·W/M_node` once `W` is comparable to the per-node mean.
    /// Young/Daly must be fed the rate the run will actually face;
    /// [`young_daly_bracket`] uses this, and it converges to
    /// [`FleetProfile::fatal_mtbf_s`] as `W/M_node → 0` (exact for
    /// exponential hazards, first-order otherwise).
    pub fn effective_fatal_mtbf_s(&self, nodes: usize, horizon_s: f64) -> Option<f64> {
        let h = self.node.as_ref()?;
        let mtbf_node = h.dist.mean_s();
        if !positive(horizon_s) || !positive(mtbf_node) {
            return Some(f64::INFINITY);
        }
        let expected = nodes.max(1) as f64 * (1.0 - (-horizon_s / mtbf_node).exp());
        if expected <= 0.0 {
            return Some(f64::INFINITY);
        }
        Some(horizon_s / expected)
    }

    /// Inverts [`FleetProfile::effective_fatal_mtbf_s`]: the per-node
    /// MTBF whose capped sampling realizes `target_eff_mtbf_s` over
    /// `horizon_s` on `nodes` nodes. Returns `None` when the target is
    /// unreachable — the cap bounds the expected loss count at `n`, so
    /// effective MTBFs below `horizon/n` cannot be realized.
    pub fn node_mtbf_for_effective(
        nodes: usize,
        horizon_s: f64,
        target_eff_mtbf_s: f64,
    ) -> Option<f64> {
        if !positive(horizon_s) || !positive(target_eff_mtbf_s) {
            return None;
        }
        let frac = horizon_s / (nodes.max(1) as f64 * target_eff_mtbf_s);
        if frac >= 1.0 {
            return None;
        }
        Some(-horizon_s / (1.0 - frac).ln())
    }

    /// Expected fault *events* a sampled schedule of `horizon_s` seconds
    /// carries (degradation onsets plus their restores plus node losses),
    /// to first order — repair windows and the one-loss-per-node cap make
    /// the true mean slightly smaller. Used by statistical-bounds tests.
    pub fn expected_events(&self, nodes: usize, gpus_per_node: usize, horizon_s: f64) -> f64 {
        let n = nodes as f64;
        let per = |h: &Option<ComponentHazard>, components: f64, events_per_window: f64| {
            h.as_ref().map_or(0.0, |h| {
                components * (horizon_s / h.dist.mean_s()).min(1.0) * events_per_window
            })
        };
        // Node losses emit one event and are capped at one per node; the
        // degradation classes emit a scale + restore pair per window.
        per(&self.node, n, 1.0)
            + self
                .link
                .as_ref()
                .map_or(0.0, |h| n * (horizon_s / h.dist.mean_s()) * 2.0)
            + self.gpu.as_ref().map_or(0.0, |h| {
                n * gpus_per_node as f64 * (horizon_s / h.dist.mean_s()) * 2.0
            })
            + self
                .nvme
                .as_ref()
                .map_or(0.0, |h| n * (horizon_s / h.dist.mean_s()) * 2.0)
    }

    /// A stable fingerprint of the profile's hazard parameters.
    pub fn digest(&self) -> u64 {
        let mut h = 0x464c_4545_5450_524f; // "FLEETPRO"
        for (tag, c) in [
            (1u64, &self.node),
            (2, &self.link),
            (3, &self.gpu),
            (4, &self.nvme),
        ] {
            h = mix(h, tag);
            h = match c {
                Some(hz) => hz.digest_into(h),
                None => mix(h, 0),
            };
        }
        h
    }

    /// Samples this profile against `cluster` into a seed-stamped
    /// [`FaultSchedule`] covering `[0, horizon_s)`.
    ///
    /// Determinism contract: each component (a node's fatal hazard, a
    /// node's NIC group, one GPU, a node's NVMe group) draws from its own
    /// RNG stream seeded by `mix(seed, class tag, component index)`, so
    /// the sampled events of one component never depend on which other
    /// hazards are enabled, and the same `(profile, cluster, horizon,
    /// seed)` always yields a digest-identical schedule. Windows are
    /// renewal processes (repair completes before the next failure of the
    /// same component), restores are clamped to the horizon, and each
    /// node dies at most once — the schedules pass planlint ZL007 with no
    /// findings.
    ///
    /// # Errors
    /// [`CoreError::BadScenario`] when `horizon_s` is not finite and
    /// positive.
    pub fn sample_schedule(
        &self,
        cluster: &Cluster,
        horizon_s: f64,
        seed: u64,
    ) -> Result<FaultSchedule, CoreError> {
        if !(horizon_s.is_finite() && horizon_s > 0.0) {
            return Err(CoreError::BadScenario(format!(
                "sampling horizon must be finite and positive, got {horizon_s}"
            )));
        }
        const TAG_NODE: u64 = 0x6e6f_6465; // "node"
        const TAG_LINK: u64 = 0x6c69_6e6b; // "link"
        const TAG_GPU: u64 = 0x2e67_7075; // ".gpu"
        const TAG_NVME: u64 = 0x6e76_6d65; // "nvme"
        let spec = cluster.spec();
        let mut s = FaultSchedule::new(seed);
        let stream = |tag: u64, idx: usize| Rng::new(mix(mix(seed, tag), idx as u64));
        for node in 0..spec.nodes {
            if let Some(h) = &self.node {
                // At most one fatal loss per node: a lost node stays lost
                // for the rest of the schedule (ZL007 denies a second
                // loss, and the restart machinery models the recovery).
                let mut rng = stream(TAG_NODE, node);
                let t = h.dist.sample(&mut rng);
                if t < horizon_s {
                    s = s.try_at(t, FaultKind::NodeLoss { node })?;
                }
            }
            if let Some(h) = &self.link {
                let mut rng = stream(TAG_LINK, node);
                for (start, end) in windows(h, horizon_s, &mut rng) {
                    for &link in cluster.links(node, LinkClass::Roce) {
                        s = s
                            .try_at(
                                start,
                                FaultKind::ScaleLink {
                                    link,
                                    factor: h.factor,
                                },
                            )?
                            .try_at(end, FaultKind::RestoreLink { link })?;
                    }
                }
            }
            if let Some(h) = &self.gpu {
                for g in 0..spec.gpus_per_node {
                    let mut rng = stream(TAG_GPU, node * spec.gpus_per_node + g);
                    let resource = cluster.gpu_resource(GpuId { node, gpu: g }).0;
                    for (start, end) in windows(h, horizon_s, &mut rng) {
                        s = s
                            .try_at(
                                start,
                                FaultKind::SlowResource {
                                    resource,
                                    factor: h.factor,
                                },
                            )?
                            .try_at(end, FaultKind::RestoreResource { resource })?;
                    }
                }
            }
            if let Some(h) = &self.nvme {
                let mut rng = stream(TAG_NVME, node);
                for (start, end) in windows(h, horizon_s, &mut rng) {
                    for &link in cluster.links(node, LinkClass::NvmeDev) {
                        s = s
                            .try_at(
                                start,
                                FaultKind::ScaleLink {
                                    link,
                                    factor: h.factor,
                                },
                            )?
                            .try_at(end, FaultKind::RestoreLink { link })?;
                    }
                }
            }
        }
        Ok(s)
    }
}

/// Renewal sampling of one component's outage windows over
/// `[0, horizon_s)`: failure, repair for `mttr_s` (clamped to the
/// horizon), next failure measured from repair completion. Windows never
/// overlap by construction.
fn windows(h: &ComponentHazard, horizon_s: f64, rng: &mut Rng) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut t = 0.0;
    while out.len() < MAX_WINDOWS_PER_COMPONENT {
        t += h.dist.sample(rng);
        if t >= horizon_s {
            break;
        }
        let end = (t + h.mttr_s.max(0.0)).min(horizon_s);
        // A zero-length window (mttr 0 exactly at the horizon) would emit
        // a degrade/restore pair at the same instant; keep it — the
        // cursor fires them in insertion order, so it is a no-op.
        out.push((t, end));
        t = end;
    }
    out
}

/// NaN-safe strict positivity: false for NaN, zero, and negatives.
fn positive(x: f64) -> bool {
    x > 0.0
}

/// NaN-safe finite strict positivity (rejects `+∞` too).
fn finite_positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

/// Young's optimal checkpoint interval `τ = √(2·C·M)` for a checkpoint
/// that costs `ckpt_cost_s` seconds under a system MTBF of `mtbf_s`
/// seconds. Returns `+∞` (never checkpoint) when either input is
/// non-positive or the MTBF is infinite.
pub fn young_interval_s(ckpt_cost_s: f64, mtbf_s: f64) -> f64 {
    if !positive(ckpt_cost_s) || !finite_positive(mtbf_s) {
        return f64::INFINITY;
    }
    (2.0 * ckpt_cost_s * mtbf_s).sqrt()
}

/// Daly's higher-order refinement of [`young_interval_s`]:
/// `τ = √(2·C·M)·[1 + ⅓·√(C/2M) + ⅑·(C/2M)] − C` for `C < 2M`, and
/// `τ = M` once checkpoints cost more than the mean failure interval can
/// amortize. Agrees with Young to first order and stays accurate when
/// `C` is a non-trivial fraction of `M` — exactly the compressed-MTBF
/// regime the Monte-Carlo validation runs in.
pub fn daly_interval_s(ckpt_cost_s: f64, mtbf_s: f64) -> f64 {
    if !positive(ckpt_cost_s) || !finite_positive(mtbf_s) {
        return f64::INFINITY;
    }
    if ckpt_cost_s >= 2.0 * mtbf_s {
        return mtbf_s;
    }
    let x = (ckpt_cost_s / (2.0 * mtbf_s)).sqrt();
    (2.0 * ckpt_cost_s * mtbf_s).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - ckpt_cost_s
}

/// First-order expected waste fraction of a checkpointed run: checkpoint
/// overhead `C/τ` plus expected rework-and-recovery `(τ/2 + R)/M` per
/// failure interval, clamped to `[0, 1]`. `R` is the time lost per
/// failure beyond rework (restart delay + restore traffic).
pub fn waste_fraction(ckpt_cost_s: f64, interval_s: f64, mtbf_s: f64, recover_s: f64) -> f64 {
    if !positive(interval_s) || !finite_positive(mtbf_s) {
        return 0.0;
    }
    (ckpt_cost_s.max(0.0) / interval_s + (interval_s / 2.0 + recover_s.max(0.0)) / mtbf_s).min(1.0)
}

/// Converts a checkpoint interval in seconds to whole committed
/// iterations (the unit [`RecoveryPolicy::checkpoint_interval`] uses),
/// rounding to nearest and never below 1.
pub fn interval_iters(interval_s: f64, iter_s: f64) -> usize {
    if !positive(iter_s) || !interval_s.is_finite() {
        return 1;
    }
    // Clamped before the cast: intervals beyond ~1e6 iterations mean
    // "effectively never" and lose nothing to saturation.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let k = (interval_s / iter_s).round().clamp(1.0, 1e6) as usize;
    k
}

/// Configuration of a Monte-Carlo fault ensemble over one training
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleConfig {
    /// Sampled schedules to run (the acceptance floor is 32 for bench
    /// artifacts; tests use fewer).
    pub samples: usize,
    /// Sampling horizon, seconds — how much simulated time the hazard
    /// processes cover. Pick it ≥ the expected faulted wall time so
    /// late-run faults are represented.
    pub horizon_s: f64,
    /// Base seed; sample `i` draws from `mix(seed, i)`.
    pub seed: u64,
    /// Worker threads. Results are input-ordered and byte-identical at
    /// any width.
    pub workers: usize,
    /// Checkpoint cadence and restart charging for every sample.
    pub policy: RecoveryPolicy,
    /// Where checkpoint snapshots land.
    pub sink: CheckpointSink,
}

impl EnsembleConfig {
    /// An ensemble of `samples` schedules over `horizon_s` seconds with
    /// seed 0, one worker, a generous recovery budget, and DRAM
    /// checkpoints every 4 iterations.
    pub fn new(samples: usize, horizon_s: f64) -> Self {
        EnsembleConfig {
            samples,
            horizon_s,
            seed: 0,
            workers: 1,
            policy: RecoveryPolicy::every(4).with_max_recoveries(64),
            sink: CheckpointSink::Dram,
        }
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the recovery policy.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the checkpoint sink.
    pub fn with_sink(mut self, sink: CheckpointSink) -> Self {
        self.sink = sink;
        self
    }
}

/// Order statistics of one ensemble metric (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnsembleStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl EnsembleStats {
    /// Stats over `values` (empty input yields all zeros).
    pub fn from_samples(values: &[f64]) -> Self {
        if values.is_empty() {
            return EnsembleStats::default();
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            // Nearest-rank on n samples; the product is < n ≤ isize::MAX.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let i = ((v.len() - 1) as f64 * q).round() as usize;
            v[i]
        };
        EnsembleStats {
            mean: v.iter().sum::<f64>() / v.len() as f64,
            p50: rank(0.5),
            p99: rank(0.99),
            min: v[0],
            max: v[v.len() - 1],
        }
    }

    fn digest_into(&self, h: u64) -> u64 {
        let mut h = mix(h, self.mean.to_bits());
        h = mix(h, self.p50.to_bits());
        h = mix(h, self.p99.to_bits());
        h = mix(h, self.min.to_bits());
        mix(h, self.max.to_bits())
    }
}

/// The result of one Monte-Carlo fault ensemble: goodput and
/// time-to-recover distributions over N sampled schedules of a single
/// training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleReport {
    /// The base spec's label.
    pub label: String,
    /// Samples attempted.
    pub samples: usize,
    /// Samples that failed outright (e.g. the recovery budget was
    /// exhausted); excluded from the distributions but folded into the
    /// digest.
    pub failed: usize,
    /// Goodput distribution over successful samples, TFLOP/s.
    pub goodput_tflops: EnsembleStats,
    /// Mean time-to-recover distribution over successful samples, seconds.
    pub ttr_s: EnsembleStats,
    /// Fault events consumed across all successful samples.
    pub faults_applied: usize,
    /// Node-loss recoveries across all successful samples.
    pub recoveries: usize,
    /// Replayed iterations across all successful samples.
    pub replayed_iterations: usize,
    /// Checkpoints taken across all successful samples.
    pub checkpoints_taken: usize,
    /// Order-independent fingerprint of every sample's outcome (schedule
    /// digests, per-sample goodput, failures). Equal digests mean the
    /// ensemble saw byte-identical results — `verify.sh` compares them
    /// across `--workers` widths.
    pub digest: u64,
}

/// Runs `cfg.samples` sampled schedules of `profile` against the training
/// configuration in `base` (its `faults` field is ignored — the policy
/// and sink come from `cfg`, the schedule from the sampler), fanning the
/// samples across a [`SweepRunner`].
///
/// Results are input-ordered, so the report — including its digest — is
/// byte-identical at any `cfg.workers` width.
///
/// # Errors
/// [`CoreError::BadCluster`] when the base cluster spec does not build;
/// [`CoreError::BadScenario`] for an invalid horizon. Per-sample run
/// failures do **not** abort the ensemble; they are counted in
/// [`EnsembleReport::failed`].
pub fn run_ensemble(
    base: &SweepSpec,
    profile: &FleetProfile,
    cfg: &EnsembleConfig,
) -> Result<EnsembleReport, CoreError> {
    let cluster = Cluster::new(base.cluster.clone()).map_err(CoreError::BadCluster)?;
    let mut schedule_digests = Vec::with_capacity(cfg.samples);
    let mut specs = Vec::with_capacity(cfg.samples);
    for i in 0..cfg.samples {
        let schedule = profile.sample_schedule(&cluster, cfg.horizon_s, mix(cfg.seed, i as u64))?;
        schedule_digests.push(schedule.digest());
        let mut spec = base.clone();
        spec.label = format!("{} / s{i:02}", base.label);
        spec.faults = Some(FaultConfig::new(
            schedule,
            cfg.policy.clone(),
            cfg.sink.clone(),
        ));
        specs.push(spec);
    }
    let outcomes = SweepRunner::new(cfg.workers.max(1)).run_each(specs);

    let mut goodput = Vec::new();
    let mut ttr = Vec::new();
    let mut failed = 0usize;
    let mut faults_applied = 0usize;
    let mut recoveries = 0usize;
    let mut replayed = 0usize;
    let mut checkpoints = 0usize;
    let mut h = mix_str(0x464c_4545_u64, &base.label);
    h = mix(h, profile.digest());
    h = mix(h, cfg.samples as u64);
    h = mix(h, cfg.horizon_s.to_bits());
    h = mix(h, cfg.seed);
    for (i, outcome) in outcomes.iter().enumerate() {
        h = mix(h, schedule_digests[i]);
        match outcome {
            Ok(run) => {
                // `run_resilient` always attaches resilience metrics for
                // faulted specs; guard anyway so a healthy sample (empty
                // schedule still runs resilient) cannot panic.
                let Some(res) = &run.report.resilience else {
                    failed += 1;
                    h = mix_str(h, "missing resilience metrics");
                    continue;
                };
                goodput.push(res.goodput_tflops());
                ttr.push(res.time_to_recover().as_secs());
                faults_applied += res.faults_applied;
                recoveries += res.recoveries;
                replayed += res.replayed_iterations;
                checkpoints += res.checkpoints_taken;
                h = mix(h, run.digest);
                h = mix(h, res.goodput_flops.to_bits());
                h = mix(h, res.recoveries as u64);
                h = mix(h, res.replayed_iterations as u64);
            }
            Err(e) => {
                failed += 1;
                h = mix_str(h, &e.to_string());
            }
        }
    }
    let goodput_tflops = EnsembleStats::from_samples(&goodput);
    let ttr_s = EnsembleStats::from_samples(&ttr);
    h = goodput_tflops.digest_into(h);
    h = ttr_s.digest_into(h);
    Ok(EnsembleReport {
        label: base.label.clone(),
        samples: cfg.samples,
        failed,
        goodput_tflops,
        ttr_s,
        faults_applied,
        recoveries,
        replayed_iterations: replayed,
        checkpoints_taken: checkpoints,
        digest: h,
    })
}

/// One point of a Young/Daly bracketing sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BracketPoint {
    /// Checkpoint interval in committed iterations.
    pub interval_iters: usize,
    /// Ensemble mean goodput at that interval, TFLOP/s.
    pub mean_goodput_tflops: f64,
    /// Failed samples at that interval.
    pub failed: usize,
    /// The underlying [`EnsembleReport::digest`].
    pub digest: u64,
}

/// The result of validating the Young/Daly interval against simulated
/// goodput: the same sampled fault sequences replayed at half, exactly,
/// and twice the analytic optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct YoungDalyBracket {
    /// The base spec's label.
    pub label: String,
    /// Measured checkpoint cost `C`, seconds.
    pub ckpt_cost_s: f64,
    /// System fatal MTBF `M`, seconds.
    pub mtbf_s: f64,
    /// The Daly interval `τ(C, M)`, seconds.
    pub interval_s: f64,
    /// Ensemble at `max(1, τ/2)` iterations.
    pub half: BracketPoint,
    /// Ensemble at the Young/Daly interval.
    pub opt: BracketPoint,
    /// Ensemble at `2τ` iterations.
    pub double: BracketPoint,
}

impl YoungDalyBracket {
    /// True when the Young/Daly interval strictly beats both bracket
    /// points on ensemble mean goodput — the acceptance criterion
    /// `verify.sh` gates on.
    pub fn yd_wins(&self) -> bool {
        self.opt.mean_goodput_tflops > self.half.mean_goodput_tflops
            && self.opt.mean_goodput_tflops > self.double.mean_goodput_tflops
    }

    /// Stable fingerprint of the whole bracket.
    pub fn digest(&self) -> u64 {
        let mut h = mix_str(0x5944_4252, &self.label); // "YDBR"
        h = mix(h, self.ckpt_cost_s.to_bits());
        h = mix(h, self.mtbf_s.to_bits());
        h = mix(h, self.interval_s.to_bits());
        for p in [&self.half, &self.opt, &self.double] {
            h = mix(h, p.interval_iters as u64);
            h = mix(h, p.mean_goodput_tflops.to_bits());
            h = mix(h, p.failed as u64);
            h = mix(h, p.digest);
        }
        h
    }
}

/// Validates the Young/Daly interval for one configuration by simulation:
/// computes `τ = daly(C, M)` from the measured checkpoint cost and the
/// profile's fatal MTBF, converts it to iterations with `iter_s`, and
/// runs three ensembles — at half, exactly, and twice that interval —
/// over the **same** sampled fault sequences (sampling depends only on
/// the profile, cluster, horizon, and seed, never on the policy).
///
/// The optimum interval is clamped to ≥ 2 iterations so the half point
/// is a distinct cadence.
///
/// # Errors
/// [`CoreError::BadScenario`] when the profile has no node-fatal hazard
/// (there is nothing for checkpoints to protect against), plus everything
/// [`run_ensemble`] returns.
pub fn young_daly_bracket(
    base: &SweepSpec,
    profile: &FleetProfile,
    cfg: &EnsembleConfig,
    ckpt_cost_s: f64,
    iter_s: f64,
) -> Result<YoungDalyBracket, CoreError> {
    let mtbf_s = profile
        .effective_fatal_mtbf_s(base.cluster.nodes, cfg.horizon_s)
        .ok_or_else(|| {
            CoreError::BadScenario("profile has no node-fatal hazard to bracket against".into())
        })?;
    let interval_s = daly_interval_s(ckpt_cost_s, mtbf_s);
    let k_opt = interval_iters(interval_s, iter_s).max(2);
    let run_at = |k: usize| -> Result<BracketPoint, CoreError> {
        let cfg_k = EnsembleConfig {
            policy: RecoveryPolicy {
                checkpoint_interval: k,
                ..cfg.policy.clone()
            },
            ..cfg.clone()
        };
        let report = run_ensemble(base, profile, &cfg_k)?;
        Ok(BracketPoint {
            interval_iters: k,
            mean_goodput_tflops: report.goodput_tflops.mean,
            failed: report.failed,
            digest: report.digest,
        })
    };
    Ok(YoungDalyBracket {
        label: base.label.clone(),
        ckpt_cost_s,
        mtbf_s,
        interval_s,
        half: run_at((k_opt / 2).max(1))?,
        opt: run_at(k_opt)?,
        double: run_at(k_opt * 2)?,
    })
}

/// What `fleetplan` searches: a model on a topology under a failure rate,
/// with the economic constants that turn goodput into dollars.
#[derive(Debug, Clone)]
pub struct FleetCostConfig {
    /// The cluster shape to search.
    pub topology: TopologySpec,
    /// The model to train.
    pub model: GptConfig,
    /// Aggregate failures per node per day (λ); 0 disables the hazard
    /// model and reduces the ranking to healthy cost-to-train.
    pub rate_per_node_day: f64,
    /// Optional training deadline in days; configurations that cannot
    /// finish in time are marked infeasible and ranked last.
    pub deadline_days: Option<f64>,
    /// Total training tokens; defaults to the Chinchilla-style
    /// 20 tokens/parameter when `None`.
    pub tokens: Option<f64>,
    /// Worker threads for the placement-search stage.
    pub workers: usize,
    /// How many ranked placements to cost in full (checkpoint-cost
    /// measurement + economics), from the top of the throughput ranking.
    pub top: usize,
    /// Capital-cost constants.
    pub cost: CostModel,
    /// Power-model constants.
    pub power: PowerModel,
    /// Electricity price, USD per kWh.
    pub energy_usd_per_kwh: f64,
    /// Capital amortization horizon, years: a run is charged
    /// `capital × train_days / (365 × amortize_years)`.
    pub amortize_years: f64,
    /// Sampling configuration for the search's simulation stage.
    pub run: RunConfig,
}

impl FleetCostConfig {
    /// A search with default economics (list-price capital, 0.12 $/kWh,
    /// 3-year amortization), the quick run configuration, one worker, and
    /// the top 4 placements costed.
    pub fn new(topology: TopologySpec, model: GptConfig, rate_per_node_day: f64) -> Self {
        FleetCostConfig {
            topology,
            model,
            rate_per_node_day,
            deadline_days: None,
            tokens: None,
            workers: 1,
            top: 4,
            cost: CostModel::default(),
            power: PowerModel::default(),
            energy_usd_per_kwh: 0.12,
            amortize_years: 3.0,
            run: RunConfig::quick(),
        }
    }

    /// Replaces the training deadline.
    pub fn with_deadline_days(mut self, days: f64) -> Self {
        self.deadline_days = Some(days);
        self
    }

    /// Replaces the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the number of placements costed in full.
    pub fn with_top(mut self, top: usize) -> Self {
        self.top = top;
        self
    }
}

/// One costed configuration in a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCandidate {
    /// Strategy display name.
    pub strategy_name: String,
    /// `dp x tp x pp` placement label.
    pub placement: String,
    /// Healthy throughput, TFLOP/s.
    pub throughput_tflops: f64,
    /// Measured checkpoint cost `C`, seconds.
    pub ckpt_cost_s: f64,
    /// Young/Daly checkpoint interval at the configured failure rate,
    /// seconds (`+∞` when λ = 0).
    pub interval_s: f64,
    /// The interval in committed iterations.
    pub interval_iters: usize,
    /// Analytic waste fraction `C/τ + (τ/2 + R)/M` at that interval.
    pub waste_fraction: f64,
    /// Failure-adjusted goodput, TFLOP/s.
    pub goodput_tflops: f64,
    /// Days to train the configured token budget at that goodput.
    pub train_days: f64,
    /// Capital cost of the hardware the run occupies, USD.
    pub capital_usd: f64,
    /// Energy cost of the full training run, USD.
    pub energy_usd: f64,
    /// NVMe flash-endurance (drive replacement) cost of the run, USD.
    pub wear_usd: f64,
    /// Amortized capital + energy + NVMe wear: the ranking key, USD.
    pub dollars_to_train: f64,
    /// Whether the run meets the deadline (always true without one).
    pub feasible: bool,
}

/// The ranked result of a [`fleet_search`] run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The searched topology, rendered.
    pub topology: String,
    /// Model size in parameters.
    pub model_params: f64,
    /// The configured failure rate, failures per node per day.
    pub rate_per_node_day: f64,
    /// Total training tokens costed.
    pub tokens: f64,
    /// The deadline, if any, days.
    pub deadline_days: Option<f64>,
    /// Costed configurations, cheapest feasible first.
    pub candidates: Vec<FleetCandidate>,
    /// The underlying placement search's digest (covers the full grid).
    pub search_digest: u64,
}

impl FleetReport {
    /// The winning (cheapest feasible) configuration, if any.
    pub fn best(&self) -> Option<&FleetCandidate> {
        self.candidates.first()
    }

    /// A stable fingerprint of the whole costed ranking.
    pub fn digest(&self) -> u64 {
        let mut h = mix_str(0x464c_4545_5424, &self.topology); // "FLEET$"
        h = mix(h, self.model_params.to_bits());
        h = mix(h, self.rate_per_node_day.to_bits());
        h = mix(h, self.tokens.to_bits());
        h = mix(h, self.deadline_days.unwrap_or(f64::NAN).to_bits());
        h = mix(h, self.search_digest);
        for c in &self.candidates {
            h = mix_str(h, &c.strategy_name);
            h = mix_str(h, &c.placement);
            h = mix(h, c.throughput_tflops.to_bits());
            h = mix(h, c.ckpt_cost_s.to_bits());
            h = mix(h, c.interval_s.to_bits());
            h = mix(h, c.interval_iters as u64);
            h = mix(h, c.goodput_tflops.to_bits());
            h = mix(h, c.train_days.to_bits());
            h = mix(h, c.dollars_to_train.to_bits());
            h = mix(h, u64::from(c.feasible));
        }
        h
    }

    /// Renders the costed ranking as a table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "fleetplan: {} | model {:.1} B | λ = {:.2}/node-day | {:.1e} tokens{}\n",
            self.topology,
            self.model_params / 1e9,
            self.rate_per_node_day,
            self.tokens,
            self.deadline_days
                .map_or(String::new(), |d| format!(" | deadline {d:.0} d")),
        );
        out.push_str(
            "rank  strategy                      placement              \
             ckpt(s)  τ(iters)  goodput    days     $-to-train\n",
        );
        for (i, c) in self.candidates.iter().enumerate() {
            out.push_str(&format!(
                "{:>4}. {:<28} {:<22} {:>7.2} {:>9} {:>8.1}T {:>7.1} {:>12.0}{}\n",
                i + 1,
                c.strategy_name,
                c.placement,
                c.ckpt_cost_s,
                c.interval_iters,
                c.goodput_tflops,
                c.train_days,
                c.dollars_to_train,
                if c.feasible {
                    ""
                } else {
                    "  [misses deadline]"
                },
            ));
        }
        out
    }
}

/// Runs the fleet cost search: placement search ([`search_plans`]) →
/// re-simulate the top `cfg.top` survivors for full reports → measure
/// each one's checkpoint cost → Young/Daly interval at the configured
/// failure rate → analytic goodput → dollars-to-train (amortized capital
/// + energy) → rank cheapest-feasible first.
///
/// # Errors
/// [`CoreError::BadCluster`] when the topology does not build, plus any
/// error re-simulating a ranked candidate (the search stage itself
/// isolates per-candidate failures).
pub fn fleet_search(cfg: &FleetCostConfig) -> Result<FleetReport, CoreError> {
    let search = search_plans(
        &SearchConfig::new(cfg.topology, cfg.model)
            .with_run(cfg.run)
            .with_workers(cfg.workers),
    )?;
    let spec = cfg.topology.build().map_err(CoreError::BadCluster)?;
    let nodes = cfg.topology.nodes();
    let opts = TrainOptions::for_nodes(nodes);
    let tokens = cfg.tokens.unwrap_or_else(|| 20.0 * cfg.model.num_params());
    let train_flops = cfg.model.iteration_flops(tokens).total();
    let profile = if cfg.rate_per_node_day > 0.0 {
        Some(FleetProfile::from_node_rate(cfg.rate_per_node_day))
    } else {
        None
    };
    let mtbf_s = profile
        .as_ref()
        .and_then(|p| p.fatal_mtbf_s(nodes))
        .unwrap_or(f64::INFINITY);

    let ranked: Vec<(String, String, Strategy)> = search
        .ranking()
        .into_iter()
        .take(cfg.top.max(1))
        .map(|c| (c.strategy_name.clone(), c.placement(), c.strategy.clone()))
        .collect();
    let mut candidates = Vec::with_capacity(ranked.len());
    for (strategy_name, placement, strategy) in ranked {
        let mut sim = TrainingSim::with_calibration(spec.clone(), Calibration::default())?;
        let report = sim.run(&strategy, &cfg.model, &opts, &cfg.run)?;
        let ckpt_cost_s = sim.checkpoint_cost(&cfg.model, &opts, &CheckpointSink::Dram)?;
        let interval_s = daly_interval_s(ckpt_cost_s, mtbf_s);
        let iter_s = report.iter_time.as_secs();
        let k = interval_iters(interval_s, iter_s);
        // Time lost per failure beyond rework: restart + restore (the
        // restore plan mirrors the save, so its cost is ≈ C).
        let recover_s = RecoveryPolicy::every(1).restart_delay_s + ckpt_cost_s;
        let waste = waste_fraction(ckpt_cost_s, interval_s, mtbf_s, recover_s);
        let goodput_flops = report.throughput_flops() * (1.0 - waste);
        let train_days = train_flops / goodput_flops / SECS_PER_DAY;
        let cost = cfg
            .cost
            .estimate(&report, spec.gpus_per_node, spec.nvme_layout.len());
        let capital_usd = cost.capital_usd;
        let energy = cfg.power.estimate(&report, spec.gpus_per_node);
        let energy_usd =
            energy.avg_power_w() * (train_days * SECS_PER_DAY) / 3.6e6 * cfg.energy_usd_per_kwh;
        // Flash endurance is a consumable like energy: NVMe-offload
        // candidates pay for the drive lifetime their write traffic buys.
        let wear_usd = cost.wear_usd(train_days * SECS_PER_DAY);
        let dollars_to_train =
            capital_usd * train_days / (365.0 * cfg.amortize_years) + energy_usd + wear_usd;
        let feasible = cfg.deadline_days.is_none_or(|d| train_days <= d);
        candidates.push(FleetCandidate {
            strategy_name,
            placement,
            throughput_tflops: report.throughput_tflops(),
            ckpt_cost_s,
            interval_s,
            interval_iters: k,
            waste_fraction: waste,
            goodput_tflops: goodput_flops / 1e12,
            train_days,
            capital_usd,
            energy_usd,
            wear_usd,
            dollars_to_train,
            feasible,
        });
    }
    // Cheapest feasible first; infeasible configurations sink to the
    // bottom but stay visible (ties broken by name for determinism).
    candidates.sort_by(|a, b| {
        b.feasible
            .cmp(&a.feasible)
            .then(a.dollars_to_train.total_cmp(&b.dollars_to_train))
            .then_with(|| a.strategy_name.cmp(&b.strategy_name))
            .then_with(|| a.placement.cmp(&b.placement))
    });
    Ok(FleetReport {
        topology: search.topology.clone(),
        model_params: cfg.model.num_params(),
        rate_per_node_day: cfg.rate_per_node_day,
        tokens,
        deadline_days: cfg.deadline_days,
        candidates,
        search_digest: search.digest(),
    })
}

use zerosim_strategies::Calibration;

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::default()).unwrap()
    }

    #[test]
    fn exponential_sampling_matches_mtbf() {
        let dist = HazardDist::Exponential { mtbf_s: 50.0 };
        let mut rng = Rng::new(7);
        let n = 4000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 5.0, "mean {mean}");
        assert_eq!(dist.mean_s(), 50.0);
    }

    #[test]
    fn weibull_mean_targets_mtbf() {
        for shape in [0.7, 1.0, 1.5] {
            let h = ComponentHazard::weibull(120.0, shape, 1.0, 0.5);
            assert!(
                (h.dist.mean_s() - 120.0).abs() < 1e-6,
                "shape {shape}: {}",
                h.dist.mean_s()
            );
            let mut rng = Rng::new(11);
            let n = 4000;
            let mean = (0..n).map(|_| h.dist.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((mean - 120.0).abs() < 15.0, "shape {shape}: sampled {mean}");
        }
    }

    #[test]
    fn gamma_hits_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sampled_schedules_are_seed_deterministic() {
        let c = cluster();
        let p = FleetProfile::from_node_rate(1.0).scale_time(1.0 / SECS_PER_DAY * 40.0);
        let a = p.sample_schedule(&c, 20.0, 42).unwrap();
        let b = p.sample_schedule(&c, 20.0, 42).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), b.events());
        let other = p.sample_schedule(&c, 20.0, 43).unwrap();
        assert_ne!(a.digest(), other.digest());
    }

    #[test]
    fn component_streams_are_independent() {
        // Disabling one hazard class must not shift another's samples.
        let c = cluster();
        let full = FleetProfile::from_node_rate(1.0).scale_time(40.0 / SECS_PER_DAY);
        let gpu_only = FleetProfile {
            gpu: full.gpu,
            ..FleetProfile::healthy()
        };
        let full_s = full.sample_schedule(&c, 20.0, 9).unwrap();
        let gpu_s = gpu_only.sample_schedule(&c, 20.0, 9).unwrap();
        let gpu_events = |s: &FaultSchedule| {
            s.events()
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        FaultKind::SlowResource { .. } | FaultKind::RestoreResource { .. }
                    )
                })
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(gpu_events(&full_s), gpu_events(&gpu_s));
        assert!(!gpu_events(&gpu_s).is_empty());
    }

    #[test]
    fn windows_never_overlap_and_respect_horizon() {
        let h = ComponentHazard::exponential(2.0, 1.5, 0.5);
        let mut rng = Rng::new(3);
        let ws = windows(&h, 30.0, &mut rng);
        assert!(!ws.is_empty());
        let mut last_end = 0.0;
        for (start, end) in ws {
            assert!(start >= last_end, "windows overlap");
            assert!(end <= 30.0 + 1e-9, "window past horizon");
            assert!(end >= start);
            last_end = end;
        }
    }

    #[test]
    fn node_loss_is_capped_at_one_per_node() {
        let c = cluster();
        // MTBF far below the horizon: an uncapped renewal would emit many.
        let p = FleetProfile::node_only(0.5);
        let s = p.sample_schedule(&c, 100.0, 5).unwrap();
        let losses = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeLoss { .. }))
            .count();
        assert_eq!(losses, c.spec().nodes);
    }

    #[test]
    fn event_counts_track_the_configured_rate() {
        let c = cluster();
        let horizon = 200.0;
        let p = FleetProfile {
            gpu: Some(ComponentHazard::exponential(20.0, 1.0, 0.5)),
            ..FleetProfile::healthy()
        };
        // 8 GPUs × 200 s / (20 s MTBF + 1 s MTTR) ≈ 76 windows ⇒ ~152
        // events. Average over seeds and ask for ±30%.
        let expected = p.expected_events(c.spec().nodes, c.spec().gpus_per_node, horizon);
        let mut total = 0usize;
        let seeds = 8;
        for seed in 0..seeds {
            total += p.sample_schedule(&c, horizon, seed).unwrap().len();
        }
        let mean = total as f64 / seeds as f64;
        assert!(
            (mean - expected).abs() < expected * 0.3,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn young_daly_formulas() {
        // τ_young = √(2·C·M).
        assert!((young_interval_s(10.0, 7200.0) - 379.473).abs() < 0.01);
        // Daly ≈ Young − C when C ≪ M.
        let daly = daly_interval_s(10.0, 7200.0);
        assert!((daly - (379.473 * (1.0 + 0.02635 / 3.0 + 0.000694 / 9.0) - 10.0)).abs() < 0.5);
        // Degenerate inputs never checkpoint.
        assert_eq!(young_interval_s(0.0, 100.0), f64::INFINITY);
        assert_eq!(daly_interval_s(1.0, f64::INFINITY), f64::INFINITY);
        // C ≥ 2M pins τ to M.
        assert_eq!(daly_interval_s(50.0, 10.0), 10.0);
        // The analytic waste is minimized near τ_young.
        let c = 0.1;
        let m = 8.0;
        let opt = young_interval_s(c, m);
        let w = |tau: f64| waste_fraction(c, tau, m, 0.0);
        assert!(w(opt) < w(opt / 2.0));
        assert!(w(opt) < w(opt * 2.0));
    }

    #[test]
    fn interval_iters_rounds_and_clamps() {
        assert_eq!(interval_iters(10.0, 3.0), 3);
        assert_eq!(interval_iters(0.1, 3.0), 1);
        assert_eq!(interval_iters(f64::INFINITY, 3.0), 1);
        assert_eq!(interval_iters(10.0, 0.0), 1);
    }

    #[test]
    fn ensemble_stats_order_statistics() {
        let s = EnsembleStats::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(s.p50, 3.0); // nearest rank on 4 samples
        assert_eq!(EnsembleStats::from_samples(&[]), EnsembleStats::default());
    }

    #[test]
    fn healthy_profile_samples_empty_schedules() {
        let c = cluster();
        let s = FleetProfile::healthy()
            .sample_schedule(&c, 10.0, 1)
            .unwrap();
        assert!(s.is_empty());
        assert_eq!(FleetProfile::healthy().fatal_mtbf_s(2), None);
    }

    #[test]
    fn bad_horizon_is_rejected() {
        let c = cluster();
        for h in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                FleetProfile::node_only(10.0).sample_schedule(&c, h, 0),
                Err(CoreError::BadScenario(_))
            ));
        }
    }

    #[test]
    fn effective_mtbf_round_trips_through_the_cap() {
        // Inverting the one-loss cap and measuring it back is identity.
        // (The target must sit above the horizon/n floor — the cap bounds
        // expected losses at n, so 12 s is reachable even at one node.)
        let target = 12.0;
        let horizon = 10.0;
        for nodes in [1, 2, 4] {
            let m_node = FleetProfile::node_mtbf_for_effective(nodes, horizon, target).unwrap();
            let p = FleetProfile::node_only(m_node);
            let eff = p.effective_fatal_mtbf_s(nodes, horizon).unwrap();
            assert!((eff - target).abs() < 1e-9, "nodes {nodes}: eff {eff}");
            // The capped process is always rarer than the raw renewal
            // rate implies, so the effective MTBF exceeds mean/n.
            assert!(eff >= p.fatal_mtbf_s(nodes).unwrap());
        }
        // Unreachable targets (expected losses would exceed n) are None.
        assert!(FleetProfile::node_mtbf_for_effective(1, 10.0, 5.0).is_none());
        // The long-horizon limit recovers the uncapped system MTBF.
        let p = FleetProfile::node_only(1000.0);
        let eff = p.effective_fatal_mtbf_s(2, 1.0).unwrap();
        assert!((eff - 500.0).abs() / 500.0 < 1e-3, "eff {eff}");
    }

    #[test]
    fn from_node_rate_splits_the_rate() {
        let p = FleetProfile::from_node_rate(2.0);
        // 40% of 2/day fatal ⇒ MTBF = 86400 / 0.8.
        let m = p.node.unwrap().dist.mean_s();
        assert!((m - SECS_PER_DAY / 0.8).abs() < 1e-6);
        // System fatal MTBF divides by node count.
        assert!((p.fatal_mtbf_s(4).unwrap() - m / 4.0).abs() < 1e-6);
        assert!(p.digest() != FleetProfile::from_node_rate(1.0).digest());
    }
}
