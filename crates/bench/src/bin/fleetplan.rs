//! `fleetplan` — resilience-economics search: rank (strategy ×
//! placement × checkpoint interval) by dollars-to-train under a fleet
//! failure rate (the CLI front end of [`zerosim_core::fleet_search`]).
//!
//! Usage:
//!
//! ```text
//! fleetplan [--topology SPEC] [--model B | --model wide:B] [--rate L]
//!           [--days T] [--tokens N] [--workers N] [--top N]
//!           [--samples N] [--json] [--bench PATH]
//! ```
//!
//! * `--topology SPEC` — the fleet shape: `paper` (default), `flat:<nodes>`,
//!   `fat-tree:<racks>x<nodes_per_rack>:<oversub>`, or
//!   `pods:<pods>x<islands>x<gpus>:<pod_oversub>:<spine_oversub>`.
//! * `--model B` — paper-shaped model of `B` billion parameters;
//!   `--model wide:B` uses the fixed-depth wide shape.
//! * `--rate L` — aggregate failures per node per day (default 0.05);
//!   `0` reduces the ranking to healthy cost-to-train.
//! * `--days T` — training deadline; configurations that cannot finish
//!   in `T` days rank last and are flagged.
//! * `--tokens N` — training tokens (default Chinchilla 20/parameter).
//! * `--workers N` — simulation fan-out; results are byte-identical at
//!   any width (only wall-clock changes).
//! * `--top N` — placements costed in full from the throughput ranking
//!   (default 4).
//! * `--samples N` — Monte-Carlo samples per Young/Daly validation
//!   ensemble in the `--bench` scorecard (default 32).
//! * `--json` — machine-readable report instead of text.
//! * `--bench PATH` — also write a `BENCH_fleet.json` scorecard: the
//!   costed ranking plus the Young/Daly bracket validation on the three
//!   golden configurations, with width-invariant digests.
//!
//! Exit status: 0 on success, 1 when the search fails, 2 on usage errors.

use std::time::Instant;

use zerosim_bench::experiments::fleet::{golden_brackets, ENSEMBLE_SEED};
use zerosim_core::{fleet_search, FleetCostConfig, FleetReport, YoungDalyBracket};
use zerosim_hw::TopologySpec;
use zerosim_model::GptConfig;
use zerosim_testkit::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: fleetplan [--topology SPEC] [--model B|wide:B] [--rate L] [--days T] \
         [--tokens N] [--workers N] [--top N] [--samples N] [--json] [--bench PATH]"
    );
    eprintln!("topologies: paper | flat:<nodes> | fat-tree:<racks>x<npr>:<over> |");
    eprintln!("            pods:<pods>x<islands>x<gpus>:<pod_over>:<spine_over>");
    std::process::exit(2);
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs an argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn parse_or_exit<T: std::str::FromStr>(raw: Option<String>, flag: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match raw {
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{flag}: {e}");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

fn parse_model(raw: &str) -> GptConfig {
    let (wide, digits) = match raw.strip_prefix("wide:") {
        Some(rest) => (true, rest),
        None => (false, raw),
    };
    let billions: f64 = match digits.parse() {
        Ok(b) if b > 0.0 => b,
        _ => {
            eprintln!("--model: expected a positive size in billions, got {raw:?}");
            std::process::exit(2);
        }
    };
    if wide {
        GptConfig::wide_model_with_params(billions)
    } else {
        GptConfig::paper_model_with_params(billions)
    }
}

fn report_json(report: &FleetReport) -> Json {
    let candidates: Vec<Json> = report
        .candidates
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("strategy".into(), Json::Str(c.strategy_name.clone())),
                ("placement".into(), Json::Str(c.placement.clone())),
                ("throughput_tflops".into(), Json::Num(c.throughput_tflops)),
                ("ckpt_cost_s".into(), Json::Num(c.ckpt_cost_s)),
                ("interval_s".into(), Json::Num(c.interval_s)),
                ("interval_iters".into(), Json::Num(c.interval_iters as f64)),
                ("waste_fraction".into(), Json::Num(c.waste_fraction)),
                ("goodput_tflops".into(), Json::Num(c.goodput_tflops)),
                ("train_days".into(), Json::Num(c.train_days)),
                ("capital_usd".into(), Json::Num(c.capital_usd)),
                ("energy_usd".into(), Json::Num(c.energy_usd)),
                ("wear_usd".into(), Json::Num(c.wear_usd)),
                ("dollars_to_train".into(), Json::Num(c.dollars_to_train)),
                ("feasible".into(), Json::Bool(c.feasible)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("topology".into(), Json::Str(report.topology.clone())),
        (
            "model_billions".into(),
            Json::Num(report.model_params / 1e9),
        ),
        (
            "rate_per_node_day".into(),
            Json::Num(report.rate_per_node_day),
        ),
        ("tokens".into(), Json::Num(report.tokens)),
        (
            "deadline_days".into(),
            report.deadline_days.map_or(Json::Null, Json::Num),
        ),
        (
            "search_digest".into(),
            Json::Str(format!("{:016x}", report.search_digest)),
        ),
        (
            "digest".into(),
            Json::Str(format!("{:016x}", report.digest())),
        ),
        ("candidates".into(), Json::Arr(candidates)),
    ])
}

fn bracket_json(name: &str, b: &YoungDalyBracket) -> Json {
    let point = |p: &zerosim_core::BracketPoint| {
        Json::Obj(vec![
            ("interval_iters".into(), Json::Num(p.interval_iters as f64)),
            (
                "mean_goodput_tflops".into(),
                Json::Num(p.mean_goodput_tflops),
            ),
            ("failed".into(), Json::Num(p.failed as f64)),
            ("digest".into(), Json::Str(format!("{:016x}", p.digest))),
        ])
    };
    Json::Obj(vec![
        ("config".into(), Json::Str(name.into())),
        ("ckpt_cost_s".into(), Json::Num(b.ckpt_cost_s)),
        ("mtbf_s".into(), Json::Num(b.mtbf_s)),
        ("interval_s".into(), Json::Num(b.interval_s)),
        ("half".into(), point(&b.half)),
        ("opt".into(), point(&b.opt)),
        ("double".into(), point(&b.double)),
        ("yd_win".into(), Json::Bool(b.yd_wins())),
        ("digest".into(), Json::Str(format!("{:016x}", b.digest()))),
    ])
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut json = false;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        json = true;
    }
    let topology = match take_value(&mut args, "--topology") {
        Some(raw) => match TopologySpec::parse(&raw) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--topology {raw}: {e}");
                std::process::exit(2);
            }
        },
        None => TopologySpec::default(),
    };
    let model = parse_model(&take_value(&mut args, "--model").unwrap_or_else(|| "1.4".into()));
    let rate: f64 = parse_or_exit(take_value(&mut args, "--rate"), "--rate", 0.05);
    if !(rate.is_finite() && rate >= 0.0) {
        eprintln!("--rate: expected a non-negative failure rate, got {rate}");
        std::process::exit(2);
    }
    let days: Option<f64> =
        take_value(&mut args, "--days").map(|raw| parse_or_exit(Some(raw), "--days", f64::NAN));
    let tokens: Option<f64> =
        take_value(&mut args, "--tokens").map(|raw| parse_or_exit(Some(raw), "--tokens", f64::NAN));
    let workers: usize = parse_or_exit(take_value(&mut args, "--workers"), "--workers", 1);
    let top: usize = parse_or_exit(take_value(&mut args, "--top"), "--top", 4);
    let samples: usize = parse_or_exit(take_value(&mut args, "--samples"), "--samples", 32);
    let bench_path = take_value(&mut args, "--bench");
    if !args.is_empty() {
        eprintln!("unexpected arguments: {args:?}");
        usage();
    }

    let mut cfg = FleetCostConfig::new(topology, model, rate)
        .with_workers(workers)
        .with_top(top);
    cfg.deadline_days = days;
    cfg.tokens = tokens;
    let t0 = Instant::now();
    let report = match fleet_search(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleetplan: {e}");
            std::process::exit(1);
        }
    };
    let wall_secs = t0.elapsed().as_secs_f64();

    if json {
        println!("{}", report_json(&report).render());
    } else {
        print!("{}", report.render_text());
        eprintln!("[search completed in {wall_secs:.2}s at {workers} worker(s)]");
    }
    if let Some(path) = bench_path {
        // The scorecard adds the Young/Daly validation brackets on the
        // three golden configurations — the expensive Monte-Carlo stage,
        // run only when a scorecard is requested.
        let brackets = golden_brackets(samples, workers);
        let mut ensemble_digest = 0x424e_4348u64; // "BNCH"
        for (_, b) in &brackets {
            ensemble_digest = ensemble_digest.rotate_left(17) ^ b.digest();
        }
        let scorecard = Json::Obj(vec![
            ("report".into(), report_json(&report)),
            (
                "brackets".into(),
                Json::Arr(
                    brackets
                        .iter()
                        .map(|(name, b)| bracket_json(name, b))
                        .collect(),
                ),
            ),
            ("samples".into(), Json::Num(samples as f64)),
            ("seed".into(), Json::Num(ENSEMBLE_SEED as f64)),
            (
                "ensemble_digest".into(),
                Json::Str(format!("{ensemble_digest:016x}")),
            ),
            ("wall_secs".into(), Json::Num(wall_secs)),
        ]);
        std::fs::write(&path, scorecard.render()).expect("write bench scorecard");
        eprintln!("[scorecard written to {path}]");
    }
}
