//! Cross-crate integration tests: conservation laws and consistency
//! properties of full characterization runs.
//!
//! Triage note (hermetic-build PR): the ROADMAP's "seed tests failing"
//! was the workspace failing to *resolve registry dependencies* — the
//! suite below never compiled. With the in-house `zerosim-testkit`
//! substrate the workspace builds offline and every test in this file
//! passes unmodified against the paper's tables/figures; no expectation
//! needed correction.

use zerosim_core::{profile_tracks, RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

fn run(strategy: &Strategy, billions: f64, nodes: usize) -> zerosim_core::TrainingReport {
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let opts = if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    };
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::default()
    };
    sim.run(
        &strategy.clone(),
        &GptConfig::paper_model_with_params(billions),
        &opts,
        &cfg,
    )
    .unwrap()
}

#[test]
fn single_node_runs_never_touch_internode_or_nvme_links() {
    for strategy in [
        Strategy::Ddp,
        Strategy::Megatron { tp: 4, pp: 1 },
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
    ] {
        let report = run(&strategy, 1.4, 1);
        for class in [LinkClass::Roce, LinkClass::PcieNic, LinkClass::PcieNvme] {
            let s = report.bandwidth.stats(0, class);
            assert_eq!(s.peak, 0.0, "{}: {class} should be idle", report.strategy);
        }
    }
}

#[test]
fn roce_traffic_is_symmetric_across_nodes() {
    for strategy in [
        Strategy::Ddp,
        Strategy::Zero {
            stage: ZeroStage::Two,
        },
    ] {
        let report = run(&strategy, 1.4, 2);
        let a = report.bandwidth.stats(0, LinkClass::Roce).avg;
        let b = report.bandwidth.stats(1, LinkClass::Roce).avg;
        assert!(a > 0.0);
        assert!(
            (a - b).abs() / a < 0.05,
            "{}: node0 {a:.3e} vs node1 {b:.3e}",
            report.strategy
        );
    }
}

#[test]
fn throughput_below_hardware_peak() {
    for (strategy, nodes) in [
        (Strategy::Ddp, 1usize),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            2,
        ),
    ] {
        let report = run(&strategy, 1.4, nodes);
        let peak = 312e12 * (4 * nodes) as f64;
        assert!(report.throughput_flops() < peak);
        assert!(report.throughput_flops() > 0.05 * peak);
    }
}

#[test]
fn bigger_models_take_longer_but_throughput_rises() {
    let small = run(
        &Strategy::Zero {
            stage: ZeroStage::Two,
        },
        0.7,
        1,
    );
    let large = run(
        &Strategy::Zero {
            stage: ZeroStage::Two,
        },
        2.9,
        1,
    );
    assert!(large.iter_time > small.iter_time);
    // Table V trend: throughput grows with model size (overheads amortize).
    assert!(large.throughput_flops() > small.throughput_flops());
}

#[test]
fn spans_cover_every_participating_gpu() {
    let report = run(&Strategy::Ddp, 1.4, 2);
    let profiles = profile_tracks(&report.spans);
    let gpu_tracks: Vec<u32> = profiles
        .iter()
        .map(|p| p.track)
        .filter(|t| *t < 8)
        .collect();
    assert_eq!(
        gpu_tracks.len(),
        8,
        "all 8 GPUs must appear on the timeline"
    );
    for p in profiles.iter().filter(|p| p.track < 8) {
        assert!(p.label_time("gemm") > zerosim_simkit::SimTime::ZERO);
    }
}

#[test]
fn memory_reports_are_internally_consistent() {
    let report = run(
        &Strategy::Zero {
            stage: ZeroStage::Three,
        },
        1.4,
        1,
    );
    let m = &report.memory;
    assert!(m.total_gpu_bytes >= m.per_gpu_bytes);
    assert!((m.total() - (m.total_gpu_bytes + m.total_cpu_bytes + m.nvme_bytes)).abs() < 1.0);
    let breakdown: f64 = m.gpu_breakdown.iter().map(|(_, b)| b).sum();
    assert!(
        (breakdown - m.per_gpu_bytes).abs() < 1.0,
        "breakdown {breakdown} vs per-gpu {}",
        m.per_gpu_bytes
    );
}

#[test]
fn warmup_does_not_change_measured_throughput_much() {
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = TrainOptions::single_node();
    let quick = sim
        .run(&Strategy::Ddp, &model, &opts, &RunConfig::quick())
        .unwrap()
        .throughput_flops();
    let mut sim2 = TrainingSim::new(ClusterSpec::default()).unwrap();
    let thorough = sim2
        .run(
            &Strategy::Ddp,
            &model,
            &opts,
            &RunConfig {
                warmup_iters: 2,
                measure_iters: 5,
                ..RunConfig::default()
            },
        )
        .unwrap()
        .throughput_flops();
    let ratio = quick / thorough;
    assert!((0.95..1.05).contains(&ratio), "quick/thorough = {ratio:.3}");
}

#[test]
fn facade_reexports_compile() {
    // The root crate re-exports the characterization engine.
    let _ = zerosim::core::TrainingSim::new(ClusterSpec::default()).unwrap();
}

#[test]
fn gradient_accumulation_amortizes_communication() {
    // Four micro-steps, one sync: dual-node DDP should get markedly better
    // aggregate throughput than syncing every step.
    let model = GptConfig::paper_model_with_params(1.4);
    let tput = |accum: usize| {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = TrainOptions::dual_node().with_grad_accum(accum);
        sim.run(&Strategy::Ddp, &model, &opts, &RunConfig::quick())
            .unwrap()
            .throughput_flops()
    };
    let plain = tput(1);
    let accum4 = tput(4);
    assert!(
        accum4 > 1.05 * plain,
        "accum {accum4:.3e} vs plain {plain:.3e}"
    );
    // And the single-node case barely changes (comm was already cheap).
    let single = |accum: usize| {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = TrainOptions::single_node().with_grad_accum(accum);
        sim.run(&Strategy::Ddp, &model, &opts, &RunConfig::quick())
            .unwrap()
            .throughput_flops()
    };
    let s1 = single(1);
    let s4 = single(4);
    // Accumulation also amortizes the fixed iteration overhead and the
    // optimizer step, so some single-node gain is expected — just much
    // less than what slow inter-node fabric would make it.
    let ratio = s4 / s1;
    assert!((0.95..1.45).contains(&ratio), "single-node ratio {ratio}");
}

#[test]
fn zero3_reduces_every_micro_step() {
    // With partitioned gradients the reduce-scatter cannot be deferred;
    // accumulation therefore does not shrink ZeRO-3's RoCE volume per
    // token the way it does DDP's.
    let model = GptConfig::paper_model_with_params(1.4);
    let roce_per_token = |accum: usize| {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = TrainOptions::dual_node().with_grad_accum(accum);
        let r = sim
            .run(
                &Strategy::Zero {
                    stage: ZeroStage::Three,
                },
                &model,
                &opts,
                &RunConfig::quick(),
            )
            .unwrap();
        r.bandwidth.stats(0, LinkClass::Roce).avg * r.iter_time.as_secs() / r.tokens_per_iteration
    };
    let plain = roce_per_token(1);
    let accum = roce_per_token(4);
    // Gather traffic scales with micro-steps; per-token volume stays high
    // (within 40% of the non-accumulated run, vs DDP's ~4x reduction).
    assert!(
        accum > 0.6 * plain,
        "z3 accum {accum:.3e} vs plain {plain:.3e}"
    );
}
