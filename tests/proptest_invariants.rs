//! Property-based tests over the simulation kernel and the domain layers.
//!
//! Ported from `proptest` to the in-house `zerosim-testkit` harness so the
//! workspace tests hermetically (no registry access). Semantics of every
//! property are unchanged; all now run ≥ 64 cases (the seed suite ran some
//! at 16–32). Tune with `ZEROSIM_PT_CASES` / replay with `ZEROSIM_PT_SEED`.

use zerosim_core::max_model_size;
use zerosim_hw::{Cluster, ClusterSpec, GpuId, MemLoc, SocketId};
use zerosim_model::GptConfig;
use zerosim_simkit::{
    BandwidthRecorder, BandwidthStats, DagBuilder, DagEngine, EngineMode, FlowNet, FlowObserver,
    LinkId, NullObserver, ResourceId, SimTime, TokenBucket,
};
use zerosim_strategies::{Calibration, Strategy, TrainOptions, ZeroStage};
use zerosim_testkit::domain::{flow_paths, link_caps};
use zerosim_testkit::gen::{f64_range, tuple2, tuple3, u64_range, usize_range, vec_of};
use zerosim_testkit::{prop, prop_assert, prop_assert_eq};

// ---------- flow network ----------

prop! {
    /// Max-min fair rates never exceed any crossed link's capacity, and
    /// every flow gets a positive rate.
    #[cases(64)]
    fn maxmin_rates_respect_capacities(
        caps in link_caps(2, 5),
        flows in flow_paths(6, 1, 7),
    ) {
        let mut net = FlowNet::new();
        let links: Vec<LinkId> = caps
            .iter()
            .enumerate()
            .map(|(i, c)| net.add_link(format!("l{i}"), *c))
            .collect();
        let mut ids = Vec::new();
        for (route_idx, bytes) in &flows {
            let mut route: Vec<LinkId> = route_idx
                .iter()
                .map(|i| links[i % links.len()])
                .collect();
            route.dedup();
            ids.push((net.start_flow(&route, *bytes).unwrap(), route));
        }
        // Per-flow rates positive.
        let rates: Vec<f64> = ids
            .iter()
            .map(|(id, _)| net.flow_rate(*id).unwrap())
            .collect();
        for r in &rates {
            prop_assert!(*r > 0.0);
        }
        // Per-link aggregate within capacity (small numerical slack).
        for (li, link) in links.iter().enumerate() {
            let total: f64 = ids
                .iter()
                .zip(&rates)
                .filter(|((_, route), _)| route.contains(link))
                .map(|(_, r)| *r)
                .sum();
            prop_assert!(
                total <= caps[li] * (1.0 + 1e-9) + 1e-6,
                "link {li}: {total} > {}",
                caps[li]
            );
        }
    }

    /// Every byte put into the network comes out: the recorder total per
    /// link equals the flow volume times the number of times the flow
    /// crosses that link.
    #[cases(64)]
    fn bytes_are_conserved(bytes in vec_of(f64_range(1.0, 1e8), 1, 5)) {
        let mut net = FlowNet::new();
        let a = net.add_link("a", 1e7);
        let b = net.add_link("b", 2e7);
        for v in &bytes {
            net.start_flow(&[a, b], *v).unwrap();
        }
        let mut rec = BandwidthRecorder::new(SimTime::from_ms(10.0));
        net.drain(&mut rec).unwrap();
        let total: f64 = bytes.iter().sum();
        prop_assert!((rec.total_bytes(a) - total).abs() < total * 1e-6 + 1.0);
        prop_assert!((rec.total_bytes(b) - total).abs() < total * 1e-6 + 1.0);
    }

    /// Completion time is monotone in flow size.
    #[cases(64)]
    fn drain_time_monotone_in_bytes(
        size in f64_range(1.0, 1e9),
        extra in f64_range(1.0, 1e9),
    ) {
        let time_for = |v: f64| {
            let mut net = FlowNet::new();
            let l = net.add_link("l", 1e8);
            net.start_flow(&[l], v).unwrap();
            net.drain(&mut NullObserver).unwrap()
        };
        prop_assert!(time_for(size + extra) >= time_for(size));
    }

    /// The incremental dirty-component solver is bit-identical to a full
    /// recompute under random interleavings of flow arrivals, completions,
    /// cancellations, and link fault events on random topologies.
    #[cases(64)]
    fn incremental_solver_matches_full_recompute(
        caps in link_caps(2, 8),
        ops in vec_of(
            tuple3(usize_range(0, 6), usize_range(0, 9999), f64_range(0.1, 1e9)),
            4,
            40,
        ),
    ) {
        let mut inc = FlowNet::new();
        let mut full = FlowNet::new();
        // Differential setup: the property itself is the oracle, so shadow
        // verification is off; `full` re-solves the world on every event.
        inc.set_shadow_verify(false);
        full.set_shadow_verify(false);
        full.set_full_solve(true);
        let n = caps.len();
        let links: Vec<LinkId> = caps
            .iter()
            .enumerate()
            .map(|(i, c)| {
                full.add_link(format!("l{i}"), *c);
                inc.add_link(format!("l{i}"), *c)
            })
            .collect();
        let mut active: Vec<zerosim_simkit::FlowId> = Vec::new();
        for (op, sel, value) in &ops {
            match op {
                // Flow arrival (40% of ops), occasionally rate-capped.
                0 | 1 => {
                    let mut route = vec![links[sel % n]];
                    if sel / n % 2 == 1 {
                        let second = (sel / 2) % n;
                        if second != sel % n {
                            route.push(links[second]);
                        }
                    }
                    let cap = if sel % 5 == 0 { *value * 0.25 } else { f64::INFINITY };
                    let a = inc.start_flow_capped(&route, *value, cap).unwrap();
                    let b = full.start_flow_capped(&route, *value, cap).unwrap();
                    prop_assert_eq!(a, b);
                    active.push(a);
                }
                // Advance to the next completion on both networks.
                2 => {
                    let da = inc.advance_to_next_event(SimTime::ZERO, &mut NullObserver);
                    let db = full.advance_to_next_event(SimTime::ZERO, &mut NullObserver);
                    match (da, db) {
                        (Some((ta, done_a)), Some((tb, done_b))) => {
                            prop_assert_eq!(ta.to_bits(), tb.to_bits());
                            prop_assert_eq!(&done_a, &done_b);
                            active.retain(|f| !done_a.contains(f));
                        }
                        (None, None) => {}
                        other => prop_assert!(false, "event divergence: {other:?}"),
                    }
                }
                // Cancellation.
                3 => {
                    if !active.is_empty() {
                        let victim = active.remove(sel % active.len());
                        prop_assert_eq!(inc.cancel_flow(victim), full.cancel_flow(victim));
                    }
                }
                // Fault events: degrade or restore a link.
                4 => {
                    let link = links[sel % n];
                    let factor = 0.05 + (*value % 1.0).abs() * 1.4 + 0.01;
                    inc.scale_link(link, factor).unwrap();
                    full.scale_link(link, factor).unwrap();
                }
                _ => {
                    let link = links[sel % n];
                    inc.restore_link(link).unwrap();
                    full.restore_link(link).unwrap();
                }
            }
            // After every event: all per-flow rates and per-link demands
            // are bitwise equal between the two solvers.
            for f in &active {
                let ra = inc.flow_rate(*f);
                let rb = full.flow_rate(*f);
                prop_assert!(
                    ra.map(f64::to_bits) == rb.map(f64::to_bits),
                    "flow {f:?}: incremental {ra:?} vs full {rb:?}"
                );
            }
            for (li, link) in links.iter().enumerate() {
                let da = inc.link_demand(*link);
                let db = full.link_demand(*link);
                prop_assert!(
                    da.to_bits() == db.to_bits(),
                    "link {li}: incremental {da} vs full {db}"
                );
            }
        }
        // The incremental solver must actually have been incremental: its
        // cumulative touched-links count never exceeds the full solver's.
        prop_assert!(
            inc.solver_stats().links_touched <= full.solver_stats().links_touched,
            "incremental touched more links than full: {:?} vs {:?}",
            inc.solver_stats(),
            full.solver_stats()
        );
    }

    /// Token buckets conserve tokens: serving below the sustained rate
    /// never drains them.
    #[cases(64)]
    fn token_bucket_never_drains_below_sustained(
        cap in f64_range(1.0, 1e10),
        sustained in f64_range(1.0, 1e9),
        dt in f64_range(0.001, 100.0),
    ) {
        let mut bucket = TokenBucket::new(cap, sustained * 2.0, sustained);
        bucket.advance(dt, sustained * 0.9);
        prop_assert!((bucket.tokens() - cap).abs() < 1e-3 * cap + 1e-6);
    }

    /// Bandwidth stats are ordered: avg ≤ p90 ≤ peak for non-negative
    /// sample sets.
    #[cases(64)]
    fn stats_ordering(samples in vec_of(f64_range(0.0, 1e12), 10, 99)) {
        let s = BandwidthStats::from_samples(&samples);
        prop_assert!(s.avg <= s.peak + 1e-9);
        prop_assert!(s.p90 <= s.peak + 1e-9);
    }
}

// ---------- engine ----------

prop! {
    /// A chain of compute tasks takes exactly the sum of durations;
    /// independent tasks on distinct resources take the max.
    #[cases(64)]
    fn engine_chain_vs_parallel(durations in vec_of(u64_range(1, 1_000_000), 2, 5)) {
        let mut net = FlowNet::new();
        let mut chain = DagBuilder::new();
        let mut prev = None;
        for d in &durations {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(chain.compute(
                ResourceId(0),
                SimTime::from_nanos(*d),
                "k",
                &deps,
            ));
        }
        let mut eng = DagEngine::new(vec![1]);
        let serial = eng
            .run(&mut net, &chain.build(), SimTime::ZERO, None)
            .unwrap()
            .makespan();
        prop_assert_eq!(serial.as_nanos(), durations.iter().sum::<u64>());

        let mut par = DagBuilder::new();
        for (i, d) in durations.iter().enumerate() {
            par.compute(ResourceId(i), SimTime::from_nanos(*d), "k", &[]);
        }
        let mut eng = DagEngine::new(vec![1; durations.len()]);
        let parallel = eng
            .run(&mut net, &par.build(), SimTime::ZERO, None)
            .unwrap()
            .makespan();
        prop_assert_eq!(parallel.as_nanos(), *durations.iter().max().unwrap());
    }

    /// The engine finishes every DAG made of valid tasks (no deadlocks),
    /// and the observer sees exactly the transfer volume.
    #[cases(64)]
    fn random_dags_complete(
        spec in vec_of(
            tuple3(usize_range(0, 3), u64_range(1, 1_000_000), f64_range(1.0, 1e7)),
            1,
            23,
        ),
    ) {
        let mut net = FlowNet::new();
        let l0 = net.add_link("l0", 1e8);
        let l1 = net.add_link("l1", 5e7);
        let mut b = DagBuilder::new();
        let mut all = Vec::new();
        let mut expected_bytes = 0.0;
        for (kind, dur, bytes) in &spec {
            // Depend on up to two random-ish earlier tasks.
            let deps: Vec<_> = all.iter().rev().take((*dur % 3) as usize).copied().collect();
            let t = match kind {
                0 => b.compute(ResourceId((*dur % 2) as usize), SimTime::from_nanos(*dur), "c", &deps),
                1 => {
                    expected_bytes += *bytes;
                    b.transfer(vec![l0, l1], *bytes, SimTime::from_nanos(*dur), "x", 0, &deps)
                }
                _ => b.delay(SimTime::from_nanos(*dur), &deps),
            };
            all.push(t);
        }
        struct Tally(f64);
        impl FlowObserver for Tally {
            fn on_transfer(&mut self, link: LinkId, _: SimTime, _: f64, bytes: f64) {
                if link.index() == 0 {
                    self.0 += bytes;
                }
            }
        }
        let mut tally = Tally(0.0);
        let mut eng = DagEngine::new(vec![1, 1]);
        let out = eng.run(&mut net, &b.build(), SimTime::ZERO, Some(&mut tally));
        prop_assert!(out.is_ok());
        prop_assert!((tally.0 - expected_bytes).abs() < expected_bytes * 1e-6 + 1.0);
    }
}

// ---------- domain layers ----------

prop! {
    /// Parameter counting is strictly monotone in depth and matches the
    /// closed-form layer delta.
    #[cases(64)]
    fn params_monotone_in_layers(layers in usize_range(1, 700)) {
        let a = GptConfig::paper_model(layers).num_params();
        let b = GptConfig::paper_model(layers + 1).num_params();
        let delta = b - a;
        prop_assert!((delta - GptConfig::paper_model(1).layer_params()).abs() < 1.0);
    }

    /// Memory plans grow with model size for every strategy.
    #[cases(64)]
    fn memory_plans_monotone(layers in usize_range(2, 300)) {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        for strategy in [
            Strategy::Ddp,
            Strategy::Megatron { tp: 4, pp: 1 },
            Strategy::Zero { stage: ZeroStage::Three },
        ] {
            let small = strategy
                .memory_plan(&cluster, &GptConfig::paper_model(layers), &opts, &calib)
                .unwrap();
            let large = strategy
                .memory_plan(
                    &cluster,
                    &GptConfig::paper_model(layers + 1),
                    &opts,
                    &calib,
                )
                .unwrap();
            prop_assert!(large.per_gpu_bytes > small.per_gpu_bytes);
        }
    }

    /// Capacity search is monotone in GPU memory: more HBM never fits a
    /// smaller model.
    #[cases(64)]
    fn capacity_monotone_in_gpu_memory(extra_gb in f64_range(0.0, 80.0)) {
        let base = ClusterSpec::default();
        let mut bigger = base.clone();
        bigger.mem.gpu_bytes += extra_gb * 1e9;
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let strategy = Strategy::Zero { stage: ZeroStage::Two };
        let a = max_model_size(&Cluster::new(base).unwrap(), &strategy, &opts, &calib)
            .unwrap()
            .params;
        let b = max_model_size(&Cluster::new(bigger).unwrap(), &strategy, &opts, &calib)
            .unwrap()
            .params;
        prop_assert!(b >= a);
    }

    /// Routing is total over same-node endpoints and never returns an
    /// empty path.
    #[cases(64)]
    fn routes_are_total_and_nonempty(
        a in usize_range(0, 4),
        b in usize_range(0, 4),
        s in usize_range(0, 2),
    ) {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let ga = GpuId { node: 0, gpu: a };
        let gb = GpuId { node: 0, gpu: b };
        if a != b {
            let r = cluster.route(MemLoc::Gpu(ga), MemLoc::Gpu(gb));
            prop_assert!(r.hops() >= 1);
        }
        let r = cluster.route(MemLoc::Gpu(ga), MemLoc::Cpu(SocketId { node: 0, socket: s }));
        prop_assert!(r.hops() >= 2);
        let r = cluster.route(
            MemLoc::Cpu(SocketId { node: 0, socket: s }),
            MemLoc::Nvme(zerosim_hw::NvmeId { node: 0, drive: 0 }),
        );
        prop_assert!(r.hops() >= 3);
    }
}

// ---------- collectives ----------

prop! {
    /// Stepwise and coalesced expansions move identical total bytes for
    /// every collective kind and buffer size.
    #[cases(64)]
    fn collective_emitters_agree_on_volume(
        bytes in f64_range(1e6, 2e9),
        kind_idx in usize_range(0, 3),
    ) {
        use zerosim_collectives::{
            emit_collective_coalesced, emit_collective_stepwise, CollectiveKind, CommGroup,
        };
        let kind = [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
        ][kind_idx];
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let group = CommGroup::new(cluster.node_gpus(0));
        let mut b1 = DagBuilder::new();
        emit_collective_stepwise(&mut b1, &cluster, &group, kind, bytes, &[], f64::INFINITY);
        let mut b2 = DagBuilder::new();
        emit_collective_coalesced(&mut b2, &cluster, &group, kind, bytes, &[], f64::INFINITY);
        let v1 = b1.build().total_transfer_bytes();
        let v2 = b2.build().total_transfer_bytes();
        prop_assert!((v1 - v2).abs() < 16.0, "{kind:?}: {v1} vs {v2}");
        // And the analytic per-rank volume matches.
        let expected = 4.0 * kind.bytes_sent_per_rank(4, bytes);
        prop_assert!((v1 - expected).abs() < 16.0, "{v1} vs analytic {expected}");
    }

    /// The hierarchical schedule crosses RoCE with at most the flat ring's
    /// inter-node volume, and completes with the same membership.
    #[cases(64)]
    fn hierarchical_crosses_less_roce_than_flat(bytes in f64_range(3e8, 4e9)) {
        use zerosim_collectives::{
            emit_collective_hierarchical, emit_collective_stepwise, CollectiveKind, CommGroup,
        };
        use zerosim_hw::LinkClass;
        let roce_bytes = |hierarchical: bool, bytes: f64| -> f64 {
            let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
            let group = CommGroup::world(&cluster);
            let mut b = DagBuilder::new();
            if hierarchical {
                emit_collective_hierarchical(
                    &mut b, &cluster, &group, CollectiveKind::AllReduce, bytes, &[],
                    f64::INFINITY,
                );
            } else {
                emit_collective_stepwise(
                    &mut b, &cluster, &group, CollectiveKind::AllReduce, bytes, &[],
                    f64::INFINITY,
                );
            }
            let dag = b.build();
            let mut rec = BandwidthRecorder::new(SimTime::from_ms(10.0));
            let mut eng = DagEngine::new(cluster.resource_slots());
            eng.run(cluster.net_mut(), &dag, SimTime::ZERO, Some(&mut rec))
                .unwrap();
            cluster
                .links(0, LinkClass::Roce)
                .iter()
                .map(|l| rec.total_bytes(*l))
                .sum()
        };
        let flat = roce_bytes(false, bytes);
        let hier = roce_bytes(true, bytes);
        prop_assert!(hier < flat, "hierarchical {hier} >= flat {flat}");
        // Hierarchical all-reduce moves S per node per direction => 2S on
        // node 0's tx+rx.
        prop_assert!((hier - 2.0 * bytes).abs() < 0.02 * bytes, "hier {hier} vs 2S {}", 2.0*bytes);
    }

    /// Collective completion time is monotone in the per-flow inter-node
    /// cap (a slower effective NCCL never finishes earlier).
    #[cases(64)]
    fn collective_time_monotone_in_cap(cap_gb in f64_range(1.0, 12.0)) {
        use zerosim_collectives::{emit_collective_capped, CollectiveKind, CommGroup};
        let time_with = |cap: f64| {
            let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
            let group = CommGroup::world(&cluster);
            let mut b = DagBuilder::new();
            emit_collective_capped(
                &mut b, &cluster, &group, CollectiveKind::AllGather, 1e9, &[], cap,
            );
            let dag = b.build();
            let mut eng = DagEngine::new(cluster.resource_slots());
            eng.run(cluster.net_mut(), &dag, SimTime::ZERO, None)
                .unwrap()
                .makespan()
                .as_secs()
        };
        let slow = time_with(cap_gb * 1e9 / 2.0);
        let fast = time_with(cap_gb * 1e9);
        prop_assert!(slow >= fast * 0.999, "slow {slow} < fast {fast}");
    }
}

// ---------- arena executor vs reference executor ----------

/// Shared generator shape for the executor properties: a random mixed DAG
/// of compute / transfer / delay tasks with random fan-in, built over one
/// network link. Returns the DAG and the number of transfer tasks.
fn mixed_random_dag(spec: &[(usize, u64, usize)], link: LinkId) -> (zerosim_simkit::Dag, usize) {
    let mut b = DagBuilder::new();
    let mut all = Vec::new();
    let mut transfers = 0;
    for (kind, dur, fan) in spec {
        let deps: Vec<_> = all.iter().rev().take(*fan).copied().collect();
        let t = match kind {
            0 => b.compute(
                ResourceId((*dur % 2) as usize),
                SimTime::from_nanos(*dur),
                "c",
                &deps,
            ),
            1 => {
                transfers += 1;
                b.transfer(vec![link], (*dur + 1) as f64, SimTime::ZERO, "x", 0, &deps)
            }
            _ => b.delay(SimTime::from_nanos(*dur), &deps),
        };
        all.push(t);
    }
    (b.build(), transfers)
}

prop! {
    /// The arena's batched ready-set updates preserve topological
    /// legality: on random mixed DAGs, no task finishes before any of its
    /// predecessors, and tasks with their own duration finish strictly
    /// after their latest predecessor by at least that duration.
    #[cases(64)]
    fn batched_ready_set_preserves_topological_order(
        spec in vec_of(
            tuple3(usize_range(0, 2), u64_range(1, 500_000), usize_range(0, 3)),
            2,
            40,
        ),
    ) {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1e8);
        let (dag, _) = mixed_random_dag(&spec, l);
        let mut eng = DagEngine::new(vec![2, 2]);
        eng.set_mode(EngineMode::Arena);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        for t in dag.task_ids() {
            for p in dag.preds(t) {
                prop_assert!(
                    out.task_finish[p.index()] <= out.task_finish[t.index()],
                    "task {t:?} finished before its predecessor {p:?}"
                );
            }
            // Delays never overlap their dependencies: the full duration
            // elapses after the last predecessor completes.
            if let (2, dur, _) = spec[t.index()] {
                let latest_pred = dag
                    .preds(t)
                    .iter()
                    .map(|p| out.task_finish[p.index()])
                    .max()
                    .unwrap_or(SimTime::ZERO);
                prop_assert_eq!(
                    out.task_finish[t.index()],
                    latest_pred + SimTime::from_nanos(dur)
                );
            }
        }
    }

    /// Event-count conservation: both executors retire exactly one
    /// completion per task and start exactly one flow per transfer, and
    /// their per-task finish times agree bitwise.
    #[cases(64)]
    fn event_counts_are_conserved_across_executors(
        spec in vec_of(
            tuple3(usize_range(0, 2), u64_range(1, 500_000), usize_range(0, 3)),
            2,
            40,
        ),
    ) {
        let run_mode = |mode: EngineMode| {
            let mut net = FlowNet::new();
            let l = net.add_link("l", 1e8);
            let (dag, transfers) = mixed_random_dag(&spec, l);
            let mut eng = DagEngine::new(vec![2, 2]);
            eng.set_mode(mode);
            let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
            (out, eng.stats(), dag.len(), transfers)
        };
        let (arena, arena_stats, n, transfers) = run_mode(EngineMode::Arena);
        let (reference, reference_stats, ..) = run_mode(EngineMode::Reference);
        prop_assert_eq!(arena_stats.tasks_finished, n as u64);
        prop_assert_eq!(reference_stats.tasks_finished, n as u64);
        prop_assert_eq!(arena_stats.flows_started, transfers as u64);
        prop_assert_eq!(reference_stats.flows_started, transfers as u64);
        prop_assert_eq!(&arena.task_finish, &reference.task_finish);
        prop_assert_eq!(arena.finished, reference.finished);
    }

    /// Arena reuse across replays never leaks stamped durations: a warm
    /// arena re-run after restamping behaves exactly like a cold engine on
    /// the restamped DAG, replays are bit-stable, and restamping back
    /// reproduces the original outcome.
    #[cases(64)]
    fn arena_reuse_across_replays_never_leaks_stamped_durations(
        pairs in vec_of(
            tuple2(u64_range(1, 1_000_000), u64_range(1, 1_000_000)),
            2,
            8,
        ),
    ) {
        let mut b = DagBuilder::new();
        let mut prev = None;
        let mut ids = Vec::new();
        for (d1, _) in &pairs {
            let deps: Vec<_> = prev.into_iter().collect();
            let t = b.compute(ResourceId(0), SimTime::from_nanos(*d1), "k", &deps);
            prev = Some(t);
            ids.push(t);
        }
        let mut dag = b.build();
        let mut net = FlowNet::new();
        let mut eng = DagEngine::new(vec![1]);
        eng.set_mode(EngineMode::Arena);
        let first = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        prop_assert_eq!(
            first.makespan().as_nanos(),
            pairs.iter().map(|(a, _)| *a).sum::<u64>()
        );
        // Restamp every duration; the warm engine (arena already ingested
        // the structure) must match a cold engine run exactly.
        for (t, (_, d2)) in ids.iter().zip(&pairs) {
            dag.set_compute_duration(*t, SimTime::from_nanos(*d2));
        }
        let warm = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        let replay = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        let mut cold_eng = DagEngine::new(vec![1]);
        cold_eng.set_mode(EngineMode::Arena);
        let cold = cold_eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        prop_assert_eq!(&warm.task_finish, &cold.task_finish);
        prop_assert_eq!(&replay.task_finish, &warm.task_finish);
        prop_assert_eq!(
            warm.makespan().as_nanos(),
            pairs.iter().map(|(_, b)| *b).sum::<u64>()
        );
        // Restamping back to the original durations reproduces the first
        // outcome bit-for-bit — nothing from the second stamping survives.
        for (t, (d1, _)) in ids.iter().zip(&pairs) {
            dag.set_compute_duration(*t, SimTime::from_nanos(*d1));
        }
        let back = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        prop_assert_eq!(&back.task_finish, &first.task_finish);
        // The warm runs really did take the reuse path.
        prop_assert!(
            eng.stats().arena_reuse_hits >= 3,
            "expected reuse hits, got {:?}",
            eng.stats()
        );
    }
}

// ---------- token-bucket links under the engine ----------

prop! {
    /// Random DAGs over a bucketed link always complete, conserve bytes,
    /// and never finish faster than the burst rate allows or slower than
    /// the sustained rate demands.
    #[cases(64)]
    fn bucketed_links_bound_completion_time(
        transfers in vec_of(f64_range(1e6, 5e9), 1, 5),
        cache in f64_range(1e8, 4e9),
    ) {
        let burst = 6e9;
        let sustained = 2e9;
        let mut net = FlowNet::new();
        let dev = net.add_bucketed_link("nvme", TokenBucket::new(cache, burst, sustained));
        let mut b = DagBuilder::new();
        let mut prev = None;
        let total: f64 = transfers.iter().sum();
        for bytes in &transfers {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.transfer(vec![dev], *bytes, SimTime::ZERO, "io", 0, &deps));
        }
        struct Tally(f64);
        impl FlowObserver for Tally {
            fn on_transfer(&mut self, _: LinkId, _: SimTime, _: f64, bytes: f64) {
                self.0 += bytes;
            }
        }
        let mut tally = Tally(0.0);
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run(&mut net, &b.build(), SimTime::ZERO, Some(&mut tally))
            .unwrap();
        let secs = out.makespan().as_secs();
        prop_assert!((tally.0 - total).abs() < total * 1e-6 + 8.0);
        // Bounds: can't beat the burst rate; can't be slower than
        // sustained (the cache only ever helps).
        prop_assert!(secs >= total / burst * 0.999, "{secs} vs {}", total / burst);
        prop_assert!(secs <= total / sustained * 1.001 + 1e-6);
    }
}
