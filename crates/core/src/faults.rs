//! Fault scenarios and the configuration of resilient runs.
//!
//! [`FaultScenario`] is the cluster-level vocabulary — "RoCE at 50%",
//! "GPU 3 is a straggler", "node 1 dies at t = 4 s" — compiled down to
//! the simkit [`FaultSchedule`] of raw link/resource events by resolving
//! link classes and GPU ids against the hardware model. [`FaultConfig`]
//! bundles a schedule with the checkpoint/restart machinery
//! ([`RecoveryPolicy`] + [`CheckpointSink`]) consumed by
//! [`crate::TrainingSim::run_resilient`].

use std::borrow::Cow;

use zerosim_hw::{Cluster, GpuId, LinkClass};
use zerosim_simkit::{FaultKind, FaultSchedule};
use zerosim_strategies::{CheckpointSink, RecoveryPolicy};

use crate::error::CoreError;

/// Everything a resilient run needs besides the training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// The timed fault events to inject.
    pub schedule: FaultSchedule,
    /// Checkpoint cadence and restart charging.
    pub policy: RecoveryPolicy,
    /// Where checkpoint snapshots land.
    pub sink: CheckpointSink,
}

impl FaultConfig {
    /// An empty schedule with no checkpointing: behaviourally identical
    /// to a plain [`crate::TrainingSim::run`].
    pub fn healthy() -> Self {
        FaultConfig {
            schedule: FaultSchedule::default(),
            policy: RecoveryPolicy::none(),
            sink: CheckpointSink::Dram,
        }
    }

    /// A schedule with no checkpointing (for faults that degrade but do
    /// not kill: link degradation, stragglers, NVMe stalls).
    pub fn without_checkpoints(schedule: FaultSchedule) -> Self {
        FaultConfig {
            schedule,
            policy: RecoveryPolicy::none(),
            sink: CheckpointSink::Dram,
        }
    }

    /// A full resilient configuration.
    pub fn new(schedule: FaultSchedule, policy: RecoveryPolicy, sink: CheckpointSink) -> Self {
        FaultConfig {
            schedule,
            policy,
            sink,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::healthy()
    }
}

/// A named cluster-level fault scenario, compiled against a [`Cluster`]
/// into raw simkit events. This is the vocabulary of the paper-style
/// fault matrix swept by `zerosim-bench`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultScenario {
    /// No faults.
    Healthy,
    /// Every link of `class` on `node` runs at `factor` × nominal from
    /// `at_s`, restored after `dur_s` (or for the rest of the run when
    /// `dur_s` is `None`).
    DegradeClass {
        /// Node whose links degrade.
        node: usize,
        /// Interconnect class (e.g. [`LinkClass::Roce`]).
        class: LinkClass,
        /// Fraction of nominal capacity in `(0, ∞)`.
        factor: f64,
        /// Onset, seconds.
        at_s: f64,
        /// Window length, seconds; `None` = permanent.
        dur_s: Option<f64>,
    },
    /// One GPU computes at `factor` × nominal speed from `at_s` onward.
    Straggler {
        /// The slow GPU.
        gpu: GpuId,
        /// Speed multiplier in `(0, 1]`.
        factor: f64,
        /// Onset, seconds.
        at_s: f64,
    },
    /// The NVMe devices on `node` stall to `factor` × nominal service
    /// rate for `dur_s` seconds (write-cache exhaustion / GC pause).
    NvmeStall {
        /// Node whose drives stall.
        node: usize,
        /// Fraction of nominal service rate.
        factor: f64,
        /// Onset, seconds.
        at_s: f64,
        /// Stall length, seconds.
        dur_s: f64,
    },
    /// `node` disappears at `at_s`; the engine aborts and the core layer
    /// restarts from the last checkpoint.
    NodeLoss {
        /// The lost node.
        node: usize,
        /// Failure time, seconds.
        at_s: f64,
    },
}

impl FaultScenario {
    /// Short display label for tables.
    ///
    /// Fixed scenarios borrow a static string; only the parameterized
    /// variants allocate, so ensemble sweeps that label thousands of
    /// healthy/loss samples stop churning the allocator.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            FaultScenario::Healthy => Cow::Borrowed("healthy"),
            FaultScenario::DegradeClass { class, factor, .. } => {
                Cow::Owned(format!("{class}@{:.0}%", factor * 100.0))
            }
            FaultScenario::Straggler { factor, .. } => {
                Cow::Owned(format!("straggler {factor:.1}x"))
            }
            FaultScenario::NvmeStall { .. } => Cow::Borrowed("nvme stall"),
            FaultScenario::NodeLoss { .. } => Cow::Borrowed("node loss"),
        }
    }

    /// Compiles the scenario against `cluster` into a seed-stamped
    /// [`FaultSchedule`] of raw link/resource events.
    ///
    /// # Panics
    /// Panics when the scenario does not resolve against the cluster (bad
    /// node/GPU index, non-physical factor, invalid times). Use
    /// [`FaultScenario::try_compile`] for scenarios built from external
    /// input.
    pub fn compile(&self, cluster: &Cluster, seed: u64) -> FaultSchedule {
        match self.try_compile(cluster, seed) {
            Ok(s) => s,
            Err(e) => panic!("FaultScenario::compile: {e}"),
        }
    }

    /// Fallible variant of [`FaultScenario::compile`]: validates node and
    /// GPU indices against the cluster shape and factors/times for
    /// physicality, returning [`CoreError::BadScenario`] instead of
    /// panicking or silently compiling to nothing.
    pub fn try_compile(&self, cluster: &Cluster, seed: u64) -> Result<FaultSchedule, CoreError> {
        let nodes = cluster.spec().nodes;
        let check_node = |node: usize| -> Result<(), CoreError> {
            if node >= nodes {
                return Err(CoreError::BadScenario(format!(
                    "node {node} out of range (cluster has {nodes} nodes)"
                )));
            }
            Ok(())
        };
        let check_factor = |factor: f64| -> Result<(), CoreError> {
            if !(factor.is_finite() && factor > 0.0) {
                return Err(CoreError::BadScenario(format!(
                    "factor must be finite and positive, got {factor}"
                )));
            }
            Ok(())
        };
        let mut s = FaultSchedule::new(seed);
        match self {
            FaultScenario::Healthy => {}
            FaultScenario::DegradeClass {
                node,
                class,
                factor,
                at_s,
                dur_s,
            } => {
                check_node(*node)?;
                check_factor(*factor)?;
                for &link in cluster.links(*node, *class) {
                    s = s.try_at(
                        *at_s,
                        FaultKind::ScaleLink {
                            link,
                            factor: *factor,
                        },
                    )?;
                    if let Some(dur) = dur_s {
                        s = s.try_at(*at_s + *dur, FaultKind::RestoreLink { link })?;
                    }
                }
            }
            FaultScenario::Straggler { gpu, factor, at_s } => {
                check_node(gpu.node)?;
                check_factor(*factor)?;
                let gpn = cluster.spec().gpus_per_node;
                if gpu.gpu >= gpn {
                    return Err(CoreError::BadScenario(format!(
                        "gpu {} out of range (node has {gpn} GPUs)",
                        gpu.gpu
                    )));
                }
                s = s.try_at(
                    *at_s,
                    FaultKind::SlowResource {
                        resource: cluster.gpu_resource(*gpu).0,
                        factor: *factor,
                    },
                )?;
            }
            FaultScenario::NvmeStall {
                node,
                factor,
                at_s,
                dur_s,
            } => {
                check_node(*node)?;
                check_factor(*factor)?;
                for &link in cluster.links(*node, LinkClass::NvmeDev) {
                    s = s.try_at(
                        *at_s,
                        FaultKind::ScaleLink {
                            link,
                            factor: *factor,
                        },
                    )?;
                    s = s.try_at(*at_s + *dur_s, FaultKind::RestoreLink { link })?;
                }
            }
            FaultScenario::NodeLoss { node, at_s } => {
                check_node(*node)?;
                s = s.try_at(*at_s, FaultKind::NodeLoss { node: *node })?;
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::default()).unwrap()
    }

    #[test]
    fn healthy_compiles_to_empty() {
        let c = cluster();
        let s = FaultScenario::Healthy.compile(&c, 7);
        assert!(s.is_empty());
        assert_eq!(s.seed(), 7);
        assert_eq!(FaultConfig::default(), FaultConfig::healthy());
    }

    #[test]
    fn degrade_class_emits_one_event_per_link() {
        let c = cluster();
        let links = c.links(0, LinkClass::Roce).len();
        assert!(links > 0);
        let windowed = FaultScenario::DegradeClass {
            node: 0,
            class: LinkClass::Roce,
            factor: 0.5,
            at_s: 1.0,
            dur_s: Some(2.0),
        }
        .compile(&c, 0);
        assert_eq!(windowed.len(), 2 * links);
        let permanent = FaultScenario::DegradeClass {
            node: 0,
            class: LinkClass::Roce,
            factor: 0.5,
            at_s: 1.0,
            dur_s: None,
        }
        .compile(&c, 0);
        assert_eq!(permanent.len(), links);
    }

    #[test]
    fn straggler_targets_the_gpu_resource() {
        let c = cluster();
        let gpu = GpuId { node: 0, gpu: 2 };
        let s = FaultScenario::Straggler {
            gpu,
            factor: 0.7,
            at_s: 0.5,
        }
        .compile(&c, 0);
        assert_eq!(s.len(), 1);
        match &s.events()[0].kind {
            FaultKind::SlowResource { resource, factor } => {
                assert_eq!(*resource, c.gpu_resource(gpu).0);
                assert_eq!(*factor, 0.7);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(FaultScenario::Healthy.label(), "healthy");
        assert!(FaultScenario::NodeLoss { node: 0, at_s: 1.0 }
            .label()
            .contains("node loss"));
        assert!(matches!(FaultScenario::Healthy.label(), Cow::Borrowed(_)));
    }

    #[test]
    fn try_compile_rejects_bad_scenarios() {
        let c = cluster();
        let nodes = c.spec().nodes;
        let bad_node = FaultScenario::NodeLoss {
            node: nodes,
            at_s: 1.0,
        };
        assert!(matches!(
            bad_node.try_compile(&c, 0),
            Err(CoreError::BadScenario(_))
        ));
        let bad_gpu = FaultScenario::Straggler {
            gpu: GpuId {
                node: 0,
                gpu: c.spec().gpus_per_node,
            },
            factor: 0.5,
            at_s: 0.0,
        };
        assert!(matches!(
            bad_gpu.try_compile(&c, 0),
            Err(CoreError::BadScenario(_))
        ));
        let bad_factor = FaultScenario::DegradeClass {
            node: 0,
            class: LinkClass::Roce,
            factor: 0.0,
            at_s: 0.0,
            dur_s: None,
        };
        assert!(matches!(
            bad_factor.try_compile(&c, 0),
            Err(CoreError::BadScenario(_))
        ));
        let bad_time = FaultScenario::NodeLoss {
            node: 0,
            at_s: -1.0,
        };
        assert!(matches!(
            bad_time.try_compile(&c, 0),
            Err(CoreError::BadScenario(_)) | Err(CoreError::Sim(_))
        ));
    }

    #[test]
    #[should_panic(expected = "FaultScenario::compile")]
    fn compile_panics_on_unknown_node() {
        let c = cluster();
        let nodes = c.spec().nodes;
        let _ = FaultScenario::NodeLoss {
            node: nodes + 3,
            at_s: 1.0,
        }
        .compile(&c, 0);
    }
}
