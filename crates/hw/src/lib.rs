//! `zerosim-hw` — the simulated hardware testbed.
//!
//! Models the paper's cluster (two Dell PowerEdge XE8545 nodes, Sec. III-A)
//! as a [`zerosim_simkit::FlowNet`]: per-socket DRAM, xGMI, PCIe links to
//! GPUs / NICs / NVMe drives, per-pair NVLink meshes, RoCE uplinks through
//! the SN3700 switch, token-bucket NVMe devices, and the virtual
//! SerDes-pair links of the EPYC I/O-die contention model (Sec. III-C4).
//!
//! The central type is [`Cluster`]: build one from a [`ClusterSpec`]
//! (defaults = Tables II/III), then ask it for [`Route`]s between
//! [`MemLoc`]s and feed those routes into DAG transfer tasks.
//!
//! ```
//! use zerosim_hw::{Cluster, ClusterSpec, MemLoc, GpuId, SocketId};
//!
//! # fn main() -> Result<(), String> {
//! let cluster = Cluster::new(ClusterSpec::default().with_nodes(1))?;
//! let route = cluster.route(
//!     MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
//!     MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
//! );
//! assert_eq!(route.hops(), 2); // PCIe + DRAM
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod error;
mod ids;
mod route;
mod spec;
mod topology;

pub use cluster::{Cluster, IoDir, NvmeVolume};
pub use error::HwError;
pub use ids::{GpuId, LinkClass, NicId, NodeId, NvmeId, SerdesSet, SocketId, VolumeId};
pub use route::{MemLoc, Route};
pub use spec::{
    ClusterSpec, FabricSpec, FabricTier, IodModel, LatencyModel, LinkBandwidths, MemoryCapacities,
    NvmeDeviceModel, NvmeDrivePlacement,
};
pub use topology::TopologySpec;
