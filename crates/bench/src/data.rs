//! Shared fixtures and runners for the experiment harness.

use std::sync::atomic::{AtomicUsize, Ordering};

use zerosim_core::{
    max_model_size, CapacityResult, RunConfig, ServeRunner, SweepRun, SweepRunner, SweepSpec,
    TrainingReport, TrainingSim,
};
use zerosim_hw::{ClusterSpec, NvmeDrivePlacement, NvmeId, VolumeId};
use zerosim_model::GptConfig;
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

/// Worker count used by [`runner`] (set once by the `repro` binary's
/// `--workers` flag; defaults to 1 = serial, fully deterministic either
/// way).
static SWEEP_WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker count used by every experiment sweep.
pub fn set_sweep_workers(workers: usize) {
    SWEEP_WORKERS.store(workers.max(1), Ordering::Relaxed);
}

/// The configured sweep worker count.
pub fn sweep_workers() -> usize {
    SWEEP_WORKERS.load(Ordering::Relaxed).max(1)
}

/// A sweep runner at the configured width.
pub fn runner() -> SweepRunner {
    SweepRunner::new(sweep_workers())
}

/// A serving runner at an explicit width (the `servesim` binary takes
/// its own `--workers` flag, so this does not read the sweep global).
pub fn serve_runner_with(workers: usize) -> ServeRunner {
    ServeRunner::new(workers)
}

/// Fans `specs` over [`runner`], panicking on configuration errors (the
/// experiment harness only sweeps configurations that are known to fit).
pub fn sweep(specs: Vec<SweepSpec>) -> Vec<SweepRun> {
    runner()
        .run_parallel(specs)
        .expect("experiment sweep configurations run")
}

/// A sweep spec mirroring [`run`]: default cluster, `strategy` at
/// `model` on `nodes` nodes (quick single-iteration measurement unless
/// `thorough`).
pub fn spec(
    label: impl Into<String>,
    strategy: Strategy,
    model: GptConfig,
    nodes: usize,
    thorough: bool,
) -> SweepSpec {
    let cfg = if thorough {
        RunConfig::default()
    } else {
        RunConfig::quick()
    };
    SweepSpec::new(label, strategy, model, opts(nodes)).with_run(cfg)
}

/// A fresh simulator over the paper's two-node cluster.
pub fn sim() -> TrainingSim {
    TrainingSim::new(ClusterSpec::default()).expect("default spec valid")
}

/// Options for `nodes` nodes with the paper's batch size.
pub fn opts(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

/// The five baseline configurations of Sec. IV, in figure order.
pub fn baselines(nodes: usize) -> Vec<(&'static str, Strategy)> {
    let tp = nodes * 4;
    vec![
        ("PyTorch DDP", Strategy::Ddp),
        ("Megatron-LM", Strategy::Megatron { tp, pp: 1 }),
        (
            "ZeRO-1",
            Strategy::Zero {
                stage: ZeroStage::One,
            },
        ),
        (
            "ZeRO-2",
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
        ),
        (
            "ZeRO-3",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
        ),
    ]
}

/// Capacity search for `strategy` on a fresh cluster.
pub fn capacity(strategy: &Strategy, nodes: usize) -> CapacityResult {
    let s = sim();
    max_model_size(s.cluster(), strategy, &opts(nodes), s.calibration())
        .expect("all paper strategies fit at least one layer")
}

/// Runs `strategy` at `model` and returns the report (quick
/// single-iteration measurement unless `thorough`).
pub fn run(strategy: &Strategy, model: &GptConfig, nodes: usize, thorough: bool) -> TrainingReport {
    let mut s = sim();
    let cfg = if thorough {
        RunConfig::default()
    } else {
        RunConfig::quick()
    };
    s.run(strategy, model, &opts(nodes), &cfg)
        .expect("configuration fits")
}

/// Runs `strategy` at its own capacity limit.
pub fn run_at_capacity(
    strategy: &Strategy,
    nodes: usize,
    thorough: bool,
) -> (CapacityResult, TrainingReport) {
    let cap = capacity(strategy, nodes);
    let model = GptConfig::paper_model(cap.num_layers);
    (cap, run(strategy, &model, nodes, thorough))
}

/// The NVMe data-placement configurations of Fig. 14 / Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeConfig {
    /// Single drive on socket 1.
    A,
    /// Two drives on socket 1, one RAID0 (the paper's default scratch).
    B,
    /// Two drives split across sockets, one RAID0 spanning both.
    C,
    /// Two drives split across sockets, no RAID (rank → local drive).
    D,
    /// Four drives (two per socket), one RAID0 spanning all.
    E,
    /// Four drives, two per-socket RAID0 volumes (rank → local volume).
    F,
    /// Four drives, no RAID (rank → local drive).
    G,
}

impl NvmeConfig {
    /// All seven configurations in paper order.
    pub const ALL: [NvmeConfig; 7] = [
        NvmeConfig::A,
        NvmeConfig::B,
        NvmeConfig::C,
        NvmeConfig::D,
        NvmeConfig::E,
        NvmeConfig::F,
        NvmeConfig::G,
    ];

    /// Configuration letter.
    pub fn letter(&self) -> char {
        match self {
            NvmeConfig::A => 'A',
            NvmeConfig::B => 'B',
            NvmeConfig::C => 'C',
            NvmeConfig::D => 'D',
            NvmeConfig::E => 'E',
            NvmeConfig::F => 'F',
            NvmeConfig::G => 'G',
        }
    }

    /// Scratch drive layout per node.
    pub fn layout(&self) -> Vec<NvmeDrivePlacement> {
        let s = |socket| NvmeDrivePlacement { socket };
        match self {
            NvmeConfig::A => vec![s(1)],
            NvmeConfig::B => vec![s(1), s(1)],
            NvmeConfig::C | NvmeConfig::D => vec![s(0), s(1)],
            NvmeConfig::E | NvmeConfig::F | NvmeConfig::G => vec![s(0), s(0), s(1), s(1)],
        }
    }

    /// The cluster spec for this configuration (default cluster with this
    /// config's scratch-drive layout).
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::default().with_nvme_layout(self.layout())
    }

    /// The volume member groups, in creation order, as plain data —
    /// creating them in this order yields `VolumeId(0), VolumeId(1), ...`
    /// on any cluster with this config's [`NvmeConfig::layout`].
    pub fn volume_groups(&self) -> Vec<Vec<NvmeId>> {
        let d = |drive| NvmeId { node: 0, drive };
        match self {
            NvmeConfig::A => vec![vec![d(0)]],
            NvmeConfig::B | NvmeConfig::C => vec![vec![d(0), d(1)]],
            NvmeConfig::D => vec![vec![d(0)], vec![d(1)]],
            NvmeConfig::E => vec![vec![d(0), d(1), d(2), d(3)]],
            NvmeConfig::F => vec![vec![d(0), d(1)], vec![d(2), d(3)]],
            NvmeConfig::G => (0..4).map(|i| vec![d(i)]).collect(),
        }
    }

    /// Rank → volume mapping respecting node topology where the config
    /// allows it (ranks 0,1 live on socket 0; 2,3 on socket 1). Indices
    /// refer to [`NvmeConfig::volume_groups`] creation order.
    pub fn placement(&self) -> InfinityPlacement {
        let v = VolumeId;
        let rank_volumes = match self {
            NvmeConfig::A | NvmeConfig::B | NvmeConfig::C | NvmeConfig::E => vec![v(0); 4],
            NvmeConfig::D | NvmeConfig::F => vec![v(0), v(0), v(1), v(1)],
            NvmeConfig::G => (0..4).map(v).collect(),
        };
        InfinityPlacement::new(rank_volumes)
    }

    /// Builds the simulator, volumes, and rank placement for this
    /// configuration (single-node training, ranks 0–3).
    pub fn build(&self) -> (TrainingSim, InfinityPlacement) {
        let mut s = TrainingSim::new(self.cluster()).expect("valid spec");
        let cluster = s.cluster_mut();
        for group in self.volume_groups() {
            cluster.create_volume(group);
        }
        (s, self.placement())
    }

    /// The ZeRO-Infinity strategy (optimizer offload) for this config.
    pub fn strategy(&self, placement: InfinityPlacement) -> Strategy {
        Strategy::ZeroInfinity {
            offload_params: false,
            placement,
        }
    }

    /// A single-node sweep spec running this configuration (ZeRO-Infinity
    /// optimizer offload) at `model` under `run`.
    pub fn spec(&self, label: impl Into<String>, model: GptConfig, run: RunConfig) -> SweepSpec {
        let mut s = SweepSpec::new(label, self.strategy(self.placement()), model, opts(1))
            .with_cluster(self.cluster())
            .with_run(run);
        for group in self.volume_groups() {
            s = s.with_volume(group);
        }
        s
    }
}

/// The golden strategy × node-count matrix of `tests/plan_equivalence.rs`
/// plus the ZeRO-Infinity configuration: 12 sweep specs in fixed order.
///
/// This is the canonical regression workload — `tests/sweep_determinism.rs`
/// pins its width-invariance, `tests/engine_equivalence.rs` pins
/// arena-vs-reference digests over it, and the `engine_arena` bench
/// measures iteration throughput on it.
pub fn golden_specs() -> Vec<SweepSpec> {
    let model = GptConfig::paper_model_with_params(1.4);
    let run = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    let matrix: Vec<(Strategy, usize)> = vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ];
    let mut specs: Vec<SweepSpec> = matrix
        .into_iter()
        .enumerate()
        .map(|(i, (strategy, nodes))| {
            SweepSpec::new(
                format!("golden-{i:02} {} {nodes}n", strategy.name()),
                strategy,
                model,
                opts(nodes),
            )
            .with_run(run)
        })
        .collect();
    // Config 12: ZeRO-Infinity over a two-drive RAID0 scratch volume.
    let d = |drive| NvmeId { node: 0, drive };
    specs.push(
        SweepSpec::new(
            "golden-11 ZeRO-Infinity 1n",
            Strategy::ZeroInfinity {
                offload_params: true,
                placement: InfinityPlacement::new(vec![VolumeId(0)]),
            },
            model,
            opts(1),
        )
        .with_volume(vec![d(0), d(1)])
        .with_run(run),
    );
    specs
}

/// The offload configurations compared in Sec. V (Figs. 11/12).
pub fn offload_strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        (
            "ZeRO-2 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
        ),
        (
            "ZeRO-3 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: false,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_cover_five_configs() {
        assert_eq!(baselines(1).len(), 5);
        assert!(matches!(
            baselines(2)[1].1,
            Strategy::Megatron { tp: 8, pp: 1 }
        ));
    }

    #[test]
    fn nvme_configs_have_expected_drive_counts() {
        assert_eq!(NvmeConfig::A.layout().len(), 1);
        assert_eq!(NvmeConfig::B.layout().len(), 2);
        assert_eq!(NvmeConfig::E.layout().len(), 4);
        for c in NvmeConfig::ALL {
            let (_, placement) = c.build();
            assert_eq!(placement.rank_volumes.len(), 4);
        }
    }

    #[test]
    fn capacity_runner_works() {
        let cap = capacity(&Strategy::Ddp, 1);
        assert!(cap.billions() > 1.0 && cap.billions() < 2.5);
    }
}
