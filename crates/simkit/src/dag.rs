//! Task graphs: the unit of work executed by the [`crate::engine`].
//!
//! A training iteration compiles to a DAG of tasks — GPU/CPU compute spans,
//! network/host/NVMe transfers, and pure delays — with explicit dependency
//! edges. The engine executes any such DAG against a [`crate::flow::FlowNet`]
//! and a set of compute resources; strategies never talk to the event loop
//! directly.

use crate::flow::LinkId;
use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of unique DAG structure identities. Ids start at 1 so that 0 can
/// serve as the "no identity" sentinel used by [`Dag::default`].
static NEXT_DAG_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_dag_id() -> u64 {
    NEXT_DAG_ID.fetch_add(1, Ordering::Relaxed)
}

/// Identifies a task within one [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Index of the task in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a compute resource (a GPU SM array, a CPU socket, ...) known
/// to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// What a task does.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Occupies one slot of `resource` for `duration`.
    Compute {
        /// Resource the task runs on.
        resource: ResourceId,
        /// Busy time.
        duration: SimTime,
    },
    /// Moves `bytes` along `route` at the max-min fair rate, after an
    /// initial `latency` during which no bandwidth is consumed.
    Transfer {
        /// Links crossed, in order.
        route: Vec<LinkId>,
        /// Payload size in bytes.
        bytes: f64,
        /// Startup latency before the first byte moves.
        latency: SimTime,
        /// Per-flow rate ceiling (bytes/second); `f64::INFINITY` when
        /// uncapped. Models path-specific degradation (SerDes pairs).
        cap: f64,
    },
    /// Waits for `duration` without occupying anything.
    Delay {
        /// Wait time.
        duration: SimTime,
    },
    /// Completes instantly; used as a join/barrier point.
    Marker,
}

/// A task plus its profiling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// The work performed.
    pub kind: TaskKind,
    /// Span label for timeline profiling (`None` = not profiled).
    pub label: Option<String>,
    /// Timeline track (defaults to the resource index for compute tasks).
    pub track: Option<u32>,
}

/// An immutable task graph.
///
/// Built with [`DagBuilder`]; guaranteed acyclic by construction because
/// dependencies may only reference previously created tasks.
#[derive(Debug, Default)]
pub struct Dag {
    pub(crate) tasks: Vec<TaskSpec>,
    /// Predecessors of each task.
    pub(crate) preds: Vec<Vec<TaskId>>,
    /// Successors of each task (derived).
    pub(crate) succs: Vec<Vec<TaskId>>,
    /// Unique identity of this graph's *structure* (topology, routes, byte
    /// volumes). Assigned by [`DagBuilder::build`]; 0 for the default
    /// (empty) DAG, which never matches a cached identity. Clones receive a
    /// fresh id because they can diverge through
    /// [`Dag::set_compute_duration`].
    pub(crate) structure_id: u64,
    /// Bumped whenever [`Dag::set_compute_duration`] compacts the log; a
    /// cached `(structure_id, epoch, log position)` triple is only valid
    /// while the epoch is unchanged.
    pub(crate) duration_epoch: u64,
    /// Append-only log of in-place duration overwrites since the last
    /// compaction, as `(task index, new duration)`. Lets an executor that
    /// has already ingested the structure refresh only the durations that
    /// actually changed instead of re-walking every task.
    pub(crate) duration_log: Vec<(u32, SimTime)>,
}

impl Clone for Dag {
    fn clone(&self) -> Self {
        Self {
            tasks: self.tasks.clone(),
            preds: self.preds.clone(),
            succs: self.succs.clone(),
            // A clone is a *new* structure as far as caching goes: the
            // original and the copy can be restamped independently, so
            // sharing an id would let one poison caches keyed on the other.
            structure_id: if self.structure_id == 0 {
                0
            } else {
                fresh_dag_id()
            },
            duration_epoch: 0,
            duration_log: Vec::new(),
        }
    }
}

impl Dag {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the DAG contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The spec of `task`.
    ///
    /// # Panics
    /// Panics if `task` does not belong to this DAG.
    pub fn task(&self, task: TaskId) -> &TaskSpec {
        &self.tasks[task.0]
    }

    /// Predecessors of `task`.
    pub fn preds(&self, task: TaskId) -> &[TaskId] {
        &self.preds[task.0]
    }

    /// Successors of `task`.
    pub fn succs(&self, task: TaskId) -> &[TaskId] {
        &self.succs[task.0]
    }

    /// Iterator over all task ids in insertion (topological) order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Total bytes moved by all transfer tasks.
    pub fn total_transfer_bytes(&self) -> f64 {
        self.tasks
            .iter()
            .filter_map(|t| match &t.kind {
                TaskKind::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Overwrites the duration of an existing compute task.
    ///
    /// This is the engine-facing half of the strategies' lower-once /
    /// re-stamp pipeline: DAG *structure* (topology, routes, byte
    /// volumes) is iteration-invariant, while jittered compute durations
    /// change per iteration seed. Re-stamping durations in place avoids
    /// rebuilding the whole graph every iteration.
    ///
    /// # Panics
    /// Panics if `task` does not belong to this DAG or is not a
    /// [`TaskKind::Compute`] task.
    #[allow(clippy::cast_possible_truncation)] // task counts fit in u32
    pub fn set_compute_duration(&mut self, task: TaskId, duration: SimTime) {
        match &mut self.tasks[task.0].kind {
            TaskKind::Compute { duration: d, .. } => *d = duration,
            other => panic!("task {task:?} is not a compute task (got {other:?})"),
        }
        // Keep the log bounded: once it outgrows the graph severalfold,
        // a full re-read is cheaper than replaying it, so start a new
        // epoch. Readers holding an old epoch fall back to a full refresh.
        if self.duration_log.len() >= self.tasks.len().saturating_mul(4) {
            self.duration_log.clear();
            self.duration_epoch += 1;
        }
        self.duration_log.push((task.0 as u32, duration));
    }

    /// Identity of this graph's structure (0 = unbuilt/default sentinel).
    pub(crate) fn structure_id(&self) -> u64 {
        self.structure_id
    }

    /// Current duration-log epoch (see [`Dag::set_compute_duration`]).
    pub(crate) fn duration_epoch(&self) -> u64 {
        self.duration_epoch
    }

    /// Duration overwrites appended in the current epoch.
    pub(crate) fn duration_log(&self) -> &[(u32, SimTime)] {
        &self.duration_log
    }

    /// Total busy time requested from `resource` by compute tasks.
    pub fn compute_demand(&self, resource: ResourceId) -> SimTime {
        self.tasks
            .iter()
            .filter_map(|t| match &t.kind {
                TaskKind::Compute {
                    resource: r,
                    duration,
                } if *r == resource => Some(*duration),
                _ => None,
            })
            .sum()
    }
}

/// Incrementally builds a [`Dag`].
///
/// ```
/// use zerosim_simkit::dag::{DagBuilder, ResourceId};
/// use zerosim_simkit::SimTime;
///
/// let mut b = DagBuilder::new();
/// let fwd = b.compute(ResourceId(0), SimTime::from_ms(2.0), "fwd", &[]);
/// let bwd = b.compute(ResourceId(0), SimTime::from_ms(4.0), "bwd", &[fwd]);
/// let dag = b.build();
/// assert_eq!(dag.len(), 2);
/// assert_eq!(dag.preds(bwd), &[fwd]);
/// ```
#[derive(Debug, Default)]
pub struct DagBuilder {
    dag: Dag,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, spec: TaskSpec, deps: &[TaskId]) -> TaskId {
        let id = TaskId(self.dag.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency {d:?} does not precede task {id:?}");
        }
        self.dag.tasks.push(spec);
        self.dag.preds.push(deps.to_vec());
        self.dag.succs.push(Vec::new());
        for d in deps {
            self.dag.succs[d.0].push(id);
        }
        id
    }

    /// Adds a compute task.
    #[allow(clippy::cast_possible_truncation)] // resource ids are small
    pub fn compute(
        &mut self,
        resource: ResourceId,
        duration: SimTime,
        label: impl Into<String>,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(
            TaskSpec {
                kind: TaskKind::Compute { resource, duration },
                label: Some(label.into()),
                track: Some(resource.0 as u32),
            },
            deps,
        )
    }

    /// Adds an unlabelled compute task (not profiled on the timeline).
    pub fn compute_silent(
        &mut self,
        resource: ResourceId,
        duration: SimTime,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(
            TaskSpec {
                kind: TaskKind::Compute { resource, duration },
                label: None,
                track: None,
            },
            deps,
        )
    }

    /// Adds a transfer task.
    ///
    /// # Panics
    /// Panics if the route is empty or `bytes` is not finite and positive.
    pub fn transfer(
        &mut self,
        route: Vec<LinkId>,
        bytes: f64,
        latency: SimTime,
        label: impl Into<String>,
        track: u32,
        deps: &[TaskId],
    ) -> TaskId {
        self.transfer_capped(route, bytes, latency, f64::INFINITY, label, track, deps)
    }

    /// Adds a transfer task with a per-flow rate ceiling in bytes/second.
    ///
    /// # Panics
    /// Same conditions as [`DagBuilder::transfer`], plus a non-positive or
    /// NaN `cap`.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_capped(
        &mut self,
        route: Vec<LinkId>,
        bytes: f64,
        latency: SimTime,
        cap: f64,
        label: impl Into<String>,
        track: u32,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(!route.is_empty(), "transfer route must not be empty");
        assert!(
            bytes.is_finite() && bytes > 0.0,
            "transfer size must be positive (got {bytes})"
        );
        assert!(cap > 0.0 && !cap.is_nan(), "transfer cap must be positive");
        self.push(
            TaskSpec {
                kind: TaskKind::Transfer {
                    route,
                    bytes,
                    latency,
                    cap,
                },
                label: Some(label.into()),
                track: Some(track),
            },
            deps,
        )
    }

    /// Adds a pure delay.
    pub fn delay(&mut self, duration: SimTime, deps: &[TaskId]) -> TaskId {
        self.push(
            TaskSpec {
                kind: TaskKind::Delay { duration },
                label: None,
                track: None,
            },
            deps,
        )
    }

    /// Adds a zero-duration join point over `deps`.
    pub fn marker(&mut self, deps: &[TaskId]) -> TaskId {
        self.push(
            TaskSpec {
                kind: TaskKind::Marker,
                label: None,
                track: None,
            },
            deps,
        )
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.dag.tasks.len()
    }

    /// True when no tasks have been added yet.
    pub fn is_empty(&self) -> bool {
        self.dag.tasks.is_empty()
    }

    /// Finalizes the DAG, assigning it a unique structure identity.
    pub fn build(self) -> Dag {
        let mut dag = self.dag;
        dag.structure_id = fresh_dag_id();
        dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_links_dependencies_both_ways() {
        let mut b = DagBuilder::new();
        let a = b.marker(&[]);
        let c = b.delay(SimTime::from_ms(1.0), &[a]);
        let d = b.marker(&[a, c]);
        let dag = b.build();
        assert_eq!(dag.preds(d), &[a, c]);
        assert_eq!(dag.succs(a), &[c, d]);
        assert_eq!(dag.len(), 3);
        assert!(!dag.is_empty());
    }

    #[test]
    fn aggregate_queries() {
        let mut b = DagBuilder::new();
        let r = ResourceId(3);
        b.compute(r, SimTime::from_ms(2.0), "k1", &[]);
        b.compute(r, SimTime::from_ms(3.0), "k2", &[]);
        b.compute(ResourceId(4), SimTime::from_ms(9.0), "k3", &[]);
        b.transfer(vec![LinkId(0)], 1024.0, SimTime::ZERO, "xfer", 0, &[]);
        let dag = b.build();
        assert_eq!(dag.compute_demand(r), SimTime::from_ms(5.0));
        assert_eq!(dag.total_transfer_bytes(), 1024.0);
    }

    #[test]
    fn insertion_order_is_topological() {
        let mut b = DagBuilder::new();
        let a = b.marker(&[]);
        let c = b.marker(&[a]);
        let dag = b.build();
        let ids: Vec<TaskId> = dag.task_ids().collect();
        assert_eq!(ids, vec![a, c]);
    }

    #[test]
    fn restamping_updates_compute_durations_in_place() {
        let mut b = DagBuilder::new();
        let r = ResourceId(0);
        let t = b.compute(r, SimTime::from_ms(2.0), "gemm", &[]);
        let mut dag = b.build();
        assert_eq!(dag.compute_demand(r), SimTime::from_ms(2.0));
        dag.set_compute_duration(t, SimTime::from_ms(5.0));
        assert_eq!(dag.compute_demand(r), SimTime::from_ms(5.0));
        // Structure untouched.
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn structure_identity_is_unique_and_clone_gets_a_fresh_one() {
        let mut b = DagBuilder::new();
        b.marker(&[]);
        let d1 = b.build();
        let d2 = DagBuilder::new().build();
        assert_ne!(d1.structure_id(), 0, "built DAGs have a real identity");
        assert_ne!(d1.structure_id(), d2.structure_id());
        let c = d1.clone();
        assert_ne!(
            c.structure_id(),
            d1.structure_id(),
            "clones can diverge, so they must not share identity"
        );
        assert_eq!(Dag::default().structure_id(), 0, "default is the sentinel");
        assert_eq!(Dag::default().clone().structure_id(), 0);
    }

    #[test]
    fn duration_log_records_restamps_and_compacts() {
        let mut b = DagBuilder::new();
        let t = b.compute(ResourceId(0), SimTime::from_ms(1.0), "k", &[]);
        let u = b.compute(ResourceId(0), SimTime::from_ms(1.0), "k2", &[]);
        let mut dag = b.build();
        assert!(dag.duration_log().is_empty());
        dag.set_compute_duration(t, SimTime::from_ms(2.0));
        dag.set_compute_duration(u, SimTime::from_ms(3.0));
        assert_eq!(
            dag.duration_log(),
            &[(0, SimTime::from_ms(2.0)), (1, SimTime::from_ms(3.0))]
        );
        assert_eq!(dag.duration_epoch(), 0);
        // Push past the 4×len bound: the log compacts and the epoch bumps.
        for _ in 0..8 {
            dag.set_compute_duration(t, SimTime::from_ms(9.0));
        }
        assert!(dag.duration_epoch() > 0, "compaction must bump the epoch");
        assert!(
            dag.duration_log().len() <= 4 * dag.len() + 1,
            "log stays bounded"
        );
        // The overwrite itself still lands regardless of compaction.
        assert_eq!(dag.compute_demand(ResourceId(0)), SimTime::from_ms(12.0));
    }

    #[test]
    #[should_panic(expected = "not a compute task")]
    fn restamping_a_marker_panics() {
        let mut b = DagBuilder::new();
        let m = b.marker(&[]);
        let mut dag = b.build();
        dag.set_compute_duration(m, SimTime::from_ms(1.0));
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_dependency_panics() {
        let mut b = DagBuilder::new();
        let a = b.marker(&[]);
        // Fabricate a not-yet-existing dependency.
        let bogus = TaskId(7);
        let _ = a;
        b.marker(&[bogus]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_byte_transfer_panics() {
        let mut b = DagBuilder::new();
        b.transfer(vec![LinkId(0)], 0.0, SimTime::ZERO, "x", 0, &[]);
    }
}
