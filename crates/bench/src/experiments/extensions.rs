//! Extension studies beyond the paper's evaluation — the what-if
//! questions its conclusions raise, answered on the same simulated
//! testbed.

use zerosim_core::{RunConfig, SweepSpec, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass, NvmeDrivePlacement, NvmeId};
use zerosim_model::GptConfig;
use zerosim_report::{gbps, Table};
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

use crate::data;

/// The overflow-tolerant quick config most extension sweeps use.
fn overflow_quick() -> RunConfig {
    RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    }
}

/// ext1 — Megatron parallelism layout sweep across two nodes.
///
/// The paper runs Megatron dual-node with tensor parallelism spanning the
/// node boundary and observes a collapse. This study asks: would pipeline
/// boundaries across nodes (activations on RoCE instead of per-layer
/// all-reduces) have rescued it?
pub fn ext1_megatron_layouts() -> String {
    let model = GptConfig::paper_model_with_params(11.2);
    let mut t = Table::new(vec![
        "layout (tp x pp x dp)",
        "TFLOP/s",
        "RoCE avg GBps",
        "NVLink avg GBps",
    ]);
    let layouts = [(8, 1), (4, 2), (2, 4), (1, 8), (2, 2), (4, 1)];
    let specs: Vec<SweepSpec> = layouts
        .iter()
        .map(|&(tp, pp)| {
            SweepSpec::new(
                format!("ext1 megatron {tp}x{pp}"),
                Strategy::Megatron { tp, pp },
                model,
                TrainOptions::dual_node(),
            )
            .with_run(overflow_quick())
        })
        .collect();
    for (&(tp, pp), run) in layouts.iter().zip(data::sweep(specs)) {
        let dp = 8 / (tp * pp);
        let report = &run.report;
        t.row(vec![
            format!("{tp} x {pp} x {dp}"),
            format!("{:.0}", report.throughput_tflops()),
            gbps(report.bandwidth.stats(0, LinkClass::Roce).avg),
            gbps(report.bandwidth.stats(0, LinkClass::NvLink).avg),
        ]);
    }
    format!(
        "ext1 — Megatron dual-node layout sweep at 11.2 B (paper used 8x1x1):\n{}\n\
         Pipeline boundaries across the node boundary move only activations\n\
         over RoCE; the paper's TP-spanning configuration is the worst case.\n",
        t.render()
    )
}

/// ext2 — populate all eight NVMe slots (the paper's Sec. V-E
/// recommendation: "If all eight slots are populated, the throughput will
/// potentially be comparable to CPU offload").
pub fn ext2_eight_nvme() -> String {
    let model = GptConfig::paper_model_with_params(33.3);
    let mut t = Table::new(vec!["drives", "volumes", "TFLOP/s", "PCIe-NVME avg GBps"]);
    for drives in [2usize, 4, 8] {
        // Drives split evenly; one per-socket volume group per 2 drives,
        // affinity-mapped (the paper's recommended layout).
        let layout: Vec<NvmeDrivePlacement> = (0..drives)
            .map(|i| NvmeDrivePlacement {
                socket: if i < drives / 2 { 0 } else { 1 },
            })
            .collect();
        let mut sim =
            TrainingSim::new(ClusterSpec::default().with_nvme_layout(layout)).expect("valid spec");
        let half = drives / 2;
        let cluster = sim.cluster_mut();
        let d = |i| NvmeId { node: 0, drive: i };
        let v0 = cluster.create_volume((0..half).map(d).collect());
        let v1 = cluster.create_volume((half..drives).map(d).collect());
        let placement = InfinityPlacement::new(vec![v0, v0, v1, v1]);
        let cfg = RunConfig {
            allow_overflow: true,
            warmup_iters: 1,
            measure_iters: 1,
            ..RunConfig::default()
        };
        let report = sim
            .run(
                &Strategy::ZeroInfinity {
                    offload_params: false,
                    placement,
                },
                &model,
                &TrainOptions::single_node(),
                &cfg,
            )
            .expect("infinity runs");
        t.row(vec![
            drives.to_string(),
            "2".into(),
            format!("{:.1}", report.throughput_tflops()),
            gbps(report.bandwidth.stats(0, LinkClass::PcieNvme).avg),
        ]);
    }
    // Reference: CPU offload at the largest size the paper reaches with it.
    let mut sim = data::sim();
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    let cpu = sim
        .run(
            &Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            &GptConfig::paper_model_with_params(12.6),
            &TrainOptions::single_node(),
            &cfg,
        )
        .expect("cpu offload runs");
    format!(
        "ext2 — NVMe slot population at 33.3 B (ZeRO-Infinity, optimizer offload):\n{}\n\
         CPU-offload reference (ZeRO-2 at its 12.6 B capacity): {:.1} TFLOP/s.\n\
         The paper's projection holds directionally: eight drives halve the\n\
         gap to CPU offload — while fitting a 2.6x larger model.\n",
        t.render(),
        cpu.throughput_tflops()
    )
}

/// ext3 — the I/O-die contention ablation: what would the cluster do with
/// an ideal (contention-free) crossbar?
pub fn ext3_iod_ablation() -> String {
    let mut ideal = ClusterSpec::default();
    ideal.iod.pcie_pcie = 1e12;
    ideal.iod.pcie_gpu_xgmi = 1e12;
    ideal.iod.xgmi_pcie_io = 1e12;
    ideal.iod.crossing_latency_s = 0.0;

    let mut t = Table::new(vec!["scenario", "as-built RoCE %", "ideal-IOD RoCE %"]);
    for scenario in [
        zerosim_perftest::StressScenario::CpuRoce { cross_socket: true },
        zerosim_perftest::StressScenario::GpuRoce {
            cross_socket: false,
        },
        zerosim_perftest::StressScenario::GpuRoce { cross_socket: true },
    ] {
        let real = zerosim_perftest::stress_test_on(&ClusterSpec::default(), scenario);
        let perfect = zerosim_perftest::stress_test_on(&ideal, scenario);
        t.row(vec![
            scenario.label(),
            format!("{:.0}%", real.roce_fraction * 100.0),
            format!("{:.0}%", perfect.roce_fraction * 100.0),
        ]);
    }

    // And the training-level impact on the worst-affected configuration.
    let model = GptConfig::paper_model_with_params(11.2);
    let run = |spec: ClusterSpec| {
        let mut sim = TrainingSim::new(spec).unwrap();
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        sim.run(
            &Strategy::Megatron { tp: 8, pp: 1 },
            &model,
            &TrainOptions::dual_node(),
            &cfg,
        )
        .unwrap()
        .throughput_tflops()
    };
    let real = run(ClusterSpec::default());
    let perfect = run(ideal);
    format!(
        "ext3 — EPYC I/O-die SerDes contention ablation:\n{}\n\
         Dual-node Megatron (TP=8): {real:.0} TFLOP/s as built vs \
         {perfect:.0} TFLOP/s with an ideal I/O die — the contention the\n\
         paper hypothesizes costs measurable training throughput, but the\n\
         strategy's communication volume remains the dominant problem.\n",
        t.render()
    )
}

/// ext4 — batch-size sensitivity (the paper notes free GPU memory "can
/// also be used for larger batch sizes, which may improve the throughput",
/// Sec. V-B2).
pub fn ext4_batch_size() -> String {
    let mut t = Table::new(vec!["per-GPU batch", "ZeRO-2 TFLOP/s", "fits?"]);
    let model = GptConfig::paper_model_with_params(2.9);
    // Per-spec execution (not one sweep): a sweep fails as a unit, and
    // this study *wants* the per-batch does-not-fit boundary.
    for batch in [4usize, 8, 16, 32, 64] {
        let opts = TrainOptions {
            per_gpu_batch: batch,
            nodes: 1,
            ..TrainOptions::default()
        };
        let result = SweepSpec::new(
            format!("ext4 batch {batch}"),
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            model,
            opts,
        )
        .with_run(RunConfig::quick())
        .execute();
        match result {
            Ok(r) => t.row(vec![
                batch.to_string(),
                format!("{:.0}", r.report.throughput_tflops()),
                "yes".into(),
            ]),
            Err(_) => t.row(vec![batch.to_string(), "-".into(), "no".into()]),
        };
    }
    format!(
        "ext4 — batch-size sensitivity (ZeRO-2 at 2.9 B, single node):\n{}\n\
         Throughput rises with batch until activation memory evicts the\n\
         model — the trade the paper alludes to in Sec. V-B2.\n",
        t.render()
    )
}

/// ext5 — NIC generation sweep: how much faster inter-node fabric would
/// Megatron/ZeRO have needed?
pub fn ext5_nic_sweep() -> String {
    let model = GptConfig::paper_model_with_params(11.2);
    let mut t = Table::new(vec!["NIC", "Megatron TP=8 TFLOP/s", "ZeRO-3 TFLOP/s"]);
    let nics = [
        ("100 GbE", 12.5e9),
        ("200 GbE (paper)", 25e9),
        ("400 GbE", 50e9),
    ];
    // Two specs per NIC generation (Megatron, ZeRO-3), one sweep overall.
    let mut specs = Vec::new();
    for (name, gbps_dir) in nics {
        let mut cluster = ClusterSpec::default();
        cluster.bw.roce_dir = 0.93 * gbps_dir;
        for strategy in [
            Strategy::Megatron { tp: 8, pp: 1 },
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
        ] {
            specs.push(
                SweepSpec::new(
                    format!("ext5 {name} {}", strategy.name()),
                    strategy,
                    model,
                    TrainOptions::dual_node(),
                )
                .with_cluster(cluster.clone())
                .with_run(overflow_quick()),
            );
        }
    }
    let mut runs = data::sweep(specs).into_iter();
    for (name, _) in nics {
        let megatron = runs.next().expect("megatron cell");
        let zero3 = runs.next().expect("zero3 cell");
        t.row(vec![
            name.into(),
            format!("{:.0}", megatron.report.throughput_tflops()),
            format!("{:.0}", zero3.report.throughput_tflops()),
        ]);
    }
    format!(
        "ext5 — inter-node fabric generation sweep at 11.2 B (dual node):\n{}\n\
         ZeRO's partitioned collectives are protocol-bound, not wire-bound:\n\
         a faster NIC alone does not close Megatron's gap.\n",
        t.render()
    )
}

/// ext6 — energy efficiency per strategy (the environmental-impact angle
/// of the paper's introduction, quantified).
pub fn ext6_energy() -> String {
    use zerosim_core::PowerModel;
    let power = PowerModel::default();
    let mut t = Table::new(vec![
        "configuration",
        "nodes",
        "TFLOP/s",
        "avg power W",
        "tokens/kJ",
    ]);
    let model = GptConfig::paper_model_with_params(1.4);
    let mut specs: Vec<SweepSpec> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for nodes in [1usize, 2] {
        for (name, strategy) in data::baselines(nodes) {
            names.push(format!("{name} ({nodes}-node)"));
            specs.push(
                data::spec(names.last().unwrap().clone(), strategy, model, nodes, false)
                    .with_run(overflow_quick()),
            );
        }
    }
    names.push("ZeRO-2 (CPU) (1-node)".into());
    specs.push(
        data::spec(
            "ZeRO-2 (CPU) (1-node)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            model,
            1,
            false,
        )
        .with_run(overflow_quick()),
    );
    let rows: Vec<(String, zerosim_core::TrainingReport)> = names
        .into_iter()
        .zip(data::sweep(specs).into_iter().map(|r| r.report))
        .collect();
    for (name, report) in &rows {
        let e = power.estimate(report, 4);
        t.row(vec![
            name.clone(),
            report.nodes.to_string(),
            format!("{:.0}", report.throughput_tflops()),
            format!("{:.0}", e.avg_power_w()),
            format!("{:.1}", e.tokens_per_joule() * 1000.0),
        ]);
    }
    format!(
        "ext6 — energy efficiency at the 1.4 B model:\n{}\n\
         Dual-node Megatron draws two nodes' power for a fraction of the\n\
         work; CPU offload trades GPU idle time for capacity.\n",
        t.render()
    )
}

/// ext7 — infrastructure cost efficiency (the paper's conclusion that
/// offloading "significantly reduces infrastructure costs", quantified).
pub fn ext7_cost() -> String {
    use zerosim_core::CostModel;
    let cost = CostModel::default();
    let model = GptConfig::paper_model_with_params(11.2);
    let mut t = Table::new(vec![
        "configuration",
        "capital k$",
        "TFLOP/s",
        "TFLOP/s per k$",
    ]);
    let entries: Vec<(&str, Strategy, usize, usize)> = vec![
        (
            "Megatron-LM (2 nodes)",
            Strategy::Megatron { tp: 8, pp: 1 },
            2,
            2,
        ),
        (
            "ZeRO-3 (2 nodes)",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
            2,
        ),
        (
            "ZeRO-2 CPU offload (1 node)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
            2,
        ),
    ];
    for (name, strategy, nodes, drives) in entries {
        let mut sim = data::sim();
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let report = sim
            .run(&strategy, &model, &data::opts(nodes), &cfg)
            .expect("runs");
        let c = cost.estimate(&report, 4, drives);
        t.row(vec![
            name.into(),
            format!("{:.0}", c.capital_usd / 1000.0),
            format!("{:.0}", report.throughput_tflops()),
            format!("{:.1}", c.tflops_per_kusd()),
        ]);
    }
    format!(
        "ext7 — cost efficiency at the 11.2 B model:\n{}\n\
         Consolidating onto one node with CPU offload more than doubles the\n\
         throughput bought per dollar versus dual-node Megatron.\n",
        t.render()
    )
}

/// ext8 — horizontal vs vertical scaling, the comparison the paper's
/// abstract frames ("to help compare horizontal and vertical scaling"):
/// grow the cluster outward (more nodes, ZeRO-3) or grow one node inward
/// (CPU/NVMe offload) for the same target model.
pub fn ext8_horizontal_vs_vertical() -> String {
    use zerosim_hw::ClusterSpec as Spec;
    let model = GptConfig::paper_model_with_params(11.2);
    let mut t = Table::new(vec![
        "approach",
        "nodes",
        "TFLOP/s",
        "GPUs",
        "TFLOP/s per GPU",
    ]);

    // Horizontal: ZeRO-3 over 2 and 4 nodes.
    for nodes in [2usize, 4] {
        let mut sim = TrainingSim::new(Spec::default().with_nodes(nodes)).expect("valid");
        let opts = TrainOptions {
            per_gpu_batch: 16,
            nodes,
            ..TrainOptions::default()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let report = sim
            .run(
                &Strategy::Zero {
                    stage: ZeroStage::Three,
                },
                &model,
                &opts,
                &cfg,
            )
            .expect("runs");
        let gpus = nodes * 4;
        t.row(vec![
            "horizontal: ZeRO-3".into(),
            nodes.to_string(),
            format!("{:.0}", report.throughput_tflops()),
            gpus.to_string(),
            format!("{:.0}", report.throughput_tflops() / gpus as f64),
        ]);
    }

    // Vertical: one node with CPU offload, then NVMe offload.
    {
        let (name, strategy) = (
            "vertical: ZeRO-2 CPU offload",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
        );
        let mut sim = data::sim();
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let report = sim
            .run(&strategy, &model, &data::opts(1), &cfg)
            .expect("runs");
        t.row(vec![
            name.into(),
            "1".into(),
            format!("{:.0}", report.throughput_tflops()),
            "4".into(),
            format!("{:.0}", report.throughput_tflops() / 4.0),
        ]);
    }
    {
        let (mut sim, placement) = crate::data::NvmeConfig::B.build();
        let cfg = RunConfig {
            allow_overflow: true,
            warmup_iters: 1,
            measure_iters: 1,
            ..RunConfig::default()
        };
        let report = sim
            .run(
                &Strategy::ZeroInfinity {
                    offload_params: false,
                    placement,
                },
                &model,
                &data::opts(1),
                &cfg,
            )
            .expect("runs");
        t.row(vec![
            "vertical: ZeRO-Infinity 2xNVMe".into(),
            "1".into(),
            format!("{:.0}", report.throughput_tflops()),
            "4".into(),
            format!("{:.0}", report.throughput_tflops() / 4.0),
        ]);
    }
    format!(
        "ext8 — horizontal vs vertical scaling at the 11.2 B model:\n{}\n\
         Horizontal scaling pays off only with hierarchical collectives:\n\
         per-rank inter-node volume shrinks as nodes are added, so ZeRO-3's\n\
         per-GPU efficiency holds (and here improves) from 2 to 4 nodes.\n\
         Vertically, a single node with CPU offload still delivers most of\n\
         the 2-node per-GPU throughput at half the hardware — the paper's\n\
         consolidation argument.\n",
        t.render()
    )
}

/// ext9 — gradient accumulation: could larger effective batches have
/// rescued dual-node training on this fabric?
pub fn ext9_grad_accum() -> String {
    let model = GptConfig::paper_model_with_params(1.4);
    let mut t = Table::new(vec![
        "micro-steps",
        "DDP 2-node TFLOP/s",
        "ZeRO-2 2-node TFLOP/s",
        "Megatron TP=8 TFLOP/s",
    ]);
    let accums = [1usize, 2, 4, 8];
    let mut specs = Vec::new();
    for accum in accums {
        let opts = TrainOptions::dual_node().with_grad_accum(accum);
        for strategy in [
            Strategy::Ddp,
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            Strategy::Megatron { tp: 8, pp: 1 },
        ] {
            specs.push(
                SweepSpec::new(
                    format!("ext9 accum {accum} {}", strategy.name()),
                    strategy,
                    model,
                    opts,
                )
                .with_run(overflow_quick()),
            );
        }
    }
    let mut runs = data::sweep(specs).into_iter();
    for accum in accums {
        let mut cell = || {
            format!(
                "{:.0}",
                runs.next().expect("accum cell").report.throughput_tflops()
            )
        };
        let (ddp, zero2, megatron) = (cell(), cell(), cell());
        t.row(vec![accum.to_string(), ddp, zero2, megatron]);
    }
    format!(
        "ext9 — gradient accumulation on two nodes (1.4 B model):\n{}\n\
         Deferring gradient sync amortizes the weak inter-node link for\n\
         data-parallel strategies; Megatron's per-layer tensor-parallel\n\
         all-reduces cannot be deferred, so accumulation does not save it.\n",
        t.render()
    )
}

/// ext10 — hidden-size sensitivity: how the GEMM-efficiency story changes
/// across the GPT family (the paper fixes h=2048; wider models change the
/// Megatron-vs-DDP gap).
pub fn ext10_hidden_size() -> String {
    use zerosim_model::ModelPreset;
    let mut t = Table::new(vec![
        "model",
        "hidden",
        "params B",
        "DDP TFLOP/s",
        "Megatron TP=4 TFLOP/s",
        "Megatron/DDP",
    ]);
    let mut specs = Vec::new();
    for preset in ModelPreset::ALL {
        let model = preset.config();
        for strategy in [Strategy::Ddp, Strategy::Megatron { tp: 4, pp: 1 }] {
            specs.push(
                data::spec(
                    format!("ext10 {} {}", preset.name(), strategy.name()),
                    strategy,
                    model,
                    1,
                    false,
                )
                .with_run(overflow_quick()),
            );
        }
    }
    let mut runs = data::sweep(specs).into_iter();
    for preset in ModelPreset::ALL {
        let model = preset.config();
        let ddp = runs.next().expect("ddp cell").report.throughput_tflops();
        let megatron = runs
            .next()
            .expect("megatron cell")
            .report
            .throughput_tflops();
        t.row(vec![
            preset.name().into(),
            model.hidden_size.to_string(),
            format!("{:.2}", model.num_params() / 1e9),
            format!("{ddp:.0}"),
            format!("{megatron:.0}"),
            format!("{:.2}", megatron / ddp),
        ]);
    }
    format!(
        "ext10 — hidden-size sensitivity (single node, memory limits ignored):\n{}\n\
         Tensor parallelism slices every GEMM four ways; for narrow models\n\
         the slices fall off the efficiency curve, while at GPT-3 widths the\n\
         Megatron/DDP gap nearly closes — the paper's h=2048 sits in the\n\
         middle of that transition.\n",
        t.render()
    )
}

/// ext12 — the Jean-Zay-style parallelism comparison at cluster scale:
/// `planfind`'s full enumerate → statically-prune → simulate → rank
/// pipeline on wide 14 B / 32 B / 72 B models over NVLink-island pods of
/// 64–128 simulated GPUs. The paper's two-node testbed answers "which
/// strategy"; at pod scale the question becomes "which *placement*" —
/// TP against NVLink, PP across islands, DP over the oversubscribed
/// spine — and the static pass does most of the elimination before a
/// single flow is simulated.
pub fn ext12_jean_zay_scale() -> String {
    use zerosim_core::{search_plans, SearchConfig};
    use zerosim_hw::TopologySpec;

    // 64 GPUs (2 pods x 4 islands), then 128 (4 x 4) with the 72 B
    // model on a 4:1 spine. The grid enumerates fine at 256 GPUs too,
    // but a single 256-GPU survivor simulation costs minutes of
    // flow-solver time on the CI box, so the study stops at 128 —
    // a deliberate cap, not a model limit.
    let cases: [(f64, &str); 3] = [
        (14.0, "pods:2x4x8:2:2"),
        (32.0, "pods:4x4x8:2:2"),
        (72.0, "pods:4x4x8:2:4"),
    ];
    let mut out = String::new();
    for (billions, topo) in cases {
        let topology = TopologySpec::parse(topo).expect("study topology is valid");
        let cfg = SearchConfig::new(topology, GptConfig::wide_model_with_params(billions))
            .with_workers(data::sweep_workers());
        let report = search_plans(&cfg).expect("study topology lowers to a cluster");
        out.push_str(&report.render_text(3));
        out.push('\n');
    }
    format!(
        "ext12 — Jean-Zay-scale parallelism search (wide models, NVLink-island pods):\n\
         {out}\
         Reading: TP stays inside the NVLink island on every surviving\n\
         plan; the winners put DP on the widest (most oversubscribed)\n\
         tier where one gradient all-reduce per step amortizes it. The\n\
         static pass prunes the replication-heavy half of the grid —\n\
         at these scales a simulated survivor costs seconds while a\n\
         pruned candidate costs microseconds. (The search enumerates a\n\
         256-GPU grid just as cheaply, but each surviving simulation\n\
         there costs minutes of solver time, so this artifact caps the\n\
         simulated study at 128 GPUs.)\n"
    )
}

/// ext15 — ZeRO++ on the degrading dual-node RoCE fabric: does quantized
/// / hierarchical communication move the wire-bound -> protocol-bound
/// crossover that ext11 located for plain ZeRO-3?
///
/// Every cell carries two *static* verdicts next to the simulated
/// attainment: planlint ZL004's classification of the hottest RoCE link
/// (protocol-bound while the per-flow engine ceiling binds below the
/// degraded wire, wire-bound once the wire sinks under it) and ZL009's
/// critical-path lower bound on the step time. The static bound must
/// stay below the simulated time in every cell — planlint as predictor,
/// checked against the simulator it predicts.
pub fn ext15_zeropp_roce_degradation() -> String {
    use zerosim_analyzer::{analyze_strategy, LintConfig};
    use zerosim_core::SweepSpec;
    use zerosim_hw::Cluster;
    use zerosim_strategies::Calibration;

    let model = GptConfig::paper_model_with_params(1.4);
    let strategies: Vec<Strategy> = vec![
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
        Strategy::qwz(),
        Strategy::hpz(),
        Strategy::qgz(),
    ];
    let factors = [1.0_f64, 0.5, 0.25, 0.1, 0.05, 0.03];

    // One sweep over the full grid; cells come back in push order.
    let mut specs: Vec<SweepSpec> = Vec::new();
    for &factor in &factors {
        let mut cluster = ClusterSpec::default();
        cluster.bw.roce_dir *= factor;
        for strategy in &strategies {
            specs.push(
                SweepSpec::new(
                    format!("ext15 roce@{factor} {}", strategy.name()),
                    strategy.clone(),
                    model,
                    TrainOptions::dual_node(),
                )
                .with_cluster(cluster.clone())
                .with_run(overflow_quick()),
            );
        }
    }
    let mut runs = data::sweep(specs).into_iter();

    let mut t = Table::new(vec![
        "RoCE",
        "strategy",
        "TFLOP/s",
        "attain",
        "ZL004 roce",
        "ZL009 bound",
        "sim iter",
    ]);
    let mut healthy: Vec<f64> = Vec::new();
    let mut crossover: Vec<Option<f64>> = vec![None; strategies.len()];
    let mut bounds_hold = true;
    for &factor in &factors {
        let mut spec = ClusterSpec::default();
        spec.bw.roce_dir *= factor;
        let cluster = Cluster::new(spec).expect("degraded paper spec is valid");
        for (si, strategy) in strategies.iter().enumerate() {
            let run = runs.next().expect("grid cell");
            let tflops = run.report.throughput_tflops();
            if factor == 1.0 {
                healthy.push(tflops);
            }
            let attain = tflops / healthy[si];
            if attain < 0.9 && crossover[si].is_none() {
                crossover[si] = Some(factor);
            }
            let lint = analyze_strategy(
                &cluster,
                strategy,
                &model,
                &TrainOptions::dual_node(),
                &Calibration::default(),
                LintConfig::new(),
            )
            .expect("ZeRO++ plans lint on the degraded fabric");
            let roce = lint
                .links
                .iter()
                .find(|l| l.name.contains("roce"))
                .map_or("-", |l| l.bound.label());
            let bound = lint.bound.as_ref().expect("ZL009 emitted a bound");
            let sim_s = run.report.iter_time.as_secs();
            bounds_hold &= bound.protocol_s <= sim_s * (1.0 + 1e-9);
            t.row(vec![
                format!("{:.0}%", factor * 100.0),
                strategy.name(),
                format!("{tflops:.1}"),
                format!("{:.0}%", attain * 100.0),
                roce.into(),
                format!("{:.3} s", bound.protocol_s),
                format!("{sim_s:.3} s"),
            ]);
        }
    }
    let mut cross = Table::new(vec!["strategy", "attainment < 90% at"]);
    for (si, strategy) in strategies.iter().enumerate() {
        cross.row(vec![
            strategy.name(),
            crossover[si].map_or("never (in sweep)".into(), |f| {
                format!("RoCE@{:.0}%", f * 100.0)
            }),
        ]);
    }
    format!(
        "ext15 — ZeRO++ under dual-node RoCE degradation at 1.4 B:\n{}\n\
         Crossover (first sweep point losing >10% of healthy throughput):\n{}\n\
         All ZL009 static bounds below simulated iteration time: {}.\n\
         Reading: on the healthy fabric every variant is protocol-bound —\n\
         the per-flow engine ceiling, not the wire, sets the pace (ext5),\n\
         which is why losing three quarters of the wire is free, exactly\n\
         as ext11 found for plain ZeRO-3. ZL004's statically-computed\n\
         verdict flips to wire-bound only once the wire sinks under the\n\
         0.85 GB/s gather ceiling (the 3% row); the simulator starts\n\
         charging for the wire a little earlier, once contention stacks\n\
         flows past it. ZeRO++ shifts where that bind *hurts*: qgZ's\n\
         4x-compressed gradient reduces cut the wire seconds added at\n\
         RoCE@5% roughly in half versus plain ZeRO-3, so it keeps the\n\
         highest attainment of the family once the wire binds. qwZ and\n\
         hpZ lose *relative* attainment sooner only because their healthy\n\
         iteration is ~2x shorter — the same wire exposure is a larger\n\
         fraction of a faster step — yet in absolute TFLOP/s every ZeRO++\n\
         variant stays ahead of plain ZeRO-3 at every degradation point,\n\
         and ZL009's static bound stays below the simulated time in every\n\
         cell while the gap widens exactly where contention (which the\n\
         bound excludes) becomes the binding term.\n",
        t.render(),
        cross.render(),
        if bounds_hold { "yes" } else { "VIOLATED" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megatron_layout_sweep_prefers_pipeline_across_nodes() {
        let s = ext1_megatron_layouts();
        assert!(s.contains("8 x 1 x 1"));
        assert!(s.contains("4 x 2 x 1"));
    }

    #[test]
    fn eight_drives_approach_cpu_offload() {
        let s = ext2_eight_nvme();
        assert!(s.contains("8"));
        assert!(s.contains("CPU-offload reference"));
    }

    #[test]
    fn iod_ablation_shows_contention_cost() {
        let s = ext3_iod_ablation();
        // Ideal crossbar recovers the same-/cross-socket GPU paths to ~90%+.
        assert!(s.contains("9") && s.contains("%"), "{s}");
    }

    #[test]
    fn zeropp_roce_sweep_reports_bounds_and_crossovers() {
        let s = ext15_zeropp_roce_degradation();
        assert!(s.contains("ZeRO++ (qwZ)"));
        assert!(s.contains("ZeRO++ (qgZ)"));
        assert!(
            s.contains("All ZL009 static bounds below simulated iteration time: yes"),
            "{s}"
        );
        assert!(
            s.contains("protocol"),
            "healthy fabric must be protocol-bound:\n{s}"
        );
        // ZL004 flips once the wire sinks below the 0.85 GB/s gather cap.
        assert!(
            s.contains("wire"),
            "3% row must be statically wire-bound:\n{s}"
        );
    }

    #[test]
    fn batch_sweep_has_fit_boundary() {
        let s = ext4_batch_size();
        assert!(s.contains("yes"));
        assert!(s.contains("no"), "largest batch should not fit:\n{s}");
    }
}
