//! `zerosim-perftest` — inter-node latency and bandwidth stress tests,
//! the simulated stand-in for the OFED perftest suite the paper uses in
//! Sec. III-C (Figs. 3 and 4).
//!
//! ```
//! use zerosim_perftest::{stress_test, StressScenario};
//!
//! let out = stress_test(StressScenario::CpuRoce { cross_socket: false });
//! assert!(out.roce_fraction > 0.9); // ~93% of theoretical, as measured
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod latency;
mod stress;

pub use latency::{latency_sweep, paper_message_sizes, roce_latency, LatencyPoint, RdmaSemantic};
pub use stress::{stress_test, stress_test_on, StressOutcome, StressScenario};
