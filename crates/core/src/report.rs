//! Characterization results: everything the paper measures for one
//! training configuration.

use std::collections::BTreeMap;

use zerosim_hw::{Cluster, LinkClass};
use zerosim_simkit::{
    BandwidthRecorder, BandwidthStats, EngineStats, SimTime, SolverStats, SpanLog,
};
use zerosim_strategies::MemoryPlan;

/// Bandwidth statistics per (node, interconnect class) plus the raw
/// utilization series for pattern plots.
#[derive(Debug, Clone, Default)]
pub struct BandwidthReport {
    stats: BTreeMap<(usize, LinkClass), BandwidthStats>,
    series: BTreeMap<(usize, LinkClass), Vec<f64>>,
    bucket: SimTime,
}

impl BandwidthReport {
    pub(crate) fn new(bucket: SimTime) -> Self {
        BandwidthReport {
            stats: BTreeMap::new(),
            series: BTreeMap::new(),
            bucket,
        }
    }

    pub(crate) fn insert(
        &mut self,
        node: usize,
        class: LinkClass,
        stats: BandwidthStats,
        series: Vec<f64>,
    ) {
        self.stats.insert((node, class), stats);
        self.series.insert((node, class), series);
    }

    /// Aggregate bidirectional per-node stats (Table IV cells) in
    /// bytes/second.
    pub fn stats(&self, node: usize, class: LinkClass) -> BandwidthStats {
        self.stats.get(&(node, class)).copied().unwrap_or_default()
    }

    /// Utilization series in bytes/second per sample bucket (the Figs.
    /// 9/10/12 pattern data).
    pub fn series(&self, node: usize, class: LinkClass) -> &[f64] {
        self.series
            .get(&(node, class))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The sampling bucket width.
    pub fn bucket(&self) -> SimTime {
        self.bucket
    }

    /// Repeats the measured pattern to fill a window of `window_secs`
    /// (the paper plots 200-second windows of steady-state training).
    pub fn tiled_series(&self, node: usize, class: LinkClass, window_secs: f64) -> Vec<f64> {
        let base = self.series(node, class);
        if base.is_empty() {
            return Vec::new();
        }
        // Window / bucket ratios are small (a few thousand samples).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let want = (window_secs / self.bucket.as_secs()).ceil() as usize;
        (0..want).map(|i| base[i % base.len()]).collect()
    }
}

/// One entry of the per-link "hot wires" ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct HotLink {
    /// Link name as registered by the hardware model (e.g.
    /// `n0.nvlink.0to1`, `n0nic1.roce.tx`, `n1s0.dram`).
    pub name: String,
    /// Average bandwidth over the measured window, bytes/second.
    pub avg: f64,
    /// Fraction of the link's capacity that average represents.
    pub utilization: f64,
}

/// How many entries [`rank_hot_links`] keeps.
pub(crate) const HOT_LINKS_TOP: usize = 16;

/// Ranks every active physical link by average utilization over the
/// measured window (descending, top [`HOT_LINKS_TOP`]).
///
/// Total order via [`f64::total_cmp`]: a pathological NaN utilization
/// (zero-capacity link) sorts last instead of panicking mid-report.
pub(crate) fn rank_hot_links(
    cluster: &Cluster,
    nodes: usize,
    rec: &BandwidthRecorder,
    window_secs: f64,
) -> Vec<HotLink> {
    let window = window_secs.max(1e-12);
    let mut hot_links: Vec<HotLink> = Vec::new();
    for node in 0..nodes {
        // Table IV classes plus the aggregate fabric uplinks of generated
        // topologies (registered on each group's first node; absent on the
        // paper's flat switch, so flat-cluster rankings are unchanged).
        for class in LinkClass::TABLE_IV.into_iter().chain([LinkClass::Fabric]) {
            for &link in cluster.links(node, class) {
                let avg = rec.total_bytes(link) / window;
                if avg <= 0.0 {
                    continue;
                }
                let cap = cluster.net().link_capacity(link);
                hot_links.push(HotLink {
                    name: cluster.net().link_name(link).to_string(),
                    avg,
                    utilization: avg / cap,
                });
            }
        }
    }
    hot_links.sort_by(|a, b| b.utilization.total_cmp(&a.utilization));
    hot_links.truncate(HOT_LINKS_TOP);
    hot_links
}

/// Resilience accounting for a faulted run (see
/// [`crate::TrainingSim::run_resilient`]).
///
/// All counters include the warm-up window: faults do not distinguish
/// between warm-up and measured iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceMetrics {
    /// Useful FLOP/s over the measured window: committed model FLOPs
    /// divided by wall time *including* replayed iterations, checkpoint
    /// traffic, restart delays, and restore traffic. Equals
    /// [`TrainingReport::throughput_flops`] when nothing faults.
    pub goodput_flops: f64,
    /// Median duration over every *completed* iteration execution
    /// (committed or later rolled back).
    pub iter_p50: SimTime,
    /// 90th-percentile completed-iteration duration.
    pub iter_p90: SimTime,
    /// 99th-percentile completed-iteration duration.
    pub iter_p99: SimTime,
    /// Iteration executions started (including ones aborted by a fault).
    pub executed_iterations: usize,
    /// Iterations committed at the end of the run (warm-up + measured).
    pub committed_iterations: usize,
    /// Committed-then-lost iterations replayed after node losses.
    pub replayed_iterations: usize,
    /// Checkpoint snapshots committed.
    pub checkpoints_taken: usize,
    /// Simulated time spent writing checkpoints.
    pub checkpoint_time: SimTime,
    /// Node-loss recoveries performed.
    pub recoveries: usize,
    /// Total simulated time from each fault to training resuming
    /// (restart delay + restore traffic).
    pub recovery_time: SimTime,
    /// Fault events consumed from the schedule during the run.
    pub faults_applied: usize,
    /// End-to-end simulated wall time (warm-up included).
    pub wall_time: SimTime,
    /// [`zerosim_simkit::FaultSchedule::digest`] of the schedule driving
    /// the run, tying the report to its fault provenance.
    pub schedule_digest: u64,
}

impl ResilienceMetrics {
    /// Goodput in TFLOP/s.
    pub fn goodput_tflops(&self) -> f64 {
        self.goodput_flops / 1e12
    }

    /// Mean time-to-recover per node loss ([`SimTime::ZERO`] when the run
    /// never faulted).
    pub fn time_to_recover(&self) -> SimTime {
        if self.recoveries == 0 {
            SimTime::ZERO
        } else {
            self.recovery_time / (self.recoveries as u64)
        }
    }
}

/// Everything measured for one training configuration.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Strategy display name.
    pub strategy: String,
    /// Model size in parameters.
    pub model_params: f64,
    /// Nodes participating.
    pub nodes: usize,
    /// Mean iteration time over the measured iterations.
    pub iter_time: SimTime,
    /// Model FLOPs per iteration (DeepSpeed-FLOPS-profiler convention).
    pub flops_per_iteration: f64,
    /// Tokens processed per iteration.
    pub tokens_per_iteration: f64,
    /// Memory placement.
    pub memory: MemoryPlan,
    /// Per-interconnect bandwidth characterization.
    pub bandwidth: BandwidthReport,
    /// Device timelines of the measured iterations (Fig. 5 substitute).
    pub spans: SpanLog,
    /// Busiest individual links, sorted by utilization descending.
    pub hot_links: Vec<HotLink>,
    /// How many times the iteration plan was lowered to a task graph for
    /// this run (1 when the lower-once / re-stamp cache works).
    pub plan_lowerings: usize,
    /// Resilience accounting; `Some` for [`crate::TrainingSim::run_resilient`]
    /// runs, `None` for plain characterization runs.
    pub resilience: Option<ResilienceMetrics>,
    /// Max-min solver work accounting for the *measured* window (delta of
    /// [`zerosim_simkit::FlowNet::solver_stats`] across it). Like
    /// [`TrainingReport::resilience`], this is instrumentation about *how*
    /// the run was computed, not *what* was measured, so it is excluded
    /// from [`TrainingReport::digest`].
    pub solver: SolverStats,
    /// DAG-engine work accounting for the run (ticks, batch sizes, arena
    /// reuse hits — see [`zerosim_simkit::EngineStats`]). Like
    /// [`TrainingReport::solver`], these counters describe how the
    /// simulation executed, not what it measured, so they are excluded
    /// from [`TrainingReport::digest`]: the arena and reference engines
    /// must produce equal digests even though only the arena batches.
    pub engine: EngineStats,
}

impl TrainingReport {
    /// Aggregate compute throughput in FLOP/s (the paper's headline
    /// metric: model FLOPs divided by iteration wall time).
    pub fn throughput_flops(&self) -> f64 {
        self.flops_per_iteration / self.iter_time.as_secs()
    }

    /// Throughput in TFLOP/s.
    pub fn throughput_tflops(&self) -> f64 {
        self.throughput_flops() / 1e12
    }

    /// Model size in billions of parameters.
    pub fn model_billions(&self) -> f64 {
        self.model_params / 1e9
    }

    /// A stable 64-bit fingerprint of the *measurement payload*: strategy,
    /// timing, FLOPs, memory plan, every bandwidth stat and sample, every
    /// timeline span, the hot-link ranking, and the lowering count.
    ///
    /// The [`TrainingReport::resilience`] and [`TrainingReport::solver`]
    /// bookkeeping are deliberately excluded: `resilience` so a fault-free
    /// resilient run can be compared bit-for-bit against a plain
    /// [`crate::TrainingSim::run`] (compare `resilience` separately via its
    /// `PartialEq`), and `solver` because solver work counters describe how
    /// the simulation was computed (incremental vs full solves), not the
    /// physics it measured. Equal digests mean byte-identical measurements.
    pub fn digest(&self) -> u64 {
        let mut h = mix_str(0x5153_u64, &self.strategy);
        h = mix(h, self.model_params.to_bits());
        h = mix(h, self.nodes as u64);
        h = mix(h, self.iter_time.as_nanos());
        h = mix(h, self.flops_per_iteration.to_bits());
        h = mix(h, self.tokens_per_iteration.to_bits());
        for b in [
            self.memory.per_gpu_bytes,
            self.memory.total_gpu_bytes,
            self.memory.per_node_cpu_bytes,
            self.memory.total_cpu_bytes,
            self.memory.nvme_bytes,
        ] {
            h = mix(h, b.to_bits());
        }
        for (label, bytes) in &self.memory.gpu_breakdown {
            h = mix_str(h, label);
            h = mix(h, bytes.to_bits());
        }
        h = mix(h, self.bandwidth.bucket.as_nanos());
        for ((node, class), stats) in &self.bandwidth.stats {
            h = mix_str(mix(h, *node as u64), &class.to_string());
            h = mix(h, stats.avg.to_bits());
            h = mix(h, stats.p90.to_bits());
            h = mix(h, stats.peak.to_bits());
        }
        for ((node, class), series) in &self.bandwidth.series {
            h = mix_str(mix(h, *node as u64), &class.to_string());
            for s in series {
                h = mix(h, s.to_bits());
            }
        }
        for span in self.spans.spans() {
            h = mix_str(mix(h, span.track as u64), &span.label);
            h = mix(h, span.start.as_nanos());
            h = mix(h, span.end.as_nanos());
        }
        for hot in &self.hot_links {
            h = mix_str(h, &hot.name);
            h = mix(h, hot.avg.to_bits());
            h = mix(h, hot.utilization.to_bits());
        }
        mix(h, self.plan_lowerings as u64)
    }
}

/// SplitMix64-style mixing step used by [`TrainingReport::digest`] (and
/// [`crate::SearchReport::digest`]).
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn mix_str(h: u64, s: &str) -> u64 {
    let mut h = mix(h, s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(buf));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_report_roundtrip() {
        let mut r = BandwidthReport::new(SimTime::from_ms(50.0));
        r.insert(
            0,
            LinkClass::NvLink,
            BandwidthStats {
                avg: 83e9,
                p90: 94.8e9,
                peak: 94.8e9,
            },
            vec![80e9, 86e9],
        );
        assert_eq!(r.stats(0, LinkClass::NvLink).avg, 83e9);
        assert_eq!(r.series(0, LinkClass::NvLink).len(), 2);
        assert_eq!(r.stats(1, LinkClass::Roce), BandwidthStats::default());
        assert!(r.series(1, LinkClass::Roce).is_empty());
    }

    #[test]
    fn tiling_fills_window() {
        let mut r = BandwidthReport::new(SimTime::from_secs(1.0));
        r.insert(
            0,
            LinkClass::Dram,
            BandwidthStats::default(),
            vec![1.0, 2.0],
        );
        let t = r.tiled_series(0, LinkClass::Dram, 5.0);
        assert_eq!(t, vec![1.0, 2.0, 1.0, 2.0, 1.0]);
        assert!(r.tiled_series(0, LinkClass::Roce, 5.0).is_empty());
    }

    fn blank_report() -> TrainingReport {
        TrainingReport {
            strategy: "x".into(),
            model_params: 1.4e9,
            nodes: 1,
            iter_time: SimTime::from_ms(500.0),
            flops_per_iteration: 2.0e14,
            tokens_per_iteration: 16384.0,
            memory: MemoryPlan {
                per_gpu_bytes: 0.0,
                total_gpu_bytes: 0.0,
                per_node_cpu_bytes: 0.0,
                total_cpu_bytes: 0.0,
                nvme_bytes: 0.0,
                gpu_breakdown: vec![],
            },
            bandwidth: BandwidthReport::new(SimTime::from_ms(50.0)),
            spans: SpanLog::new(),
            hot_links: Vec::new(),
            plan_lowerings: 1,
            resilience: None,
            solver: SolverStats::default(),
            engine: EngineStats::default(),
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = blank_report();
        let mut b = blank_report();
        assert_eq!(a.digest(), b.digest());
        b.iter_time = SimTime::from_ms(501.0);
        assert_ne!(a.digest(), b.digest());
        let mut c = blank_report();
        c.resilience = Some(ResilienceMetrics {
            goodput_flops: 1.0,
            iter_p50: SimTime::ZERO,
            iter_p90: SimTime::ZERO,
            iter_p99: SimTime::ZERO,
            executed_iterations: 0,
            committed_iterations: 0,
            replayed_iterations: 0,
            checkpoints_taken: 0,
            checkpoint_time: SimTime::ZERO,
            recoveries: 0,
            recovery_time: SimTime::ZERO,
            faults_applied: 0,
            wall_time: SimTime::ZERO,
            schedule_digest: 0,
        });
        // Resilience bookkeeping is excluded from the measurement digest.
        assert_eq!(a.digest(), c.digest());
        // Solver work accounting likewise measures the simulator, not the
        // simulated system, and must not perturb the digest.
        let mut d = blank_report();
        d.solver.solves = 999;
        d.solver.links_touched = 12345;
        assert_eq!(a.digest(), d.digest());
        // Engine work accounting (ticks, batches, arena reuse) is also an
        // execution detail: the arena and reference engines must digest
        // identically despite disjoint counter profiles.
        let mut e = blank_report();
        e.engine.ticks = 777;
        e.engine.batches = 42;
        e.engine.arena_reuse_hits = 7;
        assert_eq!(a.digest(), e.digest());
        assert_eq!(
            c.resilience.as_ref().unwrap().time_to_recover(),
            SimTime::ZERO
        );
    }

    #[test]
    fn throughput_math() {
        let report = TrainingReport {
            strategy: "x".into(),
            model_params: 1.4e9,
            nodes: 1,
            iter_time: SimTime::from_ms(500.0),
            flops_per_iteration: 2.0e14,
            tokens_per_iteration: 16384.0,
            memory: MemoryPlan {
                per_gpu_bytes: 0.0,
                total_gpu_bytes: 0.0,
                per_node_cpu_bytes: 0.0,
                total_cpu_bytes: 0.0,
                nvme_bytes: 0.0,
                gpu_breakdown: vec![],
            },
            bandwidth: BandwidthReport::new(SimTime::from_ms(50.0)),
            spans: SpanLog::new(),
            hot_links: Vec::new(),
            plan_lowerings: 1,
            resilience: None,
            solver: SolverStats::default(),
            engine: EngineStats::default(),
        };
        assert!((report.throughput_tflops() - 400.0).abs() < 1e-9);
        assert!((report.model_billions() - 1.4).abs() < 1e-12);
    }
}
