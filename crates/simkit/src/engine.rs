//! The discrete-event executor: runs a [`Dag`] against a [`FlowNet`] and a
//! set of compute resources.
//!
//! Compute tasks occupy resource slots (FIFO when oversubscribed), transfer
//! tasks become flows whose rates are continuously re-balanced by the
//! max-min fair solver, and the engine advances virtual time from event to
//! event. Multiple runs may share one engine and one network so that
//! back-to-back training iterations keep a continuous clock (and token
//! buckets keep their state).
//!
//! # Two executors, one contract
//!
//! The engine ships two implementations selected by [`EngineMode`]:
//!
//! * **Arena** (the default): per-task state lives in flat parallel vectors
//!   (struct-of-arrays: kind tags, durations, in-degrees), edges are
//!   CSR-packed index ranges instead of per-node `Vec`s, and same-instant
//!   completions are drained in batches — retire in bulk, then decrement
//!   successor in-degrees in one pass. All of it sits in a reusable
//!   [`Arena`] scratch refilled per run, so steady-state iterations touch
//!   the allocator only to clone the outcome's completion-time vector.
//! * **Reference**: the original per-run-allocating event loop, kept
//!   verbatim as the oracle.
//!
//! Both produce bit-identical results — same completion times, same span
//! log, same event sequence numbers, same fault-cursor position. In debug
//! builds (or with `ZEROSIM_ENGINE_SHADOW=1`) every arena run re-executes
//! on the reference engine against cloned network/cursor state and asserts
//! exactly that, mirroring the max-min solver's `ZEROSIM_SHADOW` gate.
//! Per-run work counters are reported via [`EngineStats`].

use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::dag::{Dag, TaskId, TaskKind};
use crate::error::SimError;
use crate::fault::{FaultCursor, FaultKind};
use crate::flow::{FlowId, FlowNet, FlowObserver, LinkId};
use crate::record::{EngineStats, SpanLog};
use crate::time::SimTime;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    TaskDone(TaskId),
    FlowStart(TaskId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct ResourceState {
    free_slots: usize,
    waiting: VecDeque<TaskId>,
}

/// Selects which executor implementation a [`DagEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Flat-arena SoA storage with batched completion processing (the
    /// production engine).
    Arena,
    /// The original per-run-allocating event loop, kept as the oracle for
    /// shadow verification and differential tests.
    Reference,
}

impl EngineMode {
    /// The process-level default from `ZEROSIM_ENGINE`: `"reference"`
    /// selects [`EngineMode::Reference`]; anything else — or unset —
    /// selects [`EngineMode::Arena`].
    pub fn from_env() -> Self {
        match std::env::var("ZEROSIM_ENGINE") {
            Ok(v) if v == "reference" => EngineMode::Reference,
            _ => EngineMode::Arena,
        }
    }
}

impl Default for EngineMode {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Shadow-verification default: `ZEROSIM_ENGINE_SHADOW` when set ("0" or
/// empty disables), else on in debug builds — the same contract as the
/// max-min solver's `ZEROSIM_SHADOW`.
fn engine_shadow_default() -> bool {
    match std::env::var("ZEROSIM_ENGINE_SHADOW") {
        Ok(v) => v != "0" && !v.is_empty(),
        Err(_) => cfg!(debug_assertions),
    }
}

/// Sentinel for an empty slot in the arena's dense flow→task map.
const NO_TASK: u32 = u32::MAX;

/// Phase tag of a task in the arena's SoA layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArenaKind {
    Compute,
    Transfer,
    Delay,
    Marker,
}

/// Reusable flat storage for one DAG execution.
///
/// Structure arrays are ingested from the borrowed [`Dag`] once per
/// *structure*: the arena remembers the DAG's identity
/// ([`Dag::structure_id`]) plus its position in the duration-mutation log,
/// so repeat runs of the same graph skip the O(tasks + edges) walk and
/// replay only the durations restamped since the previous run. Any
/// identity or epoch mismatch falls back to a full rebuild, and backing
/// capacity is retained either way, so steady-state refills never touch
/// the allocator.
#[derive(Debug, Default)]
struct Arena {
    /// `(structure id, duration epoch, consumed log length)` of the DAG the
    /// structure arrays currently describe. Structure id 0 never matches.
    seen_structure: u64,
    seen_epoch: u64,
    seen_log_pos: usize,
    // Structure (SoA, refilled per run).
    kind: Vec<ArenaKind>,
    resource: Vec<u32>,
    duration: Vec<SimTime>,
    latency: Vec<SimTime>,
    bytes: Vec<f64>,
    cap: Vec<f64>,
    /// Tasks that emit a timeline span (label and track both present).
    has_span: Vec<bool>,
    /// CSR offsets (`n + 1` entries) into `route_links`.
    route_off: Vec<u32>,
    route_links: Vec<LinkId>,
    /// CSR offsets (`n + 1` entries) into `succs`.
    succ_off: Vec<u32>,
    succs: Vec<u32>,
    /// Pristine in-degrees; copied into `indeg` at the start of each run.
    indeg0: Vec<u32>,
    // Per-run mutable state.
    indeg: Vec<u32>,
    ready: VecDeque<u32>,
    heap: BinaryHeap<Event>,
    task_start: Vec<SimTime>,
    task_finish: Vec<SimTime>,
    free_slots: Vec<usize>,
    waiting: Vec<VecDeque<u32>>,
    /// Dense flow→task map: entry `i` is the task awaiting flow
    /// `base + i`, where `base` is the network's flow counter at run start.
    flow_task: Vec<u32>,
    /// Scratch for one same-instant completion batch.
    batch: Vec<EventKind>,
}

impl Arena {
    /// Prepares the arena for one run of `dag`. Returns true on a reuse
    /// hit: either the structure was already ingested (durations patched
    /// from the log) or the rebuild fit entirely in retained capacity.
    fn refill(&mut self, dag: &Dag, slot_counts: &[usize]) -> bool {
        let log = dag.duration_log();
        if dag.structure_id() != 0
            && dag.structure_id() == self.seen_structure
            && dag.duration_epoch() == self.seen_epoch
            && self.seen_log_pos <= log.len()
            && self.kind.len() == dag.len()
            && self.waiting.len() >= slot_counts.len()
        {
            // Same structure as last run: only durations can have changed,
            // and the log says exactly which ones.
            for &(idx, dur) in &log[self.seen_log_pos..] {
                self.duration[idx as usize] = dur;
            }
            self.seen_log_pos = log.len();
            self.reset_run_state(dag.len(), slot_counts);
            return true;
        }
        let hit = self.rebuild(dag, slot_counts);
        self.seen_structure = dag.structure_id();
        self.seen_epoch = dag.duration_epoch();
        self.seen_log_pos = log.len();
        self.reset_run_state(dag.len(), slot_counts);
        hit
    }

    /// Re-ingests every structure array from `dag`, retaining capacity.
    /// Returns true when no array had to reallocate.
    #[allow(clippy::cast_possible_truncation)] // task/edge counts fit u32
    fn rebuild(&mut self, dag: &Dag, slot_counts: &[usize]) -> bool {
        let caps = (
            self.kind.capacity(),
            self.succs.capacity(),
            self.route_links.capacity(),
            self.waiting.capacity(),
            self.task_finish.capacity(),
        );
        self.kind.clear();
        self.resource.clear();
        self.duration.clear();
        self.latency.clear();
        self.bytes.clear();
        self.cap.clear();
        self.has_span.clear();
        self.route_off.clear();
        self.route_links.clear();
        self.succ_off.clear();
        self.succs.clear();
        self.indeg0.clear();
        self.route_off.push(0);
        self.succ_off.push(0);
        for ((spec, preds), succs) in dag.tasks.iter().zip(&dag.preds).zip(&dag.succs) {
            let (kind, resource, duration, latency, bytes, cap) = match &spec.kind {
                TaskKind::Compute { resource, duration } => (
                    ArenaKind::Compute,
                    resource.0 as u32,
                    *duration,
                    SimTime::ZERO,
                    0.0,
                    0.0,
                ),
                TaskKind::Transfer {
                    route,
                    bytes,
                    latency,
                    cap,
                } => {
                    self.route_links.extend_from_slice(route);
                    (
                        ArenaKind::Transfer,
                        0,
                        SimTime::ZERO,
                        *latency,
                        *bytes,
                        *cap,
                    )
                }
                TaskKind::Delay { duration } => {
                    (ArenaKind::Delay, 0, *duration, SimTime::ZERO, 0.0, 0.0)
                }
                TaskKind::Marker => (ArenaKind::Marker, 0, SimTime::ZERO, SimTime::ZERO, 0.0, 0.0),
            };
            self.kind.push(kind);
            self.resource.push(resource);
            self.duration.push(duration);
            self.latency.push(latency);
            self.bytes.push(bytes);
            self.cap.push(cap);
            self.has_span
                .push(spec.label.is_some() && spec.track.is_some());
            self.route_off.push(self.route_links.len() as u32);
            self.indeg0.push(preds.len() as u32);
            self.succs.extend(succs.iter().map(|s| s.0 as u32));
            self.succ_off.push(self.succs.len() as u32);
        }
        if self.waiting.len() < slot_counts.len() {
            self.waiting.resize_with(slot_counts.len(), VecDeque::new);
        }
        caps == (
            self.kind.capacity(),
            self.succs.capacity(),
            self.route_links.capacity(),
            self.waiting.capacity(),
            self.task_finish.capacity(),
        )
    }

    /// Resets the per-run mutable state (in-degrees, ready set, clocks,
    /// slots, flow map). All writes are memset-class over retained
    /// buffers; the structure arrays are untouched.
    #[allow(clippy::cast_possible_truncation)] // task counts fit u32
    fn reset_run_state(&mut self, n: usize, slot_counts: &[usize]) {
        self.indeg.clear();
        self.indeg.extend_from_slice(&self.indeg0);
        self.ready.clear();
        for (t, &d) in self.indeg.iter().enumerate() {
            if d == 0 {
                self.ready.push_back(t as u32);
            }
        }
        self.heap.clear();
        self.task_start.clear();
        self.task_start.resize(n, SimTime::ZERO);
        self.task_finish.clear();
        self.task_finish.resize(n, SimTime::ZERO);
        self.free_slots.clear();
        self.free_slots.extend_from_slice(slot_counts);
        for w in &mut self.waiting {
            w.clear();
        }
        self.flow_task.clear();
        self.batch.clear();
    }
}

/// Mutable engine state threaded through the reference executor, so the
/// shadow path can drive it against scratch copies instead of the engine's
/// own fields.
struct EngineState<'a> {
    slot_counts: &'a [usize],
    spans: &'a mut SpanLog,
    seq: &'a mut u64,
    resource_scale: &'a mut [f64],
    stats: &'a mut EngineStats,
}

/// Result of executing one DAG.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Time at which the run began.
    pub started: SimTime,
    /// Time at which the last task finished (or, for an interrupted run,
    /// the time of the interrupting fault).
    pub finished: SimTime,
    /// Per-task completion times, indexed by [`TaskId::index`]. Tasks that
    /// never finished (interrupted run) report [`SimTime::ZERO`].
    pub task_finish: Vec<SimTime>,
    /// True when a [`FaultKind::NodeLoss`] aborted the run before every
    /// task finished. The work of this run is lost; a resilience layer
    /// models restart-from-checkpoint and replay.
    pub interrupted: bool,
}

impl RunOutcome {
    /// Wall-clock (virtual) duration of the run.
    pub fn makespan(&self) -> SimTime {
        self.finished - self.started
    }
}

/// Executes DAGs on a fixed set of compute resources.
///
/// ```
/// use zerosim_simkit::dag::{DagBuilder, ResourceId};
/// use zerosim_simkit::engine::DagEngine;
/// use zerosim_simkit::flow::FlowNet;
/// use zerosim_simkit::SimTime;
///
/// # fn main() -> Result<(), zerosim_simkit::SimError> {
/// let mut net = FlowNet::new();
/// let link = net.add_link("pcie", 100.0);
/// let mut b = DagBuilder::new();
/// let c = b.compute(ResourceId(0), SimTime::from_ms(1.0), "gemm", &[]);
/// b.transfer(vec![link], 100.0, SimTime::ZERO, "h2d", 0, &[c]);
/// let dag = b.build();
///
/// let mut engine = DagEngine::new(vec![1]); // one GPU, one slot
/// let outcome = engine.run(&mut net, &dag, SimTime::ZERO, None)?;
/// assert_eq!(outcome.makespan(), SimTime::from_ms(1.0) + SimTime::from_secs(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DagEngine {
    slot_counts: Vec<usize>,
    spans: SpanLog,
    seq: u64,
    /// Per-resource service-rate factor (1.0 = nominal). Mutated by
    /// [`FaultKind::SlowResource`] / [`FaultKind::RestoreResource`] events
    /// and persistent across runs, so a straggler stays slow from iteration
    /// to iteration until explicitly restored.
    resource_scale: Vec<f64>,
    mode: EngineMode,
    shadow: bool,
    arena: Arena,
    stats: EngineStats,
}

/// Stretches a compute duration by the inverse of a service-rate factor.
///
/// `scale == 1.0` is an exact no-op (bit-identical to the unscaled
/// duration), which is what keeps fault-free runs byte-identical to the
/// pre-fault-injection engine.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // ns fit u64
fn scale_duration(scale: f64, d: SimTime) -> SimTime {
    if scale == 1.0 {
        d
    } else {
        SimTime::from_nanos((d.as_nanos() as f64 / scale).round() as u64)
    }
}

impl DagEngine {
    /// Creates an engine with `slot_counts[i]` concurrent slots on resource
    /// `ResourceId(i)`.
    ///
    /// The executor defaults to [`EngineMode::from_env`] and shadow
    /// verification defaults to on in debug builds (`ZEROSIM_ENGINE_SHADOW`
    /// overrides either way); see [`DagEngine::set_mode`] and
    /// [`DagEngine::set_shadow_verify`].
    ///
    /// # Panics
    /// Panics if any slot count is zero.
    pub fn new(slot_counts: Vec<usize>) -> Self {
        assert!(
            slot_counts.iter().all(|&s| s > 0),
            "every resource needs at least one slot"
        );
        let n = slot_counts.len();
        DagEngine {
            slot_counts,
            spans: SpanLog::new(),
            seq: 0,
            resource_scale: vec![1.0; n],
            mode: EngineMode::default(),
            shadow: engine_shadow_default(),
            arena: Arena::default(),
            stats: EngineStats::default(),
        }
    }

    /// The executor implementation this engine runs.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Selects the executor implementation ([`EngineMode::Arena`] by
    /// default; [`EngineMode::Reference`] forces the oracle path).
    pub fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// Whether arena runs are cross-checked against the reference engine.
    pub fn shadow_verify(&self) -> bool {
        self.shadow
    }

    /// Enables or disables shadow verification: when on, every
    /// [`EngineMode::Arena`] run is re-executed on the reference engine
    /// against cloned network/cursor state and the results are asserted
    /// bit-identical (outcome, spans, sequence numbers, resource scales,
    /// fault-cursor position). Panics on divergence.
    pub fn set_shadow_verify(&mut self, on: bool) {
        self.shadow = on;
    }

    /// Work counters accumulated across all runs of this engine.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Current service-rate factor of resource `resource` (1.0 = nominal).
    ///
    /// # Panics
    /// Panics if `resource` is out of range.
    pub fn resource_scale(&self, resource: usize) -> f64 {
        self.resource_scale[resource]
    }

    /// Timeline spans accumulated across all runs so far.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Takes ownership of the accumulated spans, leaving the log empty.
    pub fn take_spans(&mut self) -> SpanLog {
        std::mem::take(&mut self.spans)
    }

    /// Executes `dag` starting at `start`, observing transfers with `obs`
    /// when provided.
    ///
    /// # Errors
    /// Returns [`SimError::Deadlock`] if tasks remain unfinished when no
    /// event can make progress (an impossible dependency given the DAG
    /// builder, but background flows in `net` could in principle starve a
    /// token bucket forever) and [`SimError::UnknownResource`] if a compute
    /// task names a resource the engine was not configured with.
    pub fn run(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        obs: Option<&mut dyn FlowObserver>,
    ) -> Result<RunOutcome, SimError> {
        self.run_faulted(net, dag, start, obs, &mut FaultCursor::empty())
    }

    /// Executes `dag` starting at `start` while consuming due events from
    /// `faults`.
    ///
    /// Fault times are first-class event candidates: the engine advances
    /// virtual time to the earliest of the timer heap, the flow network,
    /// and the next fault, so a link rescale takes effect exactly at its
    /// scheduled instant and in-flight flows re-converge to the new max-min
    /// fair allocation from that point on. Events at the same instant are
    /// ordered: finished work is retired first, then faults apply, then
    /// newly ready tasks launch (under the post-fault service rates).
    ///
    /// A [`FaultKind::NodeLoss`] aborts the run at its firing time: flows
    /// this run started are cancelled (bytes already moved stay moved) and
    /// the returned outcome has [`RunOutcome::interrupted`] set. The cursor
    /// keeps its position across calls, so one schedule spans a whole
    /// multi-iteration simulation on a continuous clock.
    ///
    /// With an exhausted cursor this is exactly [`DagEngine::run`]: the
    /// fault hooks are bit-level no-ops, which keeps healthy runs
    /// byte-identical to the pre-fault-injection engine.
    ///
    /// # Errors
    /// Same conditions as [`DagEngine::run`], plus the [`SimError`]s of
    /// [`FlowNet::scale_link`] / [`FlowNet::set_link_cap`] for malformed
    /// link events and [`SimError::BadRateFactor`] /
    /// [`SimError::UnknownResource`] for malformed resource events.
    pub fn run_faulted(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        obs: Option<&mut dyn FlowObserver>,
        faults: &mut FaultCursor,
    ) -> Result<RunOutcome, SimError> {
        match self.mode {
            EngineMode::Reference => {
                let state = EngineState {
                    slot_counts: &self.slot_counts,
                    spans: &mut self.spans,
                    seq: &mut self.seq,
                    resource_scale: &mut self.resource_scale,
                    stats: &mut self.stats,
                };
                Self::reference_run(state, net, dag, start, obs, faults)
            }
            EngineMode::Arena if self.shadow => {
                let net_snap = net.clone();
                let cursor_snap = faults.clone();
                let scale_snap = self.resource_scale.clone();
                let seq_snap = self.seq;
                let span_mark = self.spans.spans().len();
                let stats_before = self.stats;
                let primary = self.run_faulted_arena(net, dag, start, obs, faults)?;
                let delta = self.stats.delta_since(&stats_before);
                self.shadow_reference_check(
                    dag,
                    start,
                    &primary,
                    &delta,
                    span_mark,
                    net_snap,
                    cursor_snap,
                    faults,
                    scale_snap,
                    seq_snap,
                );
                Ok(primary)
            }
            EngineMode::Arena => self.run_faulted_arena(net, dag, start, obs, faults),
        }
    }

    /// Re-executes the run just performed by the arena engine on the
    /// reference engine, against the pre-run snapshots, and asserts both
    /// executors produced bit-identical results.
    #[allow(clippy::too_many_arguments)] // snapshot plumbing, internal only
    fn shadow_reference_check(
        &mut self,
        dag: &Dag,
        start: SimTime,
        primary: &RunOutcome,
        primary_delta: &EngineStats,
        span_mark: usize,
        mut net: FlowNet,
        mut cursor: FaultCursor,
        cursor_after: &FaultCursor,
        mut scale: Vec<f64>,
        mut seq: u64,
    ) {
        let mut ref_spans = SpanLog::new();
        let mut ref_stats = EngineStats::default();
        let state = EngineState {
            slot_counts: &self.slot_counts,
            spans: &mut ref_spans,
            seq: &mut seq,
            resource_scale: &mut scale,
            stats: &mut ref_stats,
        };
        let reference = Self::reference_run(state, &mut net, dag, start, None, &mut cursor)
            .unwrap_or_else(|e| {
                panic!(
                    "engine shadow: reference engine errored where the arena engine succeeded: {e}"
                )
            });
        assert_eq!(
            primary.started, reference.started,
            "engine shadow: start diverged"
        );
        assert_eq!(
            primary.finished, reference.finished,
            "engine shadow: finish time diverged (arena {:?} vs reference {:?})",
            primary.finished, reference.finished
        );
        assert_eq!(
            primary.interrupted, reference.interrupted,
            "engine shadow: interrupt flag diverged"
        );
        assert_eq!(
            primary.task_finish, reference.task_finish,
            "engine shadow: per-task completion times diverged"
        );
        assert_eq!(
            &self.spans.spans()[span_mark..],
            ref_spans.spans(),
            "engine shadow: timeline spans diverged"
        );
        assert_eq!(
            self.resource_scale, scale,
            "engine shadow: resource scales diverged"
        );
        assert_eq!(
            self.seq, seq,
            "engine shadow: event sequence numbers diverged"
        );
        assert_eq!(
            cursor_after, &cursor,
            "engine shadow: fault cursor diverged"
        );
        assert_eq!(
            primary_delta.tasks_finished, ref_stats.tasks_finished,
            "engine shadow: retired task count diverged"
        );
        assert_eq!(
            primary_delta.flows_started, ref_stats.flows_started,
            "engine shadow: started flow count diverged"
        );
        assert_eq!(
            primary_delta.ticks, ref_stats.ticks,
            "engine shadow: event-loop tick count diverged"
        );
        self.stats.shadow_runs += 1;
    }

    /// The arena executor: flat SoA task storage, CSR edges, and batched
    /// completion processing. Produces results bit-identical to
    /// [`DagEngine::reference_run`]; see the batching argument inline.
    #[allow(clippy::cast_possible_truncation)] // task indices fit u32
    fn run_faulted_arena(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        mut obs: Option<&mut dyn FlowObserver>,
        faults: &mut FaultCursor,
    ) -> Result<RunOutcome, SimError> {
        let n = dag.len();

        // Validates resources up front so the error is immediate.
        for spec in &dag.tasks {
            if let TaskKind::Compute { resource, .. } = &spec.kind {
                if resource.0 >= self.slot_counts.len() {
                    return Err(SimError::UnknownResource {
                        resource: resource.0,
                    });
                }
            }
        }

        self.stats.runs += 1;
        if self.arena.refill(dag, &self.slot_counts) {
            self.stats.arena_reuse_hits += 1;
        } else {
            self.stats.arena_builds += 1;
        }

        // Flows started by this run get ids `flow_base..`, densely — the
        // engine is the only party starting flows mid-run — so the
        // flow→task map is a plain vector instead of a hash map.
        let flow_base = net.next_flow_raw();
        let mut now = start;
        let mut finished = 0usize;
        let mut interrupted = false;
        let mut batch = std::mem::take(&mut self.arena.batch);

        // Retires one finished task: completion time, span, slot handoff.
        // Does NOT touch in-degrees — that is the decrement pass's job.
        macro_rules! retire {
            ($t:expr) => {{
                let ti = $t as usize;
                self.arena.task_finish[ti] = now;
                if self.arena.has_span[ti] {
                    let spec = dag.task(TaskId(ti));
                    if let (Some(label), Some(track)) = (&spec.label, spec.track) {
                        self.spans
                            .push(track, label.clone(), self.arena.task_start[ti], now);
                    }
                }
                if self.arena.kind[ti] == ArenaKind::Compute {
                    let r = self.arena.resource[ti] as usize;
                    if let Some(next) = self.arena.waiting[r].pop_front() {
                        // Hand the slot directly to the next waiter.
                        let ni = next as usize;
                        self.arena.task_start[ni] = now;
                        self.seq += 1;
                        self.arena.heap.push(Event {
                            at: now
                                + scale_duration(self.resource_scale[r], self.arena.duration[ni]),
                            seq: self.seq,
                            kind: EventKind::TaskDone(TaskId(ni)),
                        });
                    } else {
                        self.arena.free_slots[r] += 1;
                    }
                }
                finished += 1;
                self.stats.tasks_finished += 1;
            }};
        }

        // Decrements successor in-degrees of one finished task, extending
        // the ready queue in successor order.
        macro_rules! cascade {
            ($t:expr) => {{
                let ti = $t as usize;
                let lo = self.arena.succ_off[ti] as usize;
                let hi = self.arena.succ_off[ti + 1] as usize;
                for i in lo..hi {
                    let s = self.arena.succs[i] as usize;
                    self.arena.indeg[s] -= 1;
                    if self.arena.indeg[s] == 0 {
                        self.arena.ready.push_back(s as u32);
                    }
                }
            }};
        }

        macro_rules! start_flow_for {
            ($t:expr) => {{
                let ti = $t as usize;
                let lo = self.arena.route_off[ti] as usize;
                let hi = self.arena.route_off[ti + 1] as usize;
                let fid = net.start_flow_capped(
                    &self.arena.route_links[lo..hi],
                    self.arena.bytes[ti],
                    self.arena.cap[ti],
                )?;
                debug_assert_eq!(fid.raw() - flow_base, self.arena.flow_task.len() as u64);
                self.arena.flow_task.push($t);
                self.stats.flows_started += 1;
            }};
        }

        // Backstop against pathological event storms (e.g. a token bucket
        // oscillating at nanosecond granularity): proportional to DAG size
        // plus a generous constant for background-flow churn.
        let event_budget = 10_000_000u64 + 200 * n as u64;
        let mut events = 0u64;
        loop {
            events += 1;
            self.stats.ticks += 1;
            if events > event_budget {
                self.arena.batch = batch;
                return Err(SimError::EventLimit {
                    budget: event_budget,
                });
            }
            // Apply every fault due at (or before) the current clock before
            // launching new work, so tasks that become ready at a fault
            // instant start under the post-fault service rates and a node
            // loss pre-empts them entirely. Events left over from an
            // aborted previous run (e.g. a restore that fired while a node
            // was rebooting) are caught up here as well.
            let mut lost_node = false;
            while let Some(ev) = faults.next_due(now) {
                match &ev.kind {
                    FaultKind::SetLinkCap {
                        link,
                        bytes_per_sec,
                    } => net.set_link_cap(*link, *bytes_per_sec)?,
                    FaultKind::ScaleLink { link, factor } => net.scale_link(*link, *factor)?,
                    FaultKind::RestoreLink { link } => net.restore_link(*link)?,
                    FaultKind::SlowResource { resource, factor } => {
                        if *resource >= self.resource_scale.len() {
                            return Err(SimError::UnknownResource {
                                resource: *resource,
                            });
                        }
                        if !(factor.is_finite() && *factor > 0.0) {
                            return Err(SimError::BadRateFactor {
                                resource: *resource,
                            });
                        }
                        self.resource_scale[*resource] = *factor;
                    }
                    FaultKind::RestoreResource { resource } => {
                        if *resource >= self.resource_scale.len() {
                            return Err(SimError::UnknownResource {
                                resource: *resource,
                            });
                        }
                        self.resource_scale[*resource] = 1.0;
                    }
                    FaultKind::NodeLoss { .. } => {
                        lost_node = true;
                        break;
                    }
                }
            }
            if lost_node {
                // Abandon the run: in-flight transfers this run started are
                // torn down (bytes already moved stay observed), pending
                // tasks never finish. Recovery — restart-from-checkpoint and
                // replay — is modelled by the caller. Cancellation order is
                // immaterial: flow teardown commutes in the solver.
                for (i, &t) in self.arena.flow_task.iter().enumerate() {
                    if t != NO_TASK {
                        net.cancel_flow(FlowId::from_raw(flow_base + i as u64));
                    }
                }
                self.arena.flow_task.clear();
                interrupted = true;
                break;
            }
            // Launch everything that is ready. Markers finish (and cascade)
            // inline so marker chains drain within one launch sweep, exactly
            // as in the reference engine.
            while let Some(t) = self.arena.ready.pop_front() {
                let ti = t as usize;
                self.arena.task_start[ti] = now;
                match self.arena.kind[ti] {
                    ArenaKind::Marker => {
                        retire!(t);
                        cascade!(t);
                    }
                    ArenaKind::Delay => {
                        self.seq += 1;
                        self.arena.heap.push(Event {
                            at: now + self.arena.duration[ti],
                            seq: self.seq,
                            kind: EventKind::TaskDone(TaskId(ti)),
                        });
                    }
                    ArenaKind::Compute => {
                        let r = self.arena.resource[ti] as usize;
                        if self.arena.free_slots[r] > 0 {
                            self.arena.free_slots[r] -= 1;
                            self.seq += 1;
                            self.arena.heap.push(Event {
                                at: now
                                    + scale_duration(
                                        self.resource_scale[r],
                                        self.arena.duration[ti],
                                    ),
                                seq: self.seq,
                                kind: EventKind::TaskDone(TaskId(ti)),
                            });
                        } else {
                            self.arena.waiting[r].push_back(t);
                        }
                    }
                    ArenaKind::Transfer => {
                        let latency = self.arena.latency[ti];
                        if latency.is_zero() {
                            start_flow_for!(t);
                        } else {
                            self.seq += 1;
                            self.arena.heap.push(Event {
                                at: now + latency,
                                seq: self.seq,
                                kind: EventKind::FlowStart(TaskId(ti)),
                            });
                        }
                    }
                }
            }

            if finished == n {
                break;
            }

            // Next event: earliest of timer heap, flow-network events, and
            // the next scheduled fault (all strictly in the future — due
            // faults were consumed above, due timers fired below).
            let timer_at = self.arena.heap.peek().map(|e| e.at);
            let flow_at = net.next_event_in().map(|dt| {
                // Positive, finite, and bounded by the horizon: exact in u64.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let ns = (dt * 1e9).ceil().max(1.0) as u64;
                now + SimTime::from_nanos(ns)
            });
            let fault_at = faults.peek_at();
            let Some(t_next) = [timer_at, flow_at, fault_at].into_iter().flatten().min() else {
                self.arena.batch = batch;
                return Err(SimError::Deadlock {
                    pending: n - finished,
                });
            };

            // Advance the network to t_next.
            let dt_secs = (t_next - now).as_secs();
            let done_flows = match obs.as_deref_mut() {
                Some(o) => net.advance(now, dt_secs, o),
                None => net.advance(now, dt_secs, &mut crate::flow::NullObserver),
            };
            now = t_next;

            // Batched completion processing. One batch holds every event
            // due at `now`: finished flows first (ascending id — the order
            // the reference engine retires them), then due timer events in
            // (time, seq) heap order. The batch is retired in bulk, then a
            // single sweep decrements successor in-degrees. The split is
            // sound because retiring touches {spans, slots, heap} while
            // decrementing touches {indeg, ready} — disjoint state — and
            // both passes preserve event order. Slot handoffs scheduled at
            // `now` during a retire pass carry fresh (larger) sequence
            // numbers, so draining them in follow-up rounds of the same
            // tick replays the reference engine's pop order exactly.
            debug_assert!(batch.is_empty());
            for fid in done_flows {
                let raw = fid.raw();
                if raw < flow_base {
                    continue; // Foreign (background) flows complete silently.
                }
                let idx = (raw - flow_base) as usize;
                let t = self.arena.flow_task[idx];
                if t == NO_TASK {
                    continue;
                }
                self.arena.flow_task[idx] = NO_TASK;
                batch.push(EventKind::TaskDone(TaskId(t as usize)));
            }
            loop {
                while let Some(&ev) = self.arena.heap.peek() {
                    if ev.at > now {
                        break;
                    }
                    self.arena.heap.pop();
                    batch.push(ev.kind);
                }
                if batch.is_empty() {
                    break;
                }
                self.stats.batches += 1;
                self.stats.max_batch = self.stats.max_batch.max(batch.len());
                for &ev in &batch {
                    match ev {
                        EventKind::TaskDone(t) => retire!(t.0 as u32),
                        EventKind::FlowStart(t) => start_flow_for!(t.0 as u32),
                    }
                }
                for &ev in &batch {
                    if let EventKind::TaskDone(t) = ev {
                        cascade!(t.0 as u32);
                    }
                }
                batch.clear();
            }
        }

        self.arena.batch = batch;
        Ok(RunOutcome {
            started: start,
            finished: now,
            task_finish: self.arena.task_finish.clone(),
            interrupted,
        })
    }

    /// The reference executor: the original event loop, with per-run
    /// allocations and interleaved (unbatched) completion processing. Kept
    /// verbatim as the oracle for shadow mode and differential tests.
    fn reference_run(
        state: EngineState<'_>,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        mut obs: Option<&mut dyn FlowObserver>,
        faults: &mut FaultCursor,
    ) -> Result<RunOutcome, SimError> {
        let EngineState {
            slot_counts,
            spans,
            seq,
            resource_scale,
            stats,
        } = state;
        let n = dag.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| dag.preds(TaskId(i)).len()).collect();
        let mut ready: VecDeque<TaskId> = (0..n).map(TaskId).filter(|t| indeg[t.0] == 0).collect();
        let mut resources: Vec<ResourceState> = slot_counts
            .iter()
            .map(|&s| ResourceState {
                free_slots: s,
                waiting: VecDeque::new(),
            })
            .collect();
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut flow_task: HashMap<FlowId, TaskId> = HashMap::new();
        let mut task_start: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut task_finish: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut finished = 0usize;
        let mut now = start;
        let mut interrupted = false;

        // Validates resources up front so the error is immediate.
        for t in dag.task_ids() {
            if let TaskKind::Compute { resource, .. } = &dag.task(t).kind {
                if resource.0 >= slot_counts.len() {
                    return Err(SimError::UnknownResource {
                        resource: resource.0,
                    });
                }
            }
        }

        stats.runs += 1;

        macro_rules! finish_task {
            ($t:expr) => {{
                let t: TaskId = $t;
                task_finish[t.0] = now;
                let spec = dag.task(t);
                if let (Some(label), Some(track)) = (&spec.label, spec.track) {
                    spans.push(track, label.clone(), task_start[t.0], now);
                }
                if let TaskKind::Compute { resource, .. } = &spec.kind {
                    let rs = &mut resources[resource.0];
                    if let Some(next) = rs.waiting.pop_front() {
                        // Hand the slot directly to the next waiter.
                        task_start[next.0] = now;
                        if let TaskKind::Compute { duration, .. } = &dag.task(next).kind {
                            *seq += 1;
                            heap.push(Event {
                                at: now + scale_duration(resource_scale[resource.0], *duration),
                                seq: *seq,
                                kind: EventKind::TaskDone(next),
                            });
                        }
                    } else {
                        rs.free_slots += 1;
                    }
                }
                finished += 1;
                stats.tasks_finished += 1;
                for &s in dag.succs(t) {
                    indeg[s.0] -= 1;
                    if indeg[s.0] == 0 {
                        ready.push_back(s);
                    }
                }
            }};
        }

        macro_rules! start_flow_for {
            ($t:expr) => {{
                let t: TaskId = $t;
                if let TaskKind::Transfer {
                    route, bytes, cap, ..
                } = &dag.task(t).kind
                {
                    let fid = net.start_flow_capped(route, *bytes, *cap)?;
                    flow_task.insert(fid, t);
                    stats.flows_started += 1;
                }
            }};
        }

        // Backstop against pathological event storms (e.g. a token bucket
        // oscillating at nanosecond granularity): proportional to DAG size
        // plus a generous constant for background-flow churn.
        let event_budget = 10_000_000u64 + 200 * n as u64;
        let mut events = 0u64;
        loop {
            events += 1;
            stats.ticks += 1;
            if events > event_budget {
                return Err(SimError::EventLimit {
                    budget: event_budget,
                });
            }
            // Apply every fault due at (or before) the current clock before
            // launching new work, so tasks that become ready at a fault
            // instant start under the post-fault service rates and a node
            // loss pre-empts them entirely. Events left over from an
            // aborted previous run (e.g. a restore that fired while a node
            // was rebooting) are caught up here as well.
            let mut lost_node = false;
            while let Some(ev) = faults.next_due(now) {
                match &ev.kind {
                    FaultKind::SetLinkCap {
                        link,
                        bytes_per_sec,
                    } => net.set_link_cap(*link, *bytes_per_sec)?,
                    FaultKind::ScaleLink { link, factor } => net.scale_link(*link, *factor)?,
                    FaultKind::RestoreLink { link } => net.restore_link(*link)?,
                    FaultKind::SlowResource { resource, factor } => {
                        if *resource >= resource_scale.len() {
                            return Err(SimError::UnknownResource {
                                resource: *resource,
                            });
                        }
                        if !(factor.is_finite() && *factor > 0.0) {
                            return Err(SimError::BadRateFactor {
                                resource: *resource,
                            });
                        }
                        resource_scale[*resource] = *factor;
                    }
                    FaultKind::RestoreResource { resource } => {
                        if *resource >= resource_scale.len() {
                            return Err(SimError::UnknownResource {
                                resource: *resource,
                            });
                        }
                        resource_scale[*resource] = 1.0;
                    }
                    FaultKind::NodeLoss { .. } => {
                        lost_node = true;
                        break;
                    }
                }
            }
            if lost_node {
                // Abandon the run: in-flight transfers this run started are
                // torn down (bytes already moved stay observed), pending
                // tasks never finish. Recovery — restart-from-checkpoint and
                // replay — is modelled by the caller.
                for (fid, _) in flow_task.drain() {
                    net.cancel_flow(fid);
                }
                interrupted = true;
                break;
            }
            // Launch everything that is ready.
            while let Some(t) = ready.pop_front() {
                task_start[t.0] = now;
                match &dag.task(t).kind {
                    TaskKind::Marker => finish_task!(t),
                    TaskKind::Delay { duration } => {
                        *seq += 1;
                        heap.push(Event {
                            at: now + *duration,
                            seq: *seq,
                            kind: EventKind::TaskDone(t),
                        });
                    }
                    TaskKind::Compute { resource, duration } => {
                        let rs = &mut resources[resource.0];
                        if rs.free_slots > 0 {
                            rs.free_slots -= 1;
                            *seq += 1;
                            heap.push(Event {
                                at: now + scale_duration(resource_scale[resource.0], *duration),
                                seq: *seq,
                                kind: EventKind::TaskDone(t),
                            });
                        } else {
                            rs.waiting.push_back(t);
                        }
                    }
                    TaskKind::Transfer { latency, .. } => {
                        if latency.is_zero() {
                            start_flow_for!(t);
                        } else {
                            *seq += 1;
                            heap.push(Event {
                                at: now + *latency,
                                seq: *seq,
                                kind: EventKind::FlowStart(t),
                            });
                        }
                    }
                }
            }

            if finished == n {
                break;
            }

            // Next event: earliest of timer heap, flow-network events, and
            // the next scheduled fault (all strictly in the future — due
            // faults were consumed above, due timers fired below).
            let timer_at = heap.peek().map(|e| e.at);
            let flow_at = net.next_event_in().map(|dt| {
                // Positive, finite, and bounded by the horizon: exact in u64.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let ns = (dt * 1e9).ceil().max(1.0) as u64;
                now + SimTime::from_nanos(ns)
            });
            let fault_at = faults.peek_at();
            let Some(t_next) = [timer_at, flow_at, fault_at].into_iter().flatten().min() else {
                return Err(SimError::Deadlock {
                    pending: n - finished,
                });
            };

            // Advance the network to t_next.
            let dt_secs = (t_next - now).as_secs();
            let done_flows = match obs.as_deref_mut() {
                Some(o) => net.advance(now, dt_secs, o),
                None => net.advance(now, dt_secs, &mut crate::flow::NullObserver),
            };
            now = t_next;
            for fid in done_flows {
                if let Some(t) = flow_task.remove(&fid) {
                    finish_task!(t);
                }
                // Foreign (background) flows complete silently.
            }

            // Fire all timer events scheduled exactly at t_next. Pop first
            // and push back when not yet due, which keeps this loop free of
            // a peek-then-pop unwrap.
            while let Some(ev) = heap.pop() {
                if ev.at > now {
                    heap.push(ev);
                    break;
                }
                match ev.kind {
                    EventKind::TaskDone(t) => finish_task!(t),
                    EventKind::FlowStart(t) => start_flow_for!(t),
                }
            }
        }

        Ok(RunOutcome {
            started: start,
            finished: now,
            task_finish,
            interrupted,
        })
    }

    /// Runs `dag` `count` times back to back, returning the outcomes.
    ///
    /// # Errors
    /// Propagates the first error from [`DagEngine::run`].
    pub fn run_iterations(
        &mut self,
        net: &mut FlowNet,
        dag: &Dag,
        start: SimTime,
        count: usize,
        mut obs: Option<&mut dyn FlowObserver>,
    ) -> Result<Vec<RunOutcome>, SimError> {
        let mut outcomes = Vec::with_capacity(count);
        let mut t = start;
        for _ in 0..count {
            let reborrow: Option<&mut dyn FlowObserver> = match obs.as_mut() {
                Some(o) => Some(&mut **o),
                None => None,
            };
            let outcome = self.run(net, dag, t, reborrow)?;
            t = outcome.finished;
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{DagBuilder, ResourceId};
    use crate::record::BandwidthRecorder;

    fn ms(v: f64) -> SimTime {
        SimTime::from_ms(v)
    }

    #[test]
    fn serial_compute_chain() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        let a = b.compute(ResourceId(0), ms(1.0), "a", &[]);
        let c = b.compute(ResourceId(0), ms(2.0), "b", &[a]);
        let _ = c;
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), ms(3.0));
    }

    #[test]
    fn slot_contention_serializes() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), ms(1.0), "a", &[]);
        b.compute(ResourceId(0), ms(1.0), "b", &[]);
        b.compute(ResourceId(0), ms(1.0), "c", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), ms(3.0));

        let mut eng2 = DagEngine::new(vec![3]);
        let out2 = eng2.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out2.makespan(), ms(1.0));
    }

    #[test]
    fn transfer_with_latency() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1000.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 1000.0, ms(5.0), "x", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        // 5 ms latency + 1 s transfer.
        let secs = out.makespan().as_secs();
        assert!((secs - 1.005).abs() < 1e-6, "got {secs}");
    }

    #[test]
    fn compute_overlaps_transfer() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), SimTime::from_secs(1.0), "gemm", &[]);
        b.transfer(vec![l], 100.0, SimTime::ZERO, "comm", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert!((out.makespan().as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn diamond_dependencies() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        let root = b.compute(ResourceId(0), ms(1.0), "root", &[]);
        let left = b.compute(ResourceId(0), ms(2.0), "left", &[root]);
        let right = b.compute(ResourceId(1), ms(3.0), "right", &[root]);
        b.marker(&[left, right]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1, 1]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), ms(4.0));
    }

    #[test]
    fn spans_are_recorded() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), ms(2.0), "gemm", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(eng.spans().busy_time(0, "gemm"), ms(2.0));
    }

    #[test]
    fn iterations_keep_continuous_clock() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), ms(10.0), "iter", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let outs = eng
            .run_iterations(&mut net, &dag, SimTime::ZERO, 3, None)
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[2].finished, ms(30.0));
        assert_eq!(outs[1].started, ms(10.0));
    }

    #[test]
    fn unknown_resource_is_an_error() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(5), ms(1.0), "x", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let err = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap_err();
        assert!(matches!(err, SimError::UnknownResource { resource: 5 }));
    }

    #[test]
    fn observer_records_transfer_bytes() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1000.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 500.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        let mut rec = BandwidthRecorder::new(ms(100.0));
        let mut eng = DagEngine::new(vec![]);
        eng.run(&mut net, &dag, SimTime::ZERO, Some(&mut rec))
            .unwrap();
        assert!((rec.total_bytes(l) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn two_transfers_share_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 100.0, SimTime::ZERO, "x", 0, &[]);
        b.transfer(vec![l], 100.0, SimTime::ZERO, "y", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert!((out.makespan().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_dag_completes_instantly() {
        let mut net = FlowNet::new();
        let dag = DagBuilder::new().build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, ms(7.0), None).unwrap();
        assert_eq!(out.makespan(), SimTime::ZERO);
        assert_eq!(out.started, ms(7.0));
    }

    /// A DAG exercising every task kind with slot contention and shared
    /// links — the shape most likely to expose a batching-order bug.
    fn mixed_dag(b: &mut DagBuilder, l: LinkId) {
        let root = b.delay(ms(1.0), &[]);
        let mut joins = Vec::new();
        for i in 0..8 {
            let c = b.compute(ResourceId(i % 2), ms(2.0 + i as f64), "k", &[root]);
            let t = b.transfer(vec![l], 300.0 + 10.0 * i as f64, ms(0.5), "x", 0, &[c]);
            joins.push(t);
        }
        let m = b.marker(&joins);
        b.compute(ResourceId(0), ms(1.0), "tail", &[m]);
    }

    #[test]
    fn arena_and_reference_agree_on_contended_mixed_dag() {
        let mut build = DagBuilder::new();
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1000.0);
        mixed_dag(&mut build, l);
        let dag = build.build();

        let mut arena = DagEngine::new(vec![2, 1]);
        arena.set_mode(EngineMode::Arena);
        arena.set_shadow_verify(false);
        let mut net_a = net.clone();
        let out_a = arena.run(&mut net_a, &dag, SimTime::ZERO, None).unwrap();

        let mut reference = DagEngine::new(vec![2, 1]);
        reference.set_mode(EngineMode::Reference);
        let mut net_r = net.clone();
        let out_r = reference
            .run(&mut net_r, &dag, SimTime::ZERO, None)
            .unwrap();

        assert_eq!(out_a.finished, out_r.finished);
        assert_eq!(out_a.task_finish, out_r.task_finish);
        assert_eq!(arena.spans().spans(), reference.spans().spans());
        let (sa, sr) = (arena.stats(), reference.stats());
        assert_eq!(sa.tasks_finished, sr.tasks_finished);
        assert_eq!(sa.flows_started, sr.flows_started);
        assert_eq!(sa.ticks, sr.ticks);
        assert!(sa.batches > 0, "arena engine must drain batches");
        assert_eq!(sr.batches, 0, "reference engine never batches");
    }

    #[test]
    fn shadow_mode_cross_checks_and_counts() {
        let mut build = DagBuilder::new();
        let mut net = FlowNet::new();
        let l = net.add_link("l", 1000.0);
        mixed_dag(&mut build, l);
        let dag = build.build();
        let mut eng = DagEngine::new(vec![2, 1]);
        eng.set_mode(EngineMode::Arena);
        eng.set_shadow_verify(true);
        eng.run_iterations(&mut net, &dag, SimTime::ZERO, 3, None)
            .unwrap();
        assert_eq!(eng.stats().shadow_runs, 3);
        assert_eq!(eng.stats().runs, 3);
    }

    #[test]
    fn arena_reuses_capacity_across_iterations() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        let a = b.compute(ResourceId(0), ms(1.0), "a", &[]);
        b.compute(ResourceId(0), ms(2.0), "b", &[a]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        eng.set_mode(EngineMode::Arena);
        eng.set_shadow_verify(false);
        eng.run_iterations(&mut net, &dag, SimTime::ZERO, 4, None)
            .unwrap();
        let s = eng.stats();
        assert_eq!(s.runs, 4);
        assert_eq!(s.arena_builds + s.arena_reuse_hits, 4);
        assert!(
            s.arena_reuse_hits >= 3,
            "steady-state refills must not reallocate (hits {})",
            s.arena_reuse_hits
        );
    }

    #[test]
    fn engine_mode_env_parsing() {
        // Can't mutate the environment safely in a parallel test binary;
        // check the setter round-trip and the default instead.
        let mut eng = DagEngine::new(vec![1]);
        eng.set_mode(EngineMode::Reference);
        assert_eq!(eng.mode(), EngineMode::Reference);
        eng.set_mode(EngineMode::Arena);
        assert_eq!(eng.mode(), EngineMode::Arena);
        eng.set_shadow_verify(false);
        assert!(!eng.shadow_verify());
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::dag::{DagBuilder, ResourceId};

    #[test]
    fn engine_coexists_with_background_flows() {
        // A long-lived background flow keeps running while a DAG executes;
        // the engine must neither adopt nor stall on it.
        let mut net = FlowNet::new();
        let shared = net.add_link("shared", 100.0);
        net.start_flow(&[shared], 1_000_000.0).unwrap(); // background
        let mut b = DagBuilder::new();
        b.transfer(vec![shared], 100.0, SimTime::ZERO, "fg", 0, &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        // Foreground shares the link 50/50: 100 bytes at 50 B/s.
        assert!((out.makespan().as_secs() - 2.0).abs() < 1e-6);
        // Background flow still in the network afterwards.
        assert_eq!(net.flow_count(), 1);
    }

    #[test]
    fn event_budget_error_is_surfaced() {
        // A DAG needing more events than the budget allows must error, not
        // hang. Build a chain long enough to exceed a tiny artificial
        // budget... the budget is generous, so instead verify the error
        // type renders and compares.
        let e = SimError::EventLimit { budget: 7 };
        assert!(e.to_string().contains('7'));
        assert_eq!(e, SimError::EventLimit { budget: 7 });
    }

    #[test]
    fn straggler_stretches_compute() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), SimTime::from_ms(10.0), "k", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let sched = FaultSchedule::new(0).at(
            0.0,
            FaultKind::SlowResource {
                resource: 0,
                factor: 0.5,
            },
        );
        let mut cur = sched.cursor();
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        // Half speed -> twice as long.
        assert_eq!(out.makespan(), SimTime::from_ms(20.0));
        assert!(!out.interrupted);
        assert_eq!(eng.resource_scale(0), 0.5);
        // The slowdown persists across runs until restored.
        let out2 = eng
            .run_faulted(&mut net, &dag, out.finished, None, &mut cur)
            .unwrap();
        assert_eq!(out2.makespan(), SimTime::from_ms(20.0));
    }

    #[test]
    fn link_degradation_mid_run_stretches_transfer() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 100.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        // Degrade to 50% at t = 0.5 s: 50 bytes move in the first half
        // second, the remaining 50 take 1 s -> 1.5 s total.
        let sched = FaultSchedule::new(0).at(
            0.5,
            FaultKind::ScaleLink {
                link: l,
                factor: 0.5,
            },
        );
        let mut cur = sched.cursor();
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        let secs = out.makespan().as_secs();
        assert!((secs - 1.5).abs() < 1e-6, "got {secs}");
    }

    #[test]
    fn node_loss_interrupts_and_cancels_flows() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 1000.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        let sched = FaultSchedule::new(0).at(2.0, FaultKind::NodeLoss { node: 1 });
        let mut cur = sched.cursor();
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        assert!(out.interrupted);
        assert_eq!(out.finished, SimTime::from_secs(2.0));
        // The in-flight flow was cancelled, not leaked as background.
        assert_eq!(net.flow_count(), 0);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn flap_window_recovers() {
        use crate::fault::FaultSchedule;
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let mut b = DagBuilder::new();
        b.transfer(vec![l], 200.0, SimTime::ZERO, "x", 0, &[]);
        let dag = b.build();
        // Down (to the flap floor) during [1, 2): ~100 bytes before, ~0.1
        // bytes during, rest after -> just under 3 s total.
        let sched = FaultSchedule::new(0).flap(l, 1.0, 1.0);
        let mut cur = sched.cursor();
        let mut eng = DagEngine::new(vec![]);
        let out = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut cur)
            .unwrap();
        let secs = out.makespan().as_secs();
        assert!(secs > 2.9 && secs < 3.1, "got {secs}");
        // Healthy run of the same DAG takes 2 s.
        let healthy = DagEngine::new(vec![])
            .run(&mut net, &dag, SimTime::ZERO, None)
            .unwrap();
        assert!((healthy.makespan().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_cursor_matches_plain_run() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let mut b = DagBuilder::new();
        let c = b.compute(ResourceId(0), SimTime::from_ms(3.0), "gemm", &[]);
        b.transfer(vec![l], 150.0, SimTime::from_us(10.0), "x", 0, &[c]);
        let dag = b.build();
        let mut e1 = DagEngine::new(vec![1]);
        let a = e1.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        let mut e2 = DagEngine::new(vec![1]);
        let b2 = e2
            .run_faulted(
                &mut net,
                &dag,
                SimTime::ZERO,
                None,
                &mut crate::fault::FaultCursor::empty(),
            )
            .unwrap();
        assert_eq!(a.finished, b2.finished);
        assert_eq!(a.task_finish, b2.task_finish);
        assert!(!a.interrupted && !b2.interrupted);
    }

    #[test]
    fn bad_fault_events_surface_typed_errors() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        b.compute(ResourceId(0), SimTime::from_ms(1.0), "k", &[]);
        let dag = b.build();
        let mut eng = DagEngine::new(vec![1]);
        let sched = FaultSchedule::new(0).at(
            0.0,
            FaultKind::SlowResource {
                resource: 9,
                factor: 0.5,
            },
        );
        let err = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut sched.cursor())
            .unwrap_err();
        assert_eq!(err, SimError::UnknownResource { resource: 9 });
        let sched = FaultSchedule::new(0).at(
            0.0,
            FaultKind::SlowResource {
                resource: 0,
                factor: 0.0,
            },
        );
        let err = eng
            .run_faulted(&mut net, &dag, SimTime::ZERO, None, &mut sched.cursor())
            .unwrap_err();
        assert_eq!(err, SimError::BadRateFactor { resource: 0 });
    }

    #[test]
    fn multi_slot_resources_run_in_parallel_up_to_capacity() {
        let mut net = FlowNet::new();
        let mut b = DagBuilder::new();
        for _ in 0..6 {
            b.compute(ResourceId(0), SimTime::from_ms(1.0), "k", &[]);
        }
        let dag = b.build();
        // Two slots: 6 tasks take 3 ms.
        let mut eng = DagEngine::new(vec![2]);
        let out = eng.run(&mut net, &dag, SimTime::ZERO, None).unwrap();
        assert_eq!(out.makespan(), SimTime::from_ms(3.0));
    }

    #[test]
    fn faulted_runs_agree_across_engines() {
        use crate::fault::{FaultKind, FaultSchedule};
        let mut b = DagBuilder::new();
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 100.0);
        let c0 = b.compute(ResourceId(0), SimTime::from_ms(4.0), "k0", &[]);
        let c1 = b.compute(ResourceId(0), SimTime::from_ms(4.0), "k1", &[]);
        b.transfer(vec![l], 400.0, SimTime::ZERO, "x", 0, &[c0, c1]);
        let dag = b.build();
        let sched = FaultSchedule::new(0)
            .at(
                0.002,
                FaultKind::SlowResource {
                    resource: 0,
                    factor: 0.5,
                },
            )
            .at(
                1.0,
                FaultKind::ScaleLink {
                    link: l,
                    factor: 0.25,
                },
            );

        let mut arena = DagEngine::new(vec![1]);
        arena.set_mode(EngineMode::Arena);
        arena.set_shadow_verify(false);
        let mut cur_a = sched.cursor();
        let mut net_a = net.clone();
        let out_a = arena
            .run_faulted(&mut net_a, &dag, SimTime::ZERO, None, &mut cur_a)
            .unwrap();

        let mut reference = DagEngine::new(vec![1]);
        reference.set_mode(EngineMode::Reference);
        let mut cur_r = sched.cursor();
        let mut net_r = net.clone();
        let out_r = reference
            .run_faulted(&mut net_r, &dag, SimTime::ZERO, None, &mut cur_r)
            .unwrap();

        assert_eq!(out_a.finished, out_r.finished);
        assert_eq!(out_a.task_finish, out_r.task_finish);
        assert_eq!(cur_a, cur_r);
        assert_eq!(arena.resource_scale(0), reference.resource_scale(0));
    }
}
