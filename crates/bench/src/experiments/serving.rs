//! ext14 — serving latency: TTFT/TPOT percentiles under continuous
//! batching.
//!
//! The paper characterizes *training* bandwidth; this extension asks the
//! same where-does-the-time-go question of inference. Two studies:
//!
//! 1. **Golden deployments** — the 1.4 B paper model served three ways:
//!    dense TP over one node (NVLink collectives), dense TP spanning two
//!    nodes (every decode step's all-reduces cross RoCE — the serving
//!    analogue of Megatron's Fig. 7-b collapse), and ZeRO-Inference-style
//!    NVMe weight streaming on one node (HBM holds only the KV cache and
//!    a double-buffered layer group; every step re-reads the weights).
//! 2. **Decode regime sweep** — TPOT versus batch size for the two dense
//!    deployments, decomposed against the fixed per-step serving overhead
//!    ([`zerosim_strategies::Calibration::serve_step_overhead_s`]). On
//!    one node decode never reaches the wire: the frontend overhead plus
//!    the small-kernel efficiency floor (decode GEMMs sit far left on the
//!    `gemm_eff` curve — the memory-bound regime) set a per-step cost
//!    that is nearly flat in batch size, so continuous batching buys
//!    throughput almost for free. Crossing nodes turns decode
//!    *wire-bound*: every layer's tensor-parallel all-reduce pays the
//!    RoCE hop, the serving analogue of Megatron's Fig. 7-b collapse.
//!
//! Everything is seed-stamped and byte-identical at any worker width; the
//! `servesim --bench` scorecard gates on it in `verify.sh`.

use zerosim_core::{ArrivalProcess, ServeRun, ServeSpec, TraceConfig};
use zerosim_hw::{ClusterSpec, NvmeId, VolumeId};
use zerosim_model::GptConfig;
use zerosim_report::Table;
use zerosim_simkit::SimTime;
use zerosim_strategies::{Calibration, InfinityPlacement, ServingStrategy, TrainOptions};

use crate::data;

/// Model size served by the golden deployments (the paper's 1.4 B
/// baseline).
pub const SERVE_MODEL_BILLIONS: f64 = 1.4;

/// Seed stamped onto every golden serving trace.
pub const SERVE_SEED: u64 = 1405;

/// The golden request trace: closed loop (8 always-busy clients), mixed
/// prompt lengths, short chat-style completions.
pub fn golden_trace() -> TraceConfig {
    TraceConfig {
        requests: 24,
        arrivals: ArrivalProcess::Closed { concurrency: 8 },
        prompt_tokens: (128, 512),
        output_tokens: (16, 48),
        seed: SERVE_SEED,
    }
}

/// The three golden deployments of [`SERVE_MODEL_BILLIONS`]; specs are
/// self-contained, so they replay identically on any worker.
pub fn golden_deployments() -> Vec<ServeSpec> {
    let model = GptConfig::paper_model_with_params(SERVE_MODEL_BILLIONS);
    let d = |drive| NvmeId { node: 0, drive };
    vec![
        ServeSpec::new(
            "Dense TP=4 @ 1 node",
            ServingStrategy::Dense,
            model,
            TrainOptions::single_node(),
            golden_trace(),
        ),
        ServeSpec::new(
            "Dense TP=8 @ 2 nodes",
            ServingStrategy::Dense,
            model,
            TrainOptions::for_nodes(2),
            golden_trace(),
        )
        .with_cluster(ClusterSpec::default().with_nodes(2)),
        ServeSpec::new(
            "ZeRO-Inference NVMe @ 1 node",
            ServingStrategy::NvmeStreamed {
                placement: InfinityPlacement::new(vec![VolumeId(0)]),
            },
            model,
            TrainOptions::single_node(),
            golden_trace(),
        )
        .with_volume(vec![d(0), d(1)]),
    ]
}

/// Runs the golden deployments across `workers` threads.
///
/// # Panics
/// Panics when a golden deployment fails to fit or run — these are the
/// artifact's own baseline shapes, so that is a harness bug.
pub fn golden_runs(workers: usize) -> Vec<ServeRun> {
    data::serve_runner_with(workers)
        .run_parallel(golden_deployments())
        .expect("golden serving deployments run")
}

fn ms(t: SimTime) -> String {
    format!("{:.1}", t.as_secs() * 1e3)
}

/// Renders the golden-deployment latency table shared by the artifact and
/// the `servesim` scorecard.
pub fn latency_table(runs: &[ServeRun]) -> String {
    let mut t = Table::new(vec![
        "deployment",
        "TTFT p50 ms",
        "TTFT p99 ms",
        "TPOT p50 ms",
        "TPOT p99 ms",
        "tok/s",
        "KV peak GB",
        "steps",
        "lowerings",
    ]);
    for run in runs {
        let r = &run.report;
        t.row(vec![
            run.label.clone(),
            ms(r.ttft_p50),
            ms(r.ttft_p99),
            ms(r.tpot_p50),
            ms(r.tpot_p99),
            format!("{:.0}", r.tokens_per_s()),
            format!("{:.2}", r.kv_peak_bytes / 1e9),
            format!("{}", r.prefills + r.decode_steps),
            format!("{}", r.plan_lowerings),
        ]);
    }
    t.render()
}

/// One row of the decode regime sweep: a dense deployment at a fixed
/// closed-loop batch, with the TPOT decomposition that names its
/// bottleneck.
#[derive(Debug, Clone)]
pub struct RegimePoint {
    /// Nodes the deployment spans.
    pub nodes: usize,
    /// Closed-loop concurrency (= the steady decode batch).
    pub batch: usize,
    /// Median time per output token, seconds.
    pub tpot_s: f64,
    /// Fraction of TPOT that is the fixed serving-frontend overhead.
    pub overhead_share: f64,
    /// Fraction of TPOT added by crossing nodes (vs the matched
    /// single-node batch); zero for single-node rows.
    pub wire_share: f64,
}

impl RegimePoint {
    /// The dominant term: `protocol` (fixed overhead), `wire` (inter-node
    /// collectives), or `compute`.
    pub fn verdict(&self) -> &'static str {
        if self.overhead_share >= 0.5 {
            "protocol-bound"
        } else if self.wire_share > self.overhead_share {
            "wire-bound"
        } else {
            "compute-bound"
        }
    }
}

/// The decode regime sweep: dense serving at 1 and 2 nodes, closed-loop
/// batch 1/4/8, fixed 32-token completions so every decode step runs at
/// the nominal batch.
///
/// # Panics
/// Panics when a sweep cell fails to run (same rationale as
/// [`golden_runs`]).
pub fn regime_sweep(workers: usize) -> Vec<RegimePoint> {
    let model = GptConfig::paper_model_with_params(SERVE_MODEL_BILLIONS);
    let batches = [1usize, 4, 8];
    let mut specs = Vec::new();
    for nodes in [1usize, 2] {
        for &batch in &batches {
            let trace = TraceConfig {
                requests: 2 * batch,
                arrivals: ArrivalProcess::Closed { concurrency: batch },
                prompt_tokens: (256, 256),
                output_tokens: (32, 32),
                seed: SERVE_SEED,
            };
            specs.push(
                ServeSpec::new(
                    format!("dense {nodes}n b{batch}"),
                    ServingStrategy::Dense,
                    model,
                    TrainOptions::for_nodes(nodes),
                    trace,
                )
                .with_cluster(ClusterSpec::default().with_nodes(nodes))
                .with_max_batch(batch),
            );
        }
    }
    let runs = data::serve_runner_with(workers)
        .run_parallel(specs)
        .expect("regime sweep runs");
    let overhead = Calibration::default().serve_step_overhead_s;
    let (single, dual) = runs.split_at(batches.len());
    let mut points = Vec::new();
    for (nodes, rows) in [(1usize, single), (2usize, dual)] {
        for (k, run) in rows.iter().enumerate() {
            let tpot = run.report.tpot_p50.as_secs();
            let wire_share = if nodes == 1 {
                0.0
            } else {
                (1.0 - single[k].report.tpot_p50.as_secs() / tpot).max(0.0)
            };
            points.push(RegimePoint {
                nodes,
                batch: batches[k],
                tpot_s: tpot,
                overhead_share: (overhead / tpot).min(1.0),
                wire_share,
            });
        }
    }
    points
}

/// Renders the regime-sweep table.
pub fn regime_table(points: &[RegimePoint]) -> String {
    let mut t = Table::new(vec![
        "config",
        "batch",
        "TPOT ms",
        "overhead %",
        "wire %",
        "bound by",
    ]);
    for p in points {
        t.row(vec![
            format!("dense @ {} node(s)", p.nodes),
            format!("{}", p.batch),
            format!("{:.1}", p.tpot_s * 1e3),
            format!("{:.0}", p.overhead_share * 100.0),
            format!("{:.0}", p.wire_share * 100.0),
            p.verdict().to_string(),
        ]);
    }
    t.render()
}

/// The full ext14 artifact: golden-deployment latencies plus the decode
/// regime sweep.
pub fn ext14_serving_latency() -> String {
    let workers = data::sweep_workers();
    let runs = golden_runs(workers);
    let nvme_over_dense =
        runs[2].report.ttft_p50.as_secs() / runs[0].report.ttft_p50.as_secs().max(1e-12);
    let points = regime_sweep(workers);
    format!(
        "ext14 — serving the {SERVE_MODEL_BILLIONS} B paper model: TTFT/TPOT percentiles\n\
         under continuous batching (closed loop, 8 clients, seed {SERVE_SEED}):\n{}\n\
         NVMe weight streaming re-reads every layer group from flash each\n\
         step, so it trades {nvme_over_dense:.1}x the dense TTFT (and far worse TPOT)\n\
         for an HBM footprint that no longer holds the weights at all.\n\n\
         Decode regime sweep — median TPOT vs batch, decomposed against the\n\
         fixed per-step frontend overhead and the inter-node all-reduce\n\
         delta:\n{}",
        latency_table(&runs),
        regime_table(&points),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_deployments_order_and_shape() {
        let specs = golden_deployments();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].label, "Dense TP=4 @ 1 node");
        assert!(specs[2].volumes.len() == 1 && specs[2].volumes[0].len() == 2);
    }

    #[test]
    fn nvme_streaming_costs_ttft() {
        let runs = golden_runs(2);
        let dense = &runs[0].report;
        let nvme = &runs[2].report;
        assert_eq!(dense.requests, golden_trace().requests);
        assert_eq!(nvme.requests, golden_trace().requests);
        assert!(
            nvme.ttft_p50 > dense.ttft_p50,
            "streaming weights from flash must cost first-token latency: {:?} vs {:?}",
            nvme.ttft_p50,
            dense.ttft_p50
        );
        assert!(nvme.tpot_p50 > dense.tpot_p50);
    }

    #[test]
    fn decode_batches_for_free_on_node_and_goes_wire_bound_across() {
        let points = regime_sweep(2);
        let at = |nodes: usize, batch: usize| {
            points
                .iter()
                .find(|p| p.nodes == nodes && p.batch == batch)
                .expect("sweep cell present")
        };
        // Single node: per-step cost is overhead + kernel floors, so TPOT
        // is nearly flat in batch — batching is (almost) free throughput.
        let b1 = at(1, 1);
        assert!(
            at(1, 8).tpot_s < 1.1 * b1.tpot_s,
            "8x the batch must cost <10% extra TPOT: {:?} vs {b1:?}",
            at(1, 8)
        );
        assert!(
            b1.overhead_share > 0.3,
            "the fixed frontend overhead must be a first-order term: {b1:?}"
        );
        assert_ne!(b1.verdict(), "wire-bound");
        // Two nodes: every layer's all-reduce crosses RoCE.
        let cross = at(2, 8);
        assert_eq!(cross.verdict(), "wire-bound");
        assert!(
            cross.wire_share > 0.2,
            "crossing nodes must add all-reduce latency: {cross:?}"
        );
        // TPOT grows monotonically with batch on a fixed deployment.
        for nodes in [1, 2] {
            assert!(at(nodes, 8).tpot_s >= at(nodes, 1).tpot_s);
        }
    }
}
