//! Error type of the characterization engine.

use std::error::Error;
use std::fmt;

use zerosim_simkit::SimError;
use zerosim_strategies::StrategyError;

/// Errors from running a training characterization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// The configuration does not fit the hardware's memory tiers.
    DoesNotFit {
        /// The tier that overflows first.
        tier: &'static str,
        /// Bytes requested on the most-loaded unit of that tier.
        requested: f64,
    },
    /// The cluster specification was invalid.
    BadCluster(String),
    /// A fault scenario did not resolve against the cluster (unknown
    /// node/GPU, non-physical factor, invalid time). See
    /// [`crate::FaultScenario::try_compile`].
    BadScenario(String),
    /// The strategy rejected the training configuration (bad parallel
    /// layout, state placement violating Table I, invalid plan).
    InvalidConfig(StrategyError),
    /// Node losses outran the recovery budget of the fault policy (see
    /// [`crate::FaultConfig`]).
    RecoveryExhausted {
        /// The `max_recoveries` budget that was exhausted.
        budget: usize,
    },
    /// The achieved-model-size search kept fitting past any physical model
    /// scale, which means the memory model (not the configuration) is
    /// broken. See [`crate::try_max_model_size`].
    CapacityDiverged {
        /// The layer count the exponential probe reached before giving up.
        probed_layers: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::DoesNotFit { tier, requested } => write!(
                f,
                "configuration does not fit: {tier} tier needs {:.1} GB",
                requested / 1e9
            ),
            CoreError::BadCluster(msg) => write!(f, "invalid cluster: {msg}"),
            CoreError::BadScenario(msg) => write!(f, "invalid fault scenario: {msg}"),
            CoreError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            CoreError::RecoveryExhausted { budget } => write!(
                f,
                "node loss exhausted the recovery budget ({budget} recoveries)"
            ),
            CoreError::CapacityDiverged { probed_layers } => write!(
                f,
                "capacity search still fits at {probed_layers} layers; check the memory model"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<StrategyError> for CoreError {
    fn from(e: StrategyError) -> Self {
        CoreError::InvalidConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::DoesNotFit {
            tier: "gpu",
            requested: 50e9,
        };
        assert!(e.to_string().contains("gpu"));
        assert!(e.to_string().contains("50.0 GB"));
        let s = CoreError::Sim(SimError::Deadlock { pending: 1 });
        assert!(Error::source(&s).is_some());
        assert!(CoreError::BadCluster("x".into()).to_string().contains("x"));
        assert!(CoreError::BadScenario("node 9".into())
            .to_string()
            .contains("fault scenario: node 9"));
        let c = CoreError::from(StrategyError::layout("tp=3"));
        assert!(c.to_string().contains("tp=3"));
        assert!(Error::source(&c).is_some());
        let r = CoreError::RecoveryExhausted { budget: 2 };
        assert!(r.to_string().contains("2 recoveries"));
        assert!(Error::source(&r).is_none());
        let d = CoreError::CapacityDiverged {
            probed_layers: 1 << 22,
        };
        assert!(d.to_string().contains("4194304 layers"));
        assert!(Error::source(&d).is_none());
    }
}
