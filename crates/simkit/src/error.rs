//! Error types for the simulation kernel.

use std::error::Error;
use std::fmt;

/// Errors produced while executing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No event can make progress but tasks remain unfinished.
    Deadlock {
        /// Number of tasks still pending.
        pending: usize,
    },
    /// A compute task referenced a resource the engine was not configured
    /// with.
    UnknownResource {
        /// Index of the unknown resource.
        resource: usize,
    },
    /// The run exceeded its event budget (a runaway event storm).
    EventLimit {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A flow was started with an empty route.
    EmptyRoute,
    /// A flow route (or a fault event) referenced a link that does not
    /// belong to this network.
    UnknownLink {
        /// Index of the unknown link.
        link: usize,
    },
    /// A flow was started with a non-finite or non-positive byte count.
    NonPositiveFlow,
    /// A flow was started with a non-positive or NaN rate cap.
    NonPositiveCap,
    /// A link capacity rescale used a non-finite or non-positive value.
    BadCapacity {
        /// Index of the link being rescaled.
        link: usize,
    },
    /// A fault event was scheduled at a negative, NaN, or infinite time.
    BadFaultTime,
    /// A fault event used a non-finite or non-positive service-rate factor.
    BadRateFactor {
        /// Index of the resource being rescaled.
        resource: usize,
    },
    /// [`FlowNet::drain`](crate::flow::FlowNet::drain) exceeded its event
    /// budget without retiring every flow — the max-min solver is cycling
    /// instead of converging (typically a token-bucket limit oscillation).
    SolverDiverged {
        /// Number of solver events processed before giving up.
        iterations: u64,
        /// Size (in links) of the last dirty component the incremental
        /// solver re-converged, to localize the cycling subgraph.
        component_links: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { pending } => {
                write!(f, "simulation deadlocked with {pending} pending tasks")
            }
            SimError::UnknownResource { resource } => {
                write!(f, "compute task references unknown resource {resource}")
            }
            SimError::EventLimit { budget } => {
                write!(f, "simulation exceeded its event budget of {budget}")
            }
            SimError::EmptyRoute => {
                write!(f, "flow route must contain at least one link")
            }
            SimError::UnknownLink { link } => {
                write!(f, "route references unknown link {link}")
            }
            SimError::NonPositiveFlow => {
                write!(f, "flow size must be finite and positive")
            }
            SimError::NonPositiveCap => {
                write!(f, "flow cap must be positive")
            }
            SimError::BadCapacity { link } => {
                write!(f, "link capacity must be finite and positive (link {link})")
            }
            SimError::BadFaultTime => {
                write!(f, "fault event time must be finite and non-negative")
            }
            SimError::BadRateFactor { resource } => {
                write!(
                    f,
                    "resource rate factor must be finite and positive (resource {resource})"
                )
            }
            SimError::SolverDiverged {
                iterations,
                component_links,
            } => {
                write!(
                    f,
                    "max-min solver did not converge after {iterations} events \
                     (last dirty component spanned {component_links} links)"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            SimError::Deadlock { pending: 3 }.to_string(),
            "simulation deadlocked with 3 pending tasks"
        );
        assert_eq!(
            SimError::UnknownResource { resource: 7 }.to_string(),
            "compute task references unknown resource 7"
        );
        assert_eq!(
            SimError::EmptyRoute.to_string(),
            "flow route must contain at least one link"
        );
        assert_eq!(
            SimError::UnknownLink { link: 9 }.to_string(),
            "route references unknown link 9"
        );
        assert_eq!(
            SimError::NonPositiveCap.to_string(),
            "flow cap must be positive"
        );
        assert!(SimError::BadCapacity { link: 2 }
            .to_string()
            .contains("finite and positive"));
        assert!(SimError::BadRateFactor { resource: 3 }
            .to_string()
            .contains("rate factor"));
        assert!(SimError::BadFaultTime
            .to_string()
            .contains("finite and non-negative"));
        let diverged = SimError::SolverDiverged {
            iterations: 10_000_000,
            component_links: 42,
        };
        assert!(diverged.to_string().contains("10000000 events"));
        assert!(diverged.to_string().contains("42 links"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
