//! `zerosim-model` — GPT-2-like workload mathematics.
//!
//! Everything the paper's workload implies analytically, with no
//! simulation involved:
//!
//! * [`GptConfig`] — the model shape (Sec. III-B2) and parameter counting;
//! * [`IterationFlops`] — the DeepSpeed-FLOPS-profiler substitute;
//! * [`ModelStates`] — FP16/Adam model-state bytes (2/2/12 per parameter)
//!   and activation-memory estimates;
//! * [`SyntheticCorpus`] — the WikiExtractor-dump substitute with the same
//!   token geometry.
//!
//! ```
//! use zerosim_model::GptConfig;
//! let model = GptConfig::paper_model_with_params(1.4);
//! assert_eq!(model.num_layers, 26);
//! let states = model.model_states();
//! assert!((states.total() / model.num_params() - 16.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod data;
mod flops;
mod states;
mod zoo;

pub use config::GptConfig;
pub use data::{SyntheticCorpus, TokenBatch};
pub use flops::IterationFlops;
pub use states::{ModelStates, ADAM_FP32_BYTES, FP16_BYTES, GPU_FIXED_OVERHEAD_BYTES};
pub use zoo::ModelPreset;
