//! The diagnostics vocabulary: stable lint codes, severities, sites,
//! configurable lint levels, and the text / JSON renderers.

use std::fmt;

use zerosim_strategies::{Phase, PhaseStage};
use zerosim_testkit::json::Json;

/// Stable identifier of one static analysis.
///
/// Codes are append-only: a code never changes meaning once shipped, so
/// `allow`/`deny` pins in configs and scripts stay valid across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// ZL001 — per-tier memory residency vs. hardware capacities.
    MemoryResidency,
    /// ZL002 — per-shard produced/consumed byte conservation.
    ByteConservation,
    /// ZL003 — phase ordering / happens-before legality.
    PhaseOrdering,
    /// ZL004 — op bandwidth demand vs. link capacities along routes.
    BandwidthFeasibility,
    /// ZL005 — dead (no-effect) tasks in lowered DAGs.
    DeadOps,
    /// ZL006 — dependency cycles / dangling edges in task graphs.
    DagCycle,
    /// ZL007 — fault-schedule sanity.
    FaultSchedule,
    /// ZL008 — codec legality on transfer ops.
    CodecLegality,
    /// ZL009 — static step-time lower bound vs. link ceilings.
    StepTimeBound,
}

impl LintCode {
    /// Every registered code, in numeric order.
    pub const ALL: [LintCode; 9] = [
        LintCode::MemoryResidency,
        LintCode::ByteConservation,
        LintCode::PhaseOrdering,
        LintCode::BandwidthFeasibility,
        LintCode::DeadOps,
        LintCode::DagCycle,
        LintCode::FaultSchedule,
        LintCode::CodecLegality,
        LintCode::StepTimeBound,
    ];

    /// The stable `ZLxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::MemoryResidency => "ZL001",
            LintCode::ByteConservation => "ZL002",
            LintCode::PhaseOrdering => "ZL003",
            LintCode::BandwidthFeasibility => "ZL004",
            LintCode::DeadOps => "ZL005",
            LintCode::DagCycle => "ZL006",
            LintCode::FaultSchedule => "ZL007",
            LintCode::CodecLegality => "ZL008",
            LintCode::StepTimeBound => "ZL009",
        }
    }

    /// Short kebab-case name (Clippy-style).
    pub fn name(self) -> &'static str {
        match self {
            LintCode::MemoryResidency => "memory-residency",
            LintCode::ByteConservation => "byte-conservation",
            LintCode::PhaseOrdering => "phase-ordering",
            LintCode::BandwidthFeasibility => "bandwidth-feasibility",
            LintCode::DeadOps => "dead-ops",
            LintCode::DagCycle => "dag-cycle",
            LintCode::FaultSchedule => "fault-schedule",
            LintCode::CodecLegality => "codec-legality",
            LintCode::StepTimeBound => "step-time-bound",
        }
    }

    /// One-line summary for `planlint --explain`-style listings.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::MemoryResidency => {
                "statically bounds per-tier (HBM/DRAM/NVMe) peak residency against capacities"
            }
            LintCode::ByteConservation => {
                "no op may consume staged bytes that were never produced or resident"
            }
            LintCode::PhaseOrdering => {
                "forward -> backward -> step legality and checkpoint-plan kind rules"
            }
            LintCode::BandwidthFeasibility => {
                "op demand vs. link caps; classifies links wire-bound vs protocol-bound"
            }
            LintCode::DeadOps => "zero-cost tasks whose completion gates nothing",
            LintCode::DagCycle => "dependency cycles and dangling edges in task graphs",
            LintCode::FaultSchedule => {
                "restore-without-fault, overlapping node loss, events past the horizon"
            }
            LintCode::CodecLegality => {
                "declared codecs: ratio matches dtypes, decode before full-precision use, no double-quantization"
            }
            LintCode::StepTimeBound => {
                "critical-path lower bound on step time at wire speed-of-light vs. protocol ceilings"
            }
        }
    }

    /// The default enforcement level of this lint.
    pub fn default_level(self) -> LintLevel {
        match self {
            // Dead joins are wasteful, not wrong.
            LintCode::DeadOps => LintLevel::Warn,
            _ => LintLevel::Deny,
        }
    }

    /// Parses a `ZLxxx` code or kebab-case name.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Enforcement level of a lint, configured per [`LintCode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintLevel {
    /// Findings are suppressed entirely.
    Allow,
    /// Findings are reported but never fail a gate.
    Warn,
    /// Findings fail the gate (non-zero `planlint` exit).
    Deny,
}

impl LintLevel {
    /// Parses `allow` / `warn` / `deny`.
    pub fn parse(s: &str) -> Option<LintLevel> {
        match s {
            "allow" => Some(LintLevel::Allow),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }
}

/// How serious one concrete finding is, after lint-level configuration
/// is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational.
    Note,
    /// Suspicious but not gate-failing.
    Warning,
    /// Gate-failing.
    Deny,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Deny => "deny",
        }
    }
}

/// Where a finding is anchored: a plan op, a phase, a DAG task, a fault
/// event, a link, or the configuration as a whole.
#[derive(Debug, Clone, PartialEq)]
pub enum Site {
    /// The configuration as a whole (e.g. a memory-plan verdict).
    Config,
    /// Iteration-plan op by emission index.
    PlanOp(usize),
    /// A phase of the iteration.
    Phase(Phase),
    /// Lowered-DAG task by insertion index.
    DagTask(usize),
    /// Fault-schedule event by insertion index.
    FaultEvent(usize),
    /// A named link of the cluster fabric.
    Link(String),
}

fn stage_label(stage: PhaseStage) -> &'static str {
    match stage {
        PhaseStage::Input => "input",
        PhaseStage::Forward => "forward",
        PhaseStage::Backward => "backward",
        PhaseStage::Step => "step",
        PhaseStage::Checkpoint => "checkpoint",
        PhaseStage::Prefill => "prefill",
        PhaseStage::Decode => "decode",
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Config => write!(f, "config"),
            Site::PlanOp(i) => write!(f, "op {i}"),
            Site::Phase(p) => write!(f, "phase {}#{}", stage_label(p.stage), p.micro),
            Site::DagTask(i) => write!(f, "task {i}"),
            Site::FaultEvent(i) => write!(f, "fault {i}"),
            Site::Link(name) => write!(f, "link {name}"),
        }
    }
}

impl Site {
    fn to_json(&self) -> Json {
        let (kind, detail) = match self {
            Site::Config => ("config", Json::Null),
            Site::PlanOp(i) => {
                let idx = *i;
                ("plan-op", Json::Num(to_num(idx)))
            }
            Site::Phase(p) => (
                "phase",
                Json::Obj(vec![
                    ("stage".into(), Json::Str(stage_label(p.stage).into())),
                    ("micro".into(), Json::Num(f64::from(p.micro))),
                ]),
            ),
            Site::DagTask(i) => ("dag-task", Json::Num(to_num(*i))),
            Site::FaultEvent(i) => ("fault-event", Json::Num(to_num(*i))),
            Site::Link(name) => ("link", Json::Str(name.clone())),
        };
        Json::Obj(vec![
            ("kind".into(), Json::Str(kind.into())),
            ("detail".into(), detail),
        ])
    }
}

/// Lossless for every index the simulator produces (< 2^53).
#[allow(clippy::cast_precision_loss)]
fn to_num(i: usize) -> f64 {
    i as f64
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which analysis produced it.
    pub code: LintCode,
    /// Effective severity after lint-level configuration.
    pub severity: Severity,
    /// Where it is anchored.
    pub site: Site,
    /// What is wrong.
    pub message: String,
    /// How to fix or silence it.
    pub help: String,
}

impl Diagnostic {
    /// Renders one `severity[code] site: message` line (plus a help line
    /// when present).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.site,
            self.message
        );
        if !self.help.is_empty() {
            out.push_str("\n    = help: ");
            out.push_str(&self.help);
        }
        out
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".into(), Json::Str(self.code.code().into())),
            ("lint".into(), Json::Str(self.code.name().into())),
            ("severity".into(), Json::Str(self.severity.label().into())),
            ("site".into(), self.site.to_json()),
            ("message".into(), Json::Str(self.message.clone())),
            ("help".into(), Json::Str(self.help.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_text())
    }
}

/// Per-code lint-level configuration.
///
/// Starts from each code's [`LintCode::default_level`]; overrides are
/// explicit and queryable, so intentional `allow` pins stay visible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: Vec<(LintCode, LintLevel)>,
}

impl LintConfig {
    /// The default configuration (no overrides).
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Sets `code` to `level`, replacing any previous override.
    pub fn set(&mut self, code: LintCode, level: LintLevel) {
        if let Some(e) = self.overrides.iter_mut().find(|(c, _)| *c == code) {
            e.1 = level;
        } else {
            self.overrides.push((code, level));
        }
    }

    /// Builder form of [`LintConfig::set`].
    #[must_use]
    pub fn with(mut self, code: LintCode, level: LintLevel) -> Self {
        self.set(code, level);
        self
    }

    /// The effective level of `code`.
    pub fn level(&self, code: LintCode) -> LintLevel {
        self.overrides
            .iter()
            .find(|(c, _)| *c == code)
            .map(|(_, l)| *l)
            .unwrap_or_else(|| code.default_level())
    }

    /// Parses a `ZLxxx=allow|warn|deny` (or `name=level`) directive.
    ///
    /// # Errors
    /// A human-readable message naming the bad code or level.
    pub fn apply_directive(&mut self, directive: &str) -> Result<(), String> {
        let (code_s, level_s) = directive
            .split_once('=')
            .ok_or_else(|| format!("bad lint directive '{directive}' (want CODE=LEVEL)"))?;
        let code = LintCode::parse(code_s.trim())
            .ok_or_else(|| format!("unknown lint code '{}'", code_s.trim()))?;
        let level = LintLevel::parse(level_s.trim())
            .ok_or_else(|| format!("unknown lint level '{}' (allow|warn|deny)", level_s.trim()))?;
        self.set(code, level);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parse_both_ways() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(c.name()), Some(c));
            assert!(c.code().starts_with("ZL"));
            assert!(!c.summary().is_empty());
        }
        assert_eq!(LintCode::parse("ZL999"), None);
        assert_eq!(LintCode::MemoryResidency.code(), "ZL001");
        assert_eq!(LintCode::FaultSchedule.code(), "ZL007");
        assert_eq!(LintCode::CodecLegality.code(), "ZL008");
        assert_eq!(LintCode::StepTimeBound.code(), "ZL009");
    }

    #[test]
    fn config_levels_default_and_override() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.level(LintCode::MemoryResidency), LintLevel::Deny);
        assert_eq!(cfg.level(LintCode::DeadOps), LintLevel::Warn);
        cfg.set(LintCode::MemoryResidency, LintLevel::Allow);
        assert_eq!(cfg.level(LintCode::MemoryResidency), LintLevel::Allow);
        cfg.apply_directive("ZL005=deny").unwrap();
        assert_eq!(cfg.level(LintCode::DeadOps), LintLevel::Deny);
        cfg.apply_directive("dead-ops=warn").unwrap();
        assert_eq!(cfg.level(LintCode::DeadOps), LintLevel::Warn);
        assert!(cfg.apply_directive("ZL001").is_err());
        assert!(cfg.apply_directive("ZL099=deny").is_err());
        assert!(cfg.apply_directive("ZL001=loud").is_err());
    }

    #[test]
    fn diagnostic_renders_text_and_json() {
        let d = Diagnostic {
            code: LintCode::MemoryResidency,
            severity: Severity::Deny,
            site: Site::Config,
            message: "per-GPU residency 62.0 GB exceeds HBM 40.0 GB".into(),
            help: "shard more state or shrink the model".into(),
        };
        let t = d.render_text();
        assert!(t.starts_with("deny[ZL001] config:"), "{t}");
        assert!(t.contains("help:"));
        let j = d.to_json().render();
        assert!(j.contains("\"ZL001\""));
        assert!(j.contains("\"deny\""));
    }

    #[test]
    fn sites_display_compactly() {
        assert_eq!(Site::PlanOp(3).to_string(), "op 3");
        assert_eq!(Site::DagTask(9).to_string(), "task 9");
        assert_eq!(Site::FaultEvent(0).to_string(), "fault 0");
        assert_eq!(
            Site::Link("n0nic0.roce.tx".into()).to_string(),
            "link n0nic0.roce.tx"
        );
        let p = Phase {
            micro: 1,
            stage: PhaseStage::Backward,
        };
        assert_eq!(Site::Phase(p).to_string(), "phase backward#1");
    }
}
