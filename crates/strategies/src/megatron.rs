//! Megatron-LM model parallelism: tensor parallelism (TP), pipeline
//! parallelism (PP), and data parallelism (DP) composed as in the paper's
//! Sec. II-B.
//!
//! The paper runs Megatron with full model parallelism over the available
//! GPUs (TP=4 on one node; TP spanning both nodes when dual — the
//! configuration whose per-layer blocking all-reduces collapse dual-node
//! throughput, Fig. 7-b). The general `tp × pp × dp` implementation here
//! also enables the extension study of placing *pipeline* boundaries
//! across nodes instead, which moves only activations over RoCE.
//!
//! Pipeline schedule: microbatches flow through stages GPipe-style (all
//! forwards, then all backwards); bubbles emerge naturally from the DAG
//! engine's resource serialization rather than being modelled analytically.

#![allow(clippy::needless_range_loop)] // (r, s, t) indexing over 3-D chains reads better

use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_hw::MemLoc;
use zerosim_model::ModelStates;

use crate::builders::{IterCtx, PlanCtx};
use crate::error::StrategyError;
use crate::memory::MemoryPlan;
use crate::placement::ParallelPlacement;
use crate::plan::{IterPlan, OpId, PhaseStage};

/// Microbatches per iteration for a pipeline depth of `pp` (the paper's
/// nsys timeline shows four; deeper pipelines need at least `pp` to keep
/// bubbles bounded).
pub(crate) fn microbatches(pp: usize) -> usize {
    4usize.max(pp)
}

/// Resolves the locality-aware `(replica, stage, tp-rank)` placement for
/// this context's GPU set (TP innermost — see [`ParallelPlacement`]).
fn resolve(ctx: &IterCtx<'_>, tp: usize, pp: usize) -> Result<ParallelPlacement, StrategyError> {
    ParallelPlacement::resolve(ctx.opts.gpus(ctx.cluster), tp, pp)
}

/// Builds the memory plan for Megatron with the given degrees.
pub(crate) fn memory_plan(
    ctx: &IterCtx<'_>,
    tp: usize,
    pp: usize,
) -> Result<MemoryPlan, StrategyError> {
    let layout = resolve(ctx, tp, pp)?;
    let mp = (layout.tp * layout.pp) as f64;
    let p = ctx.model.num_params();
    let states = ModelStates::for_params(p / mp);
    // Activations are sliced by the model-parallel degree; the pipeline's
    // in-flight microbatches put the per-microbatch share back up to
    // roughly the single-stage figure, so mp slicing is the right
    // first-order model for both TP and PP.
    let m = ctx.model;
    let act = ctx.calib.act_coeff_nockpt
        * m.num_layers as f64
        * m.seq_len as f64
        * ctx.opts.per_gpu_batch as f64
        * m.hidden_size as f64
        * 2.0
        / mp;
    let per_gpu = states.total() + act + ctx.calib.gpu_fixed_bytes;
    let n = ctx.opts.num_gpus(ctx.cluster) as f64;
    Ok(MemoryPlan {
        per_gpu_bytes: per_gpu,
        total_gpu_bytes: per_gpu * n,
        per_node_cpu_bytes: ctx.calib.host_base_bytes,
        total_cpu_bytes: ctx.calib.host_base_bytes * ctx.opts.nodes as f64,
        nvme_bytes: 0.0,
        gpu_breakdown: vec![
            ("states_shard".into(), states.total()),
            ("activations".into(), act),
            ("fixed".into(), ctx.calib.gpu_fixed_bytes),
        ],
    })
}

/// Describes one Megatron training iteration (tensor-parallel degree
/// `tp`, pipeline depth `pp`, data parallelism over the remainder) as an
/// [`IterPlan`].
///
/// # Errors
/// [`StrategyError::InvalidLayout`] if `tp × pp` does not divide the
/// participating GPU count, or if the model has fewer layers than
/// pipeline stages.
// Microbatch indices are tiny (grad-accum counts): fit u32.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn plan_iteration(
    ctx: &IterCtx<'_>,
    tp: usize,
    pp: usize,
) -> Result<IterPlan, StrategyError> {
    let layout = resolve(ctx, tp, pp)?;
    let layers = ctx.model.num_layers;
    if layers < layout.pp {
        return Err(StrategyError::layout(format!(
            "model has {layers} layers but the pipeline has {} stages",
            layout.pp
        )));
    }

    // Gradient accumulation just means more pipeline microbatches before
    // the optimizer step; the per-layer tensor-parallel all-reduces still
    // run for every one of them.
    let mb_count = microbatches(layout.pp) * ctx.opts.grad_accum;
    // Same global token count as DDP for a fair FLOP comparison.
    let tokens_mb = ctx.total_tokens() / (layout.dp * mb_count) as f64;
    let seqs_mb = tokens_mb / ctx.model.seq_len as f64;
    // Two fused tensor-parallel all-reduces per layer over the activation
    // tensor of one microbatch.
    let ar_bytes_per_layer =
        2.0 * ctx.model.seq_len as f64 * seqs_mb * ctx.model.hidden_size as f64 * 2.0;
    // Activation tensor crossing a pipeline boundary, per TP rank.
    let boundary_bytes = (ctx.model.seq_len as f64 * seqs_mb * ctx.model.hidden_size as f64 * 2.0
        / layout.tp as f64)
        .max(1.0);

    // Layers per stage (last stage absorbs the remainder + vocab head).
    let per_stage = layers / layout.pp;
    let stage_layers = |s: usize| {
        if s + 1 == layout.pp {
            layers - per_stage * (layout.pp - 1)
        } else {
            per_stage
        }
    };

    let fwd_flops = ctx.layer_fwd_flops(tokens_mb, layout.tp);
    let vocab_flops = ctx.embedding_fwd_flops(tokens_mb, layout.tp);

    let mut p = PlanCtx::new(*ctx);
    let prologue = p.prologue();

    // TP communication groups per (replica, stage).
    let tp_group = |r: usize, s: usize| CommGroup::new(layout.tp_group(r, s));

    // Per (replica, stage, tp-rank): last emitted op on that GPU.
    let mut chain: Vec<Vec<Vec<OpId>>> =
        vec![vec![vec![prologue; layout.tp]; layout.pp]; layout.dp];
    for r in 0..layout.dp {
        for s in 0..layout.pp {
            for t in 0..layout.tp {
                chain[r][s][t] = p.input_h2d(layout.gpu(r, s, t), &[prologue]);
            }
        }
    }

    // Forward completion markers per (mb, replica, stage), needed by the
    // backward passes.
    let mut fwd_marker: Vec<Vec<Vec<OpId>>> = vec![vec![Vec::new(); layout.dp]; mb_count];

    // ---- Forward passes (all microbatches) ----
    for mb in 0..mb_count {
        p.set_phase(PhaseStage::Forward, mb as u32);
        for r in 0..layout.dp {
            let mut boundary_in: Option<Vec<OpId>> = None; // per tp-rank
            for s in 0..layout.pp {
                let group = tp_group(r, s);
                if let Some(prev_stage) = boundary_in.take() {
                    // Receive activations from the previous stage.
                    for t in 0..layout.tp {
                        let src = layout.gpu(r, s - 1, t);
                        let dst = layout.gpu(r, s, t);
                        chain[r][s][t] = p.transfer(
                            MemLoc::Gpu(src),
                            MemLoc::Gpu(dst),
                            boundary_bytes,
                            "p2p_act",
                            ctx.gpu_track(src),
                            &[prev_stage[t], chain[r][s][t]],
                        );
                    }
                }
                for _l in 0..stage_layers(s) {
                    for t in 0..layout.tp {
                        let g = layout.gpu(r, s, t);
                        chain[r][s][t] = p.layer_compute(g, fwd_flops, "gemm", &[chain[r][s][t]]);
                    }
                    if layout.tp > 1 {
                        let deps: Vec<OpId> = chain[r][s].clone();
                        let h = p.collective(
                            CollectiveKind::AllReduce,
                            group.clone(),
                            ar_bytes_per_layer,
                            ctx.calib.megatron_internode_cap,
                            &deps,
                        );
                        for t in 0..layout.tp {
                            chain[r][s][t] = h;
                        }
                    }
                }
                if s + 1 == layout.pp {
                    // Vocabulary projection + loss on the last stage.
                    for t in 0..layout.tp {
                        let g = layout.gpu(r, s, t);
                        chain[r][s][t] = p.layer_compute(g, vocab_flops, "gemm", &[chain[r][s][t]]);
                    }
                }
                let deps: Vec<OpId> = chain[r][s].clone();
                fwd_marker[mb][r].push(p.barrier(&deps));
                boundary_in = Some(chain[r][s].clone());
            }
        }
    }

    // ---- Backward passes (reverse stage order per microbatch) ----
    for mb in 0..mb_count {
        p.set_phase(PhaseStage::Backward, mb as u32);
        for r in 0..layout.dp {
            let mut boundary_grad: Option<Vec<OpId>> = None;
            for s in (0..layout.pp).rev() {
                let group = tp_group(r, s);
                if let Some(next_stage) = boundary_grad.take() {
                    for t in 0..layout.tp {
                        let src = layout.gpu(r, s + 1, t);
                        let dst = layout.gpu(r, s, t);
                        chain[r][s][t] = p.transfer(
                            MemLoc::Gpu(src),
                            MemLoc::Gpu(dst),
                            boundary_bytes,
                            "p2p_grad",
                            ctx.gpu_track(src),
                            &[next_stage[t], chain[r][s][t]],
                        );
                    }
                }
                // Backward follows this stage's forward of the same mb.
                let fm = fwd_marker[mb][r][s];
                for t in 0..layout.tp {
                    chain[r][s][t] = p.barrier(&[chain[r][s][t], fm]);
                }
                for _l in 0..stage_layers(s) {
                    for t in 0..layout.tp {
                        let g = layout.gpu(r, s, t);
                        chain[r][s][t] =
                            p.layer_compute(g, 2.0 * fwd_flops, "gemm", &[chain[r][s][t]]);
                    }
                    if layout.tp > 1 {
                        let deps: Vec<OpId> = chain[r][s].clone();
                        let h = p.collective(
                            CollectiveKind::AllReduce,
                            group.clone(),
                            ar_bytes_per_layer,
                            ctx.calib.megatron_internode_cap,
                            &deps,
                        );
                        for t in 0..layout.tp {
                            chain[r][s][t] = h;
                        }
                    }
                }
                boundary_grad = Some(chain[r][s].clone());
            }
        }
    }

    // ---- Data-parallel gradient sync across replicas ----
    let shard = ctx.model.num_params() / (layout.tp * layout.pp) as f64;
    if layout.dp > 1 {
        for s in 0..layout.pp {
            for t in 0..layout.tp {
                let deps: Vec<OpId> = (0..layout.dp).map(|r| chain[r][s][t]).collect();
                let group = CommGroup::new(layout.dp_group(s, t));
                // Uncapped: the raw RDMA-grade NCCL path.
                let h = p.collective(
                    CollectiveKind::AllReduce,
                    group,
                    2.0 * shard,
                    f64::INFINITY,
                    &deps,
                );
                for r in 0..layout.dp {
                    chain[r][s][t] = h;
                }
            }
        }
    }

    // ---- Optimizer on each GPU over its model shard ----
    p.set_phase(PhaseStage::Step, mb_count.saturating_sub(1) as u32);
    for r in 0..layout.dp {
        for s in 0..layout.pp {
            for t in 0..layout.tp {
                let g = layout.gpu(r, s, t);
                p.gpu_adam(g, shard, &[chain[r][s][t]]);
            }
        }
    }
    Ok(p.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::lower::lower;
    use crate::options::TrainOptions;
    use zerosim_hw::{Cluster, ClusterSpec};
    use zerosim_model::GptConfig;
    use zerosim_simkit::{DagEngine, SimTime};

    fn run_iter(nodes: usize, layers: usize, tp: usize, pp: usize) -> f64 {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = plan_iteration(&ctx, tp, pp).unwrap();
        assert!(plan.validate(&cluster).is_ok());
        let mut lowered = lower(&plan, &cluster, &calib).unwrap();
        let dag = lowered.stamp(opts.jitter_seed);
        let mut eng = DagEngine::new(cluster.resource_slots());
        eng.run(cluster.net_mut(), dag, SimTime::ZERO, None)
            .unwrap()
            .makespan()
            .as_secs()
    }

    #[test]
    fn dual_node_tensor_parallel_is_much_slower_per_token_share() {
        // Same model, 2× the GPUs and 2× the tokens; if communication were
        // free the iteration time would stay equal. The paper instead sees
        // a collapse (Sec. IV-C2); require at least 2× slowdown.
        let single = run_iter(1, 26, 4, 1);
        let dual = run_iter(2, 26, 8, 1);
        assert!(
            dual > 2.0 * single,
            "dual {dual}s vs single {single}s — inter-node TP should hurt"
        );
    }

    #[test]
    fn pipeline_across_nodes_beats_tensor_across_nodes() {
        // Extension study: TP within each node + PP across the node
        // boundary moves only activations over RoCE and should be far
        // faster than TP spanning nodes.
        let tp_across = run_iter(2, 26, 8, 1);
        let pp_across = run_iter(2, 26, 4, 2);
        assert!(
            pp_across < 0.5 * tp_across,
            "pp-across {pp_across}s vs tp-across {tp_across}s"
        );
    }

    #[test]
    fn pure_pipeline_runs_and_costs_more_than_tensor_locally() {
        // tp=1, pp=4 on one node: no TP all-reduces, but the GPipe bubbles
        // keep it from beating TP=4 by much at equal work.
        let t = run_iter(1, 26, 1, 4);
        assert!(t > 0.05 && t < 3.0, "pp iteration {t}s");
    }

    #[test]
    fn tp_pp_dp_composition_runs() {
        // tp=2, pp=2, dp=2 across two nodes.
        let t = run_iter(2, 26, 2, 2);
        assert!(t > 0.05, "{t}");
    }

    #[test]
    fn memory_is_sliced_by_model_parallel_degree() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(107); // ~5.5 B
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = memory_plan(&ctx, 4, 1).unwrap();
        assert!(plan.fits(&cluster), "Megatron fits ~5.5B on one node");
        let too_big = GptConfig::paper_model(140);
        let ctx2 = IterCtx {
            cluster: &cluster,
            model: &too_big,
            opts: &opts,
            calib: &calib,
        };
        assert!(!memory_plan(&ctx2, 4, 1).unwrap().fits(&cluster));
        // TP and PP slice model states identically.
        let tp_plan = memory_plan(&ctx, 4, 1).unwrap();
        let pp_plan = memory_plan(&ctx, 1, 4).unwrap();
        assert!((tp_plan.gpu_breakdown[0].1 - pp_plan.gpu_breakdown[0].1).abs() < 1.0);
    }

    #[test]
    fn invalid_layout_is_rejected() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let err = plan_iteration(&ctx, 3, 1).unwrap_err();
        assert!(
            err.to_string().contains("must divide the GPU count"),
            "{err}"
        );
        let err = plan_iteration(&ctx, 0, 1).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn deep_pipeline_needs_enough_layers() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(2);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let err = plan_iteration(&ctx, 1, 4).unwrap_err();
        assert!(err.to_string().contains("pipeline has"), "{err}");
    }
}
