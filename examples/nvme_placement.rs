//! NVMe placement explorer: sweep the drive layouts of the paper's
//! Fig. 14 (Sec. V-E) for a 33 B-parameter ZeRO-Infinity run and find
//! which placement sustains the highest throughput.
//!
//! Run with: `cargo run --release --example nvme_placement [billions]`

use zerosim_core::RunConfig;
use zerosim_hw::LinkClass;
use zerosim_model::GptConfig;
use zerosim_report::{gbps, tflops, Table};
use zerosim_strategies::Strategy;

// The experiment harness already knows the seven configurations; reuse it.
use zerosim_bench::data::NvmeConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let billions: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(33.3);
    let model = GptConfig::paper_model_with_params(billions);
    println!(
        "ZeRO-Infinity (optimizer on NVMe), {:.1} B parameters, single node\n",
        model.num_params() / 1e9
    );

    let mut t = Table::new(vec![
        "config",
        "drives",
        "volumes",
        "TFLOP/s",
        "PCIe-NVME avg GBps",
        "xGMI avg GBps",
    ]);
    let mut best: Option<(char, f64)> = None;
    for cfg in NvmeConfig::ALL {
        let (mut sim, placement) = cfg.build();
        let volumes = placement
            .rank_volumes
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let strategy = Strategy::ZeroInfinity {
            offload_params: false,
            placement,
        };
        let rc = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let report = sim.run(
            &strategy,
            &model,
            &zerosim_strategies::TrainOptions::single_node(),
            &rc,
        )?;
        let tput = report.throughput_tflops();
        if best.is_none_or(|(_, b)| tput > b) {
            best = Some((cfg.letter(), tput));
        }
        t.row(vec![
            cfg.letter().to_string(),
            cfg.layout().len().to_string(),
            volumes.to_string(),
            tflops(report.throughput_flops()),
            gbps(report.bandwidth.stats(0, LinkClass::PcieNvme).avg),
            gbps(report.bandwidth.stats(0, LinkClass::Xgmi).avg),
        ]);
    }
    println!("{}", t.render());
    if let Some((letter, tput)) = best {
        println!(
            "best placement: configuration {letter} at {tput:.1} TFLOP/s — populate \
             every slot and keep each rank's volume on its own socket."
        );
    }
    Ok(())
}
