//! Offload experiments: Figs. 11–13 and Table VI (Fig. 14 configs).

use zerosim_core::{max_model_size, RunConfig, TrainingReport};
use zerosim_hw::LinkClass;
use zerosim_model::GptConfig;
use zerosim_report::{downsample, gb, gbps, sparkline, Table};
use zerosim_strategies::{Strategy, ZeroStage};

use crate::data::{self, NvmeConfig};

/// The consolidation target: the largest model dual-node Megatron fits.
pub const CONSOLIDATION_BILLIONS: f64 = 11.4;

fn consolidation_rows() -> Vec<(String, TrainingReport)> {
    let model = GptConfig::paper_model_with_params(CONSOLIDATION_BILLIONS);
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::default()
    };
    let mut rows = Vec::new();

    // Reference: Megatron-LM on two nodes.
    let mut sim = data::sim();
    let report = sim
        .run(
            &Strategy::Megatron { tp: 8, pp: 1 },
            &model,
            &data::opts(2),
            &cfg,
        )
        .expect("megatron dual");
    rows.push(("Megatron-LM (2 nodes)".to_string(), report));

    for (name, strategy) in data::offload_strategies() {
        let mut sim = data::sim();
        let report = sim
            .run(&strategy, &model, &data::opts(1), &cfg)
            .expect("offload runs");
        rows.push((name.to_string(), report));
    }
    for (nvme, label) in [(NvmeConfig::A, "1xNVME"), (NvmeConfig::B, "2xNVME")] {
        for offload_params in [false, true] {
            let (mut sim, placement) = nvme.build();
            let strategy = Strategy::ZeroInfinity {
                offload_params,
                placement,
            };
            let report = sim
                .run(&strategy, &model, &data::opts(1), &cfg)
                .expect("infinity runs");
            let what = if offload_params { "opt+param" } else { "opt" };
            rows.push((format!("ZeRO-Infinity ({label} {what})"), report));
        }
    }
    rows
}

/// Fig. 11 — throughput and memory when consolidating dual-node training
/// into a single node at 11.4 B parameters.
pub fn fig11() -> String {
    let mut t = Table::new(vec![
        "configuration",
        "TFLOP/s",
        "GPU GB",
        "CPU GB",
        "NVME GB",
        "total GB",
    ]);
    for (name, report) in consolidation_rows() {
        t.row(vec![
            name,
            format!("{:.1}", report.throughput_tflops()),
            gb(report.memory.total_gpu_bytes),
            gb(report.memory.total_cpu_bytes),
            gb(report.memory.nvme_bytes),
            gb(report.memory.total()),
        ]);
    }
    format!(
        "Fig. 11 — consolidating dual-node into single-node at {CONSOLIDATION_BILLIONS} B:\n{}",
        t.render()
    )
}

/// Fig. 12 — utilization patterns for the offload configurations.
pub fn fig12() -> String {
    let mut out = String::from("Fig. 12 — offload utilization patterns (GBps):\n");
    for (name, report) in consolidation_rows().into_iter().skip(1) {
        out.push_str(&format!("{name}:\n"));
        for class in [
            LinkClass::NvLink,
            LinkClass::PcieGpu,
            LinkClass::PcieNvme,
            LinkClass::Xgmi,
            LinkClass::Dram,
        ] {
            let series = report.bandwidth.tiled_series(0, class, 10.0);
            let stats = report.bandwidth.stats(0, class);
            out.push_str(&format!(
                "  {class:<10} {}  avg {} / peak {}\n",
                sparkline(&downsample(&series, 50), None),
                gbps(stats.avg),
                gbps(stats.peak),
            ));
        }
    }
    out
}

/// Fig. 13 — largest single-node model with offloading: size, throughput,
/// memory.
pub fn fig13() -> String {
    let mut t = Table::new(vec![
        "configuration",
        "size B",
        "paper B",
        "TFLOP/s",
        "paper",
        "GPU GB",
        "CPU GB",
        "NVME GB",
    ]);
    let entries: Vec<(&str, Strategy, Option<NvmeConfig>, f64, f64)> = vec![
        (
            "ZeRO-1 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::One,
                offload_params: false,
            },
            None,
            8.9,
            155.3,
        ),
        (
            "ZeRO-2 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            None,
            14.2,
            180.2,
        ),
        (
            "ZeRO-3 (2xNVME)",
            Strategy::Ddp,
            Some(NvmeConfig::B),
            33.3,
            37.2,
        ),
    ];
    for (name, strategy, nvme, paper_b, paper_t) in entries {
        let (cap, report) = match nvme {
            None => {
                let sim = data::sim();
                let cap =
                    max_model_size(sim.cluster(), &strategy, &data::opts(1), sim.calibration())
                        .expect("fits");
                let model = GptConfig::paper_model(cap.num_layers);
                (cap, data::run(&strategy, &model, 1, false))
            }
            Some(c) => {
                let (mut sim, placement) = c.build();
                let s = Strategy::ZeroInfinity {
                    offload_params: false,
                    placement,
                };
                let cap = max_model_size(sim.cluster(), &s, &data::opts(1), sim.calibration())
                    .expect("fits");
                let model = GptConfig::paper_model(cap.num_layers);
                let report = sim
                    .run(&s, &model, &data::opts(1), &RunConfig::quick())
                    .expect("runs");
                (cap, report)
            }
        };
        t.row(vec![
            name.into(),
            format!("{:.1}", cap.billions()),
            format!("{paper_b:.1}"),
            format!("{:.1}", report.throughput_tflops()),
            format!("{paper_t:.1}"),
            gb(report.memory.total_gpu_bytes),
            gb(report.memory.total_cpu_bytes),
            gb(report.memory.nvme_bytes),
        ]);
    }
    format!(
        "Fig. 13 — largest single-node models with ZeRO-Offload / ZeRO-Infinity:\n{}",
        t.render()
    )
}

/// Paper Table VI reference throughputs for configs A–G.
pub const PAPER_TABLE6: [f64; 7] = [19.6, 37.16, 35.43, 40.22, 51.22, 64.61, 65.16];

/// Table VI — ZeRO-Infinity vs NVMe data placement (Fig. 14 configs A–G)
/// at the 33.3 B model.
pub fn table6() -> String {
    let mut t = Table::new(vec![
        "config",
        "TFLOP/s",
        "paper",
        "xGMI avg",
        "xGMI 90th",
        "xGMI peak",
        "PCIe-NVME avg",
        "PCIe-NVME 90th",
        "PCIe-NVME peak",
    ]);
    let model = GptConfig::paper_model_with_params(33.3);
    for (i, cfg) in NvmeConfig::ALL.into_iter().enumerate() {
        let (mut sim, placement) = cfg.build();
        let strategy = cfg.strategy(placement);
        let rc = RunConfig {
            allow_overflow: true,
            warmup_iters: 1,
            measure_iters: 1,
            ..RunConfig::default()
        };
        let report = sim
            .run(&strategy, &model, &data::opts(1), &rc)
            .expect("infinity runs");
        let xgmi = report.bandwidth.stats(0, LinkClass::Xgmi);
        let nvme = report.bandwidth.stats(0, LinkClass::PcieNvme);
        t.row(vec![
            cfg.letter().to_string(),
            format!("{:.1}", report.throughput_tflops()),
            format!("{:.1}", PAPER_TABLE6[i]),
            gbps(xgmi.avg),
            gbps(xgmi.p90),
            gbps(xgmi.peak),
            gbps(nvme.avg),
            gbps(nvme.p90),
            gbps(nvme.peak),
        ]);
    }
    format!(
        "Table VI / Fig. 14 — ZeRO-Infinity vs NVMe placement (33.3 B model):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_beats_dual_megatron() {
        let rows = consolidation_rows();
        let megatron = rows[0].1.throughput_tflops();
        let z2_cpu = rows[1].1.throughput_tflops();
        let z3_cpu = rows[2].1.throughput_tflops();
        // Sec. V-A1: ZeRO-2 CPU offload beats dual-node Megatron; ZeRO-3
        // offload is slower than ZeRO-2 offload but comparable to Megatron.
        assert!(z2_cpu > megatron, "z2-cpu {z2_cpu} vs megatron {megatron}");
        assert!(z3_cpu < z2_cpu, "z3-cpu {z3_cpu} < z2-cpu {z2_cpu}");
    }

    #[test]
    fn second_drive_improves_infinity_throughput() {
        let rows = consolidation_rows();
        let one = rows
            .iter()
            .find(|(n, _)| n.contains("1xNVME opt)"))
            .map(|(_, r)| r.throughput_tflops())
            .unwrap();
        let two = rows
            .iter()
            .find(|(n, _)| n.contains("2xNVME opt)"))
            .map(|(_, r)| r.throughput_tflops())
            .unwrap();
        assert!(two > 1.4 * one, "2xNVME {two} vs 1xNVME {one}");
    }

    #[test]
    fn nvme_placement_ordering_matches_table6() {
        let model = GptConfig::paper_model_with_params(33.3);
        let tput = |cfg: NvmeConfig| {
            let (mut sim, placement) = cfg.build();
            let strategy = cfg.strategy(placement);
            let rc = RunConfig {
                allow_overflow: true,
                ..RunConfig::quick()
            };
            sim.run(&strategy, &model, &data::opts(1), &rc)
                .unwrap()
                .throughput_tflops()
        };
        let a = tput(NvmeConfig::A);
        let b = tput(NvmeConfig::B);
        let e = tput(NvmeConfig::E);
        let g = tput(NvmeConfig::G);
        assert!(b > 1.4 * a, "two drives {b} vs one {a}");
        assert!(e > b, "four drives {e} vs two {b}");
        // Paper has G beating E (RAID spanning sockets pays xGMI costs we
        // only partially model); require G to at least stay close.
        assert!(
            g >= e * 0.9,
            "affinity-aware G {g} at least stays near E {e}"
        );
    }
}
