//! Energy accounting — quantifying the environmental-impact motivation of
//! the paper's introduction ("the energy required and the environmental
//! impact become more concerning").
//!
//! Power is integrated from the simulated timelines: devices draw busy
//! power during their spans and idle power otherwise, plus a constant
//! node platform draw (fans, VRs, switches).

use crate::report::TrainingReport;
use crate::timeline::profile_tracks;

/// Device power draws, watts. Defaults follow the paper's hardware: 400 W
/// A100-SXM4 modules (Table II), 280 W EPYC 7763 sockets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// GPU draw while executing kernels.
    pub gpu_busy_w: f64,
    /// GPU draw while idle (HBM refresh, leakage).
    pub gpu_idle_w: f64,
    /// CPU socket draw while computing (CPU-Adam).
    pub cpu_busy_w: f64,
    /// CPU socket draw otherwise.
    pub cpu_idle_w: f64,
    /// Constant per-node platform draw (DRAM, NICs, NVMe, fans, PSU loss).
    pub node_base_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            gpu_busy_w: 400.0,
            gpu_idle_w: 60.0,
            cpu_busy_w: 280.0,
            cpu_idle_w: 90.0,
            node_base_w: 350.0,
        }
    }
}

/// Energy breakdown of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Joules drawn by GPUs.
    pub gpu_j: f64,
    /// Joules drawn by CPU sockets.
    pub cpu_j: f64,
    /// Joules drawn by the node platforms.
    pub platform_j: f64,
    /// Tokens processed in the iteration.
    pub tokens: f64,
    /// Iteration wall time, seconds.
    pub iter_secs: f64,
}

impl EnergyReport {
    /// Total joules per iteration.
    pub fn total_j(&self) -> f64 {
        self.gpu_j + self.cpu_j + self.platform_j
    }

    /// Energy efficiency in tokens per joule (higher is better).
    pub fn tokens_per_joule(&self) -> f64 {
        self.tokens / self.total_j()
    }

    /// Average power draw over the iteration, watts.
    pub fn avg_power_w(&self) -> f64 {
        self.total_j() / self.iter_secs
    }
}

impl PowerModel {
    /// Integrates power over a characterization run's timeline.
    ///
    /// GPU/CPU busy times come from the span log (tracks < total GPUs are
    /// GPUs; the rest are CPU sockets); everything else idles.
    pub fn estimate(&self, report: &TrainingReport, gpus_per_node: usize) -> EnergyReport {
        let iters = 1.0; // spans cover the measured iterations
        let total_secs = report.iter_time.as_secs() * iters;
        let num_gpus = report.nodes * gpus_per_node;
        let num_sockets = report.nodes * 2;

        // Busy seconds per device class over ALL measured iterations,
        // normalized by the span horizon → one iteration.
        let profiles = profile_tracks(&report.spans);
        let horizon: f64 = profiles
            .iter()
            .map(|p| p.extent.as_secs())
            .fold(0.0, f64::max)
            .max(1e-12);
        let scale = total_secs / horizon;
        let mut gpu_busy = 0.0;
        let mut cpu_busy = 0.0;
        for p in &profiles {
            let busy = p.busy.as_secs().min(p.extent.as_secs()) * scale;
            if (p.track as usize) < num_gpus {
                gpu_busy += busy;
            } else {
                cpu_busy += busy;
            }
        }
        let gpu_total = num_gpus as f64 * total_secs;
        let cpu_total = num_sockets as f64 * total_secs;
        let gpu_busy = gpu_busy.min(gpu_total);
        let cpu_busy = cpu_busy.min(cpu_total);

        EnergyReport {
            gpu_j: gpu_busy * self.gpu_busy_w + (gpu_total - gpu_busy) * self.gpu_idle_w,
            cpu_j: cpu_busy * self.cpu_busy_w + (cpu_total - cpu_busy) * self.cpu_idle_w,
            platform_j: report.nodes as f64 * self.node_base_w * total_secs,
            tokens: report.tokens_per_iteration,
            iter_secs: total_secs,
        }
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct PowerModel { gpu_busy_w, gpu_idle_w, cpu_busy_w, cpu_idle_w, node_base_w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunConfig, TrainingSim};
    use zerosim_hw::ClusterSpec;
    use zerosim_model::GptConfig;
    use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

    fn report(strategy: Strategy, nodes: usize) -> TrainingReport {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        sim.run(
            &strategy,
            &GptConfig::paper_model_with_params(1.4),
            &opts,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn energy_is_positive_and_bounded_by_peak_power() {
        let r = report(Strategy::Ddp, 1);
        let e = PowerModel::default().estimate(&r, 4);
        assert!(e.total_j() > 0.0);
        // Peak possible: 4 GPUs busy + 2 CPUs busy + platform.
        let peak_w = 4.0 * 400.0 + 2.0 * 280.0 + 350.0;
        assert!(e.avg_power_w() <= peak_w, "{} > {peak_w}", e.avg_power_w());
        assert!(e.avg_power_w() > 350.0, "at least the platform draw");
        assert!(e.tokens_per_joule() > 0.0);
    }

    #[test]
    fn offload_burns_more_energy_per_token() {
        // GPUs idle (at 60 W) while the CPU crunches Adam: fewer tokens
        // per joule than keeping everything on-GPU.
        let on_gpu = PowerModel::default().estimate(&report(Strategy::Ddp, 1), 4);
        let offload = PowerModel::default().estimate(
            &report(
                Strategy::ZeroOffload {
                    stage: ZeroStage::Two,
                    offload_params: false,
                },
                1,
            ),
            4,
        );
        assert!(
            offload.tokens_per_joule() < on_gpu.tokens_per_joule(),
            "offload {} vs on-gpu {}",
            offload.tokens_per_joule(),
            on_gpu.tokens_per_joule()
        );
    }

    #[test]
    fn dual_node_megatron_wastes_energy() {
        // Two nodes' worth of power for a fraction of the throughput.
        let single = PowerModel::default().estimate(&report(Strategy::Ddp, 1), 4);
        let megatron =
            PowerModel::default().estimate(&report(Strategy::Megatron { tp: 8, pp: 1 }, 2), 4);
        assert!(megatron.tokens_per_joule() < 0.5 * single.tokens_per_joule());
    }
}
