//! Token-bucket model for devices whose service rate degrades after a burst.
//!
//! NVMe SSDs with a DRAM write-back cache (Sec. V-B3 of the paper) serve
//! traffic at a high *burst* rate while the cache has headroom and fall back
//! to the NAND *sustained* rate once it is exhausted; when the device idles
//! the cache drains and burst capability is restored. The same first-order
//! behaviour is captured here as a token bucket:
//!
//! * the bucket holds up to `capacity_bytes` tokens (free cache space);
//! * serving traffic at the burst rate consumes tokens at
//!   `burst_rate - sustained_rate` (the cache absorbs the difference);
//! * tokens refill at `sustained_rate` whenever the instantaneous demand is
//!   below it.

/// Token-bucket state for a variable-rate link.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    capacity_bytes: f64,
    burst_rate: f64,
    sustained_rate: f64,
    tokens: f64,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// `burst_rate` and `sustained_rate` are in bytes/second;
    /// `capacity_bytes` is the burst absorbing capacity in bytes.
    ///
    /// # Panics
    /// Panics if any argument is non-finite or negative, or if
    /// `burst_rate < sustained_rate`.
    pub fn new(capacity_bytes: f64, burst_rate: f64, sustained_rate: f64) -> Self {
        assert!(
            capacity_bytes.is_finite() && capacity_bytes >= 0.0,
            "token bucket capacity must be finite and non-negative"
        );
        assert!(
            burst_rate.is_finite() && sustained_rate.is_finite(),
            "token bucket rates must be finite"
        );
        assert!(
            burst_rate >= sustained_rate && sustained_rate >= 0.0,
            "burst rate must be at least the sustained rate"
        );
        TokenBucket {
            capacity_bytes,
            burst_rate,
            sustained_rate,
            tokens: capacity_bytes,
        }
    }

    /// Current instantaneous service capacity in bytes/second.
    pub fn current_rate(&self) -> f64 {
        if self.tokens > 0.0 {
            self.burst_rate
        } else {
            self.sustained_rate
        }
    }

    /// The sustained (post-burst) rate in bytes/second.
    pub fn sustained_rate(&self) -> f64 {
        self.sustained_rate
    }

    /// The burst rate in bytes/second.
    pub fn burst_rate(&self) -> f64 {
        self.burst_rate
    }

    /// Remaining tokens (bytes of burst headroom).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Seconds until the bucket state next changes while serving at
    /// `demand_rate` bytes/second, or `None` if the state never changes.
    ///
    /// A state change is either depletion (serving above the sustained rate
    /// with tokens left) or complete refill (serving below it with the bucket
    /// not yet full).
    pub fn next_transition(&self, demand_rate: f64) -> Option<f64> {
        let net = demand_rate - self.sustained_rate;
        if net > f64::EPSILON && self.tokens > 0.0 {
            Some(self.tokens / net)
        } else if net < -f64::EPSILON && self.tokens < self.capacity_bytes {
            Some((self.capacity_bytes - self.tokens) / -net)
        } else {
            None
        }
    }

    /// Advances the bucket by `dt` seconds while serving `demand_rate`
    /// bytes/second, draining or refilling tokens as appropriate.
    pub fn advance(&mut self, dt: f64, demand_rate: f64) {
        debug_assert!(dt >= 0.0);
        let net = demand_rate - self.sustained_rate;
        self.tokens = (self.tokens - net * dt).clamp(0.0, self.capacity_bytes);
    }

    /// Resets the bucket to full (e.g. after an idle period long enough for
    /// the cache to flush completely).
    pub fn refill(&mut self) {
        self.tokens = self.capacity_bytes;
    }

    /// Replaces the burst and sustained rates in place while preserving the
    /// current token fill (the cache does not forget how full it is when the
    /// device slows down). Used by fault injection to degrade and restore a
    /// bucketed link mid-run.
    ///
    /// # Panics
    /// Same validity conditions as [`TokenBucket::new`].
    pub fn set_rates(&mut self, burst_rate: f64, sustained_rate: f64) {
        assert!(
            burst_rate.is_finite() && sustained_rate.is_finite(),
            "token bucket rates must be finite"
        );
        assert!(
            burst_rate >= sustained_rate && sustained_rate >= 0.0,
            "burst rate must be at least the sustained rate"
        );
        self.burst_rate = burst_rate;
        self.sustained_rate = sustained_rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket() -> TokenBucket {
        // 8 GB cache, 6 GB/s burst, 2 GB/s sustained.
        TokenBucket::new(8e9, 6e9, 2e9)
    }

    #[test]
    fn starts_full_at_burst_rate() {
        let b = bucket();
        assert_eq!(b.current_rate(), 6e9);
        assert_eq!(b.tokens(), 8e9);
    }

    #[test]
    fn depletes_under_load_then_sustains() {
        let mut b = bucket();
        // Serving at 6 GB/s drains 4 GB/s of tokens -> empty after 2 s.
        assert_eq!(b.next_transition(6e9), Some(2.0));
        b.advance(2.0, 6e9);
        assert_eq!(b.tokens(), 0.0);
        assert_eq!(b.current_rate(), 2e9);
        // Once empty and still loaded, no further transition.
        assert_eq!(b.next_transition(2e9), None);
    }

    #[test]
    fn refills_when_idle() {
        let mut b = bucket();
        b.advance(2.0, 6e9);
        assert_eq!(b.current_rate(), 2e9);
        // Idle refills at the sustained rate: full again after 4 s.
        assert_eq!(b.next_transition(0.0), Some(4.0));
        b.advance(4.0, 0.0);
        assert_eq!(b.tokens(), 8e9);
        assert_eq!(b.current_rate(), 6e9);
    }

    #[test]
    fn serving_exactly_sustained_is_steady_state() {
        let mut b = bucket();
        b.advance(2.0, 6e9); // drain
        assert_eq!(b.next_transition(2e9), None);
        b.advance(100.0, 2e9);
        assert_eq!(b.tokens(), 0.0);
    }

    #[test]
    fn explicit_refill() {
        let mut b = bucket();
        b.advance(2.0, 6e9);
        b.refill();
        assert_eq!(b.tokens(), 8e9);
    }

    #[test]
    fn tokens_clamped_to_capacity() {
        let mut b = bucket();
        b.advance(1000.0, 0.0);
        assert_eq!(b.tokens(), 8e9);
    }

    #[test]
    #[should_panic(expected = "burst rate must be at least")]
    fn invalid_rates_panic() {
        let _ = TokenBucket::new(1e9, 1e9, 2e9);
    }

    #[test]
    fn set_rates_preserves_token_fill() {
        let mut b = bucket();
        b.advance(1.0, 6e9); // drains 4 GB of tokens -> 4 GB left
        assert_eq!(b.tokens(), 4e9);
        b.set_rates(3e9, 1e9); // degrade to half rates
        assert_eq!(b.tokens(), 4e9);
        assert_eq!(b.burst_rate(), 3e9);
        assert_eq!(b.sustained_rate(), 1e9);
        assert_eq!(b.current_rate(), 3e9); // still has tokens -> burst
        b.set_rates(6e9, 2e9); // restore
        assert_eq!(b.tokens(), 4e9);
        assert_eq!(b.current_rate(), 6e9);
    }

    #[test]
    #[should_panic(expected = "burst rate must be at least")]
    fn set_rates_validates() {
        let mut b = bucket();
        b.set_rates(1e9, 2e9);
    }
}
