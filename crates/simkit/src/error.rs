//! Error types for the simulation kernel.

use std::error::Error;
use std::fmt;

/// Errors produced while executing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No event can make progress but tasks remain unfinished.
    Deadlock {
        /// Number of tasks still pending.
        pending: usize,
    },
    /// A compute task referenced a resource the engine was not configured
    /// with.
    UnknownResource {
        /// Index of the unknown resource.
        resource: usize,
    },
    /// The run exceeded its event budget (a runaway event storm).
    EventLimit {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { pending } => {
                write!(f, "simulation deadlocked with {pending} pending tasks")
            }
            SimError::UnknownResource { resource } => {
                write!(f, "compute task references unknown resource {resource}")
            }
            SimError::EventLimit { budget } => {
                write!(f, "simulation exceeded its event budget of {budget}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            SimError::Deadlock { pending: 3 }.to_string(),
            "simulation deadlocked with 3 pending tasks"
        );
        assert_eq!(
            SimError::UnknownResource { resource: 7 }.to_string(),
            "compute task references unknown resource 7"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
