//! Cluster specification: every capacity, latency, and layout knob, with
//! defaults set to the paper's testbed (Tables II and III).

/// Per-direction (or, for DRAM, half-duplex aggregate) link bandwidths in
/// bytes/second.
///
/// Defaults follow Table III of the paper:
/// * DRAM: 8 channels × 25.6 GBps per socket, half-duplex → 204.8 GBps;
/// * xGMI: 3 links × 36 GBps per direction → 108 GBps per direction;
/// * PCIe 4.0 x16 (GPU, NIC): 32 GBps per direction;
/// * PCIe 4.0 x4 (NVMe): 8 GBps per direction;
/// * NVLink 3.0: 4 links × 25 GBps per direction per GPU pair → 100 GBps;
/// * RoCE: 200 Gbps per direction per NIC, derated to the 93% the paper's
///   same-socket stress test attains (protocol + PFC overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBandwidths {
    /// Half-duplex aggregate DRAM bandwidth per socket.
    pub dram_socket: f64,
    /// Per-direction aggregate xGMI bandwidth between the two sockets.
    pub xgmi_dir: f64,
    /// Per-direction PCIe bandwidth per GPU.
    pub pcie_gpu_dir: f64,
    /// Per-direction PCIe bandwidth per NIC.
    pub pcie_nic_dir: f64,
    /// Per-direction PCIe bandwidth per NVMe drive slot.
    pub pcie_nvme_dir: f64,
    /// Per-direction NVLink bandwidth per ordered GPU pair.
    pub nvlink_pair_dir: f64,
    /// Per-direction attainable RoCE bandwidth per NIC.
    pub roce_dir: f64,
}

impl Default for LinkBandwidths {
    fn default() -> Self {
        LinkBandwidths {
            dram_socket: 204.8e9,
            xgmi_dir: 108e9,
            pcie_gpu_dir: 32e9,
            pcie_nic_dir: 32e9,
            pcie_nvme_dir: 8e9,
            nvlink_pair_dir: 100e9,
            roce_dir: 0.93 * 25e9,
        }
    }
}

/// The EPYC I/O-die SerDes-pair contention model (Sec. III-C4).
///
/// Traffic whose route enters and leaves a socket's IOD through two SerDes
/// sets shares a virtual *pair link* (one per unordered pair of sets, both
/// directions pooled). The three class capacities are calibrated so the
/// paper's four stress-test outcomes are reproduced exactly:
///
/// | scenario | pairs crossed | attained |
/// |---|---|---|
/// | same-socket CPU-RoCE | none (DRAM is not a SerDes set) | 93% |
/// | same-socket GPU-RoCE | (PCIe-GPU, PCIe-NIC) @13 GBps ×2 GPUs | 52% |
/// | cross-socket CPU-RoCE | (xGMI, PCIe-NIC) @23.5 GBps | 47% |
/// | cross-socket GPU-RoCE | (PCIe-GPU, xGMI) @10.5 GBps ×2 GPUs | 42% |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IodModel {
    /// Pair capacity when both sets are PCIe (bytes/second, bidirectional
    /// pooled).
    pub pcie_pcie: f64,
    /// Pair capacity between a GPU PCIe set and the xGMI sets.
    pub pcie_gpu_xgmi: f64,
    /// Pair capacity between the xGMI sets and a NIC/NVMe PCIe set.
    pub xgmi_pcie_io: f64,
    /// Extra one-way latency added per pair crossing, seconds. Dominates
    /// the 7× small-message latency gap between same- and cross-socket
    /// RoCE (Fig. 3).
    pub crossing_latency_s: f64,
}

impl Default for IodModel {
    fn default() -> Self {
        IodModel {
            pcie_pcie: 13.0e9,
            pcie_gpu_xgmi: 10.5e9,
            xgmi_pcie_io: 23.5e9,
            crossing_latency_s: 10e-6,
        }
    }
}

/// First-order NVMe device model (Intel D7-P5600-class, Sec. V-B3).
///
/// Writes land in an on-drive DRAM cache at the burst rate until the cache
/// fills, then drop to the NAND sustained rate; reads stream from NAND.
/// Both directions are modelled as token-bucket links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmeDeviceModel {
    /// DRAM cache capacity absorbing write bursts, bytes.
    pub cache_bytes: f64,
    /// Burst service rate (cache-hit), bytes/second.
    pub burst: f64,
    /// Sustained NAND write rate, bytes/second.
    pub sustained_write: f64,
    /// Sustained NAND read rate, bytes/second.
    pub sustained_read: f64,
    /// Per-request latency, seconds.
    pub latency_s: f64,
}

impl Default for NvmeDeviceModel {
    fn default() -> Self {
        NvmeDeviceModel {
            cache_bytes: 1.2e9,
            burst: 6.8e9,
            sustained_write: 2.2e9,
            sustained_read: 4.2e9,
            latency_s: 30e-6,
        }
    }
}

/// Startup latencies for the fixed interconnects, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// GPU↔GPU NVLink hop.
    pub nvlink_s: f64,
    /// PCIe hop (GPU/NIC/NVMe ↔ CPU root complex).
    pub pcie_s: f64,
    /// xGMI hop between sockets.
    pub xgmi_s: f64,
    /// RoCE NIC-to-NIC (through the SN3700 switch), one way.
    pub roce_s: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            nvlink_s: 1.8e-6,
            pcie_s: 0.7e-6,
            xgmi_s: 0.6e-6,
            roce_s: 1.9e-6,
        }
    }
}

/// Memory tier capacities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryCapacities {
    /// HBM per GPU, bytes (A100 SXM4 40 GB).
    pub gpu_bytes: f64,
    /// DRAM per node, bytes (16 × 64 GB).
    pub cpu_bytes_per_node: f64,
    /// Capacity per scratch NVMe drive, bytes (3.2 TB).
    pub nvme_bytes_per_drive: f64,
}

impl Default for MemoryCapacities {
    fn default() -> Self {
        MemoryCapacities {
            gpu_bytes: 40e9,
            cpu_bytes_per_node: 1024e9,
            nvme_bytes_per_drive: 3.2e12,
        }
    }
}

/// Placement of one scratch NVMe drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeDrivePlacement {
    /// Socket the drive's PCIe lanes terminate on.
    pub socket: usize,
}

/// One aggregation tier of the inter-node fabric.
///
/// A tier partitions the nodes into contiguous groups of
/// `nodes_per_group`; traffic between nodes in *different* groups at this
/// tier traverses the source group's shared uplink and the destination
/// group's shared downlink (each an aggregate of `up_bytes_per_s` per
/// direction). Tiers nest: group sizes must be non-descending and each
/// tier's size a multiple of the previous tier's (equal sizes model two
/// stacked aggregates over the same partition, e.g. a pod uplink under a
/// two-pod spine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricTier {
    /// Nodes per group at this tier (contiguous node ranges).
    pub nodes_per_group: usize,
    /// Aggregate uplink capacity per group per direction, bytes/second.
    pub up_bytes_per_s: f64,
    /// Extra one-way latency per crossing of this tier, seconds.
    pub latency_s: f64,
}

/// The inter-node switching fabric above the per-NIC RoCE uplinks.
///
/// An empty tier list models the paper's testbed: every NIC plugs into one
/// non-blocking switch (the SN3700), so inter-node routes consist of the
/// two RoCE wires only. Generated topologies (see `TopologySpec`) add one
/// tier per oversubscribed aggregation level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FabricSpec {
    /// Aggregation tiers, leaf-most first.
    pub tiers: Vec<FabricTier>,
}

impl FabricSpec {
    /// True when no aggregation tier is modeled (paper-style flat switch).
    pub fn is_flat(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Group index of `node` at `tier`.
    pub fn group_of(&self, node: usize, tier: usize) -> usize {
        node / self.tiers[tier].nodes_per_group
    }

    /// Number of groups at `tier` for a cluster of `nodes` nodes.
    pub fn groups_at(&self, nodes: usize, tier: usize) -> usize {
        nodes / self.tiers[tier].nodes_per_group
    }

    /// Highest tier at which `a` and `b` fall into different groups, or
    /// `None` when they share the leaf switch (traffic between them uses
    /// no fabric aggregate).
    pub fn crossing_tier(&self, a: usize, b: usize) -> Option<usize> {
        (0..self.tiers.len())
            .rev()
            .find(|&t| self.group_of(a, t) != self.group_of(b, t))
    }

    /// Validates tier nesting and capacities against a node count.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        let mut prev = 1usize;
        for (t, tier) in self.tiers.iter().enumerate() {
            if tier.nodes_per_group < 2 {
                return Err(format!(
                    "fabric tier {t}: groups need at least 2 nodes (got {})",
                    tier.nodes_per_group
                ));
            }
            if t > 0 && (tier.nodes_per_group < prev || !tier.nodes_per_group.is_multiple_of(prev))
            {
                return Err(format!(
                    "fabric tier {t}: group size {} must be a non-descending multiple of the previous tier's {prev}",
                    tier.nodes_per_group
                ));
            }
            if !nodes.is_multiple_of(tier.nodes_per_group) {
                return Err(format!(
                    "fabric tier {t}: group size {} does not divide {nodes} nodes",
                    tier.nodes_per_group
                ));
            }
            if !tier.up_bytes_per_s.is_finite() || tier.up_bytes_per_s <= 0.0 {
                return Err(format!(
                    "fabric tier {t}: uplink capacity must be finite and positive"
                ));
            }
            if !tier.latency_s.is_finite() || tier.latency_s < 0.0 {
                return Err(format!(
                    "fabric tier {t}: latency must be finite and non-negative"
                ));
            }
            prev = tier.nodes_per_group;
        }
        Ok(())
    }
}

/// Complete description of a cluster to simulate.
///
/// [`ClusterSpec::default`] is the paper's testbed: two XE8545 nodes, four
/// A100-40GB per node (two per socket), one ConnectX-6 per socket, and two
/// scratch NVMe drives on socket 1 (the mdadm RAID0 scratch volume of
/// Table II). Use the `with_*` methods to derive variants:
///
/// ```
/// use zerosim_hw::ClusterSpec;
/// let single = ClusterSpec::default().with_nodes(1);
/// assert_eq!(single.nodes, 1);
/// assert_eq!(single.gpus_per_node, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub nodes: usize,
    /// GPUs per node (split evenly across the two sockets).
    pub gpus_per_node: usize,
    /// Link capacities.
    pub bw: LinkBandwidths,
    /// I/O-die contention model.
    pub iod: IodModel,
    /// NVMe device behaviour.
    pub nvme_dev: NvmeDeviceModel,
    /// Scratch drive layout, identical on every node.
    pub nvme_layout: Vec<NvmeDrivePlacement>,
    /// Link startup latencies.
    pub lat: LatencyModel,
    /// Memory tier capacities.
    pub mem: MemoryCapacities,
    /// Inter-node switching fabric above the NIC uplinks (empty = the
    /// paper's single non-blocking switch).
    pub fabric: FabricSpec,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 2,
            gpus_per_node: 4,
            bw: LinkBandwidths::default(),
            iod: IodModel::default(),
            nvme_dev: NvmeDeviceModel::default(),
            // Table II: two scratch D7-P5600 on CPU #1.
            nvme_layout: vec![
                NvmeDrivePlacement { socket: 1 },
                NvmeDrivePlacement { socket: 1 },
            ],
            lat: LatencyModel::default(),
            mem: MemoryCapacities::default(),
            fabric: FabricSpec::default(),
        }
    }
}

impl ClusterSpec {
    /// Number of sockets per node (fixed at two, as on the XE8545).
    pub const SOCKETS_PER_NODE: usize = 2;

    /// Returns a copy with a different node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Returns a copy with a different scratch-drive layout (applied to
    /// every node).
    pub fn with_nvme_layout(mut self, layout: Vec<NvmeDrivePlacement>) -> Self {
        self.nvme_layout = layout;
        self
    }

    /// Returns a copy with a different per-node GPU count (must stay a
    /// multiple of [`ClusterSpec::SOCKETS_PER_NODE`]).
    pub fn with_gpus_per_node(mut self, gpus_per_node: usize) -> Self {
        self.gpus_per_node = gpus_per_node;
        self
    }

    /// Returns a copy with a different inter-node fabric.
    pub fn with_fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabric = fabric;
        self
    }

    /// GPUs per socket.
    pub fn gpus_per_socket(&self) -> usize {
        self.gpus_per_node / Self::SOCKETS_PER_NODE
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Total CPU sockets in the cluster.
    pub fn total_sockets(&self) -> usize {
        self.nodes * Self::SOCKETS_PER_NODE
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.gpus_per_node == 0 || !self.gpus_per_node.is_multiple_of(Self::SOCKETS_PER_NODE) {
            return Err(format!(
                "gpus_per_node must be a positive multiple of {} (got {})",
                Self::SOCKETS_PER_NODE,
                self.gpus_per_node
            ));
        }
        for (i, d) in self.nvme_layout.iter().enumerate() {
            if d.socket >= Self::SOCKETS_PER_NODE {
                return Err(format!(
                    "nvme drive {i} placed on unknown socket {}",
                    d.socket
                ));
            }
        }
        let bws = [
            self.bw.dram_socket,
            self.bw.xgmi_dir,
            self.bw.pcie_gpu_dir,
            self.bw.pcie_nic_dir,
            self.bw.pcie_nvme_dir,
            self.bw.nvlink_pair_dir,
            self.bw.roce_dir,
        ];
        if bws.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err("all link bandwidths must be finite and positive".into());
        }
        self.fabric.validate(self.nodes)?;
        Ok(())
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct LinkBandwidths {
        dram_socket, xgmi_dir, pcie_gpu_dir, pcie_nic_dir, pcie_nvme_dir,
        nvlink_pair_dir, roce_dir,
    }
    struct IodModel { pcie_pcie, pcie_gpu_xgmi, xgmi_pcie_io, crossing_latency_s }
    struct NvmeDeviceModel { cache_bytes, burst, sustained_write, sustained_read, latency_s }
    struct LatencyModel { nvlink_s, pcie_s, xgmi_s, roce_s }
    struct MemoryCapacities { gpu_bytes, cpu_bytes_per_node, nvme_bytes_per_drive }
    struct NvmeDrivePlacement { socket }
    struct FabricTier { nodes_per_group, up_bytes_per_s, latency_s }
    struct FabricSpec { tiers }
    struct ClusterSpec { nodes, gpus_per_node, bw, iod, nvme_dev, nvme_layout, lat, mem, fabric }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let s = ClusterSpec::default();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.gpus_per_node, 4);
        assert_eq!(s.gpus_per_socket(), 2);
        assert_eq!(s.total_gpus(), 8);
        assert_eq!(s.total_sockets(), 4);
        assert_eq!(s.nvme_layout.len(), 2);
        assert!(s.validate().is_ok());
        // Table III spot checks.
        assert_eq!(s.bw.pcie_gpu_dir, 32e9);
        assert_eq!(s.bw.pcie_nvme_dir, 8e9);
        assert_eq!(s.bw.nvlink_pair_dir, 100e9);
        assert_eq!(s.mem.gpu_bytes, 40e9);
    }

    #[test]
    fn with_nodes_builder() {
        let s = ClusterSpec::default().with_nodes(1);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.total_gpus(), 4);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_bad_specs() {
        assert!(ClusterSpec::default().with_nodes(0).validate().is_err());
        let mut odd = ClusterSpec::default();
        odd.gpus_per_node = 3;
        assert!(odd.validate().is_err());
        let bad_drive =
            ClusterSpec::default().with_nvme_layout(vec![NvmeDrivePlacement { socket: 5 }]);
        assert!(bad_drive.validate().is_err());
        let mut bad_bw = ClusterSpec::default();
        bad_bw.bw.roce_dir = -1.0;
        assert!(bad_bw.validate().is_err());
    }

    #[test]
    fn fabric_validation() {
        let tier = |npg: usize, cap: f64| FabricTier {
            nodes_per_group: npg,
            up_bytes_per_s: cap,
            latency_s: 1e-6,
        };
        // Flat fabric is always fine.
        assert!(FabricSpec::default().validate(7).is_ok());
        // One tier of 4-node groups over 8 nodes.
        let f = FabricSpec {
            tiers: vec![tier(4, 100e9)],
        };
        assert!(f.validate(8).is_ok());
        assert_eq!(f.groups_at(8, 0), 2);
        assert_eq!(f.group_of(5, 0), 1);
        assert_eq!(f.crossing_tier(0, 3), None);
        assert_eq!(f.crossing_tier(0, 4), Some(0));
        // Nested tiers: crossing tier is the highest differing one.
        let two = FabricSpec {
            tiers: vec![tier(2, 50e9), tier(4, 80e9)],
        };
        assert!(two.validate(8).is_ok());
        assert_eq!(two.crossing_tier(0, 1), None);
        assert_eq!(two.crossing_tier(0, 2), Some(0));
        assert_eq!(two.crossing_tier(0, 4), Some(1));
        // Rejections: non-dividing, non-nesting, bad capacity.
        assert!(f.validate(6).is_err());
        let bad_nest = FabricSpec {
            tiers: vec![tier(4, 50e9), tier(6, 80e9)],
        };
        assert!(bad_nest.validate(12).is_err());
        let bad_cap = FabricSpec {
            tiers: vec![tier(2, -1.0)],
        };
        assert!(bad_cap.validate(4).is_err());
        // ClusterSpec validation picks fabric errors up.
        let spec = ClusterSpec::default()
            .with_nodes(4)
            .with_fabric(FabricSpec {
                tiers: vec![tier(3, 10e9)],
            });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_implements_serde_bounds() {
        // The in-house replacement for the old `serde` bound check: the
        // spec must satisfy the codec traits *and* survive a full
        // text round trip (render → parse → decode → compare).
        fn assert_serde<T: zerosim_testkit::ToJson + zerosim_testkit::FromJson>() {}
        assert_serde::<ClusterSpec>();

        use zerosim_testkit::{FromJson, ToJson};
        let spec = ClusterSpec::default();
        let text = spec.to_json_string();
        let round = ClusterSpec::from_json_str(&text).expect("spec JSON must decode");
        assert_eq!(spec, round, "ClusterSpec must round-trip through JSON");
    }
}
