//! Integration tests asserting the paper's headline findings hold in the
//! simulation — who wins, by roughly what factor, where crossovers fall.
//!
//! Triage note (hermetic-build PR): the ROADMAP's "seed tests failing"
//! was the workspace failing to *resolve registry dependencies* — the
//! suite below never compiled. With the in-house `zerosim-testkit`
//! substrate the workspace builds offline and every test in this file
//! passes unmodified against the paper's tables/figures; no expectation
//! needed correction.

use zerosim_core::{max_model_size, RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_perftest::{stress_test, StressScenario};
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

fn capacity_b(strategy: &Strategy, nodes: usize) -> f64 {
    let sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let opts = if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    };
    max_model_size(sim.cluster(), strategy, &opts, sim.calibration())
        .unwrap()
        .billions()
}

fn throughput_at_capacity(strategy: &Strategy, nodes: usize) -> f64 {
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let opts = if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    };
    let cap = max_model_size(sim.cluster(), strategy, &opts, sim.calibration()).unwrap();
    let model = GptConfig::paper_model(cap.num_layers);
    sim.run(strategy, &model, &opts, &RunConfig::quick())
        .unwrap()
        .throughput_tflops()
}

#[test]
fn megatron_fits_4x_ddp_single_node() {
    // Abstract: "Megatron-LM can fit a 4x larger model than the DDP".
    let ddp = capacity_b(&Strategy::Ddp, 1);
    let megatron = capacity_b(&Strategy::Megatron { tp: 4, pp: 1 }, 1);
    let ratio = megatron / ddp;
    assert!(
        (3.0..5.5).contains(&ratio),
        "Megatron/DDP capacity {ratio:.2}x"
    );
}

#[test]
fn megatron_fits_8x_ddp_dual_node() {
    // Sec. IV-B2: "eight times larger than DDP" across two nodes.
    let ddp = capacity_b(&Strategy::Ddp, 2);
    let megatron = capacity_b(&Strategy::Megatron { tp: 8, pp: 1 }, 2);
    let ratio = megatron / ddp;
    assert!((6.0..10.0).contains(&ratio), "ratio {ratio:.2}x");
}

#[test]
fn zero3_fits_about_20_percent_more_than_megatron() {
    // Fig. 6: ZeRO-3 handles ~1.2x Megatron in both regimes.
    for nodes in [1, 2] {
        let tp = 4 * nodes;
        let megatron = capacity_b(&Strategy::Megatron { tp, pp: 1 }, nodes);
        let z3 = capacity_b(
            &Strategy::Zero {
                stage: ZeroStage::Three,
            },
            nodes,
        );
        let ratio = z3 / megatron;
        assert!(
            (1.05..1.45).contains(&ratio),
            "{nodes}-node ZeRO-3/Megatron capacity {ratio:.2}x"
        );
    }
}

#[test]
fn dual_node_megatron_throughput_collapses() {
    // Abstract: dual-node Megatron achieves only 25–30% of ZeRO's
    // throughput due to excessive inter-node communication.
    let megatron = throughput_at_capacity(&Strategy::Megatron { tp: 8, pp: 1 }, 2);
    let z3 = throughput_at_capacity(
        &Strategy::Zero {
            stage: ZeroStage::Three,
        },
        2,
    );
    let frac = megatron / z3;
    assert!(
        frac < 0.45,
        "Megatron reaches {frac:.2} of ZeRO-3 dual-node"
    );
    // And it loses throughput outright moving from one node to two.
    let single = throughput_at_capacity(&Strategy::Megatron { tp: 4, pp: 1 }, 1);
    assert!(
        megatron < 0.6 * single,
        "dual {megatron:.0} vs single {single:.0}"
    );
}

#[test]
fn ddp_wins_dual_node_throughput() {
    // Fig. 7-b ordering: DDP > ZeRO-3 > ZeRO-2 > ZeRO-1 >> Megatron.
    let ddp = throughput_at_capacity(&Strategy::Ddp, 2);
    let z1 = throughput_at_capacity(
        &Strategy::Zero {
            stage: ZeroStage::One,
        },
        2,
    );
    let z2 = throughput_at_capacity(
        &Strategy::Zero {
            stage: ZeroStage::Two,
        },
        2,
    );
    let z3 = throughput_at_capacity(
        &Strategy::Zero {
            stage: ZeroStage::Three,
        },
        2,
    );
    let megatron = throughput_at_capacity(&Strategy::Megatron { tp: 8, pp: 1 }, 2);
    assert!(ddp > z3, "ddp {ddp:.0} > z3 {z3:.0}");
    assert!(z3 > z2, "z3 {z3:.0} > z2 {z2:.0}");
    assert!(z2 > z1, "z2 {z2:.0} > z1 {z1:.0}");
    assert!(z1 > 2.0 * megatron, "z1 {z1:.0} >> megatron {megatron:.0}");
}

#[test]
fn zero2_beats_ddp_throughput_single_node() {
    // Fig. 8-a sweet spot: ZeRO-2 tops single-node throughput while
    // fitting a Megatron-class model.
    let ddp = throughput_at_capacity(&Strategy::Ddp, 1);
    let z2 = throughput_at_capacity(
        &Strategy::Zero {
            stage: ZeroStage::Two,
        },
        1,
    );
    assert!(z2 > ddp, "z2 {z2:.0} > ddp {ddp:.0}");
}

#[test]
fn cpu_offload_consolidates_dual_node() {
    // Sec. V-A1: ZeRO-2 CPU offload fits dual-node Megatron's 11.4 B model
    // on one node with ~1.58x its throughput.
    let model = GptConfig::paper_model_with_params(11.4);
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    // Our Megatron capacity lands at 11.2 B (paper: 11.4); allow the 2%
    // overflow for this reference measurement.
    let overflow = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    let megatron = sim
        .run(
            &Strategy::Megatron { tp: 8, pp: 1 },
            &model,
            &TrainOptions::dual_node(),
            &overflow,
        )
        .unwrap()
        .throughput_tflops();

    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let offload = Strategy::ZeroOffload {
        stage: ZeroStage::Two,
        offload_params: false,
    };
    let plan = offload
        .memory_plan(
            sim.cluster(),
            &model,
            &TrainOptions::single_node(),
            sim.calibration(),
        )
        .unwrap();
    assert!(plan.fits(sim.cluster()), "11.4B must fit with CPU offload");
    let z2_cpu = sim
        .run(
            &offload,
            &model,
            &TrainOptions::single_node(),
            &RunConfig::quick(),
        )
        .unwrap()
        .throughput_tflops();
    let ratio = z2_cpu / megatron;
    assert!(
        (1.2..2.1).contains(&ratio),
        "consolidation speedup {ratio:.2}x (paper: 1.578x)"
    );
}

#[test]
fn zero_infinity_fits_6x_megatron_single_node() {
    // Abstract: "fit a model six times larger than previously possible in
    // single node" with NVMe offload.
    let megatron = capacity_b(&Strategy::Megatron { tp: 4, pp: 1 }, 1);
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let d = |drive| zerosim_hw::NvmeId { node: 0, drive };
    let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
    let strategy = Strategy::ZeroInfinity {
        offload_params: false,
        placement: zerosim_strategies::InfinityPlacement::new(vec![vol]),
    };
    let cap = max_model_size(
        sim.cluster(),
        &strategy,
        &TrainOptions::single_node(),
        sim.calibration(),
    )
    .unwrap()
    .billions();
    let ratio = cap / megatron;
    assert!(
        (4.0..7.5).contains(&ratio),
        "Infinity/Megatron capacity {ratio:.2}x"
    );
}

#[test]
fn stress_tests_reproduce_serdes_contention() {
    // Sec. III-C: 93% / 52% / 47% / 42% attained RoCE.
    let cases = [
        (
            StressScenario::CpuRoce {
                cross_socket: false,
            },
            0.93,
        ),
        (
            StressScenario::GpuRoce {
                cross_socket: false,
            },
            0.52,
        ),
        (StressScenario::CpuRoce { cross_socket: true }, 0.47),
        (StressScenario::GpuRoce { cross_socket: true }, 0.42),
    ];
    for (scenario, expected) in cases {
        let got = stress_test(scenario).roce_fraction;
        assert!(
            (got - expected).abs() < 0.04,
            "{}: {got:.2} vs {expected}",
            scenario.label()
        );
    }
}

#[test]
fn nvlink_does_the_heavy_lifting_single_node() {
    // Sec. IV-E1: NVLink dominates; DRAM/xGMI/PCIe near-idle.
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let report = sim
        .run(
            &Strategy::Ddp,
            &GptConfig::paper_model_with_params(1.4),
            &TrainOptions::single_node(),
            &RunConfig::default(),
        )
        .unwrap();
    let nvl = report.bandwidth.stats(0, LinkClass::NvLink).avg;
    for class in [
        LinkClass::Dram,
        LinkClass::Xgmi,
        LinkClass::PcieGpu,
        LinkClass::Roce,
    ] {
        let other = report.bandwidth.stats(0, class).avg;
        assert!(
            other < nvl / 10.0,
            "{class} avg {other:.2e} too close to NVLink {nvl:.2e}"
        );
    }
}

#[test]
fn second_nvme_drive_nearly_doubles_infinity_throughput() {
    // Sec. V-B1: dual NVMe gives ~86.7% more throughput than single.
    let model = GptConfig::paper_model_with_params(11.4);
    let run = |drives: usize| {
        let layout = vec![zerosim_hw::NvmeDrivePlacement { socket: 1 }; drives];
        let mut sim = TrainingSim::new(ClusterSpec::default().with_nvme_layout(layout)).unwrap();
        let members: Vec<_> = (0..drives)
            .map(|d| zerosim_hw::NvmeId { node: 0, drive: d })
            .collect();
        let vol = sim.cluster_mut().create_volume(members);
        let strategy = Strategy::ZeroInfinity {
            offload_params: false,
            placement: zerosim_strategies::InfinityPlacement::new(vec![vol]),
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        sim.run(&strategy, &model, &TrainOptions::single_node(), &cfg)
            .unwrap()
            .throughput_tflops()
    };
    let one = run(1);
    let two = run(2);
    let gain = two / one;
    assert!(
        (1.5..2.2).contains(&gain),
        "2xNVME gain {gain:.2}x (paper 1.87x)"
    );
}

#[test]
fn offload_params_costs_throughput() {
    // Fig. 11-a: offloading parameters on top of optimizer states lowers
    // throughput in both CPU and NVMe variants.
    let model = GptConfig::paper_model_with_params(11.4);
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    let with = |offload_params: bool| {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let d = |drive| zerosim_hw::NvmeId { node: 0, drive };
        let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
        let strategy = Strategy::ZeroInfinity {
            offload_params,
            placement: zerosim_strategies::InfinityPlacement::new(vec![vol]),
        };
        sim.run(&strategy, &model, &TrainOptions::single_node(), &cfg)
            .unwrap()
            .throughput_tflops()
    };
    let opt_only = with(false);
    let opt_param = with(true);
    assert!(
        opt_param < 0.9 * opt_only,
        "{opt_param:.1} vs {opt_only:.1}"
    );
}
