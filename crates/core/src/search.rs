//! `planfind` — auto-parallelism placement search over a parameterized
//! topology.
//!
//! Given a model and a [`TopologySpec`], the search enumerates the
//! (DP, TP, PP, ZeRO-stage, offload) configurations the cluster shape
//! admits, prunes the ones planlint can reject *statically* (plan/layout
//! errors, memory residency via ZL001, deny-level bandwidth findings via
//! ZL004 — all without running a single simulated flow), simulates the
//! survivors on the deterministic [`SweepRunner`], and ranks them by
//! achieved throughput. The split matters at scale: static analysis costs
//! microseconds per candidate, simulation costs seconds, and on
//! capacity-edge models most of the grid dies in the static pass.
//!
//! Results are deterministic: candidate enumeration order is fixed,
//! simulation is input-ordered at any worker width, and
//! [`SearchReport::digest`] fingerprints the whole outcome so `verify.sh`
//! can assert byte-identical searches across `--workers` widths.
//!
//! ```
//! use zerosim_core::{search_plans, RunConfig, SearchConfig};
//! use zerosim_hw::TopologySpec;
//! use zerosim_model::GptConfig;
//!
//! # fn main() -> Result<(), zerosim_core::CoreError> {
//! let cfg = SearchConfig::new(
//!     TopologySpec::Flat { nodes: 1 }, // one paper-style node
//!     GptConfig::paper_model_with_params(1.4),
//! )
//! .with_run(RunConfig::quick());
//! let report = search_plans(&cfg)?;
//! assert!(report.pruned() + report.simulated() == report.enumerated());
//! // The winner is a pure data-parallel placement (DDP and ZeRO-1/2
//! // are near-ties at 1.4 B on one node; don't pin which one wins).
//! let best = report.best().unwrap();
//! assert_eq!((best.dp, best.tp, best.pp), (4, 1, 1));
//! assert!(best.throughput_tflops().unwrap() > 0.0);
//! # Ok(())
//! # }
//! ```

use zerosim_analyzer::{analyze_strategy, LintConfig, Severity};
use zerosim_hw::{Cluster, TopologySpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{Calibration, ParallelPlacement, Strategy, TrainOptions, ZeroStage};

use crate::engine::RunConfig;
use crate::error::CoreError;
use crate::report::{mix, mix_str};
use crate::sweep::{SweepRunner, SweepSpec};

/// What to search: a model on a topology, plus run/parallelism knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The cluster shape to place against.
    pub topology: TopologySpec,
    /// The model to train.
    pub model: GptConfig,
    /// Performance-model constants.
    pub calibration: Calibration,
    /// Sampling configuration for the simulated survivors.
    pub run: RunConfig,
    /// Worker threads for the simulation stage (results are input-ordered
    /// and byte-identical at any width).
    pub workers: usize,
}

impl SearchConfig {
    /// A search over `topology` with default calibration, the quick run
    /// configuration, and a single worker.
    pub fn new(topology: TopologySpec, model: GptConfig) -> Self {
        SearchConfig {
            topology,
            model,
            calibration: Calibration::default(),
            run: RunConfig::quick(),
            workers: 1,
        }
    }

    /// Replaces the run configuration.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Replaces the simulation worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the calibration constants.
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }
}

/// How one enumerated candidate fared.
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateOutcome {
    /// Rejected by static analysis before any simulation.
    Pruned {
        /// Why (plan error, memory residency, or a deny-level lint).
        reason: String,
    },
    /// Simulated to completion.
    Simulated {
        /// Achieved throughput, FLOP/s.
        throughput_flops: f64,
        /// [`crate::TrainingReport::digest`] of the run.
        digest: u64,
    },
    /// Survived static analysis but failed at simulation time.
    Failed {
        /// The runtime error.
        error: String,
    },
}

/// One enumerated `(strategy, placement)` candidate and its outcome.
#[derive(Debug, Clone)]
pub struct PlanCandidate {
    /// Strategy display name ([`Strategy::name`]).
    pub strategy_name: String,
    /// The strategy itself.
    pub strategy: Strategy,
    /// Data-parallel replica count of the placement.
    pub dp: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline depth.
    pub pp: usize,
    /// Locality spans of the placement
    /// ([`zerosim_strategies::PlacementSpans::describe`]).
    pub spans: String,
    /// What happened to it.
    pub outcome: CandidateOutcome,
}

impl PlanCandidate {
    /// `dp x tp x pp` placement label.
    pub fn placement(&self) -> String {
        format!("dp{} x tp{} x pp{}", self.dp, self.tp, self.pp)
    }

    /// Achieved throughput in TFLOP/s; `None` unless simulated.
    pub fn throughput_tflops(&self) -> Option<f64> {
        match &self.outcome {
            CandidateOutcome::Simulated {
                throughput_flops, ..
            } => Some(throughput_flops / 1e12),
            _ => None,
        }
    }
}

/// The ranked result of a [`search_plans`] run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The searched topology, rendered ([`TopologySpec`]'s `Display`).
    pub topology: String,
    /// Total GPUs placed against.
    pub total_gpus: usize,
    /// Model size in parameters.
    pub model_params: f64,
    /// Every candidate in enumeration order (stable across runs).
    pub candidates: Vec<PlanCandidate>,
}

impl SearchReport {
    /// Candidates enumerated.
    pub fn enumerated(&self) -> usize {
        self.candidates.len()
    }

    fn count(&self, f: impl Fn(&CandidateOutcome) -> bool) -> usize {
        self.candidates.iter().filter(|c| f(&c.outcome)).count()
    }

    /// Candidates rejected by static analysis.
    pub fn pruned(&self) -> usize {
        self.count(|o| matches!(o, CandidateOutcome::Pruned { .. }))
    }

    /// Candidates that reached simulation (including runtime failures).
    pub fn simulated(&self) -> usize {
        self.enumerated() - self.pruned()
    }

    /// Simulated candidates that failed at run time.
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, CandidateOutcome::Failed { .. }))
    }

    /// Fraction of the grid the static pass eliminated.
    pub fn prune_fraction(&self) -> f64 {
        if self.candidates.is_empty() {
            0.0
        } else {
            self.pruned() as f64 / self.enumerated() as f64
        }
    }

    /// Successfully simulated candidates, best throughput first
    /// (total-order ties broken by strategy name, then placement).
    pub fn ranking(&self) -> Vec<&PlanCandidate> {
        let mut ranked: Vec<&PlanCandidate> = self
            .candidates
            .iter()
            .filter(|c| matches!(c.outcome, CandidateOutcome::Simulated { .. }))
            .collect();
        ranked.sort_by(|a, b| {
            let (ta, tb) = (
                a.throughput_tflops().unwrap_or(f64::NAN),
                b.throughput_tflops().unwrap_or(f64::NAN),
            );
            tb.total_cmp(&ta)
                .then_with(|| a.strategy_name.cmp(&b.strategy_name))
                .then_with(|| a.placement().cmp(&b.placement()))
        });
        ranked
    }

    /// The winning candidate, if anything survived to simulation.
    pub fn best(&self) -> Option<&PlanCandidate> {
        self.ranking().into_iter().next()
    }

    /// A stable 64-bit fingerprint of the whole search outcome: every
    /// candidate's identity, placement, spans, and outcome (including
    /// each simulated run's measurement digest). Equal digests mean the
    /// search saw byte-identical results — `verify.sh` compares them
    /// across `--workers` widths.
    pub fn digest(&self) -> u64 {
        let mut h = mix_str(0x504c_414e_u64, &self.topology);
        h = mix(h, self.total_gpus as u64);
        h = mix(h, self.model_params.to_bits());
        for c in &self.candidates {
            h = mix_str(h, &c.strategy_name);
            h = mix(h, c.dp as u64);
            h = mix(h, c.tp as u64);
            h = mix(h, c.pp as u64);
            h = mix_str(h, &c.spans);
            match &c.outcome {
                CandidateOutcome::Pruned { reason } => h = mix_str(mix(h, 1), reason),
                CandidateOutcome::Simulated {
                    throughput_flops,
                    digest,
                } => {
                    h = mix(mix(mix(h, 2), throughput_flops.to_bits()), *digest);
                }
                CandidateOutcome::Failed { error } => h = mix_str(mix(h, 3), error),
            }
        }
        h
    }

    /// Renders the search summary and the top `top` ranked plans.
    pub fn render_text(&self, top: usize) -> String {
        let mut out = format!(
            "planfind: {} ({} GPUs), model {:.1} B\n\
             candidates: {} enumerated, {} statically pruned ({:.0}%), \
             {} simulated, {} failed\n",
            self.topology,
            self.total_gpus,
            self.model_params / 1e9,
            self.enumerated(),
            self.pruned(),
            self.prune_fraction() * 100.0,
            self.simulated() - self.failed(),
            self.failed(),
        );
        for (i, c) in self.ranking().into_iter().take(top).enumerate() {
            out.push_str(&format!(
                "{:>3}. {:<28} {:<22} {:>9.1} TFLOP/s  [{}]\n",
                i + 1,
                c.strategy_name,
                c.placement(),
                c.throughput_tflops().unwrap_or(0.0),
                c.spans,
            ));
        }
        let mut pruned: Vec<&PlanCandidate> = self
            .candidates
            .iter()
            .filter(|c| !matches!(c.outcome, CandidateOutcome::Simulated { .. }))
            .collect();
        pruned.sort_by(|a, b| {
            a.strategy_name
                .cmp(&b.strategy_name)
                .then_with(|| a.placement().cmp(&b.placement()))
        });
        for c in pruned {
            let why = match &c.outcome {
                CandidateOutcome::Pruned { reason } => format!("pruned: {reason}"),
                CandidateOutcome::Failed { error } => format!("failed: {error}"),
                CandidateOutcome::Simulated { .. } => unreachable!("filtered above"),
            };
            out.push_str(&format!(
                "  -  {:<28} {:<22} {}\n",
                c.strategy_name,
                c.placement(),
                why
            ));
        }
        out
    }
}

/// The `(tp, pp)` degrees a strategy occupies (non-Megatron strategies
/// are pure data parallelism).
fn degrees(strategy: &Strategy) -> (usize, usize) {
    match strategy {
        Strategy::Megatron { tp, pp } => (*tp, *pp),
        _ => (1, 1),
    }
}

/// The candidate grid for a cluster of `nodes × gpus_per_node` GPUs:
/// DDP, Megatron with power-of-two node-local TP and pipeline depths
/// dividing the remainder, the three ZeRO stages, and the CPU-offload
/// variants. ZeRO-Infinity needs NVMe volumes configured per run and is
/// deliberately out of scope for the automatic grid.
fn enumerate_candidates(gpus_per_node: usize, total_gpus: usize) -> Vec<Strategy> {
    let mut out = vec![Strategy::Ddp];
    let mut tp = 2usize;
    while tp <= gpus_per_node {
        for pp in [1usize, 2, 4, 8] {
            if tp * pp <= total_gpus && total_gpus.is_multiple_of(tp * pp) {
                out.push(Strategy::Megatron { tp, pp });
            }
        }
        tp *= 2;
    }
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        out.push(Strategy::Zero { stage });
    }
    for (stage, offload_params) in [
        (ZeroStage::Two, false),
        (ZeroStage::Three, false),
        (ZeroStage::Three, true),
    ] {
        out.push(Strategy::ZeroOffload {
            stage,
            offload_params,
        });
    }
    out
}

/// Statically vets one candidate; `Some(reason)` means prune.
fn static_prune(
    cluster: &Cluster,
    strategy: &Strategy,
    model: &GptConfig,
    opts: &TrainOptions,
    calib: &Calibration,
) -> Option<String> {
    let report = match analyze_strategy(cluster, strategy, model, opts, calib, LintConfig::new()) {
        Ok(r) => r,
        Err(e) => return Some(format!("cannot plan: {e}")),
    };
    if let Some(m) = &report.memory {
        if !m.fits {
            return Some(format!(
                "does not fit ({} tier)",
                m.bottleneck.unwrap_or("memory")
            ));
        }
    }
    if report.deny_count() > 0 {
        let first = report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Deny)
            .map(|d| format!("{}: {}", d.code, d.message))
            .unwrap_or_else(|| "deny-level finding".into());
        return Some(first);
    }
    None
}

/// Runs the full enumerate → statically prune → simulate → rank pipeline.
///
/// # Errors
/// [`CoreError::BadCluster`] when the topology does not lower to a valid
/// cluster. Per-candidate failures never abort the search; they are
/// recorded as [`CandidateOutcome::Pruned`] or
/// [`CandidateOutcome::Failed`].
pub fn search_plans(cfg: &SearchConfig) -> Result<SearchReport, CoreError> {
    let spec = cfg.topology.build().map_err(CoreError::BadCluster)?;
    let cluster = Cluster::new(spec.clone()).map_err(CoreError::BadCluster)?;
    let nodes = cfg.topology.nodes();
    let opts = TrainOptions::for_nodes(nodes);
    let total_gpus = opts.num_gpus(&cluster);

    let grid = enumerate_candidates(spec.gpus_per_node, total_gpus);
    let mut candidates: Vec<PlanCandidate> = Vec::with_capacity(grid.len());
    let mut survivors: Vec<usize> = Vec::new();
    for strategy in grid {
        let (tp, pp) = degrees(&strategy);
        let spans = ParallelPlacement::resolve(opts.gpus(&cluster), tp, pp)
            .map(|p| p.spans(&cluster).describe(&cluster))
            .unwrap_or_else(|e| format!("unplaceable: {e}"));
        let outcome = match static_prune(&cluster, &strategy, &cfg.model, &opts, &cfg.calibration) {
            Some(reason) => CandidateOutcome::Pruned { reason },
            // Placeholder; overwritten by the simulation stage below.
            None => {
                survivors.push(candidates.len());
                CandidateOutcome::Failed {
                    error: "not simulated".into(),
                }
            }
        };
        candidates.push(PlanCandidate {
            strategy_name: strategy.name(),
            strategy,
            dp: total_gpus / (tp * pp),
            tp,
            pp,
            spans,
            outcome,
        });
    }

    let specs: Vec<SweepSpec> = survivors
        .iter()
        .map(|&i| {
            let c = &candidates[i];
            SweepSpec::new(
                format!("{} {}", c.strategy_name, c.placement()),
                c.strategy.clone(),
                cfg.model,
                opts,
            )
            .with_cluster(spec.clone())
            .with_calibration(cfg.calibration)
            .with_run(cfg.run)
        })
        .collect();
    let outcomes = SweepRunner::new(cfg.workers).run_each(specs);
    for (&i, outcome) in survivors.iter().zip(outcomes) {
        candidates[i].outcome = match outcome {
            Ok(run) => CandidateOutcome::Simulated {
                throughput_flops: run.report.throughput_flops(),
                digest: run.digest,
            },
            Err(e) => CandidateOutcome::Failed {
                error: e.to_string(),
            },
        };
    }

    Ok(SearchReport {
        topology: cfg.topology.to_string(),
        total_gpus,
        model_params: cfg.model.num_params(),
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_paper_testbed() {
        let grid = enumerate_candidates(4, 8);
        assert_eq!(grid.len(), 12, "{grid:?}");
        assert!(grid.contains(&Strategy::Megatron { tp: 4, pp: 2 }));
        assert!(grid.contains(&Strategy::Megatron { tp: 2, pp: 4 }));
        assert!(!grid.contains(&Strategy::Megatron { tp: 8, pp: 1 }));
    }

    #[test]
    fn small_model_ranks_ddp_first_on_the_paper_testbed() {
        let cfg = SearchConfig::new(
            TopologySpec::default(),
            GptConfig::paper_model_with_params(1.4),
        );
        let report = search_plans(&cfg).unwrap();
        assert_eq!(report.enumerated(), 12);
        assert_eq!(report.pruned() + report.simulated(), report.enumerated());
        let best = report.best().expect("something simulates");
        assert_eq!(best.strategy_name, "PyTorch DDP");
        assert_eq!((best.dp, best.tp, best.pp), (8, 1, 1));
    }

    #[test]
    fn capacity_edge_prunes_ddp_and_promotes_sharded_plans() {
        // 5.6 B on one node: DDP replicates the full model per GPU and
        // dies statically; ZeRO-3 (Fig. 6-a's 6.6 B ceiling) survives and
        // ranks. This is the DDP-vs-ZeRO-3 capacity-edge case.
        let cfg = SearchConfig::new(
            TopologySpec::Flat { nodes: 1 },
            GptConfig::paper_model_with_params(5.6),
        );
        let report = search_plans(&cfg).unwrap();
        let ddp = report
            .candidates
            .iter()
            .find(|c| c.strategy_name == "PyTorch DDP")
            .unwrap();
        assert!(
            matches!(&ddp.outcome, CandidateOutcome::Pruned { reason } if reason.contains("fit")),
            "{:?}",
            ddp.outcome
        );
        let best = report.best().expect("a sharded plan survives");
        assert_ne!(best.strategy_name, "PyTorch DDP");
        let z3 = report
            .candidates
            .iter()
            .find(|c| c.strategy_name == "ZeRO-3")
            .unwrap();
        assert!(
            matches!(z3.outcome, CandidateOutcome::Simulated { .. }),
            "{:?}",
            z3.outcome
        );
        let text = report.render_text(3);
        assert!(text.contains("enumerated"), "{text}");
        assert!(text.contains("pruned"), "{text}");
        assert!(text.contains("TFLOP/s"), "{text}");
    }

    #[test]
    fn oversized_model_is_rejected_entirely_by_the_static_pass() {
        // 40 B on one node overwhelms every non-NVMe plan: the whole grid
        // dies statically and no simulation runs at all.
        let cfg = SearchConfig::new(
            TopologySpec::Flat { nodes: 1 },
            GptConfig::paper_model_with_params(40.0),
        );
        let report = search_plans(&cfg).unwrap();
        assert_eq!(report.pruned(), report.enumerated());
        assert!(report.prune_fraction() >= 0.9);
        assert!(report.best().is_none());
    }

    #[test]
    fn search_is_width_invariant() {
        let cfg = SearchConfig::new(
            TopologySpec::Flat { nodes: 1 },
            GptConfig::paper_model_with_params(1.4),
        );
        let serial = search_plans(&cfg).unwrap();
        let wide = search_plans(&cfg.clone().with_workers(4)).unwrap();
        assert_eq!(serial.digest(), wide.digest());
        assert_eq!(serial.render_text(usize::MAX), wide.render_text(usize::MAX));
    }
}
