//! Failure-injection tests: degrade pieces of the simulated cluster and
//! check that the system responds the way a real operator would expect —
//! gracefully where the design allows, and with a visible cliff where the
//! paper says there is one.
//!
//! Triage note (hermetic-build PR): the ROADMAP's "seed tests failing"
//! was the workspace failing to *resolve registry dependencies* — the
//! suite below never compiled. With the in-house `zerosim-testkit`
//! substrate the workspace builds offline and every test in this file
//! passes unmodified against the paper's tables/figures; no expectation
//! needed correction.

use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

fn tput(spec: ClusterSpec, strategy: &Strategy, billions: f64, nodes: usize) -> f64 {
    let mut sim = TrainingSim::new(spec).unwrap();
    let opts = if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    };
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    sim.run(
        &strategy.clone(),
        &GptConfig::paper_model_with_params(billions),
        &opts,
        &cfg,
    )
    .unwrap()
    .throughput_tflops()
}

#[test]
fn degraded_roce_hurts_dual_node_but_not_single() {
    let mut degraded = ClusterSpec::default();
    degraded.bw.roce_dir /= 10.0; // e.g. PFC storms / a flapping link

    let strategy = Strategy::Ddp;
    let single_ok = tput(ClusterSpec::default(), &strategy, 1.4, 1);
    let single_bad = tput(degraded.clone(), &strategy, 1.4, 1);
    assert!(
        (single_ok - single_bad).abs() / single_ok < 0.01,
        "single-node must not care about RoCE: {single_ok} vs {single_bad}"
    );

    let dual_ok = tput(ClusterSpec::default(), &strategy, 1.4, 2);
    let dual_bad = tput(degraded, &strategy, 1.4, 2);
    assert!(
        dual_bad < 0.8 * dual_ok,
        "dual-node must suffer: {dual_ok} vs {dual_bad}"
    );
}

#[test]
fn slow_nvlink_hurts_megatron_most() {
    let mut degraded = ClusterSpec::default();
    degraded.bw.nvlink_pair_dir /= 20.0; // a downgraded (PCIe-class) GPU box

    let megatron_ok = tput(
        ClusterSpec::default(),
        &Strategy::Megatron { tp: 4, pp: 1 },
        1.4,
        1,
    );
    let megatron_bad = tput(
        degraded.clone(),
        &Strategy::Megatron { tp: 4, pp: 1 },
        1.4,
        1,
    );
    let ddp_ok = tput(ClusterSpec::default(), &Strategy::Ddp, 1.4, 1);
    let ddp_bad = tput(degraded, &Strategy::Ddp, 1.4, 1);

    let megatron_loss = 1.0 - megatron_bad / megatron_ok;
    let ddp_loss = 1.0 - ddp_bad / ddp_ok;
    assert!(
        megatron_loss > ddp_loss,
        "TP leans hardest on NVLink: megatron -{:.0}% vs ddp -{:.0}%",
        megatron_loss * 100.0,
        ddp_loss * 100.0
    );
}

#[test]
fn failed_nvme_drive_degrades_infinity_throughput_gracefully() {
    // A degraded (firmware-throttled) drive: training continues at a
    // proportionally lower rate — no cliff, no deadlock.
    let run_with = |sustained_scale: f64| {
        let mut spec = ClusterSpec::default();
        spec.nvme_dev.sustained_write *= sustained_scale;
        spec.nvme_dev.sustained_read *= sustained_scale;
        spec.nvme_dev.burst = spec.nvme_dev.burst.max(spec.nvme_dev.sustained_read * 1.01);
        let mut sim = TrainingSim::new(spec).unwrap();
        let d = |drive| NvmeId { node: 0, drive };
        let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
        let strategy = Strategy::ZeroInfinity {
            offload_params: false,
            placement: InfinityPlacement::new(vec![vol]),
        };
        let cfg = RunConfig {
            allow_overflow: true,
            warmup_iters: 1,
            measure_iters: 1,
            ..RunConfig::default()
        };
        sim.run(
            &strategy,
            &GptConfig::paper_model_with_params(11.4),
            &TrainOptions::single_node(),
            &cfg,
        )
        .unwrap()
        .throughput_tflops()
    };
    let healthy = run_with(1.0);
    let throttled = run_with(0.25);
    assert!(throttled < healthy);
    assert!(
        throttled > 0.15 * healthy,
        "degradation should be proportional-ish: {throttled} vs {healthy}"
    );
}

#[test]
fn single_nic_cluster_still_trains() {
    // Knock one NIC's worth of bandwidth out by halving RoCE capacity —
    // the flow solver reroutes nothing (routes are static) but shares the
    // remaining capacity; training completes with reduced throughput.
    let mut degraded = ClusterSpec::default();
    degraded.bw.roce_dir /= 2.0;
    let ok = tput(
        ClusterSpec::default(),
        &Strategy::Zero {
            stage: ZeroStage::Three,
        },
        1.4,
        2,
    );
    let bad = tput(
        degraded,
        &Strategy::Zero {
            stage: ZeroStage::Three,
        },
        1.4,
        2,
    );
    assert!(bad > 0.0 && bad <= ok * 1.001, "{bad} vs {ok}");
}

#[test]
fn memory_overflow_is_an_error_not_a_crash() {
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let err = sim
        .run(
            &Strategy::Ddp,
            &GptConfig::paper_model_with_params(33.3),
            &TrainOptions::single_node(),
            &RunConfig::default(),
        )
        .unwrap_err();
    assert!(matches!(err, zerosim_core::CoreError::DoesNotFit { .. }));
}

#[test]
fn pathological_iod_contention_floor() {
    // Cripple the I/O die to 1/10th: cross-socket paths collapse further
    // but the simulation stays numerically sane.
    let mut spec = ClusterSpec::default();
    spec.iod.pcie_pcie /= 10.0;
    spec.iod.pcie_gpu_xgmi /= 10.0;
    spec.iod.xgmi_pcie_io /= 10.0;
    let out = zerosim_perftest::stress_test_on(
        &spec,
        zerosim_perftest::StressScenario::GpuRoce { cross_socket: true },
    );
    assert!(out.roce_fraction > 0.0 && out.roce_fraction < 0.1);
}
