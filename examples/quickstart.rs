//! Quickstart: characterize one training configuration on the simulated
//! two-node cluster and print what the paper would measure for it.
//!
//! Run with: `cargo run --release --example quickstart`

use zerosim_core::{RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_report::{gb, gbps, tflops, Table};
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's testbed: two XE8545 nodes, four A100-40GB each.
    let mut sim = TrainingSim::new(ClusterSpec::default())?;

    // The paper's 1.4 B-parameter GPT-2-like model (26 layers, h=2048).
    let model = GptConfig::paper_model_with_params(1.4);
    println!(
        "model: {} layers, {:.2} B parameters\n",
        model.num_layers,
        model.num_params() / 1e9
    );

    let mut table = Table::new(vec![
        "strategy",
        "iter time",
        "TFLOP/s",
        "GPU GB/gpu",
        "NVLink avg GBps",
        "RoCE avg GBps",
    ]);

    for strategy in [
        Strategy::Ddp,
        Strategy::Zero {
            stage: ZeroStage::One,
        },
        Strategy::Zero {
            stage: ZeroStage::Two,
        },
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
    ] {
        let report = sim.run(
            &strategy,
            &model,
            &TrainOptions::single_node(),
            &RunConfig::default(),
        )?;
        table.row(vec![
            report.strategy.clone(),
            report.iter_time.to_string(),
            tflops(report.throughput_flops()),
            gb(report.memory.per_gpu_bytes),
            gbps(report.bandwidth.stats(0, LinkClass::NvLink).avg),
            gbps(report.bandwidth.stats(0, LinkClass::Roce).avg),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
