//! `zerosim-collectives` — NCCL-like collective communication on the
//! simulated cluster.
//!
//! Collectives ([`CollectiveKind`]) are expanded into ring-algorithm task
//! fragments by [`emit_collective`]: `k` barrier-separated steps of
//! concurrent chunk flows over topology-aware routes ([`CommGroup`] orders
//! ranks node-major and uses one ring per NIC across nodes).
//!
//! ```
//! use zerosim_collectives::{emit_collective, CollectiveKind, CommGroup};
//! use zerosim_hw::{Cluster, ClusterSpec};
//! use zerosim_simkit::{DagBuilder, DagEngine, SimTime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cluster = Cluster::new(ClusterSpec::default().with_nodes(1))?;
//! let group = CommGroup::world(&cluster);
//! let mut dag = DagBuilder::new();
//! emit_collective(&mut dag, &cluster, &group, CollectiveKind::AllReduce, 100e6, &[]);
//! let mut engine = DagEngine::new(cluster.resource_slots());
//! let out = engine.run(cluster.net_mut(), &dag.build(), SimTime::ZERO, None)?;
//! assert!(out.makespan() > SimTime::ZERO);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emit;
mod group;

pub use emit::{
    emit_collective, emit_collective_capped, emit_collective_coalesced,
    emit_collective_hierarchical, emit_collective_stepwise, uses_hierarchical_schedule, wire_bytes,
    CollectiveHandle, CollectiveKind,
};
pub use group::{ring_route, CommGroup};
