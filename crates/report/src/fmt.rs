//! Number formatting helpers for paper-style output.

/// Formats bytes/second as the paper's "GBps" figures with three
/// significant digits.
///
/// ```
/// use zerosim_report::gbps;
/// assert_eq!(gbps(83.0e9), "83.0");
/// assert_eq!(gbps(1.56e9), "1.56");
/// assert_eq!(gbps(0.0), "0.00");
/// ```
pub fn gbps(bytes_per_sec: f64) -> String {
    sig3(bytes_per_sec / 1e9)
}

/// Formats a parameter count as billions with one decimal ("11.4").
pub fn billions(params: f64) -> String {
    format!("{:.1}", params / 1e9)
}

/// Formats FLOP/s as TFLOP/s with one decimal.
pub fn tflops(flops_per_sec: f64) -> String {
    format!("{:.1}", flops_per_sec / 1e12)
}

/// Formats bytes as GB with no decimals (memory bars).
pub fn gb(bytes: f64) -> String {
    format!("{:.0}", bytes / 1e9)
}

/// Three significant digits, like the paper's Table IV.
pub fn sig3(v: f64) -> String {
    if v == 0.0 {
        return "0.00".into();
    }
    // Finite f64 magnitudes lie within [-308, 308]: fits i32.
    #[allow(clippy::cast_possible_truncation)]
    let mag = v.abs().log10().floor() as i32;
    let decimals = (2 - mag).clamp(0, 2) as usize;
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig3_behaviour() {
        assert_eq!(sig3(123.4), "123");
        assert_eq!(sig3(12.34), "12.3");
        assert_eq!(sig3(1.234), "1.23");
        assert_eq!(sig3(0.1234), "0.12");
        assert_eq!(sig3(0.0), "0.00");
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(billions(11.4e9), "11.4");
        assert_eq!(tflops(438.2e12), "438.2");
        assert_eq!(gb(353.4e9), "353");
        assert_eq!(gbps(97.3e9), "97.3");
    }
}
