//! Bottleneck attribution: decompose a measured iteration into compute,
//! exposed communication, exposed staging, and idle — the "why is this
//! configuration slow" analysis behind the paper's Sec. IV/V narratives.

use zerosim_simkit::SimTime;

use crate::report::TrainingReport;

/// Span labels counted as GPU compute.
const COMPUTE: [&str; 4] = ["gemm", "elementwise", "weight_update", "transform"];
/// Span labels counted as collective communication.
const COMM: [&str; 5] = [
    "allreduce",
    "allgather",
    "reducescatter",
    "reduce",
    "broadcast",
];
/// Span labels counted as host/NVMe staging.
const STAGING: [&str; 6] = [
    "h2d",
    "d2h",
    "nvme_read",
    "nvme_write",
    "p2p_act",
    "p2p_grad",
];

/// Where one GPU's iteration time goes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// GPU track this breakdown describes.
    pub track: u32,
    /// Time covered by compute kernels.
    pub compute: SimTime,
    /// Communication time NOT hidden under compute.
    pub exposed_comm: SimTime,
    /// Staging (host/NVMe/pipeline) time hidden by neither compute nor
    /// communication.
    pub exposed_staging: SimTime,
    /// Remaining wall time: the GPU waits on something off-device (CPU
    /// Adam, another rank, the scheduler).
    pub idle: SimTime,
    /// Total wall time analysed.
    pub total: SimTime,
}

impl TimeBreakdown {
    /// Fraction of wall time in compute.
    pub fn compute_frac(&self) -> f64 {
        self.compute.as_secs() / self.total.as_secs().max(1e-12)
    }

    /// Fraction of wall time stalled on exposed communication.
    pub fn comm_frac(&self) -> f64 {
        self.exposed_comm.as_secs() / self.total.as_secs().max(1e-12)
    }

    /// The dominant non-compute component, as a label for reports.
    pub fn bottleneck(&self) -> &'static str {
        let comm = self.exposed_comm.as_secs();
        let staging = self.exposed_staging.as_secs();
        let idle = self.idle.as_secs();
        if comm >= staging && comm >= idle {
            "communication"
        } else if staging >= idle {
            "staging"
        } else {
            "host/other"
        }
    }
}

/// Attributes the measured window of `report` for GPU `track`.
///
/// Uses interval-union coverage, so overlapping spans are not
/// double-counted and communication hidden under compute is excluded.
pub fn attribute_gpu(report: &TrainingReport, track: u32) -> TimeBreakdown {
    let spans = &report.spans;
    let compute = spans.coverage(track, &COMPUTE);
    let exposed_comm = spans.exposed(track, &COMM, &COMPUTE);
    let both: Vec<&str> = COMPUTE.iter().chain(COMM.iter()).copied().collect();
    let exposed_staging = spans.exposed(track, &STAGING, &both);
    // Wall time for this track: bound by the report's measured makespan.
    let horizon = spans
        .track(track)
        .last()
        .map(|s| s.end)
        .unwrap_or(SimTime::ZERO);
    let start = spans
        .track(track)
        .first()
        .map(|s| s.start)
        .unwrap_or(SimTime::ZERO);
    let total = horizon.saturating_sub(start);
    let busy = compute + exposed_comm + exposed_staging;
    TimeBreakdown {
        track,
        compute,
        exposed_comm,
        exposed_staging,
        idle: total.saturating_sub(busy),
        total,
    }
}

/// Attributes every GPU of the run and returns the per-GPU breakdowns,
/// sorted by track.
// GPU counts are small (tens), far below u32::MAX.
#[allow(clippy::cast_possible_truncation)]
pub fn attribute_all_gpus(report: &TrainingReport, gpus_per_node: usize) -> Vec<TimeBreakdown> {
    (0..(report.nodes * gpus_per_node) as u32)
        .map(|t| attribute_gpu(report, t))
        .collect()
}

/// The run-level bottleneck: the breakdown of the GPU with the most
/// exposed communication (on ring schedules only the node-boundary ranks
/// carry the inter-node flows; their track shows where the time really
/// goes while their peers just read as idle).
pub fn attribute_worst_gpu(report: &TrainingReport, gpus_per_node: usize) -> TimeBreakdown {
    attribute_all_gpus(report, gpus_per_node)
        .into_iter()
        .max_by_key(|a| a.exposed_comm)
        .unwrap_or(TimeBreakdown {
            track: 0,
            compute: SimTime::ZERO,
            exposed_comm: SimTime::ZERO,
            exposed_staging: SimTime::ZERO,
            idle: SimTime::ZERO,
            total: SimTime::ZERO,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunConfig, TrainingSim};
    use zerosim_hw::ClusterSpec;
    use zerosim_model::GptConfig;
    use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

    fn report(strategy: Strategy, nodes: usize) -> TrainingReport {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        sim.run(
            &strategy,
            &GptConfig::paper_model_with_params(1.4),
            &opts,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn ddp_single_node_is_compute_dominated() {
        let b = attribute_gpu(&report(Strategy::Ddp, 1), 0);
        assert!(b.compute_frac() > 0.6, "compute frac {}", b.compute_frac());
        assert!(b.comm_frac() < 0.2, "comm frac {}", b.comm_frac());
        let parts = b.compute + b.exposed_comm + b.exposed_staging + b.idle;
        assert_eq!(parts, b.total, "breakdown must partition the wall time");
    }

    #[test]
    fn dual_node_megatron_is_communication_bound() {
        // The inter-node flows live on the node-boundary ranks' tracks;
        // the worst GPU tells the real story.
        let b = attribute_worst_gpu(&report(Strategy::Megatron { tp: 8, pp: 1 }, 2), 4);
        assert_eq!(b.bottleneck(), "communication");
        assert!(b.comm_frac() > 0.3, "comm frac {}", b.comm_frac());
        // And its peers read mostly idle — waiting on it.
        let idle_peer = attribute_gpu(&report(Strategy::Megatron { tp: 8, pp: 1 }, 2), 0);
        assert!(idle_peer.idle.as_secs() > idle_peer.compute.as_secs());
    }

    #[test]
    fn cpu_offload_shows_idle_gpus() {
        let b = attribute_gpu(
            &report(
                Strategy::ZeroOffload {
                    stage: ZeroStage::Two,
                    offload_params: false,
                },
                1,
            ),
            0,
        );
        assert_eq!(b.bottleneck(), "host/other");
        assert!(
            b.idle.as_secs() > b.compute.as_secs(),
            "GPU should wait on the CPU optimizer"
        );
    }

    #[test]
    fn all_gpus_attributed() {
        let breakdowns = attribute_all_gpus(&report(Strategy::Ddp, 2), 4);
        assert_eq!(breakdowns.len(), 8);
        for b in breakdowns {
            assert!(b.total > SimTime::ZERO);
        }
    }
}
