//! A minimal dependency-graph view shared by the DAG-level passes.
//!
//! In-tree [`zerosim_simkit::Dag`]s are acyclic by construction, so the
//! cycle/deadlock pass (ZL006) would never fire on them. The analyzer
//! still owns the check — lowered plans may come from out-of-tree
//! strategies or serialized artifacts — and [`GraphView::from_edges`]
//! admits arbitrary (possibly cyclic, possibly dangling) edge lists so
//! the pass is testable and usable on untrusted graphs.

use zerosim_simkit::Dag;

/// A dependency graph: node `i` depends on every node in `preds[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphView {
    preds: Vec<Vec<usize>>,
}

impl GraphView {
    /// The dependency structure of a lowered DAG.
    pub fn from_dag(dag: &Dag) -> Self {
        GraphView {
            preds: dag
                .task_ids()
                .map(|t| dag.preds(t).iter().map(|p| p.index()).collect())
                .collect(),
        }
    }

    /// A graph over `n` nodes from `(from, to)` edges (`to` depends on
    /// `from`). Edges may form cycles or reference nodes `>= n`
    /// (dangling); the passes report both.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut preds = vec![Vec::new(); n];
        for &(from, to) in edges {
            if to < n {
                preds[to].push(from);
            }
        }
        GraphView { preds }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Dependencies of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// The first dangling dependency `(node, missing_pred)`, if any.
    pub fn first_dangling(&self) -> Option<(usize, usize)> {
        let n = self.len();
        for (i, ps) in self.preds.iter().enumerate() {
            if let Some(&p) = ps.iter().find(|&&p| p >= n) {
                return Some((i, p));
            }
        }
        None
    }

    /// Detects a dependency cycle (Kahn's algorithm). Returns the nodes
    /// stuck on a cycle (in index order), or `None` when acyclic.
    ///
    /// Dangling dependencies (`pred >= len`) are ignored here; see
    /// [`GraphView::first_dangling`].
    pub fn cycle_members(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in self.preds.iter().enumerate() {
            for &p in ps {
                if p < n {
                    indeg[i] += 1;
                    succs[p].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if seen == n {
            None
        } else {
            Some((0..n).filter(|&i| indeg[i] > 0).collect())
        }
    }
}

/// Per-op ancestor sets over a dependency graph, as bitsets.
///
/// Used by the dataflow passes (ZL002/ZL003) to answer "which producer
/// ops happen-before this consumer op" exactly, instead of trusting the
/// emission order.
#[derive(Debug, Clone)]
pub struct Ancestors {
    words: usize,
    bits: Vec<u64>,
}

impl Ancestors {
    /// Computes ancestor bitsets for a graph whose `preds` are strictly
    /// decreasing (topologically ordered by index), e.g. an
    /// [`zerosim_strategies::IterPlan`] or a lowered DAG.
    pub fn compute(preds_of: impl Fn(usize) -> Vec<usize>, n: usize) -> Self {
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for i in 0..n {
            for p in preds_of(i) {
                if p >= i {
                    continue; // not topologically ordered; skip defensively
                }
                // anc[i] |= anc[p] | {p}
                let (lo, hi) = (p * words, i * words);
                for w in 0..words {
                    let v = bits[lo + w];
                    bits[hi + w] |= v;
                }
                bits[hi + p / 64] |= 1u64 << (p % 64);
            }
        }
        Ancestors { words, bits }
    }

    /// True when `anc` is an ancestor of `node`.
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        self.bits[node * self.words + anc / 64] & (1u64 << (anc % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let g = GraphView::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.cycle_members(), None);
        assert_eq!(g.first_dangling(), None);
        assert_eq!(g.preds(2), &[1, 0]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn cycle_is_detected_with_members() {
        let g = GraphView::from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let members = g.cycle_members().unwrap();
        assert!(members.contains(&1));
        assert!(members.contains(&2));
        assert!(!members.contains(&0));
    }

    #[test]
    fn dangling_edge_is_reported() {
        let g = GraphView::from_edges(2, &[(7, 1)]);
        assert_eq!(g.first_dangling(), Some((1, 7)));
    }

    #[test]
    fn ancestors_are_transitive() {
        // 0 -> 1 -> 3, 2 isolated.
        let preds: Vec<Vec<usize>> = vec![vec![], vec![0], vec![], vec![1]];
        let a = Ancestors::compute(|i| preds[i].clone(), 4);
        assert!(a.is_ancestor(0, 1));
        assert!(a.is_ancestor(0, 3));
        assert!(a.is_ancestor(1, 3));
        assert!(!a.is_ancestor(2, 3));
        assert!(!a.is_ancestor(3, 0));
    }
}
