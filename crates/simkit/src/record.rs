//! Measurement instrumentation: time-bucketed bandwidth recording and
//! timeline span logging.
//!
//! The paper samples every interconnect with AMD µProf / `nvidia-smi` and
//! reports average, 90th-percentile, and peak utilization (Table IV) plus
//! utilization-pattern plots (Figs. 9, 10, 12). [`BandwidthRecorder`]
//! reproduces that methodology: bytes moved on each link are accumulated
//! into fixed-width time buckets, and statistics are computed over the
//! bucket samples exactly as a periodic hardware counter would observe them.

use std::collections::BTreeMap;

use crate::flow::{FlowObserver, LinkId};
use crate::time::SimTime;

/// Bandwidth statistics over a sampled series, in bytes/second.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BandwidthStats {
    /// Mean over all samples (including idle ones).
    pub avg: f64,
    /// 90th percentile sample.
    pub p90: f64,
    /// Maximum sample.
    pub peak: f64,
}

impl BandwidthStats {
    /// Computes stats from raw samples in bytes/second.
    ///
    /// Returns all-zero stats for an empty slice. The 90th percentile uses
    /// the nearest-rank method, matching how the paper post-processes its
    /// sampled counters.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // rank <= len
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN bandwidth sample"));
        let sum: f64 = sorted.iter().sum();
        let rank = ((0.90 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        BandwidthStats {
            avg: sum / sorted.len() as f64,
            p90: sorted[rank - 1],
            peak: *sorted.last().expect("non-empty"),
        }
    }

    /// Converts all fields from bytes/second to gigabytes/second (1e9).
    pub fn to_gbps(self) -> BandwidthStats {
        BandwidthStats {
            avg: self.avg / 1e9,
            p90: self.p90 / 1e9,
            peak: self.peak / 1e9,
        }
    }
}

/// Counters describing how much work the incremental max-min solver did.
///
/// The solver re-converges only the *dirty component* — the links reachable
/// from the event's touched links through shared flows — so these counters
/// are the direct measure of how much cheaper an event was than a full
/// network recompute. They accumulate monotonically over the life of a
/// [`FlowNet`](crate::flow::FlowNet); use [`SolverStats::delta_since`] to
/// window them around a measured region (e.g. the timed iterations of a
/// training run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of solves (one per batch of dirty links at a read point).
    pub solves: u64,
    /// Solves whose dirty component spanned the whole network (cold start,
    /// forced full mode, or genuinely global events).
    pub full_solves: u64,
    /// Cumulative links re-converged across all solves.
    pub links_touched: u64,
    /// Cumulative flows re-converged across all solves.
    pub flows_touched: u64,
    /// Largest single dirty component, in links.
    pub max_component_links: usize,
    /// Size of the most recent dirty component, in links.
    pub last_component_links: usize,
}

impl SolverStats {
    /// Mean links re-converged per solve (0 when no solve happened).
    pub fn mean_links_per_solve(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.links_touched as f64 / self.solves as f64
        }
    }

    /// Mean flows re-converged per solve (0 when no solve happened).
    pub fn mean_flows_per_solve(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.flows_touched as f64 / self.solves as f64
        }
    }

    /// Counter difference `self - earlier` for windowed measurement. The
    /// `max_component_links` / `last_component_links` gauges are taken from
    /// `self` (an upper bound for the window).
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves.saturating_sub(earlier.solves),
            full_solves: self.full_solves.saturating_sub(earlier.full_solves),
            links_touched: self.links_touched.saturating_sub(earlier.links_touched),
            flows_touched: self.flows_touched.saturating_sub(earlier.flows_touched),
            max_component_links: self.max_component_links,
            last_component_links: self.last_component_links,
        }
    }
}

/// Counters describing how much work the DAG engine did.
///
/// The arena engine drains same-instant completions in batches and reuses
/// its flat node storage across runs, so these counters are the direct
/// measure of both effects: `batches` / `max_batch` show how much event
/// processing was amortized, and `arena_reuse_hits` counts runs that
/// recycled the arena's capacity without touching the allocator. They
/// accumulate monotonically over the life of a
/// [`DagEngine`](crate::engine::DagEngine); use
/// [`EngineStats::delta_since`] to window them around a measured region.
///
/// The reference engine maintains the shared counters (`runs`,
/// `tasks_finished`, `flows_started`, `ticks`) identically, which is what
/// lets equivalence tests assert event-count conservation across engines;
/// the batching and arena gauges stay zero there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Completed `run`/`run_faulted` calls.
    pub runs: u64,
    /// Tasks retired across all runs (every task finishes exactly once in
    /// an uninterrupted run).
    pub tasks_finished: u64,
    /// Flows handed to the network across all runs.
    pub flows_started: u64,
    /// Outer event-loop iterations (virtual-time advances) across all runs.
    pub ticks: u64,
    /// Same-instant completion batches drained (arena engine only).
    pub batches: u64,
    /// Largest single completion batch, in events (arena engine only).
    pub max_batch: usize,
    /// Runs that had to (re)allocate arena storage.
    pub arena_builds: u64,
    /// Runs that refilled the arena entirely within retained capacity.
    pub arena_reuse_hits: u64,
    /// Runs cross-checked against the reference engine in shadow mode.
    pub shadow_runs: u64,
}

impl EngineStats {
    /// Mean completion events per batch (0 when no batch was drained).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.tasks_finished + self.flows_started) as f64 / self.batches as f64
        }
    }

    /// Counter difference `self - earlier` for windowed measurement. The
    /// `max_batch` gauge is taken from `self` (an upper bound for the
    /// window).
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            runs: self.runs.saturating_sub(earlier.runs),
            tasks_finished: self.tasks_finished.saturating_sub(earlier.tasks_finished),
            flows_started: self.flows_started.saturating_sub(earlier.flows_started),
            ticks: self.ticks.saturating_sub(earlier.ticks),
            batches: self.batches.saturating_sub(earlier.batches),
            max_batch: self.max_batch,
            arena_builds: self.arena_builds.saturating_sub(earlier.arena_builds),
            arena_reuse_hits: self
                .arena_reuse_hits
                .saturating_sub(earlier.arena_reuse_hits),
            shadow_runs: self.shadow_runs.saturating_sub(earlier.shadow_runs),
        }
    }
}

/// Accumulates per-link bytes into fixed-width time buckets.
///
/// ```
/// use zerosim_simkit::flow::{FlowNet, FlowObserver};
/// use zerosim_simkit::record::BandwidthRecorder;
/// use zerosim_simkit::SimTime;
///
/// let mut net = FlowNet::new();
/// let l = net.add_link("pcie", 100.0);
/// net.start_flow(&[l], 200.0).unwrap();
/// let mut rec = BandwidthRecorder::new(SimTime::from_secs(1.0));
/// net.drain(&mut rec).unwrap();
/// let series = rec.series(l);
/// assert_eq!(series.len(), 2); // two 1-second buckets at 100 B/s
/// assert!((series[0] - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthRecorder {
    bucket: SimTime,
    bytes: BTreeMap<LinkId, Vec<f64>>,
    horizon: SimTime,
    origin: SimTime,
}

impl BandwidthRecorder {
    /// Creates a recorder with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimTime) -> Self {
        Self::with_origin(bucket, SimTime::ZERO)
    }

    /// Creates a recorder whose bucket 0 starts at `origin`; transfers
    /// before the origin are ignored (e.g. warm-up iterations).
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn with_origin(bucket: SimTime, origin: SimTime) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        BandwidthRecorder {
            bucket,
            bytes: BTreeMap::new(),
            horizon: SimTime::ZERO,
            origin,
        }
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> SimTime {
        self.bucket
    }

    /// Latest instant covered by any recorded transfer.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Bandwidth series for `link` in bytes/second per bucket, padded with
    /// trailing idle buckets up to the recorder horizon.
    pub fn series(&self, link: LinkId) -> Vec<f64> {
        let n = self.bucket_count();
        let width = self.bucket.as_secs();
        let mut out = vec![0.0; n];
        if let Some(b) = self.bytes.get(&link) {
            for (i, v) in b.iter().enumerate() {
                out[i] = v / width;
            }
        }
        out
    }

    /// Sum of the bandwidth series of several links (e.g. the two directions
    /// of a full-duplex interface, or all 12 NVLinks of a node).
    pub fn aggregate_series(&self, links: &[LinkId]) -> Vec<f64> {
        let n = self.bucket_count();
        let width = self.bucket.as_secs();
        let mut out = vec![0.0; n];
        for link in links {
            if let Some(b) = self.bytes.get(link) {
                for (i, v) in b.iter().enumerate() {
                    out[i] += v / width;
                }
            }
        }
        out
    }

    /// Statistics (avg/p90/peak, bytes/second) over the aggregate series of
    /// `links`.
    pub fn stats(&self, links: &[LinkId]) -> BandwidthStats {
        BandwidthStats::from_samples(&self.aggregate_series(links))
    }

    /// Total bytes recorded on `link`.
    pub fn total_bytes(&self, link: LinkId) -> f64 {
        self.bytes.get(&link).map_or(0.0, |b| b.iter().sum())
    }

    #[allow(clippy::cast_possible_truncation)] // bucket counts are small
    fn bucket_count(&self) -> usize {
        (self
            .horizon
            .as_nanos()
            .div_ceil(self.bucket.as_nanos().max(1))) as usize
    }

    // Bucket indices are bounded by horizon / bucket width, far below
    // usize::MAX on any supported target.
    #[allow(clippy::cast_possible_truncation)]
    fn add(&mut self, link: LinkId, start: SimTime, dt_secs: f64, bytes: f64) {
        if bytes <= 0.0 || dt_secs <= 0.0 {
            return;
        }
        // Shift into recorder-local time; clip anything before the origin.
        let raw_end = start + SimTime::from_secs(dt_secs);
        if raw_end <= self.origin {
            return;
        }
        let (start, bytes, dt_secs) = if start < self.origin {
            let kept = (raw_end - self.origin).as_secs();
            (SimTime::ZERO, bytes * kept / dt_secs, kept)
        } else {
            (start - self.origin, bytes, dt_secs)
        };
        let end = start + SimTime::from_secs(dt_secs);
        self.horizon = self.horizon.max(end);
        let width_ns = self.bucket.as_nanos();
        let first = start.as_nanos() / width_ns;
        let last = (end.as_nanos().saturating_sub(1)) / width_ns;
        let buf = self.bytes.entry(link).or_default();
        if buf.len() <= last as usize {
            buf.resize(last as usize + 1, 0.0);
        }
        if first == last {
            buf[first as usize] += bytes;
            return;
        }
        // Spread proportionally over the covered buckets.
        let total_ns = (end.as_nanos() - start.as_nanos()) as f64;
        for b in first..=last {
            let b_start = b * width_ns;
            let b_end = b_start + width_ns;
            let overlap = (end.as_nanos().min(b_end) - start.as_nanos().max(b_start)) as f64;
            buf[b as usize] += bytes * overlap / total_ns;
        }
    }
}

impl FlowObserver for BandwidthRecorder {
    fn on_transfer(&mut self, link: LinkId, start: SimTime, dt_secs: f64, bytes: f64) {
        self.add(link, start, dt_secs, bytes);
    }
}

/// A labelled interval on a device timeline (the simulated analogue of an
/// `nsys` kernel span; Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Device/track the span belongs to (e.g. a GPU index).
    pub track: u32,
    /// Category label (e.g. "gemm", "allreduce").
    pub label: String,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
}

/// Collects timeline spans emitted during a simulation.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a span.
    ///
    /// # Panics
    /// Panics in debug builds if `end < start`.
    pub fn push(&mut self, track: u32, label: impl Into<String>, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            track,
            label: label.into(),
            start,
            end,
        });
    }

    /// All spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans on a single track, sorted by start time.
    pub fn track(&self, track: u32) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.track == track).collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Total busy time on `track` attributed to spans whose label matches
    /// `label` exactly.
    pub fn busy_time(&self, track: u32, label: &str) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.track == track && s.label == label)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Latest end time across all tracks ([`SimTime::ZERO`] when empty).
    pub fn horizon(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowNet;

    #[test]
    fn stats_from_samples() {
        let s = BandwidthStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert!((s.avg - 5.5).abs() < 1e-9);
        assert_eq!(s.p90, 9.0);
        assert_eq!(s.peak, 10.0);
    }

    #[test]
    fn stats_empty_is_zero() {
        assert_eq!(BandwidthStats::from_samples(&[]), BandwidthStats::default());
    }

    #[test]
    fn gbps_conversion() {
        let s = BandwidthStats {
            avg: 2e9,
            p90: 3e9,
            peak: 4e9,
        }
        .to_gbps();
        assert_eq!(s.avg, 2.0);
        assert_eq!(s.p90, 3.0);
        assert_eq!(s.peak, 4.0);
    }

    #[test]
    fn recorder_buckets_constant_flow() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        net.start_flow(&[l], 250.0).unwrap();
        let mut rec = BandwidthRecorder::new(SimTime::from_secs(1.0));
        net.drain(&mut rec).unwrap();
        let s = rec.series(l);
        assert_eq!(s.len(), 3);
        assert!((s[0] - 100.0).abs() < 1e-9);
        assert!((s[1] - 100.0).abs() < 1e-9);
        assert!((s[2] - 50.0).abs() < 1e-6);
        assert!((rec.total_bytes(l) - 250.0).abs() < 1e-6);
    }

    #[test]
    fn recorder_spreads_across_bucket_boundaries() {
        let mut rec = BandwidthRecorder::new(SimTime::from_secs(1.0));
        // 3-second transfer of 300 bytes starting at t=0.5.
        rec.add(LinkId(0), SimTime::from_secs(0.5), 3.0, 300.0);
        let s = rec.series(LinkId(0));
        assert_eq!(s.len(), 4);
        assert!((s[0] - 50.0).abs() < 1e-6);
        assert!((s[1] - 100.0).abs() < 1e-6);
        assert!((s[2] - 100.0).abs() < 1e-6);
        assert!((s[3] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn origin_clips_warmup_traffic() {
        let mut rec =
            BandwidthRecorder::with_origin(SimTime::from_secs(1.0), SimTime::from_secs(2.0));
        // Fully before the origin: dropped.
        rec.add(LinkId(0), SimTime::ZERO, 1.0, 100.0);
        assert_eq!(rec.total_bytes(LinkId(0)), 0.0);
        // Straddling the origin: only the post-origin share counts.
        rec.add(LinkId(0), SimTime::from_secs(1.0), 2.0, 200.0);
        assert!((rec.total_bytes(LinkId(0)) - 100.0).abs() < 1e-6);
        // After the origin: shifted to local time.
        rec.add(LinkId(0), SimTime::from_secs(3.0), 1.0, 50.0);
        let s = rec.series(LinkId(0));
        assert_eq!(s.len(), 2);
        assert!((s[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn aggregate_series_sums_links() {
        let mut rec = BandwidthRecorder::new(SimTime::from_secs(1.0));
        rec.add(LinkId(0), SimTime::ZERO, 1.0, 10.0);
        rec.add(LinkId(1), SimTime::ZERO, 1.0, 20.0);
        let agg = rec.aggregate_series(&[LinkId(0), LinkId(1)]);
        assert_eq!(agg, vec![30.0]);
        let stats = rec.stats(&[LinkId(0), LinkId(1)]);
        assert_eq!(stats.peak, 30.0);
    }

    #[test]
    fn unknown_link_series_is_idle() {
        let mut rec = BandwidthRecorder::new(SimTime::from_secs(1.0));
        rec.add(LinkId(0), SimTime::ZERO, 2.0, 10.0);
        assert_eq!(rec.series(LinkId(9)), vec![0.0, 0.0]);
    }

    #[test]
    fn solver_stats_means_and_delta() {
        let earlier = SolverStats {
            solves: 2,
            full_solves: 1,
            links_touched: 10,
            flows_touched: 6,
            max_component_links: 8,
            last_component_links: 2,
        };
        let later = SolverStats {
            solves: 6,
            full_solves: 1,
            links_touched: 18,
            flows_touched: 14,
            max_component_links: 8,
            last_component_links: 1,
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.solves, 4);
        assert_eq!(d.full_solves, 0);
        assert_eq!(d.links_touched, 8);
        assert_eq!(d.flows_touched, 8);
        assert_eq!(d.max_component_links, 8);
        assert!((d.mean_links_per_solve() - 2.0).abs() < 1e-12);
        assert!((d.mean_flows_per_solve() - 2.0).abs() < 1e-12);
        assert_eq!(SolverStats::default().mean_links_per_solve(), 0.0);
        assert_eq!(SolverStats::default().mean_flows_per_solve(), 0.0);
    }

    #[test]
    fn engine_stats_means_and_delta() {
        let earlier = EngineStats {
            runs: 1,
            tasks_finished: 10,
            flows_started: 2,
            ticks: 8,
            batches: 4,
            max_batch: 3,
            arena_builds: 1,
            arena_reuse_hits: 0,
            shadow_runs: 0,
        };
        let later = EngineStats {
            runs: 3,
            tasks_finished: 30,
            flows_started: 6,
            ticks: 24,
            batches: 12,
            max_batch: 5,
            arena_builds: 1,
            arena_reuse_hits: 2,
            shadow_runs: 1,
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.runs, 2);
        assert_eq!(d.tasks_finished, 20);
        assert_eq!(d.flows_started, 4);
        assert_eq!(d.ticks, 16);
        assert_eq!(d.batches, 8);
        assert_eq!(d.max_batch, 5);
        assert_eq!(d.arena_builds, 0);
        assert_eq!(d.arena_reuse_hits, 2);
        assert_eq!(d.shadow_runs, 1);
        assert!((d.mean_batch() - 3.0).abs() < 1e-12);
        assert_eq!(EngineStats::default().mean_batch(), 0.0);
    }

    #[test]
    fn span_log_tracks_and_busy_time() {
        let mut log = SpanLog::new();
        log.push(0, "gemm", SimTime::ZERO, SimTime::from_ms(2.0));
        log.push(0, "allreduce", SimTime::from_ms(2.0), SimTime::from_ms(3.0));
        log.push(1, "gemm", SimTime::from_ms(1.0), SimTime::from_ms(4.0));
        assert_eq!(log.spans().len(), 3);
        assert_eq!(log.track(0).len(), 2);
        assert_eq!(log.busy_time(0, "gemm"), SimTime::from_ms(2.0));
        assert_eq!(log.busy_time(1, "gemm"), SimTime::from_ms(3.0));
        assert_eq!(log.horizon(), SimTime::from_ms(4.0));
    }
}

/// Interval-union coverage utilities over span logs.
impl SpanLog {
    /// Total time on `track` covered by at least one span whose label is
    /// in `labels` (overlaps counted once — unlike [`SpanLog::busy_time`],
    /// which sums durations).
    pub fn coverage(&self, track: u32, labels: &[&str]) -> SimTime {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .filter(|s| s.track == track && labels.contains(&s.label.as_str()))
            .map(|s| (s.start, s.end))
            .collect();
        intervals.sort();
        let mut total = SimTime::ZERO;
        let mut current: Option<(SimTime, SimTime)> = None;
        for (start, end) in intervals {
            match current {
                Some((cs, ce)) if start <= ce => {
                    current = Some((cs, ce.max(end)));
                }
                Some((cs, ce)) => {
                    total += ce - cs;
                    current = Some((start, end));
                }
                None => current = Some((start, end)),
            }
        }
        if let Some((cs, ce)) = current {
            total += ce - cs;
        }
        total
    }

    /// Time on `track` covered by a span in `labels` but NOT by any span
    /// in `unless` — e.g. communication time not hidden under compute.
    pub fn exposed(&self, track: u32, labels: &[&str], unless: &[&str]) -> SimTime {
        // coverage(A) − coverage(A ∩ B) via inclusion-exclusion over the
        // merged sets: |A \ B| = |A ∪ B| − |B|.
        let union: Vec<&str> = labels.iter().chain(unless).copied().collect();
        self.coverage(track, &union) - self.coverage(track, unless)
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;

    fn log() -> SpanLog {
        let mut l = SpanLog::new();
        let ms = SimTime::from_ms;
        l.push(0, "gemm", ms(0.0), ms(4.0));
        l.push(0, "gemm", ms(2.0), ms(6.0)); // overlaps the first
        l.push(0, "allreduce", ms(5.0), ms(9.0)); // 1 ms under gemm
        l.push(0, "allreduce", ms(12.0), ms(14.0)); // fully exposed
        l
    }

    #[test]
    fn coverage_merges_overlaps() {
        let l = log();
        assert_eq!(l.coverage(0, &["gemm"]), SimTime::from_ms(6.0));
        assert_eq!(l.coverage(0, &["allreduce"]), SimTime::from_ms(6.0));
        assert_eq!(
            l.coverage(0, &["gemm", "allreduce"]),
            SimTime::from_ms(11.0)
        );
        assert_eq!(l.coverage(1, &["gemm"]), SimTime::ZERO);
        assert_eq!(l.coverage(0, &["nope"]), SimTime::ZERO);
    }

    #[test]
    fn exposed_subtracts_hidden_portion() {
        let l = log();
        // allreduce spans cover 6 ms total, 1 ms of which is under gemm.
        assert_eq!(
            l.exposed(0, &["allreduce"], &["gemm"]),
            SimTime::from_ms(5.0)
        );
        // gemm is never hidden by allreduce... except the same 1 ms overlap.
        assert_eq!(
            l.exposed(0, &["gemm"], &["allreduce"]),
            SimTime::from_ms(5.0)
        );
    }
}
