//! Named model presets: the GPT-2/GPT-3 family shapes, for sweeps over
//! hidden size and depth beyond the paper's fixed h=2048 configuration.

use crate::config::GptConfig;

/// A named preset of the GPT family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// GPT-2 Small: 12 layers, h=768.
    Gpt2Small,
    /// GPT-2 Medium: 24 layers, h=1024.
    Gpt2Medium,
    /// GPT-2 Large: 36 layers, h=1280.
    Gpt2Large,
    /// GPT-2 XL: 48 layers, h=1600.
    Gpt2Xl,
    /// The paper's 1.4 B configuration: 26 layers, h=2048.
    Paper1p4B,
    /// GPT-3 2.7B-class: 32 layers, h=2560.
    Gpt3_2p7B,
    /// GPT-3 6.7B-class: 32 layers, h=4096.
    Gpt3_6p7B,
    /// GPT-3 13B-class: 40 layers, h=5140 (rounded to 5120 for head split).
    Gpt3_13B,
}

impl ModelPreset {
    /// All presets, ascending in size.
    pub const ALL: [ModelPreset; 8] = [
        ModelPreset::Gpt2Small,
        ModelPreset::Gpt2Medium,
        ModelPreset::Gpt2Large,
        ModelPreset::Paper1p4B,
        ModelPreset::Gpt2Xl,
        ModelPreset::Gpt3_2p7B,
        ModelPreset::Gpt3_6p7B,
        ModelPreset::Gpt3_13B,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelPreset::Gpt2Small => "GPT-2 S",
            ModelPreset::Gpt2Medium => "GPT-2 M",
            ModelPreset::Gpt2Large => "GPT-2 L",
            ModelPreset::Gpt2Xl => "GPT-2 XL",
            ModelPreset::Paper1p4B => "paper-1.4B",
            ModelPreset::Gpt3_2p7B => "GPT-3 2.7B",
            ModelPreset::Gpt3_6p7B => "GPT-3 6.7B",
            ModelPreset::Gpt3_13B => "GPT-3 13B",
        }
    }

    /// The configuration (paper sequence length of 256 throughout, so
    /// results stay comparable to the reproduction).
    pub fn config(&self) -> GptConfig {
        let (num_layers, hidden_size, num_heads) = match self {
            ModelPreset::Gpt2Small => (12, 768, 12),
            ModelPreset::Gpt2Medium => (24, 1024, 16),
            ModelPreset::Gpt2Large => (36, 1280, 20),
            ModelPreset::Gpt2Xl => (48, 1600, 25),
            ModelPreset::Paper1p4B => (26, 2048, 16),
            ModelPreset::Gpt3_2p7B => (32, 2560, 32),
            ModelPreset::Gpt3_6p7B => (32, 4096, 32),
            ModelPreset::Gpt3_13B => (40, 5120, 40),
        };
        GptConfig {
            num_layers,
            hidden_size,
            num_heads,
            seq_len: 256,
            max_pos_embeddings: 1024,
            vocab_size: 50257,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_ascending() {
        let mut last = 0.0;
        for p in ModelPreset::ALL {
            let c = p.config();
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            let params = c.num_params();
            assert!(params > last, "{} out of order", p.name());
            last = params;
        }
    }

    #[test]
    fn named_sizes_are_roughly_right() {
        let close = |preset: ModelPreset, billions: f64, tol: f64| {
            let p = preset.config().num_params() / 1e9;
            assert!(
                (p - billions).abs() / billions < tol,
                "{}: {p:.2}B vs {billions}B",
                preset.name()
            );
        };
        close(ModelPreset::Gpt2Small, 0.124, 0.2);
        close(ModelPreset::Gpt2Xl, 1.56, 0.2);
        close(ModelPreset::Gpt3_6p7B, 6.7, 0.15);
        close(ModelPreset::Gpt3_13B, 12.9, 0.15);
    }
}
