//! Synthetic training data — the substitute for the paper's Wikipedia dump
//! (WikiExtractor, Sec. III-B2).
//!
//! Dataset *content* never influences the paper's measurements (bandwidth,
//! throughput, memory); only the token geometry does. This module provides
//! a deterministic token-stream generator with the right geometry so that
//! examples and tests can drive the full input pipeline.

use crate::config::GptConfig;

/// A batch of token ids, `sequences × seq_len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBatch {
    /// Number of sequences in the batch.
    pub sequences: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Row-major token ids.
    pub tokens: Vec<u32>,
}

impl TokenBatch {
    /// Bytes this batch occupies as int32 ids (what travels host → GPU).
    pub fn bytes(&self) -> f64 {
        (self.tokens.len() * 4) as f64
    }
}

/// Deterministic synthetic corpus with a Zipf-flavoured token distribution.
///
/// ```
/// use zerosim_model::{GptConfig, SyntheticCorpus};
/// let corpus = SyntheticCorpus::new(GptConfig::default(), 42);
/// let batch = corpus.batch(0, 16);
/// assert_eq!(batch.tokens.len(), 16 * 256);
/// // Deterministic: same index, same batch.
/// assert_eq!(corpus.batch(0, 16), batch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticCorpus {
    config: GptConfig,
    seed: u64,
}

impl SyntheticCorpus {
    /// Creates a corpus for the given model configuration.
    pub fn new(config: GptConfig, seed: u64) -> Self {
        SyntheticCorpus { config, seed }
    }

    /// The `index`-th batch with `sequences` sequences.
    pub fn batch(&self, index: u64, sequences: usize) -> TokenBatch {
        let seq_len = self.config.seq_len;
        let vocab = self.config.vocab_size as u64;
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut next = || {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut tokens = Vec::with_capacity(sequences * seq_len);
        for _ in 0..sequences * seq_len {
            let r = next();
            // Squaring a uniform skews low ids — a cheap Zipf stand-in.
            let u = (r >> 11) as f64 / (1u64 << 53) as f64;
            // u*u in [0,1), so the product stays below `vocab` (< 2^32).
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let id = ((u * u) * vocab as f64) as u64 % vocab;
            #[allow(clippy::cast_possible_truncation)] // id < vocab < 2^32
            tokens.push(id as u32);
        }
        TokenBatch {
            sequences,
            seq_len,
            tokens,
        }
    }

    /// Bytes per iteration fed to each GPU (`per_gpu_batch` sequences of
    /// int32 ids) — the input-pipeline volume, negligible next to gradient
    /// traffic, exactly as in the paper.
    pub fn bytes_per_gpu_iteration(&self, per_gpu_batch: usize) -> f64 {
        (per_gpu_batch * self.config.seq_len * 4) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_in_vocab() {
        let c = SyntheticCorpus::new(GptConfig::default(), 7);
        let a = c.batch(3, 4);
        let b = c.batch(3, 4);
        assert_eq!(a, b);
        assert!(a.tokens.iter().all(|&t| (t as usize) < 50257));
        assert_ne!(c.batch(4, 4), a, "different indices differ");
    }

    #[test]
    fn distribution_is_skewed_low() {
        let c = SyntheticCorpus::new(GptConfig::default(), 1);
        let batch = c.batch(0, 64);
        let below_half = batch
            .tokens
            .iter()
            .filter(|&&t| (t as usize) < 50257 / 2)
            .count();
        // A Zipf-ish skew puts well over half the mass in the lower half.
        assert!(below_half as f64 > 0.6 * batch.tokens.len() as f64);
    }

    #[test]
    fn byte_accounting() {
        let c = SyntheticCorpus::new(GptConfig::default(), 1);
        assert_eq!(c.bytes_per_gpu_iteration(16), (16 * 256 * 4) as f64);
        assert_eq!(c.batch(0, 16).bytes(), (16 * 256 * 4) as f64);
    }
}
