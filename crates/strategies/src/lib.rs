//! `zerosim-strategies` — the distributed training strategies the paper
//! compares: PyTorch DDP, Megatron-LM model parallelism, DeepSpeed ZeRO
//! stages 1–3, ZeRO-Offload (CPU) and ZeRO-Infinity (NVMe).
//!
//! Strategy compilation is a two-stage pipeline:
//!
//! 1. **Planning** — a [`StrategyPlan`] implementation (the [`Strategy`]
//!    enum covers the paper's matrix) compiles model + cluster + options
//!    into a [`MemoryPlan`] (bytes per tier) and an [`IterPlan`]: a typed
//!    IR of semantic operations (layer compute, collectives, tier
//!    transfers, optimizer steps) with explicit dependencies and phase
//!    labels. [`IterPlan::validate`] machine-checks the paper's
//!    conservation laws against the cluster.
//! 2. **Lowering** — [`lower`] compiles the plan once per configuration
//!    to a simkit task graph; [`LoweredPlan::stamp`] re-stamps only the
//!    jitter-seeded compute durations per iteration.
//!
//! The simulation engine is strategy-agnostic: it sees `&dyn
//! StrategyPlan` and the lowered DAG, so adding a strategy never touches
//! the event loop.
//!
//! ```
//! use zerosim_hw::{Cluster, ClusterSpec};
//! use zerosim_model::GptConfig;
//! use zerosim_strategies::{Calibration, Strategy, TrainOptions, ZeroStage};
//!
//! # fn main() -> Result<(), String> {
//! let cluster = Cluster::new(ClusterSpec::default().with_nodes(1))?;
//! let model = GptConfig::paper_model_with_params(1.4);
//! let opts = TrainOptions::single_node();
//! let calib = Calibration::default();
//!
//! let ddp = Strategy::Ddp
//!     .memory_plan(&cluster, &model, &opts, &calib)
//!     .map_err(|e| e.to_string())?;
//! let z3 = Strategy::Zero { stage: ZeroStage::Three }
//!     .memory_plan(&cluster, &model, &opts, &calib)
//!     .map_err(|e| e.to_string())?;
//! assert!(z3.per_gpu_bytes < ddp.per_gpu_bytes);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builders;
mod calib;
mod capability;
mod ddp;
mod error;
mod lower;
mod megatron;
mod memory;
mod options;
mod placement;
mod plan;
mod registry;
mod resilience;
mod serving;
mod zero;

pub use builders::{IterCtx, PlanCtx};
pub use calib::Calibration;
pub use capability::ZeroCapability;
pub use error::StrategyError;
pub use lower::{lower, LoweredPlan};
pub use memory::MemoryPlan;
pub use options::TrainOptions;
pub use placement::{ParallelPlacement, PlacementSpans};
pub use plan::{
    Codec, Dtype, IterPlan, OpId, OptimizerDevice, Phase, PhaseStage, PlanNode, PlanOp,
    WorkloadKind, WorkloadPlan,
};
pub use registry::StrategyRegistry;
pub use resilience::{
    plan_checkpoint, plan_restore, snapshot_bytes_per_rank, snapshot_bytes_total, CheckpointSink,
    RecoveryPolicy,
};
pub use serving::{kv_bucket, kv_bytes_per_token, ServingStrategy};
pub use zero::{InfinityPlacement, StateTier, ZeroPlusPlusFlags, ZeroStage};

use std::fmt::Debug;

use zerosim_hw::Cluster;
use zerosim_model::GptConfig;
use zerosim_simkit::Dag;

/// The seam between strategy semantics and the simulation engine.
///
/// Implementations describe *what* one training iteration does — as an
/// [`IterPlan`] of semantic ops plus a [`MemoryPlan`] — and never touch
/// simkit. The engine lowers the plan once per configuration and
/// re-stamps durations per iteration; out-of-tree strategies plug in
/// through a [`StrategyRegistry`].
pub trait StrategyPlan: Debug {
    /// Short display name matching the paper's figure legends.
    fn display_name(&self) -> String;

    /// Memory placement for the context's (cluster, model, options).
    ///
    /// # Errors
    /// [`StrategyError`] when the configuration is infeasible (bad
    /// layout, placement violating Table I, ...).
    fn plan_memory(&self, ctx: &IterCtx<'_>) -> Result<MemoryPlan, StrategyError>;

    /// Describes one training iteration as an [`IterPlan`].
    ///
    /// # Errors
    /// [`StrategyError`] when the configuration is infeasible.
    fn plan_iteration(&self, ctx: &IterCtx<'_>) -> Result<IterPlan, StrategyError>;

    /// The ZeRO capability row (Table I), for ZeRO-family strategies.
    fn capability(&self) -> Option<ZeroCapability> {
        None
    }
}

/// A distributed training strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// PyTorch Distributed Data-Parallel.
    Ddp,
    /// Megatron-LM with tensor parallelism of degree `tp`, pipeline depth
    /// `pp`, and data parallelism over the remaining GPUs.
    Megatron {
        /// Tensor-parallel degree (layer slicing; all-reduce per layer).
        tp: usize,
        /// Pipeline depth (layer partitioning; activations cross stages).
        pp: usize,
    },
    /// DeepSpeed ZeRO, everything on GPU.
    Zero {
        /// Partitioning stage.
        stage: ZeroStage,
    },
    /// ZeRO-Offload: optimizer states and computation on the CPU.
    ZeroOffload {
        /// Partitioning stage (1, 2, or 3).
        stage: ZeroStage,
        /// Also keep the (ZeRO-3-partitioned) parameters in host memory.
        offload_params: bool,
    },
    /// ZeRO-Infinity: optimizer states on NVMe (requires ZeRO-3).
    ZeroInfinity {
        /// Also place parameters on NVMe.
        offload_params: bool,
        /// Rank-to-volume assignment.
        placement: InfinityPlacement,
    },
    /// ZeRO++ communication-efficiency extensions over ZeRO-3 (arXiv
    /// 2306.10209): quantized weight all-gather (qwZ), hierarchical
    /// secondary parameter shard (hpZ), quantized gradient reduction
    /// (qgZ).
    ZeroPlusPlus {
        /// Which of the three extensions are enabled.
        flags: ZeroPlusPlusFlags,
    },
}

impl Strategy {
    /// Short display name matching the paper's figure legends.
    pub fn name(&self) -> String {
        match self {
            Strategy::Ddp => "PyTorch DDP".into(),
            Strategy::Megatron { tp, pp } => {
                if *pp == 1 {
                    format!("Megatron-LM (MP={tp})")
                } else {
                    format!("Megatron-LM (TP={tp},PP={pp})")
                }
            }
            Strategy::Zero { stage } => format!("ZeRO-{}", stage.number()),
            Strategy::ZeroOffload {
                stage,
                offload_params,
            } => {
                if *offload_params {
                    format!("ZeRO-{} (CPU opt+param)", stage.number())
                } else {
                    format!("ZeRO-{} (CPU)", stage.number())
                }
            }
            Strategy::ZeroInfinity { offload_params, .. } => {
                if *offload_params {
                    "ZeRO-Infinity (NVME opt+param)".into()
                } else {
                    "ZeRO-Infinity (NVME opt)".into()
                }
            }
            Strategy::ZeroPlusPlus { flags } => {
                let mut parts = Vec::new();
                if flags.quantize_weights {
                    parts.push("qwZ");
                }
                if flags.hierarchical_params {
                    parts.push("hpZ");
                }
                if flags.quantize_gradients {
                    parts.push("qgZ");
                }
                if parts.is_empty() {
                    "ZeRO++".into()
                } else {
                    format!("ZeRO++ ({})", parts.join("+"))
                }
            }
        }
    }

    /// ZeRO++ with only the quantized weight all-gather (qwZ) enabled.
    pub fn qwz() -> Strategy {
        Strategy::ZeroPlusPlus {
            flags: ZeroPlusPlusFlags {
                quantize_weights: true,
                ..Default::default()
            },
        }
    }

    /// ZeRO++ with only the hierarchical secondary shard (hpZ) enabled.
    pub fn hpz() -> Strategy {
        Strategy::ZeroPlusPlus {
            flags: ZeroPlusPlusFlags {
                hierarchical_params: true,
                ..Default::default()
            },
        }
    }

    /// ZeRO++ with only the quantized gradient reduction (qgZ) enabled.
    pub fn qgz() -> Strategy {
        Strategy::ZeroPlusPlus {
            flags: ZeroPlusPlusFlags {
                quantize_gradients: true,
                ..Default::default()
            },
        }
    }

    /// Megatron with tensor parallelism spanning all GPUs of the run (the
    /// paper's configuration).
    pub fn megatron_for(opts: &TrainOptions, cluster: &Cluster) -> Strategy {
        Strategy::Megatron {
            tp: opts.num_gpus(cluster),
            pp: 1,
        }
    }

    fn zero_variant(&self) -> Option<zero::ZeroVariant> {
        match self {
            Strategy::Zero { stage } => Some(zero::ZeroVariant {
                stage: *stage,
                optimizer_tier: StateTier::Gpu,
                params_tier: StateTier::Gpu,
                placement: None,
                zeropp: ZeroPlusPlusFlags::default(),
            }),
            Strategy::ZeroPlusPlus { flags } => Some(zero::ZeroVariant {
                stage: ZeroStage::Three,
                optimizer_tier: StateTier::Gpu,
                params_tier: StateTier::Gpu,
                placement: None,
                zeropp: *flags,
            }),
            Strategy::ZeroOffload {
                stage,
                offload_params,
            } => Some(zero::ZeroVariant {
                stage: *stage,
                optimizer_tier: StateTier::Cpu,
                params_tier: if *offload_params {
                    StateTier::Cpu
                } else {
                    StateTier::Gpu
                },
                placement: None,
                zeropp: ZeroPlusPlusFlags::default(),
            }),
            Strategy::ZeroInfinity {
                offload_params,
                placement,
            } => Some(zero::ZeroVariant {
                stage: ZeroStage::Three,
                optimizer_tier: StateTier::Nvme,
                params_tier: if *offload_params {
                    StateTier::Nvme
                } else {
                    StateTier::Gpu
                },
                placement: Some(placement.clone()),
                zeropp: ZeroPlusPlusFlags::default(),
            }),
            _ => None,
        }
    }

    /// Memory placement for training `model` on `cluster` under `opts`.
    ///
    /// # Errors
    /// [`StrategyError`] when the configuration is infeasible.
    pub fn memory_plan(
        &self,
        cluster: &Cluster,
        model: &GptConfig,
        opts: &TrainOptions,
        calib: &Calibration,
    ) -> Result<MemoryPlan, StrategyError> {
        let ctx = IterCtx {
            cluster,
            model,
            opts,
            calib,
        };
        self.plan_memory(&ctx)
    }

    /// Builds the task graph of one training iteration by planning,
    /// lowering, and stamping with `opts.jitter_seed`.
    ///
    /// One-shot convenience: the characterization engine instead lowers
    /// once and re-stamps per iteration (see [`lower`] /
    /// [`LoweredPlan::stamp`]).
    ///
    /// # Errors
    /// [`StrategyError`] when the configuration is infeasible (e.g.
    /// Megatron `tp × pp` not dividing the GPU count, or NVMe offload
    /// without volumes).
    pub fn build_iteration(
        &self,
        cluster: &Cluster,
        model: &GptConfig,
        opts: &TrainOptions,
        calib: &Calibration,
    ) -> Result<Dag, StrategyError> {
        let ctx = IterCtx {
            cluster,
            model,
            opts,
            calib,
        };
        let plan = self.plan_iteration(&ctx)?;
        let mut lowered = lower(&plan, cluster, calib)?;
        lowered.stamp(opts.jitter_seed);
        Ok(lowered.into_dag())
    }

    /// The ZeRO capability row (Table I), if this is a ZeRO-family
    /// strategy.
    pub fn capability(&self) -> Option<ZeroCapability> {
        match self {
            Strategy::Zero { stage } | Strategy::ZeroOffload { stage, .. } => {
                Some(ZeroCapability::for_stage(*stage))
            }
            Strategy::ZeroInfinity { .. } | Strategy::ZeroPlusPlus { .. } => {
                Some(ZeroCapability::for_stage(ZeroStage::Three))
            }
            _ => None,
        }
    }
}

impl StrategyPlan for Strategy {
    fn display_name(&self) -> String {
        self.name()
    }

    fn plan_memory(&self, ctx: &IterCtx<'_>) -> Result<MemoryPlan, StrategyError> {
        match self {
            Strategy::Ddp => ddp::memory_plan(ctx),
            Strategy::Megatron { tp, pp } => megatron::memory_plan(ctx, *tp, *pp),
            _ => {
                let v = self.zero_variant().ok_or_else(|| {
                    StrategyError::placement("strategy has no ZeRO state placement")
                })?;
                zero::memory_plan(ctx, &v)
            }
        }
    }

    fn plan_iteration(&self, ctx: &IterCtx<'_>) -> Result<IterPlan, StrategyError> {
        match self {
            Strategy::Ddp => ddp::plan_iteration(ctx),
            Strategy::Megatron { tp, pp } => megatron::plan_iteration(ctx, *tp, *pp),
            _ => {
                let v = self.zero_variant().ok_or_else(|| {
                    StrategyError::placement("strategy has no ZeRO state placement")
                })?;
                zero::plan_iteration(ctx, &v)
            }
        }
    }

    fn capability(&self) -> Option<ZeroCapability> {
        Strategy::capability(self)
    }
}

#[cfg(test)]
mod strategy_plan_tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    #[test]
    fn trait_and_inherent_apis_agree() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let s = Strategy::Zero {
            stage: ZeroStage::Three,
        };
        let dyn_s: &dyn StrategyPlan = &s;
        assert_eq!(dyn_s.display_name(), s.name());
        let m1 = dyn_s.plan_memory(&ctx).unwrap();
        let m2 = s.memory_plan(&cluster, &model, &opts, &calib).unwrap();
        assert_eq!(m1.per_gpu_bytes, m2.per_gpu_bytes);
        assert!(dyn_s.capability().is_some());
        assert!(StrategyPlan::capability(&Strategy::Ddp).is_none());
    }

    #[test]
    fn build_iteration_stamps_with_the_options_seed() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let dag = Strategy::Ddp
            .build_iteration(&cluster, &model, &opts, &calib)
            .unwrap();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = Strategy::Ddp.plan_iteration(&ctx).unwrap();
        let mut lowered = lower(&plan, &cluster, &calib).unwrap();
        let stamped = lowered.stamp(opts.jitter_seed);
        assert_eq!(dag.len(), stamped.len());
    }

    #[test]
    fn megatron_infeasible_layout_is_an_error_not_a_panic() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let s = Strategy::Megatron { tp: 3, pp: 1 };
        assert!(s.build_iteration(&cluster, &model, &opts, &calib).is_err());
        assert!(s.memory_plan(&cluster, &model, &opts, &calib).is_err());
    }
}
