//! Flow-level network simulation with max-min fair bandwidth sharing.
//!
//! Instead of simulating individual packets, each active transfer is a
//! *flow* with a byte count and a route (a sequence of [`LinkId`]s). At any
//! instant the rate of every flow is the max-min fair allocation over the
//! current link capacities (the classic *progressive filling* algorithm used
//! by flow-level simulators such as SimGrid). Events happen only when a flow
//! starts, a flow finishes, or a variable-rate link (token bucket) changes
//! state, which makes simulating hundreds of seconds of training traffic
//! cheap while preserving contention behaviour.
//!
//! # Incremental solving
//!
//! The solver is *incremental*: every mutation (flow start/finish/cancel,
//! link rescale, token-bucket drift) marks the links it touched **dirty**,
//! and the next read re-converges only the *dirty component* — the links
//! reachable from the dirty set through shared flows — leaving converged
//! rates elsewhere untouched. Because max-min allocations of disjoint
//! components are independent and the restricted solve performs the exact
//! floating-point operation sequence the global solve would perform on that
//! component, the result is **bit-identical** to a full recompute. A shadow
//! verification mode (on by default in debug builds, or via
//! `ZEROSIM_SHADOW=1`) runs the reference full solver next to the
//! incremental one and asserts bitwise rate/demand equality after every
//! solve. [`SolverStats`] counters expose how much work each event cost.
//!
//! Converged state is epoch-stamped ([`FlowNet::solver_epoch`]) and cached
//! behind interior mutability, so the read paths ([`FlowNet::flow_rate`],
//! [`FlowNet::link_demand`], [`FlowNet::next_event_in`]) take `&self`.
//!
//! Links are unidirectional; model a full-duplex interface as two links.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::bucket::TokenBucket;
use crate::error::SimError;
use crate::record::SolverStats;
use crate::time::SimTime;

/// Identifies a link within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The index of this link in creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies an active flow within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl FlowId {
    /// Raw sequence number, for crate-internal dense indexing (the arena
    /// engine keys its flow→task table on `raw - base`).
    pub(crate) fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw sequence number (crate-internal).
    pub(crate) fn from_raw(raw: u64) -> Self {
        FlowId(raw)
    }
}

/// Capacity model of a link.
#[derive(Debug, Clone, PartialEq)]
pub enum Capacity {
    /// Constant capacity in bytes/second.
    Fixed(f64),
    /// Token-bucket variable capacity (e.g. an NVMe device with a DRAM
    /// write-back cache).
    Bucketed(TokenBucket),
}

impl Capacity {
    fn current(&self) -> f64 {
        match self {
            Capacity::Fixed(c) => *c,
            Capacity::Bucketed(b) => b.current_rate(),
        }
    }
}

#[derive(Debug, Clone)]
struct LinkState {
    name: String,
    capacity: Capacity,
    /// The capacity the link was created with; fault injection rescales
    /// `capacity` relative to this pristine value and restores from it.
    nominal: Capacity,
    /// Current fault scale relative to `nominal` (1.0 = healthy).
    scale: f64,
}

#[derive(Debug, Clone)]
struct FlowState {
    route: Vec<LinkId>,
    remaining: f64,
    /// Per-flow rate ceiling (bytes/second), e.g. from the SerDes-pair
    /// degradation model; `f64::INFINITY` when uncapped.
    cap: f64,
}

/// Receives per-link byte accounting as simulated time advances.
///
/// Implementations aggregate the callbacks into whatever statistic they
/// need (time-bucketed utilization, totals, ...). `start` is the simulated
/// time at which the `dt_secs`-long interval began.
pub trait FlowObserver {
    /// Called once per (link, interval) with the bytes moved on that link.
    fn on_transfer(&mut self, link: LinkId, start: SimTime, dt_secs: f64, bytes: f64);
}

/// A no-op observer for callers that only need flow completion times.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl FlowObserver for NullObserver {
    fn on_transfer(&mut self, _: LinkId, _: SimTime, _: f64, _: f64) {}
}

/// Completion epsilon: flows with fewer residual bytes are finished.
const EPS_BYTES: f64 = 0.5;

/// Event budget for [`FlowNet::drain`]; exceeding it yields
/// [`SimError::SolverDiverged`].
const DRAIN_EVENT_BUDGET: u64 = 10_000_000;

/// Converged solver state, cached behind interior mutability so reads can
/// take `&self`. All fields are private to the flow module.
#[derive(Debug, Clone, Default)]
struct Solver {
    /// Links whose converged state is stale; emptied by each solve.
    dirty: BTreeSet<usize>,
    /// Converged per-flow rates, valid for `epoch`.
    rates: BTreeMap<FlowId, f64>,
    /// Converged per-link aggregate demand (bytes/second), valid for
    /// `epoch`.
    demand: Vec<f64>,
    /// Which flows cross each link. Connectivity only: a route that visits
    /// a link twice appears once here; multiplicity is recounted from raw
    /// routes during a solve (matching the reference solver's arithmetic).
    on_link: Vec<BTreeSet<FlowId>>,
    /// Scratch: residual capacity per link. Only the entries belonging to
    /// the current dirty component are (re)initialized each solve.
    residual: Vec<f64>,
    /// Scratch: unfixed route-entry count per link (counts duplicates).
    unfixed_on_link: Vec<usize>,
    /// Monotonic solve counter stamping the converged state.
    epoch: u64,
    stats: SolverStats,
}

fn shadow_default() -> bool {
    match std::env::var("ZEROSIM_SHADOW") {
        Ok(v) => v != "0" && !v.is_empty(),
        Err(_) => cfg!(debug_assertions),
    }
}

/// The flow network: links plus the set of currently active flows.
///
/// ```
/// use zerosim_simkit::flow::{FlowNet, NullObserver};
/// use zerosim_simkit::SimTime;
///
/// let mut net = FlowNet::new();
/// let l = net.add_link("pcie", 64e9);
/// let a = net.start_flow(&[l], 64e9).unwrap(); // 1 s alone
/// let b = net.start_flow(&[l], 64e9).unwrap(); // shares fairly
/// let (dt, done) = net.advance_to_next_event(SimTime::ZERO, &mut NullObserver).unwrap();
/// assert!((dt - 2.0).abs() < 1e-9); // both finish together after 2 s
/// assert_eq!(done, vec![a, b]);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNet {
    links: Vec<LinkState>,
    flows: BTreeMap<FlowId, FlowState>,
    next_flow: u64,
    solver: RefCell<Solver>,
    /// Run the reference full solver next to the incremental one and assert
    /// bitwise equality (defaults to on in debug builds; `ZEROSIM_SHADOW`
    /// overrides).
    shadow: bool,
    /// Treat every link as dirty on each solve (the pre-incremental
    /// behaviour); kept for benchmarking and differential testing.
    full: bool,
}

impl Default for FlowNet {
    fn default() -> Self {
        FlowNet {
            links: Vec::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            solver: RefCell::new(Solver::default()),
            shadow: shadow_default(),
            full: false,
        }
    }
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fixed-capacity link (`bytes_per_sec`) and returns its id.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn add_link(&mut self, name: impl Into<String>, bytes_per_sec: f64) -> LinkId {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link capacity must be finite and positive"
        );
        self.push_link(name.into(), Capacity::Fixed(bytes_per_sec))
    }

    /// Adds a token-bucket link and returns its id.
    pub fn add_bucketed_link(&mut self, name: impl Into<String>, bucket: TokenBucket) -> LinkId {
        self.push_link(name.into(), Capacity::Bucketed(bucket))
    }

    fn push_link(&mut self, name: String, capacity: Capacity) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(LinkState {
            name,
            nominal: capacity.clone(),
            capacity,
            scale: 1.0,
        });
        let s = self.solver.get_mut();
        s.demand.push(0.0);
        s.on_link.push(BTreeSet::new());
        s.residual.push(0.0);
        s.unfixed_on_link.push(0);
        id
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The raw id the next started flow will receive (crate-internal; the
    /// arena engine snapshots this as the base of its dense flow→task map).
    pub(crate) fn next_flow_raw(&self) -> u64 {
        self.next_flow
    }

    /// The name given to `link` at creation.
    ///
    /// # Panics
    /// Panics if `link` does not belong to this network.
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.links[link.0].name
    }

    /// Instantaneous capacity of `link` in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0].capacity.current()
    }

    /// Aggregate rate of flows currently crossing `link`, in bytes/second.
    ///
    /// Reads the epoch-stamped converged state, lazily re-converging the
    /// dirty component if needed — hence `&self`.
    pub fn link_demand(&self, link: LinkId) -> f64 {
        self.ensure_rates();
        self.solver.borrow().demand[link.0]
    }

    /// Cumulative counters describing how much work the incremental solver
    /// has done on this network.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.borrow().stats
    }

    /// Resets the [`SolverStats`] counters to zero (e.g. at the start of a
    /// measured window).
    pub fn reset_solver_stats(&mut self) {
        self.solver.get_mut().stats = SolverStats::default();
    }

    /// Monotonic counter stamping the converged rate/demand state; bumped
    /// once per solve.
    pub fn solver_epoch(&self) -> u64 {
        self.solver.borrow().epoch
    }

    /// Enables or disables shadow verification: every incremental solve is
    /// followed by a reference full solve and a bitwise equality assert on
    /// all rates and demands. Defaults to on in debug builds; the
    /// `ZEROSIM_SHADOW` environment variable (`1`/`0`) overrides the
    /// default at [`FlowNet::new`] time.
    pub fn set_shadow_verify(&mut self, on: bool) {
        self.shadow = on;
    }

    /// Whether shadow verification is active.
    pub fn shadow_verify(&self) -> bool {
        self.shadow
    }

    /// Forces every solve to re-converge the entire network (the
    /// pre-incremental behaviour). Useful for differential testing and for
    /// benchmarking the incremental solver's win.
    pub fn set_full_solve(&mut self, on: bool) {
        self.full = on;
    }

    /// Whether full-solve mode is active.
    pub fn full_solve(&self) -> bool {
        self.full
    }

    /// Starts a flow of `bytes` along `route` and returns its id.
    ///
    /// # Errors
    /// Returns [`SimError::EmptyRoute`] for an empty route,
    /// [`SimError::UnknownLink`] when the route references a link that does
    /// not belong to this network, and [`SimError::NonPositiveFlow`] when
    /// `bytes` is not finite and positive.
    pub fn start_flow(&mut self, route: &[LinkId], bytes: f64) -> Result<FlowId, SimError> {
        self.start_flow_capped(route, bytes, f64::INFINITY)
    }

    /// Starts a flow with an additional per-flow rate ceiling in
    /// bytes/second (the flow never exceeds `cap` even when its links have
    /// spare capacity). Used to model path-specific degradation such as the
    /// EPYC I/O-die SerDes-pair contention.
    ///
    /// # Errors
    /// Same conditions as [`FlowNet::start_flow`], plus
    /// [`SimError::NonPositiveCap`] for a non-positive or NaN `cap`.
    pub fn start_flow_capped(
        &mut self,
        route: &[LinkId],
        bytes: f64,
        cap: f64,
    ) -> Result<FlowId, SimError> {
        if route.is_empty() {
            return Err(SimError::EmptyRoute);
        }
        if !(bytes.is_finite() && bytes > 0.0) {
            return Err(SimError::NonPositiveFlow);
        }
        if cap.is_nan() || cap <= 0.0 {
            return Err(SimError::NonPositiveCap);
        }
        for l in route {
            if l.0 >= self.links.len() {
                return Err(SimError::UnknownLink { link: l.0 });
            }
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            FlowState {
                route: route.to_vec(),
                remaining: bytes,
                cap,
            },
        );
        let s = self.solver.get_mut();
        s.rates.insert(id, 0.0);
        for l in route {
            s.on_link[l.0].insert(id);
            s.dirty.insert(l.0);
        }
        Ok(id)
    }

    /// Removes an active flow without completing it (the bytes already moved
    /// stay moved; the remainder is abandoned). Returns `true` if the flow
    /// was active. Used when a node loss aborts a run mid-flight.
    pub fn cancel_flow(&mut self, flow: FlowId) -> bool {
        match self.flows.remove(&flow) {
            Some(f) => {
                let s = self.solver.get_mut();
                s.rates.remove(&flow);
                for l in &f.route {
                    s.on_link[l.0].remove(&flow);
                    s.dirty.insert(l.0);
                }
                true
            }
            None => false,
        }
    }

    /// Rescales `link` to `factor` times its *nominal* (creation-time)
    /// capacity. The factor is absolute, not cumulative: two successive
    /// `scale_link(l, 0.5)` calls leave the link at half capacity, and
    /// `scale_link(l, 1.0)` restores it. For token-bucket links both the
    /// burst and sustained rates are scaled while the token fill is
    /// preserved, so a degraded NVMe device does not forget how much cache
    /// headroom it had. In-flight flows re-converge to the new max-min fair
    /// allocation at the next rate refresh.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownLink`] for a foreign link id and
    /// [`SimError::BadCapacity`] for a non-finite or non-positive factor.
    pub fn scale_link(&mut self, link: LinkId, factor: f64) -> Result<(), SimError> {
        if link.0 >= self.links.len() {
            return Err(SimError::UnknownLink { link: link.0 });
        }
        if !(factor.is_finite() && factor > 0.0) {
            return Err(SimError::BadCapacity { link: link.0 });
        }
        let l = &mut self.links[link.0];
        l.capacity = match (&l.nominal, &mut l.capacity) {
            (Capacity::Fixed(c), _) => Capacity::Fixed(c * factor),
            (Capacity::Bucketed(n), Capacity::Bucketed(live)) => {
                let mut b = live.clone();
                b.set_rates(n.burst_rate() * factor, n.sustained_rate() * factor);
                Capacity::Bucketed(b)
            }
            // A link never changes kind, but stay total: rebuild from the
            // nominal bucket.
            (Capacity::Bucketed(n), _) => {
                let mut b = n.clone();
                b.set_rates(n.burst_rate() * factor, n.sustained_rate() * factor);
                Capacity::Bucketed(b)
            }
        };
        l.scale = factor;
        self.solver.get_mut().dirty.insert(link.0);
        Ok(())
    }

    /// Sets the capacity of `link` to an absolute `bytes_per_sec`. For
    /// fixed links this replaces the rate; for token-bucket links the value
    /// is interpreted as the new *sustained* rate and the burst rate is
    /// scaled proportionally (token fill preserved).
    ///
    /// # Errors
    /// Same conditions as [`FlowNet::scale_link`].
    pub fn set_link_cap(&mut self, link: LinkId, bytes_per_sec: f64) -> Result<(), SimError> {
        if link.0 >= self.links.len() {
            return Err(SimError::UnknownLink { link: link.0 });
        }
        if !(bytes_per_sec.is_finite() && bytes_per_sec > 0.0) {
            return Err(SimError::BadCapacity { link: link.0 });
        }
        let nominal = match &self.links[link.0].nominal {
            Capacity::Fixed(c) => *c,
            Capacity::Bucketed(b) => b.sustained_rate(),
        };
        self.scale_link(link, bytes_per_sec / nominal)
    }

    /// Restores `link` to its nominal capacity (equivalent to
    /// `scale_link(link, 1.0)`).
    ///
    /// # Errors
    /// Returns [`SimError::UnknownLink`] for a foreign link id.
    pub fn restore_link(&mut self, link: LinkId) -> Result<(), SimError> {
        self.scale_link(link, 1.0)
    }

    /// Restores every link to its nominal capacity. Used by callers that
    /// inject faults for one characterization run and want the network
    /// healthy again afterwards.
    pub fn restore_all_links(&mut self) {
        for i in 0..self.links.len() {
            // In-range by construction; `scale_link(·, 1.0)` cannot fail.
            let _ = self.restore_link(LinkId(i));
        }
    }

    /// Current fault scale of `link` relative to its nominal capacity
    /// (1.0 = healthy).
    ///
    /// # Panics
    /// Panics if `link` does not belong to this network.
    pub fn link_scale(&self, link: LinkId) -> f64 {
        self.links[link.0].scale
    }

    /// Remaining bytes of `flow`, or `None` once it has completed.
    pub fn flow_remaining(&self, flow: FlowId) -> Option<f64> {
        self.flows.get(&flow).map(|f| f.remaining)
    }

    /// Current max-min fair rate of `flow` in bytes/second, or `None` once
    /// it has completed.
    ///
    /// Reads the epoch-stamped converged state, lazily re-converging the
    /// dirty component if needed — hence `&self`.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.ensure_rates();
        self.solver.borrow().rates.get(&flow).copied()
    }

    /// Re-converges the dirty component, if any.
    fn ensure_rates(&self) {
        let mut s = self.solver.borrow_mut();
        if s.dirty.is_empty() {
            return;
        }
        if self.full {
            s.dirty = (0..self.links.len()).collect();
        }
        self.solve(&mut s);
    }

    /// Incremental progressive-filling max-min fair allocation: expands the
    /// dirty set to its connected component (links joined by shared flows)
    /// and re-solves only that component. Restricted to the component the
    /// floating-point operation sequence is identical to the reference full
    /// solver's, so rates and demands stay bit-identical to a global
    /// recompute (asserted by [`FlowNet::set_shadow_verify`] mode).
    fn solve(&self, s: &mut Solver) {
        // --- Dirty-component closure. -----------------------------------
        let mut comp_links: BTreeSet<usize> = s.dirty.iter().copied().collect();
        let mut comp_flows: BTreeSet<FlowId> = BTreeSet::new();
        let mut frontier: Vec<usize> = comp_links.iter().copied().collect();
        while let Some(li) = frontier.pop() {
            for id in &s.on_link[li] {
                if comp_flows.insert(*id) {
                    for l in &self.flows[id].route {
                        if comp_links.insert(l.0) {
                            frontier.push(l.0);
                        }
                    }
                }
            }
        }

        // --- Restricted progressive filling. ----------------------------
        // Residuals and unfixed counts live in persistent scratch vectors;
        // only component entries are touched. Counting uses the raw routes
        // (duplicates included), matching the reference solver.
        for &li in &comp_links {
            s.residual[li] = self.links[li].capacity.current();
            s.unfixed_on_link[li] = 0;
        }
        let ids: Vec<FlowId> = comp_flows.iter().copied().collect();
        let mut unfixed: Vec<bool> = vec![true; ids.len()];
        let mut rate_of: Vec<f64> = vec![0.0; ids.len()];
        for id in &ids {
            for l in &self.flows[id].route {
                s.unfixed_on_link[l.0] += 1;
            }
        }

        let mut remaining_unfixed = ids.len();
        while remaining_unfixed > 0 {
            // Bottleneck link: smallest fair share among component links
            // with unfixed flows (ascending index, strict `<`, so ties go
            // to the lowest index — as in the reference solver).
            let mut link_best: Option<(f64, usize)> = None;
            for &li in &comp_links {
                if s.unfixed_on_link[li] > 0 {
                    let share = (s.residual[li] / s.unfixed_on_link[li] as f64).max(0.0);
                    if link_best.is_none_or(|(b, _)| share < b) {
                        link_best = Some((share, li));
                    }
                }
            }
            // Capped flow that would saturate before the link share
            // (ascending flow id, strict `<`).
            let mut cap_best: Option<(f64, usize)> = None;
            for (i, id) in ids.iter().enumerate() {
                if unfixed[i] {
                    let cap = self.flows[id].cap;
                    if cap.is_finite() && cap_best.is_none_or(|(c, _)| cap < c) {
                        cap_best = Some((cap, i));
                    }
                }
            }

            // The winning cap carries its values through the match, so no
            // later unwrap is needed.
            let cap_winner = match (cap_best, link_best) {
                (Some((c, i)), Some((sh, _))) if c <= sh => Some((c, i)),
                (Some((c, i)), None) => Some((c, i)),
                _ => None,
            };

            if let Some((cap, i)) = cap_winner {
                unfixed[i] = false;
                remaining_unfixed -= 1;
                rate_of[i] = cap;
                for l in &self.flows[&ids[i]].route {
                    s.residual[l.0] = (s.residual[l.0] - cap).max(0.0);
                    s.unfixed_on_link[l.0] -= 1;
                }
                continue;
            }

            let Some((share, bottleneck)) = link_best else {
                break;
            };

            // Fix every unfixed flow crossing the bottleneck at `share`.
            let mut fixed_any = false;
            for (i, id) in ids.iter().enumerate() {
                if !unfixed[i] {
                    continue;
                }
                let crosses = self.flows[id].route.iter().any(|l| l.0 == bottleneck);
                if !crosses {
                    continue;
                }
                fixed_any = true;
                unfixed[i] = false;
                remaining_unfixed -= 1;
                rate_of[i] = share;
                for l in &self.flows[id].route {
                    s.residual[l.0] = (s.residual[l.0] - share).max(0.0);
                    s.unfixed_on_link[l.0] -= 1;
                }
            }
            debug_assert!(fixed_any, "progressive filling made no progress");
            if !fixed_any {
                break;
            }
        }

        // --- Commit the component back into the converged state. --------
        for (i, id) in ids.iter().enumerate() {
            s.rates.insert(*id, rate_of[i]);
        }
        for &li in &comp_links {
            s.demand[li] = (self.links[li].capacity.current() - s.residual[li]).max(0.0);
        }
        s.epoch += 1;
        s.stats.solves += 1;
        if comp_links.len() == self.links.len() {
            s.stats.full_solves += 1;
        }
        s.stats.links_touched += comp_links.len() as u64;
        s.stats.flows_touched += ids.len() as u64;
        s.stats.max_component_links = s.stats.max_component_links.max(comp_links.len());
        s.stats.last_component_links = comp_links.len();
        s.dirty.clear();

        if self.shadow {
            self.shadow_check(s);
        }
    }

    /// Reference full solver (the pre-incremental algorithm, verbatim
    /// arithmetic): progressive filling over the whole network into fresh
    /// buffers. Used by shadow verification and differential tests.
    fn reference_solve(&self) -> (BTreeMap<FlowId, f64>, Vec<f64>) {
        let n_links = self.links.len();
        let mut residual: Vec<f64> = self.links.iter().map(|l| l.capacity.current()).collect();
        let mut unfixed_on_link = vec![0usize; n_links];

        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut unfixed: Vec<bool> = vec![true; ids.len()];
        let mut rate_of: Vec<f64> = vec![0.0; ids.len()];
        for id in &ids {
            for l in &self.flows[id].route {
                unfixed_on_link[l.0] += 1;
            }
        }

        let mut remaining_unfixed = ids.len();
        while remaining_unfixed > 0 {
            let mut link_best: Option<(f64, usize)> = None;
            for li in 0..n_links {
                if unfixed_on_link[li] > 0 {
                    let share = (residual[li] / unfixed_on_link[li] as f64).max(0.0);
                    if link_best.is_none_or(|(b, _)| share < b) {
                        link_best = Some((share, li));
                    }
                }
            }
            let mut cap_best: Option<(f64, usize)> = None;
            for (i, id) in ids.iter().enumerate() {
                if unfixed[i] {
                    let cap = self.flows[id].cap;
                    if cap.is_finite() && cap_best.is_none_or(|(c, _)| cap < c) {
                        cap_best = Some((cap, i));
                    }
                }
            }
            let cap_winner = match (cap_best, link_best) {
                (Some((c, i)), Some((sh, _))) if c <= sh => Some((c, i)),
                (Some((c, i)), None) => Some((c, i)),
                _ => None,
            };
            if let Some((cap, i)) = cap_winner {
                unfixed[i] = false;
                remaining_unfixed -= 1;
                rate_of[i] = cap;
                for l in &self.flows[&ids[i]].route {
                    residual[l.0] = (residual[l.0] - cap).max(0.0);
                    unfixed_on_link[l.0] -= 1;
                }
                continue;
            }
            let Some((share, bottleneck)) = link_best else {
                break;
            };
            let mut fixed_any = false;
            for (i, id) in ids.iter().enumerate() {
                if !unfixed[i] {
                    continue;
                }
                if !self.flows[id].route.iter().any(|l| l.0 == bottleneck) {
                    continue;
                }
                fixed_any = true;
                unfixed[i] = false;
                remaining_unfixed -= 1;
                rate_of[i] = share;
                for l in &self.flows[id].route {
                    residual[l.0] = (residual[l.0] - share).max(0.0);
                    unfixed_on_link[l.0] -= 1;
                }
            }
            if !fixed_any {
                break;
            }
        }

        let rates: BTreeMap<FlowId, f64> = ids
            .iter()
            .zip(rate_of.iter())
            .map(|(id, r)| (*id, *r))
            .collect();
        let demand: Vec<f64> = self
            .links
            .iter()
            .zip(residual.iter())
            .map(|(l, r)| (l.capacity.current() - r).max(0.0))
            .collect();
        (rates, demand)
    }

    /// Asserts bitwise equality between the incremental solver's converged
    /// state and a fresh reference full solve.
    fn shadow_check(&self, s: &Solver) {
        let (ref_rates, ref_demand) = self.reference_solve();
        assert_eq!(
            s.rates.len(),
            ref_rates.len(),
            "shadow solver: flow-set mismatch"
        );
        for (id, rate) in &s.rates {
            let reference = ref_rates[id];
            assert!(
                rate.to_bits() == reference.to_bits(),
                "shadow solver: flow {id:?} rate diverged \
                 (incremental {rate:e}, reference {reference:e}, epoch {})",
                s.epoch,
            );
        }
        for (li, demand) in s.demand.iter().enumerate() {
            let reference = ref_demand[li];
            assert!(
                demand.to_bits() == reference.to_bits(),
                "shadow solver: link {li} ({}) demand diverged \
                 (incremental {demand:e}, reference {reference:e}, epoch {})",
                self.links[li].name,
                s.epoch,
            );
        }
    }

    /// Seconds until the next intrinsic event (a flow completion or a token
    /// bucket transition), or `None` when nothing is in motion.
    pub fn next_event_in(&self) -> Option<f64> {
        self.ensure_rates();
        let s = self.solver.borrow();
        let mut next: Option<f64> = None;
        for (id, f) in &self.flows {
            let rate = s.rates.get(id).copied().unwrap_or(0.0);
            if rate > 0.0 {
                let t = f.remaining / rate;
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
        }
        for (li, l) in self.links.iter().enumerate() {
            if let Capacity::Bucketed(b) = &l.capacity {
                if let Some(t) = b.next_transition(s.demand[li]) {
                    if next.is_none_or(|n| t < n) {
                        next = Some(t);
                    }
                }
            }
        }
        next
    }

    /// Advances the network by exactly `dt_secs`, reporting per-link bytes to
    /// `obs` and returning the flows that completed during the interval.
    ///
    /// The caller is responsible for choosing `dt_secs` no larger than
    /// [`FlowNet::next_event_in`]; larger steps lose events (debug builds
    /// assert against overshoot).
    pub fn advance(
        &mut self,
        now: SimTime,
        dt_secs: f64,
        obs: &mut dyn FlowObserver,
    ) -> Vec<FlowId> {
        assert!(dt_secs >= 0.0 && dt_secs.is_finite());
        self.ensure_rates();
        let s = self.solver.get_mut();

        let mut completed = Vec::new();
        for (id, f) in self.flows.iter_mut() {
            let rate = s.rates.get(id).copied().unwrap_or(0.0);
            if rate <= 0.0 {
                continue;
            }
            let bytes = (rate * dt_secs).min(f.remaining);
            f.remaining -= bytes;
            for l in &f.route {
                obs.on_transfer(*l, now, dt_secs, bytes);
            }
            if f.remaining <= EPS_BYTES {
                completed.push(*id);
            }
        }
        // Buckets drain/refill with the pre-advance demand; their capacity
        // moves with time, so every bucketed link is dirty after a step.
        for (li, l) in self.links.iter_mut().enumerate() {
            if let Capacity::Bucketed(b) = &mut l.capacity {
                b.advance(dt_secs, s.demand[li]);
                s.dirty.insert(li);
            }
        }
        for id in &completed {
            if let Some(f) = self.flows.remove(id) {
                s.rates.remove(id);
                for l in &f.route {
                    s.on_link[l.0].remove(id);
                    s.dirty.insert(l.0);
                }
            }
        }
        completed
    }

    /// Convenience driver: advances to the next intrinsic event and returns
    /// `(dt_secs, completed_flows)`, or `None` if no flow is active.
    pub fn advance_to_next_event(
        &mut self,
        now: SimTime,
        obs: &mut dyn FlowObserver,
    ) -> Option<(f64, Vec<FlowId>)> {
        let dt = self.next_event_in()?;
        let done = self.advance(now, dt, obs);
        Some((dt, done))
    }

    /// Runs until every active flow completes, returning total elapsed
    /// seconds. Intended for tests and simple measurements.
    ///
    /// # Errors
    /// Returns [`SimError::SolverDiverged`] if the event budget is exceeded
    /// before every flow retires (the solver is cycling, e.g. a token
    /// bucket oscillating at the completion epsilon).
    pub fn drain(&mut self, obs: &mut dyn FlowObserver) -> Result<f64, SimError> {
        self.drain_with_budget(obs, DRAIN_EVENT_BUDGET)
    }

    fn drain_with_budget(
        &mut self,
        obs: &mut dyn FlowObserver,
        budget: u64,
    ) -> Result<f64, SimError> {
        let mut t = 0.0;
        let mut guard = 0u64;
        while self.flow_count() > 0 {
            match self.advance_to_next_event(SimTime::from_secs(t), obs) {
                Some((dt, _)) => t += dt,
                None => break, // only bucket refills remain
            }
            guard += 1;
            if guard >= budget {
                return Err(SimError::SolverDiverged {
                    iterations: guard,
                    component_links: self.solver.borrow().stats.last_component_links,
                });
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_time(net: &mut FlowNet) -> f64 {
        net.drain(&mut NullObserver).unwrap()
    }

    #[test]
    fn single_flow_is_limited_by_bottleneck() {
        let mut net = FlowNet::new();
        let fast = net.add_link("fast", 100.0);
        let slow = net.add_link("slow", 10.0);
        net.start_flow(&[fast, slow], 100.0).unwrap();
        assert!((drain_time(&mut net) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        let a = net.start_flow(&[l], 50.0).unwrap();
        net.start_flow(&[l], 100.0).unwrap();
        // Both run at 5 B/s; a finishes at t=10, then b runs at 10 B/s.
        let mut t = 0.0;
        let (dt, done) = net
            .advance_to_next_event(SimTime::ZERO, &mut NullObserver)
            .unwrap();
        t += dt;
        assert_eq!(done, vec![a]);
        assert!((t - 10.0).abs() < 1e-9);
        let (dt, _) = net
            .advance_to_next_event(SimTime::from_secs(t), &mut NullObserver)
            .unwrap();
        t += dt;
        assert!((t - 15.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_respects_per_flow_bottlenecks() {
        // Flow A crosses a private 2 B/s link plus the shared 10 B/s link;
        // flow B only crosses the shared link. A gets 2, B gets 8.
        let mut net = FlowNet::new();
        let shared = net.add_link("shared", 10.0);
        let private = net.add_link("private", 2.0);
        let a = net.start_flow(&[private, shared], 100.0).unwrap();
        let b = net.start_flow(&[shared], 100.0).unwrap();
        assert!((net.flow_rate(a).unwrap() - 2.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_after_completion() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        net.start_flow(&[l], 10.0).unwrap();
        let b = net.start_flow(&[l], 100.0).unwrap();
        net.advance_to_next_event(SimTime::ZERO, &mut NullObserver)
            .unwrap();
        assert!((net.flow_rate(b).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_all_bytes() {
        struct Tally(f64);
        impl FlowObserver for Tally {
            fn on_transfer(&mut self, _: LinkId, _: SimTime, _: f64, bytes: f64) {
                self.0 += bytes;
            }
        }
        let mut net = FlowNet::new();
        let a = net.add_link("a", 7.0);
        let b = net.add_link("b", 13.0);
        net.start_flow(&[a, b], 42.0).unwrap();
        let mut tally = Tally(0.0);
        net.drain(&mut tally).unwrap();
        // Counted once per link on the 2-hop route.
        assert!((tally.0 - 84.0).abs() < 1e-6);
    }

    #[test]
    fn bucketed_link_slows_after_burst() {
        // 10-byte bucket, burst 10 B/s, sustained 2 B/s. A 30-byte flow:
        // phase 1: 10/8 * ... bucket drains after 10/(10-2) = 1.25 s having
        // moved 12.5 bytes; remaining 17.5 bytes at 2 B/s = 8.75 s.
        let mut net = FlowNet::new();
        let l = net.add_bucketed_link("nvme", TokenBucket::new(10.0, 10.0, 2.0));
        net.start_flow(&[l], 30.0).unwrap();
        let t = drain_time(&mut net);
        assert!((t - (1.25 + 8.75)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn bucket_refills_between_bursts() {
        let mut net = FlowNet::new();
        let l = net.add_bucketed_link("nvme", TokenBucket::new(10.0, 10.0, 2.0));
        net.start_flow(&[l], 10.0).unwrap(); // exactly drains the burst headroom? 10 bytes at 10 B/s = 1 s, draining 8 tokens
        let t1 = drain_time(&mut net);
        assert!((t1 - 1.0).abs() < 1e-6);
        // Idle 4 s -> refills 8 tokens.
        net.advance(SimTime::from_secs(t1), 4.0, &mut NullObserver);
        net.start_flow(&[l], 10.0).unwrap();
        let t2 = drain_time(&mut net);
        assert!(
            (t2 - 1.0).abs() < 1e-6,
            "second burst should also be fast: {t2}"
        );
    }

    #[test]
    fn per_flow_cap_limits_rate() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let capped = net.start_flow_capped(&[l], 100.0, 10.0).unwrap();
        let free = net.start_flow(&[l], 100.0).unwrap();
        assert!((net.flow_rate(capped).unwrap() - 10.0).abs() < 1e-9);
        // The uncapped flow picks up the slack.
        assert!((net.flow_rate(free).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn cap_larger_than_share_is_inert() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let a = net.start_flow_capped(&[l], 100.0, 1000.0).unwrap();
        let b = net.start_flow(&[l], 100.0).unwrap();
        assert!((net.flow_rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cap_is_an_error() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        let err = net.start_flow_capped(&[l], 1.0, 0.0).unwrap_err();
        assert_eq!(err, SimError::NonPositiveCap);
        assert!(err.to_string().contains("flow cap must be positive"));
        assert_eq!(net.flow_count(), 0, "rejected flow must not be admitted");
    }

    #[test]
    fn empty_route_is_an_error() {
        let mut net = FlowNet::new();
        let err = net.start_flow(&[], 1.0).unwrap_err();
        assert_eq!(err, SimError::EmptyRoute);
        assert!(err
            .to_string()
            .contains("route must contain at least one link"));
    }

    #[test]
    fn unknown_link_is_an_error() {
        let mut net = FlowNet::new();
        let mut other = FlowNet::new();
        let l = other.add_link("elsewhere", 1.0);
        let err = net.start_flow(&[l], 1.0).unwrap_err();
        assert_eq!(err, SimError::UnknownLink { link: l.index() });
        assert!(err.to_string().contains("unknown link"));
    }

    #[test]
    fn non_positive_bytes_is_an_error() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 100.0);
        assert_eq!(
            net.start_flow(&[l], 0.0).unwrap_err(),
            SimError::NonPositiveFlow
        );
        assert_eq!(
            net.start_flow(&[l], f64::NAN).unwrap_err(),
            SimError::NonPositiveFlow
        );
    }

    #[test]
    fn link_metadata_accessors() {
        let mut net = FlowNet::new();
        let l = net.add_link("nvlink", 25e9);
        assert_eq!(net.link_name(l), "nvlink");
        assert_eq!(net.link_capacity(l), 25e9);
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.flow_count(), 0);
        net.start_flow(&[l], 1.0).unwrap();
        assert!((net.link_demand(l) - 25e9).abs() < 1.0);
    }

    #[test]
    fn scale_link_rebalances_in_flight_flows() {
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 10.0);
        let f = net.start_flow(&[l], 100.0).unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0).abs() < 1e-9);
        net.scale_link(l, 0.5).unwrap();
        assert!((net.flow_rate(f).unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(net.link_scale(l), 0.5);
        net.restore_link(l).unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(net.link_scale(l), 1.0);
        assert_eq!(net.link_capacity(l), 10.0);
    }

    #[test]
    fn scale_link_is_absolute_not_cumulative() {
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 10.0);
        net.scale_link(l, 0.5).unwrap();
        net.scale_link(l, 0.5).unwrap();
        assert_eq!(net.link_capacity(l), 5.0);
    }

    #[test]
    fn degraded_link_stretches_completion() {
        // 100 bytes over a 10 B/s link degraded to 5 B/s after 4 s:
        // 40 bytes move in the first phase, the remaining 60 take 12 s.
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 10.0);
        net.start_flow(&[l], 100.0).unwrap();
        net.advance(SimTime::ZERO, 4.0, &mut NullObserver);
        net.scale_link(l, 0.5).unwrap();
        let t = net.drain(&mut NullObserver).unwrap();
        assert!((t - 12.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn set_link_cap_is_absolute() {
        let mut net = FlowNet::new();
        let l = net.add_link("roce", 10.0);
        net.set_link_cap(l, 2.5).unwrap();
        assert_eq!(net.link_capacity(l), 2.5);
        assert_eq!(net.link_scale(l), 0.25);
    }

    #[test]
    fn scale_bucketed_link_preserves_tokens() {
        let mut net = FlowNet::new();
        let l = net.add_bucketed_link("nvme", TokenBucket::new(10.0, 10.0, 2.0));
        net.start_flow(&[l], 100.0).unwrap();
        // Drain half the tokens: serving at 10 while sustaining 2 drains
        // 8 tokens/s -> 0.625 s drains 5 tokens.
        net.advance(SimTime::ZERO, 0.625, &mut NullObserver);
        net.scale_link(l, 0.5).unwrap();
        // Burst rate halves but the device still has burst headroom left.
        assert_eq!(net.link_capacity(l), 5.0);
        net.restore_link(l).unwrap();
        assert_eq!(net.link_capacity(l), 10.0);
    }

    #[test]
    fn scale_link_rejects_bad_input() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        assert_eq!(
            net.scale_link(l, 0.0).unwrap_err(),
            SimError::BadCapacity { link: l.index() }
        );
        assert_eq!(
            net.scale_link(LinkId(7), 0.5).unwrap_err(),
            SimError::UnknownLink { link: 7 }
        );
        assert_eq!(
            net.set_link_cap(l, f64::INFINITY).unwrap_err(),
            SimError::BadCapacity { link: l.index() }
        );
    }

    #[test]
    fn cancel_flow_releases_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        let a = net.start_flow(&[l], 100.0).unwrap();
        let b = net.start_flow(&[l], 100.0).unwrap();
        assert!((net.flow_rate(b).unwrap() - 5.0).abs() < 1e-9);
        assert!(net.cancel_flow(a));
        assert!(!net.cancel_flow(a), "second cancel is a no-op");
        assert!((net.flow_rate(b).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(net.flow_count(), 1);
    }

    // --- Incremental-solver behaviour. ----------------------------------

    #[test]
    fn reads_take_shared_references() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        let f = net.start_flow(&[l], 100.0).unwrap();
        // All three read paths work through &FlowNet even with a pending
        // dirty set (the converged state is cached behind a RefCell).
        let shared: &FlowNet = &net;
        assert!((shared.flow_rate(f).unwrap() - 10.0).abs() < 1e-9);
        assert!((shared.link_demand(l) - 10.0).abs() < 1e-9);
        assert!((shared.next_event_in().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn solver_recomputes_only_the_dirty_component() {
        let mut net = FlowNet::new();
        // Two disjoint clusters of two links each.
        let a0 = net.add_link("a0", 10.0);
        let a1 = net.add_link("a1", 10.0);
        let b0 = net.add_link("b0", 10.0);
        let b1 = net.add_link("b1", 10.0);
        net.start_flow(&[a0, a1], 100.0).unwrap();
        net.start_flow(&[b0, b1], 100.0).unwrap();
        let fa = net.start_flow(&[a0], 100.0).unwrap();
        assert!(net.flow_rate(fa).is_some());
        // That last read converged everything; a new flow on the B side
        // must only re-touch the B component.
        let epoch = net.solver_epoch();
        let fb = net.start_flow(&[b1], 100.0).unwrap();
        assert!(net.flow_rate(fb).is_some());
        assert_eq!(net.solver_epoch(), epoch + 1);
        let stats = net.solver_stats();
        assert_eq!(
            stats.last_component_links, 2,
            "B-side event must not touch the A-side links: {stats:?}"
        );
        assert!(stats.max_component_links <= 4);
    }

    #[test]
    fn component_closure_follows_shared_flows() {
        let mut net = FlowNet::new();
        let l0 = net.add_link("l0", 10.0);
        let l1 = net.add_link("l1", 10.0);
        let l2 = net.add_link("l2", 10.0);
        // Chain: f01 joins l0-l1, f12 joins l1-l2.
        net.start_flow(&[l0, l1], 1e6).unwrap();
        net.start_flow(&[l1, l2], 1e6).unwrap();
        net.flow_rate(FlowId(0)).unwrap();
        // Dirtying l0 must pull in the whole chain through shared flows.
        net.scale_link(l0, 0.5).unwrap();
        net.link_demand(l2);
        assert_eq!(net.solver_stats().last_component_links, 3);
    }

    #[test]
    fn full_solve_mode_matches_incremental_rates() {
        let build = |full: bool| {
            let mut net = FlowNet::new();
            net.set_full_solve(full);
            let shared = net.add_link("shared", 10.0);
            let private = net.add_link("private", 2.0);
            let iso = net.add_link("iso", 7.0);
            let a = net.start_flow(&[private, shared], 100.0).unwrap();
            let b = net.start_flow(&[shared], 100.0).unwrap();
            let c = net.start_flow_capped(&[iso], 100.0, 3.0).unwrap();
            net.advance_to_next_event(SimTime::ZERO, &mut NullObserver);
            (
                net.flow_rate(a).map(f64::to_bits),
                net.flow_rate(b).map(f64::to_bits),
                net.flow_rate(c).map(f64::to_bits),
                net.link_demand(shared).to_bits(),
            )
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn full_solve_mode_counts_full_solves() {
        let mut net = FlowNet::new();
        net.set_full_solve(true);
        net.set_shadow_verify(false);
        let a = net.add_link("a", 10.0);
        let _b = net.add_link("b", 10.0);
        net.start_flow(&[a], 100.0).unwrap();
        net.flow_rate(FlowId(0)).unwrap();
        let stats = net.solver_stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.full_solves, 1);
        assert_eq!(stats.links_touched, 2);
    }

    #[test]
    fn solver_stats_reset() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        net.start_flow(&[l], 100.0).unwrap();
        net.link_demand(l);
        assert!(net.solver_stats().solves > 0);
        net.reset_solver_stats();
        assert_eq!(net.solver_stats(), SolverStats::default());
    }

    #[test]
    fn shadow_verify_toggles_and_defaults() {
        let mut net = FlowNet::new();
        // Whatever the environment default, the toggle must win.
        net.set_shadow_verify(true);
        assert!(net.shadow_verify());
        let l = net.add_link("l", 10.0);
        let f = net.start_flow(&[l], 100.0).unwrap();
        assert!((net.flow_rate(f).unwrap() - 10.0).abs() < 1e-9);
        net.set_shadow_verify(false);
        assert!(!net.shadow_verify());
    }

    #[test]
    fn drain_reports_divergence_instead_of_panicking() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        // Three sequential completions need three events; a budget of two
        // must surface a typed divergence error, not a panic.
        net.start_flow(&[l], 10.0).unwrap();
        net.start_flow(&[l], 20.0).unwrap();
        net.start_flow(&[l], 30.0).unwrap();
        let err = net
            .drain_with_budget(&mut NullObserver, 2)
            .expect_err("budget of 2 cannot retire 3 staggered flows");
        match err {
            SimError::SolverDiverged {
                iterations,
                component_links,
            } => {
                assert_eq!(iterations, 2);
                assert!(component_links >= 1);
            }
            other => panic!("expected SolverDiverged, got {other:?}"),
        }
    }

    #[test]
    fn unused_links_report_zero_demand_after_completion() {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10.0);
        net.start_flow(&[l], 10.0).unwrap();
        assert!((net.link_demand(l) - 10.0).abs() < 1e-9);
        net.drain(&mut NullObserver).unwrap();
        assert_eq!(net.flow_count(), 0);
        assert_eq!(net.link_demand(l), 0.0);
    }

    #[test]
    fn duplicate_route_entries_count_twice_in_sharing() {
        // A route that visits the same link twice consumes two shares of
        // it, in both the incremental and the reference solver.
        let mut net = FlowNet::new();
        net.set_shadow_verify(true);
        let l = net.add_link("l", 10.0);
        let doubled = net.start_flow(&[l, l], 100.0).unwrap();
        let single = net.start_flow(&[l], 100.0).unwrap();
        // Fair share per route-entry: 10/3; the doubled flow gets one
        // share, the single flow gets one share... progressive filling
        // fixes both at the bottleneck share of 10/3.
        let r0 = net.flow_rate(doubled).unwrap();
        let r1 = net.flow_rate(single).unwrap();
        assert!((r0 - 10.0 / 3.0).abs() < 1e-9, "r0 = {r0}");
        assert!((r1 - 10.0 / 3.0).abs() < 1e-9, "r1 = {r1}");
    }
}
