//! Resilience experiment: the paper's five strategy families swept under
//! a canonical fault matrix — healthy, RoCE at 50% and at 10%, one
//! straggling GPU at 0.7×, an NVMe stall window, and a node loss at
//! mid-run with checkpoint/restart recovery — plus a ZeRO-Infinity
//! NVMe-stall study where the staging tier is actually on the critical
//! path.
//!
//! Every cell reports *goodput*: useful model FLOP/s net of replayed
//! iterations, checkpoint traffic, and recovery time. Identical seeds and
//! schedules produce byte-identical reports ([`TrainingReport::digest`]).
//!
//! The RoCE@50% column is the experiment's quiet headline: it changes
//! nothing, because the paper's dual-node collectives are protocol-bound
//! far below line rate (ext5) — the wire only becomes the bottleneck once
//! it degrades below the ~27% attainment of Table IV, which is why the
//! RoCE@10% brownout column collapses.

use zerosim_core::{
    CheckpointSink, FaultConfig, FaultScenario, RecoveryPolicy, RunConfig, SweepSpec,
    TrainingReport,
};
use zerosim_hw::{GpuId, LinkClass};
use zerosim_model::GptConfig;
use zerosim_report::Table;
use zerosim_strategies::Strategy;

use crate::data;
use crate::data::NvmeConfig;

/// Model size used by the fault matrix (the paper's 1.4 B baseline).
pub const MATRIX_BILLIONS: f64 = 1.4;

/// Nodes used by the fault matrix (dual-node so RoCE and node loss bite).
pub const MATRIX_NODES: usize = 2;

/// Seed stamped onto every schedule of the matrix.
pub const MATRIX_SEED: u64 = 42;

fn matrix_run_config() -> RunConfig {
    RunConfig {
        warmup_iters: 0,
        measure_iters: 4,
        ..RunConfig::default()
    }
}

/// The canonical fault matrix, parameterized by the healthy run's wall
/// time so faults land mid-run regardless of strategy speed.
pub fn fault_matrix_scenarios(wall_secs: f64) -> Vec<FaultScenario> {
    vec![
        FaultScenario::Healthy,
        FaultScenario::DegradeClass {
            node: 0,
            class: LinkClass::Roce,
            factor: 0.5,
            at_s: 0.25 * wall_secs,
            dur_s: None,
        },
        FaultScenario::DegradeClass {
            node: 0,
            class: LinkClass::Roce,
            factor: 0.1,
            at_s: 0.25 * wall_secs,
            dur_s: None,
        },
        FaultScenario::Straggler {
            gpu: GpuId { node: 0, gpu: 1 },
            factor: 0.7,
            at_s: 0.0,
        },
        FaultScenario::NvmeStall {
            node: 0,
            factor: 0.05,
            at_s: 0.25 * wall_secs,
            dur_s: 0.25 * wall_secs,
        },
        FaultScenario::NodeLoss {
            node: 1,
            at_s: 0.55 * wall_secs,
        },
    ]
}

/// The fault configuration a scenario compiles to (node loss gets
/// checkpoint/restart recovery; everything else runs unprotected).
fn matrix_faults(scenario: &FaultScenario) -> FaultConfig {
    let probe = data::sim();
    let schedule = scenario.compile(probe.cluster(), MATRIX_SEED);
    match scenario {
        FaultScenario::NodeLoss { .. } => FaultConfig::new(
            schedule,
            RecoveryPolicy::every(2).with_restart_delay(1.0),
            CheckpointSink::Dram,
        ),
        _ => FaultConfig::without_checkpoints(schedule),
    }
}

/// The sweep spec for one matrix cell (strategy × scenario on the
/// default dual-node cluster).
pub fn cell_spec(strategy: &Strategy, model: &GptConfig, scenario: &FaultScenario) -> SweepSpec {
    SweepSpec::new(
        format!("{} / {}", strategy.name(), scenario.label()),
        strategy.clone(),
        *model,
        data::opts(MATRIX_NODES),
    )
    .with_run(matrix_run_config())
    .with_faults(matrix_faults(scenario))
}

/// Runs one strategy under one scenario and returns the report.
pub fn run_cell(
    strategy: &Strategy,
    model: &GptConfig,
    scenario: &FaultScenario,
) -> TrainingReport {
    cell_spec(strategy, model, scenario)
        .execute()
        .expect("matrix configurations fit and recover")
        .report
}

fn matrix_rows() -> Vec<(&'static str, Vec<TrainingReport>)> {
    let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);
    let baselines = data::baselines(MATRIX_NODES);

    // Phase 1: the healthy runs, fanned out in parallel — they anchor
    // each strategy's fault times.
    let healthy_specs: Vec<SweepSpec> = baselines
        .iter()
        .map(|(_, s)| cell_spec(s, &model, &FaultScenario::Healthy))
        .collect();
    let healthy: Vec<TrainingReport> = data::sweep(healthy_specs)
        .into_iter()
        .map(|r| r.report)
        .collect();

    // Phase 2: every remaining (strategy × scenario) cell in one sweep.
    let mut fault_specs = Vec::new();
    for ((_, strategy), healthy) in baselines.iter().zip(&healthy) {
        let wall = healthy
            .resilience
            .as_ref()
            .expect("resilient runs carry metrics")
            .wall_time
            .as_secs();
        for scenario in fault_matrix_scenarios(wall).into_iter().skip(1) {
            fault_specs.push(cell_spec(strategy, &model, &scenario));
        }
    }
    let per_strategy = fault_matrix_scenarios(1.0).len() - 1;
    let mut faulted = data::sweep(fault_specs).into_iter().map(|r| r.report);

    let mut rows = Vec::new();
    for ((name, _), healthy) in baselines.iter().zip(healthy) {
        let mut reports = vec![healthy];
        reports.extend(faulted.by_ref().take(per_strategy));
        rows.push((*name, reports));
    }
    rows
}

/// Runs the ZeRO-Infinity NVMe-stall study: config B (two-drive RAID0
/// scratch), healthy vs. a mid-run device stall at 5% service rate.
/// Returns (healthy, stalled) reports.
pub fn infinity_stall_cells() -> (TrainingReport, TrainingReport) {
    let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);
    let spec_for = |scenario: &FaultScenario| -> SweepSpec {
        // Schedules compile against a cluster with config B's drive layout.
        let (probe, _) = NvmeConfig::B.build();
        let schedule = scenario.compile(probe.cluster(), MATRIX_SEED);
        NvmeConfig::B
            .spec(
                format!("infinity B / {}", scenario.label()),
                model,
                matrix_run_config(),
            )
            .with_faults(FaultConfig::without_checkpoints(schedule))
    };
    // Healthy pre-pass anchors the stall window.
    let healthy = spec_for(&FaultScenario::Healthy)
        .execute()
        .expect("infinity config fits")
        .report;
    let wall = healthy
        .resilience
        .as_ref()
        .expect("resilient runs carry metrics")
        .wall_time
        .as_secs();
    let stalled = spec_for(&FaultScenario::NvmeStall {
        node: 0,
        factor: 0.05,
        at_s: 0.25 * wall,
        dur_s: 0.5 * wall,
    })
    .execute()
    .expect("infinity config fits")
    .report;
    (healthy, stalled)
}

/// The goodput table: strategy × fault scenario, in TFLOP/s.
pub fn goodput_table() -> String {
    let mut t = Table::new(vec![
        "strategy",
        "healthy",
        "RoCE@50%",
        "RoCE@10%",
        "straggler 0.7x",
        "NVMe stall",
        "node loss",
    ]);
    let mut detail = Table::new(vec![
        "strategy",
        "p50",
        "p99",
        "replayed",
        "ckpts",
        "recoveries",
        "TTR",
    ]);
    for (name, reports) in matrix_rows() {
        let mut row = vec![name.to_string()];
        for r in &reports {
            let m = r.resilience.as_ref().expect("metrics");
            row.push(format!("{:.1}", m.goodput_tflops()));
        }
        t.row(row);
        let loss = reports
            .last()
            .and_then(|r| r.resilience.as_ref())
            .expect("node-loss cell");
        detail.row(vec![
            name.to_string(),
            format!("{:.0} ms", loss.iter_p50.as_millis()),
            format!("{:.0} ms", loss.iter_p99.as_millis()),
            format!("{}", loss.replayed_iterations),
            format!("{}", loss.checkpoints_taken),
            format!("{}", loss.recoveries),
            format!("{:.2} s", loss.time_to_recover().as_secs()),
        ]);
    }
    let (inf_healthy, inf_stalled) = infinity_stall_cells();
    let mut inf = Table::new(vec!["ZeRO-Infinity (config B)", "goodput", "p50", "p99"]);
    for (label, r) in [("healthy", &inf_healthy), ("NVMe stall@5%", &inf_stalled)] {
        let m = r.resilience.as_ref().expect("metrics");
        inf.row(vec![
            label.to_string(),
            format!("{:.1} TFLOP/s", m.goodput_tflops()),
            format!("{:.0} ms", m.iter_p50.as_millis()),
            format!("{:.0} ms", m.iter_p99.as_millis()),
        ]);
    }
    format!(
        "Fault matrix — goodput (TFLOP/s) at {MATRIX_BILLIONS} B on {MATRIX_NODES} nodes:\n{}\n\
         RoCE@50% is free: dual-node collectives are protocol-bound far below\n\
         line rate (ext5), so the wire only binds once it degrades past the\n\
         ~27% attainment of Table IV — hence the RoCE@10% collapse.\n\
         The NVMe stall is invisible to strategies that never touch the\n\
         staging tier; it lands on ZeRO-Infinity, whose optimizer state\n\
         lives behind the stalled drives:\n{}\n\
         Node-loss recovery detail (checkpoint every 2 iterations, DRAM sink):\n{}",
        t.render(),
        inf.render(),
        detail.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_cell_loses_goodput_but_stays_deterministic() {
        let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);
        let strategy = Strategy::Ddp;
        let healthy = run_cell(&strategy, &model, &FaultScenario::Healthy);
        let scenario = FaultScenario::Straggler {
            gpu: GpuId { node: 0, gpu: 1 },
            factor: 0.7,
            at_s: 0.0,
        };
        let a = run_cell(&strategy, &model, &scenario);
        let b = run_cell(&strategy, &model, &scenario);
        assert_eq!(a.digest(), b.digest(), "same seed+schedule, same bytes");
        assert_eq!(a.resilience, b.resilience);
        let hm = healthy.resilience.as_ref().unwrap();
        let sm = a.resilience.as_ref().unwrap();
        assert!(
            sm.goodput_flops < hm.goodput_flops,
            "straggler goodput {} must trail healthy {}",
            sm.goodput_flops,
            hm.goodput_flops
        );
        assert_eq!(sm.faults_applied, 1);
    }

    #[test]
    fn nvme_stall_bites_zero_infinity_but_not_ddp() {
        // DDP never touches the staging tier: the stall is invisible.
        let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);
        let healthy = run_cell(&Strategy::Ddp, &model, &FaultScenario::Healthy);
        let wall = healthy.resilience.as_ref().unwrap().wall_time.as_secs();
        let stalled = run_cell(
            &Strategy::Ddp,
            &model,
            &FaultScenario::NvmeStall {
                node: 0,
                factor: 0.05,
                at_s: 0.25 * wall,
                dur_s: 0.25 * wall,
            },
        );
        let hm = healthy.resilience.as_ref().unwrap();
        let dm = stalled.resilience.as_ref().unwrap();
        assert_eq!(hm.goodput_flops, dm.goodput_flops, "DDP ignores NVMe");
        // ZeRO-Infinity stages optimizer state through the stalled drives.
        let (inf_healthy, inf_stalled) = infinity_stall_cells();
        let ihm = inf_healthy.resilience.as_ref().unwrap();
        let ism = inf_stalled.resilience.as_ref().unwrap();
        assert!(ism.faults_applied >= 1, "stall events must fire");
        assert!(
            ism.goodput_flops < 0.95 * ihm.goodput_flops,
            "stalled goodput {} must trail healthy {}",
            ism.goodput_flops,
            ihm.goodput_flops
        );
    }

    #[test]
    fn node_loss_cell_recovers_for_zero3() {
        let model = GptConfig::paper_model_with_params(MATRIX_BILLIONS);
        let strategy = Strategy::Zero {
            stage: zerosim_strategies::ZeroStage::Three,
        };
        let healthy = run_cell(&strategy, &model, &FaultScenario::Healthy);
        let wall = healthy.resilience.as_ref().unwrap().wall_time.as_secs();
        let loss = run_cell(
            &strategy,
            &model,
            &FaultScenario::NodeLoss {
                node: 1,
                at_s: 0.55 * wall,
            },
        );
        let m = loss.resilience.as_ref().unwrap();
        assert_eq!(m.recoveries, 1);
        assert!(m.checkpoints_taken >= 1);
        assert!(m.goodput_flops < healthy.resilience.as_ref().unwrap().goodput_flops);
    }
}
