//! Topology-generator and `planfind` invariants, end to end.
//!
//! The generators in `zerosim_hw::TopologySpec` must lower into clusters
//! that behave exactly like hand-written `ClusterSpec`s: routes stay
//! symmetric, every device the spec names is reachable, the closed-form
//! bisection formula matches the lowered flow network, and — the golden
//! anchor — the default topology is *the* paper cluster, byte-identical
//! digests included. On top of that sit the `planfind` acceptance
//! checks: the capacity edge between DDP and the sharded plans on the
//! paper testbed, and width-invariant search results.

use zerosim_analyzer::{analyze_strategy, LintConfig};
use zerosim_bench::data::golden_specs;
use zerosim_core::{search_plans, CandidateOutcome, SearchConfig, SweepRunner};
use zerosim_hw::{Cluster, ClusterSpec, GpuId, MemLoc, NvmeId, SocketId, TopologySpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{Calibration, Strategy, TrainOptions};

/// One representative of each generator family, all small enough to
/// exercise in debug builds: a flat RoCE group, an oversubscribed
/// two-rack fat-tree, and a two-pod NVLink-island hierarchy whose pod
/// and spine tiers both narrow.
fn sample_topologies() -> Vec<TopologySpec> {
    vec![
        TopologySpec::Flat { nodes: 4 },
        TopologySpec::FatTree {
            racks: 2,
            nodes_per_rack: 2,
            oversubscription: 4.0,
        },
        TopologySpec::NvlinkIslands {
            pods: 2,
            islands_per_pod: 2,
            gpus_per_island: 4,
            pod_oversubscription: 2.0,
            spine_oversubscription: 2.0,
        },
    ]
}

#[test]
fn every_memloc_on_a_generated_cluster_is_routable() {
    for topo in sample_topologies() {
        let spec = topo.build().expect("sample topology builds");
        let cluster = Cluster::new(spec.clone()).expect("sample topology lowers");
        let anchor = MemLoc::Gpu(GpuId { node: 0, gpu: 0 });
        // Every GPU the spec names reaches GPU 0/0 (GPU self-routes are
        // the one defined error).
        for node in 0..spec.nodes {
            for gpu in 0..spec.gpus_per_node {
                let loc = MemLoc::Gpu(GpuId { node, gpu });
                if loc == anchor {
                    assert!(cluster.try_route(loc, anchor).is_err(), "self-route");
                    continue;
                }
                cluster
                    .try_route(loc, anchor)
                    .unwrap_or_else(|e| panic!("{topo:?}: {loc:?} -> anchor: {e}"));
            }
        }
        // Every CPU socket reaches a node-local GPU and the remote CPU
        // mesh; every NVMe drive reaches its local socket.
        for node in 0..spec.nodes {
            for socket in 0..ClusterSpec::SOCKETS_PER_NODE {
                let cpu = MemLoc::Cpu(SocketId { node, socket });
                let local_gpu = MemLoc::Gpu(GpuId { node, gpu: 0 });
                cluster
                    .try_route(cpu, local_gpu)
                    .unwrap_or_else(|e| panic!("{topo:?}: {cpu:?} -> local GPU: {e}"));
                let far_cpu = MemLoc::Cpu(SocketId {
                    node: (node + 1) % spec.nodes,
                    socket,
                });
                cluster
                    .try_route(cpu, far_cpu)
                    .unwrap_or_else(|e| panic!("{topo:?}: {cpu:?} -> {far_cpu:?}: {e}"));
            }
            for drive in 0..spec.nvme_layout.len() {
                let nvme = MemLoc::Nvme(NvmeId { node, drive });
                let cpu = MemLoc::Cpu(SocketId { node, socket: 0 });
                cluster
                    .try_route(cpu, nvme)
                    .unwrap_or_else(|e| panic!("{topo:?}: {cpu:?} -> {nvme:?}: {e}"));
            }
        }
    }
}

#[test]
fn generated_routes_are_symmetric_in_latency_and_hop_count() {
    for topo in sample_topologies() {
        let spec = topo.build().expect("sample topology builds");
        let cluster = Cluster::new(spec.clone()).expect("sample topology lowers");
        let last = spec.nodes - 1;
        let pairs = [
            // Same node, adjacent GPUs (NVLink).
            (
                MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
                MemLoc::Gpu(GpuId { node: 0, gpu: 1 }),
            ),
            // The longest GPU path: first node to last node, crossing
            // every fabric tier the generator built.
            (
                MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
                MemLoc::Gpu(GpuId {
                    node: last,
                    gpu: spec.gpus_per_node - 1,
                }),
            ),
            // Cross-node CPU mesh.
            (
                MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
                MemLoc::Cpu(SocketId {
                    node: last,
                    socket: 1,
                }),
            ),
        ];
        for (a, b) in pairs {
            let fwd = cluster
                .try_route(a, b)
                .unwrap_or_else(|e| panic!("{topo:?}: {a:?} -> {b:?}: {e}"));
            let rev = cluster
                .try_route(b, a)
                .unwrap_or_else(|e| panic!("{topo:?}: {b:?} -> {a:?}: {e}"));
            assert_eq!(
                fwd.latency, rev.latency,
                "{topo:?}: latency asymmetry {a:?} <-> {b:?}"
            );
            assert_eq!(
                fwd.links.len(),
                rev.links.len(),
                "{topo:?}: hop-count asymmetry {a:?} <-> {b:?}"
            );
        }
    }
}

#[test]
fn closed_form_bisection_matches_the_lowered_flow_network() {
    let mut topologies = sample_topologies();
    // Push the asymmetric corners too: a single-rack tree (cut under one
    // ToR), a heavily oversubscribed spine, and the degenerate one-node
    // cluster (no cut at all).
    topologies.push(TopologySpec::FatTree {
        racks: 1,
        nodes_per_rack: 4,
        oversubscription: 2.0,
    });
    topologies.push(TopologySpec::NvlinkIslands {
        pods: 4,
        islands_per_pod: 2,
        gpus_per_island: 2,
        pod_oversubscription: 1.0,
        spine_oversubscription: 8.0,
    });
    topologies.push(TopologySpec::Flat { nodes: 1 });
    for topo in topologies {
        let cluster = Cluster::new(topo.build().expect("topology builds")).expect("lowers");
        assert_eq!(
            topo.bisection_bandwidth(),
            cluster.bisection_bandwidth(),
            "{topo:?}: generator closed form disagrees with the built links"
        );
    }
}

#[test]
fn default_topology_is_the_paper_cluster_spec() {
    // The golden anchor: the default generator output is *equal* to the
    // hand-written paper spec, so every digest computed on one holds on
    // the other by construction.
    assert_eq!(
        TopologySpec::default().build().unwrap(),
        ClusterSpec::default()
    );
    assert_eq!(
        TopologySpec::parse("paper").unwrap(),
        TopologySpec::default()
    );
    for nodes in [1usize, 2, 4] {
        assert_eq!(
            TopologySpec::Flat { nodes }.build().unwrap(),
            ClusterSpec::default().with_nodes(nodes),
            "flat:{nodes} must lower to the paper spec at {nodes} node(s)"
        );
    }
}

#[test]
fn golden_dozen_digests_survive_the_topology_generator() {
    // Rebuild each golden spec's cluster through the generator; the spec
    // structs must match field-for-field across the whole dozen...
    let originals = golden_specs();
    let mut regenerated = golden_specs();
    for spec in &mut regenerated {
        let nodes = spec.cluster.nodes;
        spec.cluster = TopologySpec::Flat { nodes }
            .build()
            .expect("flat topology builds");
    }
    for (orig, regen) in originals.iter().zip(&regenerated) {
        assert_eq!(
            orig.cluster, regen.cluster,
            "generated cluster drifted for {}",
            orig.label
        );
    }
    // ...and a 1- and 2-node spot check must run to identical digests.
    let runner = SweepRunner::new(1);
    for idx in [1usize, 7] {
        let want = runner
            .run_parallel(vec![originals[idx].clone()])
            .expect("golden spec runs");
        let got = runner
            .run_parallel(vec![regenerated[idx].clone()])
            .expect("regenerated spec runs");
        assert_eq!(
            want[0].digest, got[0].digest,
            "digest drifted for {}",
            originals[idx].label
        );
    }
}

#[test]
fn zl004_covers_fabric_links_on_an_oversubscribed_fat_tree() {
    // On a 4:1-oversubscribed two-rack tree, DDP's all-reduce crosses
    // the ToR uplinks; the bandwidth pass walks real routes, so the
    // fabric tier must show up in the link verdicts without any
    // analyzer-side topology knowledge.
    let topo = TopologySpec::FatTree {
        racks: 2,
        nodes_per_rack: 2,
        oversubscription: 4.0,
    };
    let cluster = Cluster::new(topo.build().unwrap()).unwrap();
    let report = analyze_strategy(
        &cluster,
        &Strategy::Ddp,
        &GptConfig::paper_model_with_params(1.4),
        &TrainOptions::for_nodes(4),
        &Calibration::default(),
        LintConfig::new(),
    )
    .expect("DDP plans on the generated tree");
    let fabric: Vec<&str> = report
        .links
        .iter()
        .map(|l| l.name.as_str())
        .filter(|n| n.starts_with("fab"))
        .collect();
    assert!(
        fabric.iter().any(|n| n.starts_with("fab0g")),
        "expected ToR uplink verdicts, got fabric links {fabric:?} among {:?}",
        report
            .links
            .iter()
            .map(|l| l.name.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn planfind_prunes_ddp_at_the_capacity_edge_on_the_paper_testbed() {
    // 5.6 B on the two-node testbed: a full replica no longer fits a
    // single GPU, so the static pass must reject DDP on memory grounds
    // while the sharded plans survive to simulation and win the ranking.
    let report = search_plans(&SearchConfig::new(
        TopologySpec::default(),
        GptConfig::paper_model_with_params(5.6),
    ))
    .expect("search runs on the paper testbed");
    let ddp = report
        .candidates
        .iter()
        .find(|c| c.strategy_name == "PyTorch DDP")
        .expect("DDP is always enumerated");
    match &ddp.outcome {
        CandidateOutcome::Pruned { reason } => {
            assert!(reason.contains("fit"), "DDP pruned for {reason:?}")
        }
        other => panic!("DDP must be statically pruned at 5.6 B, got {other:?}"),
    }
    assert!(
        report.candidates.iter().any(|c| c.strategy_name == "ZeRO-3"
            && matches!(c.outcome, CandidateOutcome::Simulated { .. })),
        "ZeRO-3 must survive to simulation"
    );
    let best = report.best().expect("some plan fits at 5.6 B");
    assert_ne!(best.strategy_name, "PyTorch DDP");
}

#[test]
fn planfind_ranks_ddp_first_and_stays_width_invariant_on_the_paper_testbed() {
    // 1.4 B everywhere-fits: the known-best golden strategy is plain
    // DDP, and fanning the survivor sweeps across workers must not
    // change a byte of the report.
    let config = SearchConfig::new(
        TopologySpec::default(),
        GptConfig::paper_model_with_params(1.4),
    );
    let serial = search_plans(&config).expect("search runs serially");
    assert_eq!(
        serial.best().expect("1.4 B fits").strategy_name,
        "PyTorch DDP"
    );
    let fanned = search_plans(&config.clone().with_workers(2)).expect("search runs fanned");
    assert_eq!(
        serial.digest(),
        fanned.digest(),
        "digest drifted with width"
    );
    assert_eq!(serial.render_text(5), fanned.render_text(5));
}
