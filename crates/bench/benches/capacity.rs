//! Ablation ◆ (DESIGN.md §4.5): cost of the achieved-model-size search.

use zerosim_core::max_model_size;
use zerosim_hw::{Cluster, ClusterSpec};
use zerosim_strategies::{Calibration, Strategy, TrainOptions, ZeroStage};
use zerosim_testkit::bench::Bench;

fn bench_capacity(c: &mut Bench) {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let calib = Calibration::default();
    let mut group = c.benchmark_group("capacity_search");
    for (name, strategy) in [
        ("ddp", Strategy::Ddp),
        ("megatron", Strategy::Megatron { tp: 4, pp: 1 }),
        (
            "zero3",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| max_model_size(&cluster, &strategy, &TrainOptions::single_node(), &calib));
        });
    }
    group.finish();
}

zerosim_testkit::bench_main!(bench_capacity);
