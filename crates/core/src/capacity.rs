//! Achieved-model-size search (Fig. 6 / Fig. 13-a methodology): grow the
//! layer count until the configuration no longer fits, exactly as the
//! paper varies layers "until it reaches the maximum size that particular
//! hardware/software configuration can handle".

use zerosim_hw::Cluster;
use zerosim_model::GptConfig;
use zerosim_strategies::{Calibration, IterCtx, StrategyPlan, TrainOptions};

use crate::error::CoreError;

/// Result of a capacity search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityResult {
    /// Largest fitting layer count.
    pub num_layers: usize,
    /// Parameter count of that model.
    pub params: f64,
}

impl CapacityResult {
    /// Parameters in billions.
    pub fn billions(&self) -> f64 {
        self.params / 1e9
    }
}

/// Finds the largest paper-shaped model `strategy` can fit.
///
/// Returns `None` when even a single layer does not fit. Configurations
/// the strategy rejects ([`zerosim_strategies::StrategyError`]) count as
/// not fitting.
///
/// # Panics
/// Panics on [`CoreError::CapacityDiverged`] — the search fitting past
/// two million layers, which indicates a broken memory model rather than
/// a property of the configuration. Callers that must stay panic-free
/// (e.g. the `planfind` search loop) use [`try_max_model_size`].
pub fn max_model_size(
    cluster: &Cluster,
    strategy: &dyn StrategyPlan,
    opts: &TrainOptions,
    calib: &Calibration,
) -> Option<CapacityResult> {
    match try_max_model_size(cluster, strategy, opts, calib) {
        Ok(cap) => cap,
        Err(e) => panic!("{e}"),
    }
}

/// [`max_model_size`] with the divergence guard surfaced as a typed
/// error instead of a panic.
///
/// # Errors
/// [`CoreError::CapacityDiverged`] when the exponential probe still fits
/// past 2²¹ layers (a memory-model bug, not a configuration property).
pub fn try_max_model_size(
    cluster: &Cluster,
    strategy: &dyn StrategyPlan,
    opts: &TrainOptions,
    calib: &Calibration,
) -> Result<Option<CapacityResult>, CoreError> {
    let fits = |layers: usize| -> bool {
        let model = GptConfig::paper_model(layers);
        let ctx = IterCtx {
            cluster,
            model: &model,
            opts,
            calib,
        };
        strategy
            .plan_memory(&ctx)
            .map(|m| m.fits(cluster))
            .unwrap_or(false)
    };
    if !fits(1) {
        return Ok(None);
    }
    // Exponential probe.
    let mut lo = 1usize;
    let mut hi = 2usize;
    while fits(hi) {
        lo = hi;
        hi *= 2;
        if hi > 1 << 21 {
            return Err(CoreError::CapacityDiverged { probed_layers: hi });
        }
    }
    // Binary search in (lo, hi].
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let model = GptConfig::paper_model(lo);
    Ok(Some(CapacityResult {
        num_layers: lo,
        params: model.num_params(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;
    use zerosim_strategies::{Strategy, ZeroStage};

    fn fixtures() -> (Cluster, TrainOptions, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            TrainOptions::single_node(),
            Calibration::default(),
        )
    }

    #[test]
    fn capacity_ordering_matches_paper_single_node() {
        let (cluster, opts, calib) = fixtures();
        let cap = |s: &Strategy| {
            max_model_size(&cluster, s, &opts, &calib)
                .expect("fits at least one layer")
                .billions()
        };
        let ddp = cap(&Strategy::Ddp);
        let megatron = cap(&Strategy::Megatron { tp: 4, pp: 1 });
        let z1 = cap(&Strategy::Zero {
            stage: ZeroStage::One,
        });
        let z2 = cap(&Strategy::Zero {
            stage: ZeroStage::Two,
        });
        let z3 = cap(&Strategy::Zero {
            stage: ZeroStage::Three,
        });
        // Fig. 6-a ordering: DDP ≪ Z1 < Z2 ≈ Megatron < Z3.
        assert!(ddp < z1, "ddp {ddp} < z1 {z1}");
        assert!(z1 < z2, "z1 {z1} < z2 {z2}");
        assert!(z2 < z3, "z2 {z2} < z3 {z3}");
        assert!(megatron > 3.0 * ddp, "megatron {megatron} ≫ ddp {ddp}");
        assert!(z3 > megatron, "z3 {z3} > megatron {megatron}");
        // Magnitudes within ±25% of the paper's Fig. 6-a.
        assert!((ddp - 1.4).abs() < 0.4, "ddp {ddp} vs paper 1.4");
        assert!(
            (megatron - 5.5).abs() / 5.5 < 0.25,
            "megatron {megatron} vs 5.5"
        );
        assert!((z3 - 6.6).abs() / 6.6 < 0.25, "z3 {z3} vs 6.6");
    }

    #[test]
    fn dual_node_doubles_zero_capacity_but_not_ddp() {
        let (cluster, single, calib) = fixtures();
        let dual = TrainOptions::dual_node();
        let z3_single = max_model_size(
            &cluster,
            &Strategy::Zero {
                stage: ZeroStage::Three,
            },
            &single,
            &calib,
        )
        .unwrap()
        .billions();
        let z3_dual = max_model_size(
            &cluster,
            &Strategy::Zero {
                stage: ZeroStage::Three,
            },
            &dual,
            &calib,
        )
        .unwrap()
        .billions();
        assert!(z3_dual > 1.6 * z3_single, "{z3_dual} vs {z3_single}");
        let ddp_single = max_model_size(&cluster, &Strategy::Ddp, &single, &calib)
            .unwrap()
            .billions();
        let ddp_dual = max_model_size(&cluster, &Strategy::Ddp, &dual, &calib)
            .unwrap()
            .billions();
        assert!(
            (ddp_single - ddp_dual).abs() < 1e-9,
            "DDP capacity is replica-bound"
        );
    }

    #[test]
    fn try_variant_agrees_with_the_panicking_wrapper() {
        let (cluster, opts, calib) = fixtures();
        for s in [
            Strategy::Ddp,
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
        ] {
            assert_eq!(
                try_max_model_size(&cluster, &s, &opts, &calib).unwrap(),
                max_model_size(&cluster, &s, &opts, &calib)
            );
        }
    }

    #[test]
    fn offload_extends_capacity() {
        let (cluster, opts, calib) = fixtures();
        let plain = max_model_size(
            &cluster,
            &Strategy::Zero {
                stage: ZeroStage::Two,
            },
            &opts,
            &calib,
        )
        .unwrap()
        .billions();
        let offload = max_model_size(
            &cluster,
            &Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            &opts,
            &calib,
        )
        .unwrap()
        .billions();
        assert!(offload > 1.5 * plain, "offload {offload} vs plain {plain}");
    }
}
