//! Simulation time.
//!
//! Simulated time is measured in integer nanoseconds wrapped in the
//! [`SimTime`] newtype so that wall-clock types can never be confused with
//! virtual time. Durations reuse the same representation; arithmetic
//! saturates rather than wrapping so that a malformed schedule fails loudly
//! in debug builds instead of silently travelling back in time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point (or span) on the virtual time axis, in nanoseconds.
///
/// ```
/// use zerosim_simkit::SimTime;
/// let t = SimTime::from_ms(1.5) + SimTime::from_us(250.0);
/// assert_eq!(t.as_nanos(), 1_750_000);
/// assert!((t.as_secs() - 0.00175).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from (possibly fractional) microseconds.
    ///
    /// # Panics
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a time from (possibly fractional) milliseconds.
    ///
    /// # Panics
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        match Self::checked_from_secs(secs) {
            Some(t) => t,
            None => panic!("SimTime::from_secs: invalid duration {secs}"),
        }
    }

    /// Fallible variant of [`SimTime::from_secs`]: returns `None` instead of
    /// panicking when `secs` is negative, NaN, or infinite. This is the entry
    /// point for times that originate outside the program text (CLI flags,
    /// sampled schedules) where a panic would blame the wrong layer.
    pub fn checked_from_secs(secs: f64) -> Option<Self> {
        if !(secs.is_finite() && secs >= 0.0) {
            return None;
        }
        // Checked non-negative and finite; simulated horizons stay far
        // below u64::MAX nanoseconds (~585 years).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(SimTime((secs * 1e9).round() as u64))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Time as fractional milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Time as fractional microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Saturating difference: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// True at the origin of time.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(1.0).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_ms(2.0).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_us(3.0).as_nanos(), 3_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(5.0);
        let b = SimTime::from_ms(3.0);
        assert_eq!((a + b).as_millis(), 8.0);
        assert_eq!((a - b).as_millis(), 2.0);
        assert_eq!((a * 2).as_millis(), 10.0);
        assert_eq!((a / 5).as_millis(), 1.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::MAX > SimTime::from_secs(1e9));
        assert_eq!(SimTime::ZERO.max(SimTime::from_ms(1.0)).as_millis(), 1.0);
        assert_eq!(SimTime::MAX.min(SimTime::ZERO), SimTime::ZERO);
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_nanos(1).is_zero());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12.0).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(12.0).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn sum_accumulates() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn checked_from_secs_filters_bad_values() {
        assert_eq!(
            SimTime::checked_from_secs(1.0),
            Some(SimTime::from_secs(1.0))
        );
        assert_eq!(SimTime::checked_from_secs(0.0), Some(SimTime::ZERO));
        assert_eq!(SimTime::checked_from_secs(-1e-9), None);
        assert_eq!(SimTime::checked_from_secs(f64::NAN), None);
        assert_eq!(SimTime::checked_from_secs(f64::INFINITY), None);
    }
}
