//! Locality-aware placement of DP/TP/PP process groups.
//!
//! On the paper's two-node testbed, "intra-node vs inter-node" was the
//! whole placement question. Generated topologies
//! ([`zerosim_hw::TopologySpec`]) have more levels: NVLink inside a node,
//! the leaf switch, then one aggregate fabric tier per oversubscription
//! level. [`ParallelPlacement`] assigns the three parallel axes against
//! those tiers with the classic locality ordering — **TP innermost**
//! (tightest, per-layer blocking all-reduces), **PP next** (activations
//! only cross stage boundaries), **DP outermost** (one gradient
//! all-reduce per step tolerates the widest spans) — and can report, for
//! any cluster, the worst locality distance each axis actually spans.
//! Those spans are what `planfind` prints and what the analyzer's
//! bandwidth pass implicitly prices, because every inter-node route
//! carries the fabric links of the tiers it crosses.

use zerosim_hw::{Cluster, GpuId};

use crate::error::StrategyError;

/// A resolved assignment of `(replica, stage, tp-rank)` coordinates onto
/// a GPU list, TP-innermost in locality-major (node-major) order.
#[derive(Debug, Clone)]
pub struct ParallelPlacement {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline depth.
    pub pp: usize,
    /// Data-parallel replica count.
    pub dp: usize,
    gpus: Vec<GpuId>,
}

impl ParallelPlacement {
    /// Places `tp × pp × dp` coordinates over `gpus` (which must be in
    /// locality-major order — node-major is locality-major because fabric
    /// groups are contiguous node ranges).
    ///
    /// # Errors
    /// [`StrategyError::InvalidLayout`] when `tp` or `pp` is zero or
    /// `tp × pp` does not divide the GPU count.
    pub fn resolve(gpus: Vec<GpuId>, tp: usize, pp: usize) -> Result<Self, StrategyError> {
        if tp < 1 || pp < 1 {
            return Err(StrategyError::layout("tp and pp must be at least 1"));
        }
        let n = gpus.len();
        if !n.is_multiple_of(tp * pp) {
            return Err(StrategyError::layout(format!(
                "tp ({tp}) × pp ({pp}) must divide the GPU count ({n})"
            )));
        }
        Ok(ParallelPlacement {
            tp,
            pp,
            dp: n / (tp * pp),
            gpus,
        })
    }

    /// GPU of `(replica, stage, tp-rank)`: TP ranks are adjacent, stages
    /// are contiguous TP blocks, replicas are contiguous stage chains. TP
    /// groups therefore stay as node-local as the degrees allow, and
    /// pipeline/replica boundaries fall on node (and fabric-group)
    /// boundaries whenever the inner degrees cover whole nodes.
    pub fn gpu(&self, replica: usize, stage: usize, t: usize) -> GpuId {
        self.gpus[replica * self.tp * self.pp + stage * self.tp + t]
    }

    /// The TP group of `(replica, stage)` in rank order.
    pub fn tp_group(&self, replica: usize, stage: usize) -> Vec<GpuId> {
        (0..self.tp).map(|t| self.gpu(replica, stage, t)).collect()
    }

    /// The DP group of `(stage, tp-rank)` in replica order.
    pub fn dp_group(&self, stage: usize, t: usize) -> Vec<GpuId> {
        (0..self.dp).map(|r| self.gpu(r, stage, t)).collect()
    }

    /// Worst locality distance each parallel axis spans on `cluster`
    /// (see [`Cluster::node_distance`]: 0 = intra-node, 1 = leaf switch,
    /// `2 + t` = fabric tier `t`).
    pub fn spans(&self, cluster: &Cluster) -> PlacementSpans {
        let span = |group: &[GpuId]| -> usize {
            let mut worst = 0;
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    worst = worst.max(cluster.node_distance(a.node, b.node));
                }
            }
            worst
        };
        let mut tp_span = 0;
        let mut pp_span = 0;
        let mut dp_span = 0;
        for r in 0..self.dp {
            for s in 0..self.pp {
                tp_span = tp_span.max(span(&self.tp_group(r, s)));
                if s + 1 < self.pp {
                    // Pipeline boundary: distance between adjacent stages'
                    // same-rank GPUs (the p2p activation path).
                    for t in 0..self.tp {
                        let a = self.gpu(r, s, t);
                        let b = self.gpu(r, s + 1, t);
                        pp_span = pp_span.max(cluster.node_distance(a.node, b.node));
                    }
                }
            }
        }
        for s in 0..self.pp {
            for t in 0..self.tp {
                dp_span = dp_span.max(span(&self.dp_group(s, t)));
            }
        }
        PlacementSpans {
            tp: tp_span,
            pp: pp_span,
            dp: dp_span,
        }
    }
}

/// Worst locality distance spanned by each parallel axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementSpans {
    /// Worst distance inside any tensor-parallel group.
    pub tp: usize,
    /// Worst distance across any pipeline-stage boundary.
    pub pp: usize,
    /// Worst distance inside any data-parallel group.
    pub dp: usize,
}

impl PlacementSpans {
    /// Human-readable name of a locality distance on `cluster`.
    pub fn tier_name(cluster: &Cluster, distance: usize) -> String {
        match distance {
            0 => "intra-node".into(),
            1 => "leaf switch".into(),
            d => {
                let tier = d - 2;
                if tier < cluster.spec().fabric.tiers.len() {
                    format!("fabric tier {tier}")
                } else {
                    format!("distance {d}")
                }
            }
        }
    }

    /// Compact `tp@…/pp@…/dp@…` summary for reports.
    pub fn describe(&self, cluster: &Cluster) -> String {
        format!(
            "tp@{} / pp@{} / dp@{}",
            Self::tier_name(cluster, self.tp),
            Self::tier_name(cluster, self.pp),
            Self::tier_name(cluster, self.dp)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::{Cluster, ClusterSpec, TopologySpec};

    fn gpus_of(cluster: &Cluster) -> Vec<GpuId> {
        cluster.all_gpus()
    }

    #[test]
    fn tp_innermost_stays_node_local_when_possible() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let p = ParallelPlacement::resolve(gpus_of(&cluster), 4, 1).unwrap();
        assert_eq!(p.dp, 2);
        let spans = p.spans(&cluster);
        // TP=4 fills a node; DP crosses the switch.
        assert_eq!(spans.tp, 0);
        assert_eq!(spans.dp, 1);
    }

    #[test]
    fn pipeline_boundaries_fall_on_node_boundaries() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let p = ParallelPlacement::resolve(gpus_of(&cluster), 4, 2).unwrap();
        let spans = p.spans(&cluster);
        assert_eq!(spans.tp, 0);
        assert_eq!(spans.pp, 1);
        assert_eq!(spans.dp, 0); // dp=1: no span
    }

    #[test]
    fn spans_see_fabric_tiers_on_generated_topologies() {
        let topo = TopologySpec::FatTree {
            racks: 2,
            nodes_per_rack: 2,
            oversubscription: 2.0,
        };
        let cluster = Cluster::new(topo.build().unwrap()).unwrap();
        // TP=4 per node, PP=2 inside each rack, DP=2 across racks.
        let p = ParallelPlacement::resolve(gpus_of(&cluster), 4, 2).unwrap();
        let spans = p.spans(&cluster);
        assert_eq!(spans.tp, 0);
        assert_eq!(spans.pp, 1, "stages stay inside the rack");
        assert_eq!(spans.dp, 2, "replicas cross the rack uplink");
        assert_eq!(
            spans.describe(&cluster),
            "tp@intra-node / pp@leaf switch / dp@fabric tier 0"
        );
    }

    #[test]
    fn bad_layouts_are_rejected() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        assert!(ParallelPlacement::resolve(gpus_of(&cluster), 3, 1).is_err());
        assert!(ParallelPlacement::resolve(gpus_of(&cluster), 0, 1).is_err());
    }
}
