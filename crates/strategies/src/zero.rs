//! DeepSpeed ZeRO stages 1–3, including the ZeRO-Offload (CPU) and
//! ZeRO-Infinity (NVMe) placements, as one parameterized planner.
//!
//! The three stages partition, respectively: optimizer states, then also
//! gradients, then also parameters (Table I). Offload variants move the
//! optimizer (and for stage 3 optionally the parameters) off the GPU; the
//! iteration plan then includes the host/NVMe staging traffic and the CPU
//! Adam spans the paper observes during the GPUs' idle time (Sec. V).

use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_hw::{GpuId, IoDir, MemLoc, VolumeId};

use crate::builders::{IterCtx, PlanCtx};
use crate::error::StrategyError;
use crate::memory::MemoryPlan;
use crate::plan::{Codec, Dtype, IterPlan, OpId, PhaseStage};

/// ZeRO optimization stage (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ZeroStage {
    /// Partition optimizer states.
    One,
    /// Partition optimizer states + gradients.
    Two,
    /// Partition optimizer states + gradients + parameters.
    Three,
}

impl ZeroStage {
    /// Stage number as reported by DeepSpeed configs.
    pub fn number(self) -> u8 {
        match self {
            ZeroStage::One => 1,
            ZeroStage::Two => 2,
            ZeroStage::Three => 3,
        }
    }

    /// True when gradients are partitioned (stages 2 and 3).
    pub fn partitions_gradients(self) -> bool {
        self >= ZeroStage::Two
    }

    /// True when parameters are partitioned (stage 3).
    pub fn partitions_parameters(self) -> bool {
        self == ZeroStage::Three
    }
}

/// Where a class of model state lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateTier {
    /// GPU HBM.
    Gpu,
    /// Host DRAM (ZeRO-Offload).
    Cpu,
    /// NVMe storage (ZeRO-Infinity).
    Nvme,
}

/// Rank-to-volume mapping for NVMe offload (the UNIX-soft-link trick of
/// Sec. V-E: each rank writes to an assigned disk/RAID0 volume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfinityPlacement {
    /// Volume used by rank `r` is `rank_volumes[r % len]`.
    pub rank_volumes: Vec<VolumeId>,
}

impl InfinityPlacement {
    /// Creates a placement.
    ///
    /// # Panics
    /// Panics on an empty volume list.
    pub fn new(rank_volumes: Vec<VolumeId>) -> Self {
        assert!(!rank_volumes.is_empty(), "placement needs volumes");
        InfinityPlacement { rank_volumes }
    }

    /// The volume rank `r` stages through.
    pub fn volume_for(&self, rank: usize) -> VolumeId {
        self.rank_volumes[rank % self.rank_volumes.len()]
    }
}

/// ZeRO++ communication-efficiency extensions layered on ZeRO-3
/// (arXiv 2306.10209). Each flag is independent; the paper's full ZeRO++
/// enables all three.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ZeroPlusPlusFlags {
    /// qwZ: FP16→INT8 block quantization on parameter all-gathers. The
    /// plan declares a [`Codec`] on the gather and decodes explicitly
    /// before compute consumes the weights.
    pub quantize_weights: bool,
    /// hpZ: a secondary fp16 parameter shard partitioned *within* each
    /// node, so the backward re-gather is served over NVLink instead of
    /// the inter-node wire. Pure placement — no codec.
    pub hierarchical_params: bool,
    /// qgZ: FP16→INT4 block quantization on the gradient reduce-scatter,
    /// decoded per rank before the optimizer reads the shard.
    pub quantize_gradients: bool,
}

impl ZeroPlusPlusFlags {
    /// True when any extension is enabled.
    pub fn any(self) -> bool {
        self.quantize_weights || self.hierarchical_params || self.quantize_gradients
    }
}

/// qwZ weight quantization block size in elements (one scale per block).
const QWZ_BLOCK: usize = 2048;
/// qgZ gradient quantization block size in elements.
const QGZ_BLOCK: usize = 512;

/// Fully-resolved ZeRO variant: stage plus state placement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ZeroVariant {
    pub stage: ZeroStage,
    pub optimizer_tier: StateTier,
    pub params_tier: StateTier,
    pub placement: Option<InfinityPlacement>,
    pub zeropp: ZeroPlusPlusFlags,
}

impl ZeroVariant {
    /// Checks the placement against Table I; every violation the seed
    /// implementation asserted on is now a typed [`StrategyError`].
    pub(crate) fn validate(&self) -> Result<(), StrategyError> {
        if self.params_tier != StateTier::Gpu && self.stage != ZeroStage::Three {
            return Err(StrategyError::placement(format!(
                "parameter offload requires ZeRO-3 (Table I), got stage {}",
                self.stage.number()
            )));
        }
        if self.optimizer_tier == StateTier::Nvme && self.stage != ZeroStage::Three {
            return Err(StrategyError::placement(format!(
                "NVMe optimizer offload requires ZeRO-3 (Table I), got stage {}",
                self.stage.number()
            )));
        }
        let needs_placement =
            self.optimizer_tier == StateTier::Nvme || self.params_tier == StateTier::Nvme;
        if needs_placement != self.placement.is_some() {
            return Err(StrategyError::placement(
                "NVMe tiers require a volume placement (and only they do)",
            ));
        }
        if self.zeropp.any() {
            if self.stage != ZeroStage::Three {
                return Err(StrategyError::placement(format!(
                    "ZeRO++ extends ZeRO-3, got stage {}",
                    self.stage.number()
                )));
            }
            if self.optimizer_tier != StateTier::Gpu || self.params_tier != StateTier::Gpu {
                return Err(StrategyError::placement(
                    "ZeRO++ variants keep optimizer and parameters on GPU",
                ));
            }
        }
        Ok(())
    }
}

/// NVMe traffic per parameter per optimizer step, each direction
/// (momentum + variance read and written; the FP32 master copy stays in
/// host DRAM).
const NVME_RW_BYTES_PER_PARAM: f64 = 8.0;

pub(crate) fn memory_plan(ctx: &IterCtx<'_>, v: &ZeroVariant) -> Result<MemoryPlan, StrategyError> {
    v.validate()?;
    let p = ctx.model.num_params();
    let n = ctx.opts.num_gpus(ctx.cluster) as f64;
    let m = ctx.model;

    let params_gpu = if v.params_tier == StateTier::Gpu {
        if v.stage.partitions_parameters() {
            let primary = 2.0 * p / n;
            if v.zeropp.hierarchical_params {
                // hpZ trades HBM for NVLink-local re-gathers: a secondary
                // fp16 shard partitioned within the node rides next to
                // the global primary shard.
                primary + 2.0 * p / ctx.cluster.spec().gpus_per_node as f64
            } else {
                primary
            }
        } else {
            2.0 * p
        }
    } else {
        0.0
    };
    let grads_gpu = if v.stage.partitions_gradients() {
        2.0 * p / n
    } else {
        2.0 * p
    };
    let optimizer_gpu = if v.optimizer_tier == StateTier::Gpu {
        12.0 * p / n
    } else {
        0.0
    };
    let act_full = ctx.calib.act_coeff_ckpt
        * m.num_layers as f64
        * m.seq_len as f64
        * ctx.opts.per_gpu_batch as f64
        * m.hidden_size as f64
        * 2.0;
    // Offload variants also checkpoint activations to host memory
    // (DeepSpeed `cpu_checkpointing`), keeping only a working set on GPU.
    let offloaded = v.optimizer_tier != StateTier::Gpu;
    let act = if offloaded { 0.15 * act_full } else { act_full };
    let act_cpu_per_node = if offloaded {
        0.85 * act_full * ctx.cluster.spec().gpus_per_node as f64
    } else {
        0.0
    };
    let buffers = if v.stage == ZeroStage::Three {
        ctx.calib.zero3_buffer_bytes
    } else {
        ctx.calib.zero12_buffer_bytes
    };
    let per_gpu =
        params_gpu + grads_gpu + optimizer_gpu + act + ctx.calib.gpu_fixed_bytes + buffers;

    let nodes = ctx.opts.nodes as f64;
    let mut cpu_per_node = ctx.calib.host_base_bytes;
    match v.optimizer_tier {
        StateTier::Gpu => {}
        StateTier::Cpu => cpu_per_node += ctx.calib.offload_cpu_bytes_per_param * p / nodes,
        StateTier::Nvme => cpu_per_node += ctx.calib.infinity_cpu_bytes_per_param * p / nodes,
    }
    if v.params_tier == StateTier::Cpu {
        cpu_per_node += 6.0 * p / nodes; // fp16 copy + pinned staging
    }
    cpu_per_node += act_cpu_per_node;
    let mut nvme = 0.0;
    if v.optimizer_tier == StateTier::Nvme {
        nvme += ctx.calib.infinity_nvme_bytes_per_param * p;
    }
    if v.params_tier == StateTier::Nvme {
        nvme += 2.0 * p;
    }

    Ok(MemoryPlan {
        per_gpu_bytes: per_gpu,
        total_gpu_bytes: per_gpu * n,
        per_node_cpu_bytes: cpu_per_node,
        total_cpu_bytes: cpu_per_node * nodes,
        nvme_bytes: nvme,
        gpu_breakdown: vec![
            ("params_fp16".into(), params_gpu),
            ("grads_fp16".into(), grads_gpu),
            ("optimizer_fp32".into(), optimizer_gpu),
            ("activations".into(), act),
            ("buffers".into(), buffers),
            ("fixed".into(), ctx.calib.gpu_fixed_bytes),
        ],
    })
}

/// Describes one ZeRO training iteration as an [`IterPlan`].
// Micro-step indices are tiny (grad-accum counts): fit u32.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn plan_iteration(
    ctx: &IterCtx<'_>,
    v: &ZeroVariant,
) -> Result<IterPlan, StrategyError> {
    v.validate()?;
    // CPU offload's automatic placement is not NUMA-aware (Sec. V-A3);
    // the NVMe placements of Sec. V-E were hand-tuned by the authors, so
    // Infinity runs stage through each rank's natural socket.
    let rank_socket = |rank: usize, g: zerosim_hw::GpuId| {
        if v.optimizer_tier == StateTier::Nvme {
            ctx.cluster.gpu_socket(g)
        } else {
            ctx.offload_socket(rank, g)
        }
    };
    let gpus = ctx.opts.gpus(ctx.cluster);
    let n = gpus.len();
    let group = CommGroup::new(gpus.clone());
    let tokens_gpu = (ctx.opts.per_gpu_batch * ctx.model.seq_len) as f64;
    let layers = ctx.model.num_layers;
    let bucket = ctx.comm_bucket_layers();
    let params = ctx.model.num_params();
    let shard = params / n as f64;

    let mut p = PlanCtx::new(*ctx);
    let prologue = p.prologue();
    let mut prev: Vec<OpId> = gpus.iter().map(|g| p.input_h2d(*g, &[prologue])).collect();

    let fwd_flops = ctx.layer_fwd_flops(tokens_gpu, 1);
    // Communication-stream serialization with a prefetch depth of two for
    // ZeRO-3's parameter gathers (DeepSpeed keeps the next layer's gather
    // in flight while the current one completes).
    let mut comm_chain: Vec<OpId> = Vec::new();
    let ds_cap = ctx.calib.ds_internode_cap;
    // ZeRO-3's layer-group gathers use smaller buckets still.
    let gather_cap = if v.stage.partitions_parameters() {
        ctx.calib.zero3_internode_cap
    } else {
        ds_cap
    };

    // hpZ: the backward re-gather is served from the secondary intra-node
    // shard, one all-gather per node over NVLink instead of the global
    // inter-node group. Groups are node-major like the rank list.
    let node_groups: Vec<CommGroup> = {
        let mut by_node: Vec<(usize, Vec<GpuId>)> = Vec::new();
        for g in &gpus {
            match by_node.iter_mut().find(|(node, _)| *node == g.node) {
                Some((_, members)) => members.push(*g),
                None => by_node.push((g.node, vec![*g])),
            }
        }
        by_node
            .into_iter()
            .map(|(_, members)| CommGroup::new(members))
            .collect()
    };
    let node_group_of: Vec<usize> = gpus
        .iter()
        .map(|g| {
            node_groups
                .iter()
                .position(|ng| ng.ranks().contains(g))
                .expect("every rank belongs to a node group")
        })
        .collect();
    // Explicit decode span after a quantized collective: a fused dequant
    // kernel, priced as one kernel launch.
    let dequant_s = ctx.calib.kernel_overhead_s;

    // Helper to fetch a bucket's parameters before use under ZeRO-3.
    // `secondary` marks the backward re-gather, which hpZ serves from the
    // intra-node shard.
    let gather_bucket = |p: &mut PlanCtx<'_>,
                         prev: &mut Vec<OpId>,
                         comm_chain: &mut Vec<OpId>,
                         bucket_params: f64,
                         secondary: bool| {
        let bytes = 2.0 * bucket_params;
        // Prefetch depth 2: this gather waits for the gather two back.
        let gate = if comm_chain.len() >= 2 {
            Some(comm_chain[comm_chain.len() - 2])
        } else {
            None
        };
        let mut fetch_done: Vec<OpId> = Vec::new();
        if v.params_tier != StateTier::Gpu {
            // Each rank pulls its shard from CPU (and NVMe first, if there).
            for (rank, g) in gpus.iter().enumerate() {
                let socket = rank_socket(rank, *g);
                let track = ctx.gpu_track(*g);
                let mut stage_deps: Vec<OpId> = vec![prologue];
                stage_deps.extend(gate);
                let mut last = p.barrier(&stage_deps);
                if v.params_tier == StateTier::Nvme {
                    let vol = v
                        .placement
                        .as_ref()
                        .expect("validated placement")
                        .volume_for(rank);
                    last = p.volume_io(
                        vol,
                        socket,
                        IoDir::Read,
                        bytes / n as f64,
                        "nvme_read",
                        track,
                        &[last],
                    );
                }
                let h2d = p.transfer(
                    MemLoc::Cpu(socket),
                    MemLoc::Gpu(*g),
                    bytes / n as f64,
                    "h2d",
                    track,
                    &[last],
                );
                fetch_done.push(h2d);
            }
        }
        let mut deps: Vec<OpId> = Vec::new();
        deps.extend(gate);
        deps.extend(fetch_done);
        if deps.is_empty() {
            deps.push(prologue);
        }
        if secondary && v.zeropp.hierarchical_params {
            // hpZ: per-node all-gathers from the secondary shard; the
            // inter-node wire carries nothing for this bucket.
            let hs: Vec<OpId> = node_groups
                .iter()
                .map(|ng| {
                    p.collective(
                        CollectiveKind::AllGather,
                        ng.clone(),
                        bytes,
                        gather_cap,
                        &deps,
                    )
                })
                .collect();
            let join = p.barrier(&hs);
            comm_chain.push(join);
            for (i, t) in prev.iter_mut().enumerate() {
                *t = p.barrier(&[*t, hs[node_group_of[i]]]);
            }
        } else if v.zeropp.quantize_weights {
            // qwZ: the gather moves INT8 blocks; each rank decodes before
            // compute consumes the weights.
            let h = p.collective_with_codec(
                CollectiveKind::AllGather,
                group.clone(),
                bytes,
                gather_cap,
                Codec::quantize(Dtype::Fp16, Dtype::Int8, QWZ_BLOCK),
                &deps,
            );
            comm_chain.push(h);
            for (i, t) in prev.iter_mut().enumerate() {
                *t = p.fixed_compute(gpus[i], dequant_s, "dequant", &[*t, h]);
            }
        } else {
            let h = p.collective(
                CollectiveKind::AllGather,
                group.clone(),
                bytes,
                gather_cap,
                &deps,
            );
            comm_chain.push(h);
            for t in prev.iter_mut() {
                // Compute on every rank now also depends on the gather.
                *t = p.barrier(&[*t, h]);
            }
        }
    };

    // ---- Micro-steps (gradient accumulation) ----
    // ZeRO-3 reduce-scatters every micro-step (partitioned gradients
    // accumulate in the shards); ZeRO-1/2 and the embedding sync only at
    // the accumulation boundary.
    let mut grad_d2h: Vec<Vec<OpId>> = vec![Vec::new(); n];
    // Every gradient collective: the optimizer step must wait for all of
    // them (each accumulates into the shards it updates), not just the
    // final one — intermediate reductions overlap with backward compute
    // but still gate the weight update.
    let mut grad_comms: Vec<OpId> = Vec::new();
    for micro in 0..ctx.opts.grad_accum {
        let boundary = micro + 1 == ctx.opts.grad_accum;
        let reduce_now = boundary || v.stage.partitions_parameters();
        // ---- Forward ----
        p.set_phase(PhaseStage::Forward, micro as u32);
        let mut remaining = layers;
        while remaining > 0 {
            let chunk = bucket.min(remaining);
            remaining -= chunk;
            let bucket_params = ctx.model.layer_params() * chunk as f64;
            if v.stage.partitions_parameters() {
                gather_bucket(&mut p, &mut prev, &mut comm_chain, bucket_params, false);
            }
            for _l in 0..chunk {
                for (i, g) in gpus.iter().enumerate() {
                    prev[i] = p.layer_compute(*g, fwd_flops, "gemm", &[prev[i]]);
                    if v.stage.partitions_parameters() {
                        prev[i] = p.fixed_compute(
                            *g,
                            ctx.calib.zero3_hook_s_per_layer,
                            "transform",
                            &[prev[i]],
                        );
                    }
                }
            }
        }
        let vocab_flops = ctx.embedding_fwd_flops(tokens_gpu, 1);
        for (i, g) in gpus.iter().enumerate() {
            prev[i] = p.layer_compute(*g, vocab_flops, "gemm", &[prev[i]]);
        }

        // ---- Backward ----
        p.set_phase(PhaseStage::Backward, micro as u32);
        let mut remaining = layers;
        while remaining > 0 {
            let chunk = bucket.min(remaining);
            remaining -= chunk;
            let bucket_params = ctx.model.layer_params() * chunk as f64;
            if v.stage.partitions_parameters() {
                gather_bucket(&mut p, &mut prev, &mut comm_chain, bucket_params, true);
            }
            for _l in 0..chunk {
                for (i, g) in gpus.iter().enumerate() {
                    prev[i] = p.layer_compute(*g, 2.0 * fwd_flops, "gemm", &[prev[i]]);
                    if v.stage.partitions_parameters() {
                        prev[i] = p.fixed_compute(
                            *g,
                            ctx.calib.zero3_hook_s_per_layer,
                            "transform",
                            &[prev[i]],
                        );
                    }
                }
            }
            if !reduce_now {
                continue;
            }
            // Gradient reduction, overlapped with the remaining backward
            // compute (ZeRO-2/3 reduce-scatter; ZeRO-1 all-reduce).
            let grad_bytes = 2.0 * bucket_params;
            let kind = if v.stage.partitions_gradients() {
                CollectiveKind::ReduceScatter
            } else {
                CollectiveKind::AllReduce
            };
            let mut deps: Vec<OpId> = prev.clone();
            deps.extend(comm_chain.last().copied());
            let h = if v.zeropp.quantize_gradients {
                // qgZ: INT4 blocks on the wire; each rank decodes its
                // received shard before the optimizer reads it.
                p.collective_with_codec(
                    kind,
                    group.clone(),
                    grad_bytes,
                    ds_cap,
                    Codec::quantize(Dtype::Fp16, Dtype::Int4, QGZ_BLOCK),
                    &deps,
                )
            } else {
                p.collective(kind, group.clone(), grad_bytes, ds_cap, &deps)
            };
            comm_chain.push(h);
            if v.zeropp.quantize_gradients {
                let dq: Vec<OpId> = gpus
                    .iter()
                    .map(|g| p.fixed_compute(*g, dequant_s, "dequant", &[h]))
                    .collect();
                grad_comms.push(p.barrier(&dq));
            } else {
                grad_comms.push(h);
            }
            if boundary && v.optimizer_tier != StateTier::Gpu {
                for (rank, g) in gpus.iter().enumerate() {
                    let socket = rank_socket(rank, *g);
                    let track = ctx.gpu_track(*g);
                    let t = p.transfer(
                        MemLoc::Gpu(*g),
                        MemLoc::Cpu(socket),
                        grad_bytes / n as f64,
                        "d2h",
                        track,
                        &[h],
                    );
                    grad_d2h[rank].push(t);
                }
            }
        }
    }
    // Embedding gradients.
    let emb_bytes = 2.0 * ctx.model.embedding_params();
    let kind = if v.stage.partitions_gradients() {
        CollectiveKind::ReduceScatter
    } else {
        CollectiveKind::AllReduce
    };
    let mut deps: Vec<OpId> = prev.clone();
    deps.extend(comm_chain.last().copied());
    let h = if v.zeropp.quantize_gradients {
        p.collective_with_codec(
            kind,
            group.clone(),
            emb_bytes,
            ds_cap,
            Codec::quantize(Dtype::Fp16, Dtype::Int4, QGZ_BLOCK),
            &deps,
        )
    } else {
        p.collective(kind, group.clone(), emb_bytes, ds_cap, &deps)
    };
    comm_chain.push(h);
    if v.zeropp.quantize_gradients {
        let dq: Vec<OpId> = gpus
            .iter()
            .map(|g| p.fixed_compute(*g, dequant_s, "dequant", &[h]))
            .collect();
        grad_comms.push(p.barrier(&dq));
    } else {
        grad_comms.push(h);
    }
    if v.optimizer_tier != StateTier::Gpu {
        for (rank, g) in gpus.iter().enumerate() {
            let socket = rank_socket(rank, *g);
            let track = ctx.gpu_track(*g);
            let t = p.transfer(
                MemLoc::Gpu(*g),
                MemLoc::Cpu(socket),
                emb_bytes / n as f64,
                "d2h",
                track,
                &[h],
            );
            grad_d2h[rank].push(t);
        }
    }

    // ---- Optimizer ----
    p.set_phase(
        PhaseStage::Step,
        ctx.opts.grad_accum.saturating_sub(1) as u32,
    );
    let last_comm = *comm_chain.last().expect("at least one gradient collective");
    let mut post_opt: Vec<OpId> = Vec::with_capacity(n);
    for (rank, g) in gpus.iter().enumerate() {
        let track = ctx.gpu_track(*g);
        let done = match v.optimizer_tier {
            StateTier::Gpu => {
                let mut deps = vec![prev[rank]];
                deps.extend(grad_comms.iter().copied());
                p.gpu_adam(*g, shard, &deps)
            }
            StateTier::Cpu => {
                let socket = rank_socket(rank, *g);
                let mut deps = grad_d2h[rank].clone();
                deps.extend(grad_comms.iter().copied());
                let adam = p.cpu_adam(socket, shard, &deps);
                if v.params_tier == StateTier::Gpu {
                    p.transfer(
                        MemLoc::Cpu(socket),
                        MemLoc::Gpu(*g),
                        2.0 * shard,
                        "h2d",
                        track,
                        &[adam],
                    )
                } else {
                    adam
                }
            }
            StateTier::Nvme => {
                let socket = rank_socket(rank, *g);
                let vol = v
                    .placement
                    .as_ref()
                    .expect("validated placement")
                    .volume_for(rank);
                let mut read_deps = grad_d2h[rank].clone();
                read_deps.extend(grad_comms.iter().copied());
                let read = p.volume_io(
                    vol,
                    socket,
                    IoDir::Read,
                    NVME_RW_BYTES_PER_PARAM * shard,
                    "nvme_read",
                    track,
                    &read_deps,
                );
                let adam = p.cpu_adam(socket, shard, &[read]);
                let write = p.volume_io(
                    vol,
                    socket,
                    IoDir::Write,
                    NVME_RW_BYTES_PER_PARAM * shard,
                    "nvme_write",
                    track,
                    &[adam],
                );
                if v.params_tier == StateTier::Nvme {
                    p.volume_io(
                        vol,
                        socket,
                        IoDir::Write,
                        2.0 * shard,
                        "nvme_write",
                        track,
                        &[adam],
                    )
                } else if v.params_tier == StateTier::Gpu {
                    let h2d = p.transfer(
                        MemLoc::Cpu(socket),
                        MemLoc::Gpu(*g),
                        2.0 * shard,
                        "h2d",
                        track,
                        &[adam],
                    );
                    p.barrier(&[h2d, write])
                } else {
                    write
                }
            }
        };
        post_opt.push(done);
    }

    // ---- Post-step parameter all-gather (stages 1 and 2) ----
    if !v.stage.partitions_parameters() {
        let mut deps = post_opt.clone();
        deps.push(last_comm);
        p.collective(
            CollectiveKind::AllGather,
            group,
            2.0 * params,
            ds_cap,
            &deps,
        );
    }

    Ok(p.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;
    use crate::lower::lower;
    use crate::options::TrainOptions;
    use zerosim_hw::{Cluster, ClusterSpec, NvmeId};
    use zerosim_model::GptConfig;
    use zerosim_simkit::{Dag, DagEngine, SimTime};

    fn plain(stage: ZeroStage) -> ZeroVariant {
        ZeroVariant {
            stage,
            optimizer_tier: StateTier::Gpu,
            params_tier: StateTier::Gpu,
            placement: None,
            zeropp: ZeroPlusPlusFlags::default(),
        }
    }

    fn fixtures() -> (Cluster, GptConfig, TrainOptions, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            GptConfig::default(),
            TrainOptions::single_node(),
            Calibration::default(),
        )
    }

    fn build(ctx: &IterCtx<'_>, v: &ZeroVariant) -> Dag {
        let plan = plan_iteration(ctx, v).unwrap();
        assert!(plan.validate(ctx.cluster).is_ok());
        let mut lowered = lower(&plan, ctx.cluster, ctx.calib).unwrap();
        lowered.stamp(ctx.opts.jitter_seed);
        lowered.into_dag()
    }

    fn run(cluster: &mut Cluster, dag: &Dag) -> f64 {
        let mut eng = DagEngine::new(cluster.resource_slots());
        eng.run(cluster.net_mut(), dag, SimTime::ZERO, None)
            .unwrap()
            .makespan()
            .as_secs()
    }

    #[test]
    fn stage_ordering_and_flags() {
        assert!(ZeroStage::Two.partitions_gradients());
        assert!(!ZeroStage::One.partitions_gradients());
        assert!(ZeroStage::Three.partitions_parameters());
        assert_eq!(ZeroStage::Three.number(), 3);
    }

    #[test]
    fn memory_decreases_with_stage() {
        let (cluster, model, opts, calib) = fixtures();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let m1 = memory_plan(&ctx, &plain(ZeroStage::One))
            .unwrap()
            .per_gpu_bytes;
        let m2 = memory_plan(&ctx, &plain(ZeroStage::Two))
            .unwrap()
            .per_gpu_bytes;
        let m3 = memory_plan(&ctx, &plain(ZeroStage::Three))
            .unwrap()
            .per_gpu_bytes;
        assert!(m1 > m2, "ZeRO-2 must use less GPU memory than ZeRO-1");
        assert!(m2 > m3, "ZeRO-3 must use less GPU memory than ZeRO-2");
    }

    #[test]
    fn cpu_offload_moves_optimizer_off_gpu() {
        let (cluster, model, opts, calib) = fixtures();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let gpu_variant = plain(ZeroStage::Two);
        let mut cpu_variant = plain(ZeroStage::Two);
        cpu_variant.optimizer_tier = StateTier::Cpu;
        let pg = memory_plan(&ctx, &gpu_variant).unwrap();
        let pc = memory_plan(&ctx, &cpu_variant).unwrap();
        assert!(pc.per_gpu_bytes < pg.per_gpu_bytes);
        assert!(pc.per_node_cpu_bytes > pg.per_node_cpu_bytes);
    }

    #[test]
    fn all_plain_stages_execute() {
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let (mut cluster, model, opts, calib) = fixtures();
            let ctx = IterCtx {
                cluster: &cluster,
                model: &model,
                opts: &opts,
                calib: &calib,
            };
            let dag = build(&ctx, &plain(stage));
            let secs = run(&mut cluster, &dag);
            assert!(secs > 0.1 && secs < 2.0, "{stage:?} took {secs}s");
        }
    }

    #[test]
    fn cpu_offload_is_slower_than_gpu_optimizer() {
        let (mut cluster, model, opts, calib) = fixtures();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let base_dag = build(&ctx, &plain(ZeroStage::Two));
        let base = run(&mut cluster, &base_dag);
        let mut v = plain(ZeroStage::Two);
        v.optimizer_tier = StateTier::Cpu;
        let (mut cluster2, ..) = fixtures();
        let ctx2 = IterCtx {
            cluster: &cluster2,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let dag = build(&ctx2, &v);
        let off = run(&mut cluster2, &dag);
        assert!(
            off > 1.5 * base,
            "CPU offload {off}s should be well above GPU {base}s"
        );
    }

    #[test]
    fn nvme_offload_is_slowest() {
        let (mut cluster, model, opts, calib) = fixtures();
        let d0 = NvmeId { node: 0, drive: 0 };
        let d1 = NvmeId { node: 0, drive: 1 };
        let vol = cluster.create_volume(vec![d0, d1]);
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let v = ZeroVariant {
            stage: ZeroStage::Three,
            optimizer_tier: StateTier::Nvme,
            params_tier: StateTier::Gpu,
            placement: Some(InfinityPlacement::new(vec![vol])),
            zeropp: ZeroPlusPlusFlags::default(),
        };
        let dag = build(&ctx, &v);
        let nvme_secs = run(&mut cluster, &dag);

        let (mut c2, ..) = fixtures();
        let ctx2 = IterCtx {
            cluster: &c2,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let base_dag = build(&ctx2, &plain(ZeroStage::Three));
        let base = run(&mut c2, &base_dag);
        assert!(
            nvme_secs > 3.0 * base,
            "NVMe {nvme_secs}s must dwarf plain ZeRO-3 {base}s"
        );
    }

    fn zeropp(qw: bool, hp: bool, qg: bool) -> ZeroVariant {
        let mut v = plain(ZeroStage::Three);
        v.zeropp = ZeroPlusPlusFlags {
            quantize_weights: qw,
            hierarchical_params: hp,
            quantize_gradients: qg,
        };
        v
    }

    #[test]
    fn all_zeropp_variants_execute_dual_node() {
        for (qw, hp, qg) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
            let model = GptConfig::default();
            let opts = TrainOptions::dual_node();
            let calib = Calibration::default();
            let ctx = IterCtx {
                cluster: &cluster,
                model: &model,
                opts: &opts,
                calib: &calib,
            };
            let dag = build(&ctx, &zeropp(qw, hp, qg));
            let secs = run(&mut cluster, &dag);
            assert!(
                secs > 0.05 && secs < 5.0,
                "qw={qw} hp={hp} qg={qg} took {secs}s"
            );
        }
    }

    #[test]
    fn quantized_variants_cut_wire_bytes() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::dual_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let base = plan_iteration(&ctx, &plain(ZeroStage::Three))
            .unwrap()
            .collective_wire_bytes();
        let qwz = plan_iteration(&ctx, &zeropp(true, false, false))
            .unwrap()
            .collective_wire_bytes();
        let qgz = plan_iteration(&ctx, &zeropp(false, false, true))
            .unwrap()
            .collective_wire_bytes();
        assert!(
            qwz < base,
            "qwZ wire bytes {qwz} must be below ZeRO-3 {base}"
        );
        assert!(
            qgz < base,
            "qgZ wire bytes {qgz} must be below ZeRO-3 {base}"
        );
    }

    #[test]
    fn hpz_trades_memory_for_local_gathers() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::default();
        let opts = TrainOptions::dual_node();
        let calib = Calibration::default();
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let base = memory_plan(&ctx, &plain(ZeroStage::Three))
            .unwrap()
            .per_gpu_bytes;
        let hpz = memory_plan(&ctx, &zeropp(false, true, false))
            .unwrap()
            .per_gpu_bytes;
        assert!(
            hpz > base,
            "hpZ secondary shard must cost GPU memory ({hpz} vs {base})"
        );
    }

    #[test]
    fn zeropp_requires_stage_three() {
        let mut v = zeropp(true, false, false);
        v.stage = ZeroStage::Two;
        let e = v.validate().unwrap_err();
        assert!(e.to_string().contains("ZeRO++ extends ZeRO-3"), "{e}");
    }

    #[test]
    fn zeropp_requires_gpu_tiers() {
        let mut v = zeropp(false, false, true);
        v.optimizer_tier = StateTier::Cpu;
        let e = v.validate().unwrap_err();
        assert!(e.to_string().contains("on GPU"), "{e}");
    }

    #[test]
    fn nvme_on_stage2_rejected() {
        let v = ZeroVariant {
            stage: ZeroStage::Two,
            optimizer_tier: StateTier::Nvme,
            params_tier: StateTier::Gpu,
            placement: None,
            zeropp: ZeroPlusPlusFlags::default(),
        };
        let e = v.validate().unwrap_err();
        assert!(e.to_string().contains("requires ZeRO-3"));
    }

    #[test]
    fn nvme_without_placement_rejected() {
        let v = ZeroVariant {
            stage: ZeroStage::Three,
            optimizer_tier: StateTier::Nvme,
            params_tier: StateTier::Gpu,
            placement: None,
            zeropp: ZeroPlusPlusFlags::default(),
        };
        let e = v.validate().unwrap_err();
        assert!(e.to_string().contains("require a volume placement"));
    }
}
