//! The simulated cluster: builds every link of Fig. 2 into a
//! [`FlowNet`] and answers routing queries between memory locations.

use std::collections::HashMap;

use zerosim_simkit::{FlowNet, LinkId, ResourceId, SimTime, TokenBucket};

use crate::error::HwError;
use crate::ids::{GpuId, LinkClass, NicId, NvmeId, SerdesSet, SocketId, VolumeId};
use crate::route::{MemLoc, Route};
use crate::spec::ClusterSpec;

/// Direction of an NVMe access from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Host → drive.
    Write,
    /// Drive → host.
    Read,
}

/// A registered NVMe volume (single drive or mdadm-style RAID0 stripe set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmeVolume {
    /// Member drives; I/O is striped evenly across them.
    pub members: Vec<NvmeId>,
}

/// The simulated cluster.
///
/// Owns the [`FlowNet`] containing every physical and virtual link, the
/// per-class link registries used for Table IV-style reporting, and the
/// routing logic (including the I/O-die SerDes-pair contention model).
///
/// ```
/// use zerosim_hw::{Cluster, ClusterSpec, MemLoc, GpuId};
///
/// # fn main() -> Result<(), String> {
/// let cluster = Cluster::new(ClusterSpec::default())?;
/// let r = cluster.route(
///     MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
///     MemLoc::Gpu(GpuId { node: 0, gpu: 3 }),
/// );
/// assert_eq!(r.hops(), 1); // direct NVLink
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    net: FlowNet,
    /// `[node][socket]` half-duplex DRAM links.
    dram: Vec<Vec<LinkId>>,
    /// `[node][dir]`: dir 0 = socket0→socket1.
    xgmi: Vec<[LinkId; 2]>,
    /// `[node][gpu]` GPU→CPU direction.
    pcie_gpu_up: Vec<Vec<LinkId>>,
    /// `[node][gpu]` CPU→GPU direction.
    pcie_gpu_down: Vec<Vec<LinkId>>,
    /// `[node][socket]` CPU→NIC direction.
    pcie_nic_tx: Vec<Vec<LinkId>>,
    /// `[node][socket]` NIC→CPU direction.
    pcie_nic_rx: Vec<Vec<LinkId>>,
    /// `[node][drive]` host→drive wire.
    pcie_nvme_w: Vec<Vec<LinkId>>,
    /// `[node][drive]` drive→host wire.
    pcie_nvme_r: Vec<Vec<LinkId>>,
    /// `[node][drive]` device write service (token bucket).
    nvme_dev_w: Vec<Vec<LinkId>>,
    /// `[node][drive]` device read service (token bucket).
    nvme_dev_r: Vec<Vec<LinkId>>,
    /// `(node, src_gpu, dst_gpu)` → directed NVLink.
    nvlink: HashMap<(usize, usize, usize), LinkId>,
    /// `[node][nic]` NIC→switch.
    roce_tx: Vec<Vec<LinkId>>,
    /// `[node][nic]` switch→NIC.
    roce_rx: Vec<Vec<LinkId>>,
    /// SerDes-pair virtual links: `(node, socket, min(a,b), max(a,b))`.
    pairs: HashMap<(usize, usize, SerdesSet, SerdesSet), LinkId>,
    /// `[tier][group]` aggregated fabric uplinks (group → spine).
    fabric_up: Vec<Vec<LinkId>>,
    /// `[tier][group]` aggregated fabric downlinks (spine → group).
    fabric_down: Vec<Vec<LinkId>>,
    /// Per-(node, class) link groups for reporting.
    class_links: HashMap<(usize, LinkClass), Vec<LinkId>>,
    volumes: Vec<NvmeVolume>,
    /// Lazily rendered [`Cluster::describe`] text. The topology is fixed at
    /// construction, so the dump is rendered once and borrowed thereafter
    /// (fleet ensembles call `describe` per sample).
    describe_cache: std::sync::OnceLock<String>,
}

impl Cluster {
    /// Builds the cluster described by `spec`.
    ///
    /// # Errors
    /// Returns the validation error string if `spec` is inconsistent.
    pub fn new(spec: ClusterSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut net = FlowNet::new();
        let nodes = spec.nodes;
        let gpn = spec.gpus_per_node;
        let spn = ClusterSpec::SOCKETS_PER_NODE;

        let mut class_links: HashMap<(usize, LinkClass), Vec<LinkId>> = HashMap::new();
        let reg = |map: &mut HashMap<(usize, LinkClass), Vec<LinkId>>,
                   node: usize,
                   class: LinkClass,
                   id: LinkId| {
            map.entry((node, class)).or_default().push(id);
        };

        let mut dram = Vec::new();
        let mut xgmi = Vec::new();
        let mut pcie_gpu_up = Vec::new();
        let mut pcie_gpu_down = Vec::new();
        let mut pcie_nic_tx = Vec::new();
        let mut pcie_nic_rx = Vec::new();
        let mut pcie_nvme_w = Vec::new();
        let mut pcie_nvme_r = Vec::new();
        let mut nvme_dev_w = Vec::new();
        let mut nvme_dev_r = Vec::new();
        let mut nvlink = HashMap::new();
        let mut roce_tx = Vec::new();
        let mut roce_rx = Vec::new();
        let mut pairs = HashMap::new();

        for n in 0..nodes {
            // DRAM: one half-duplex link per socket.
            let mut node_dram = Vec::new();
            for s in 0..spn {
                let id = net.add_link(format!("n{n}s{s}.dram"), spec.bw.dram_socket);
                reg(&mut class_links, n, LinkClass::Dram, id);
                node_dram.push(id);
            }
            dram.push(node_dram);

            // xGMI: one directed aggregate per direction.
            let a = net.add_link(format!("n{n}.xgmi.s0s1"), spec.bw.xgmi_dir);
            let b = net.add_link(format!("n{n}.xgmi.s1s0"), spec.bw.xgmi_dir);
            reg(&mut class_links, n, LinkClass::Xgmi, a);
            reg(&mut class_links, n, LinkClass::Xgmi, b);
            xgmi.push([a, b]);

            // PCIe to GPUs.
            let mut up = Vec::new();
            let mut down = Vec::new();
            for g in 0..gpn {
                let u = net.add_link(format!("n{n}g{g}.pcie.up"), spec.bw.pcie_gpu_dir);
                let d = net.add_link(format!("n{n}g{g}.pcie.down"), spec.bw.pcie_gpu_dir);
                reg(&mut class_links, n, LinkClass::PcieGpu, u);
                reg(&mut class_links, n, LinkClass::PcieGpu, d);
                up.push(u);
                down.push(d);
            }
            pcie_gpu_up.push(up);
            pcie_gpu_down.push(down);

            // PCIe to NICs + RoCE uplinks (one NIC per socket).
            let mut ntx = Vec::new();
            let mut nrx = Vec::new();
            let mut rtx = Vec::new();
            let mut rrx = Vec::new();
            for s in 0..spn {
                let tx = net.add_link(format!("n{n}nic{s}.pcie.tx"), spec.bw.pcie_nic_dir);
                let rx = net.add_link(format!("n{n}nic{s}.pcie.rx"), spec.bw.pcie_nic_dir);
                reg(&mut class_links, n, LinkClass::PcieNic, tx);
                reg(&mut class_links, n, LinkClass::PcieNic, rx);
                ntx.push(tx);
                nrx.push(rx);
                let t = net.add_link(format!("n{n}nic{s}.roce.tx"), spec.bw.roce_dir);
                let r = net.add_link(format!("n{n}nic{s}.roce.rx"), spec.bw.roce_dir);
                reg(&mut class_links, n, LinkClass::Roce, t);
                reg(&mut class_links, n, LinkClass::Roce, r);
                rtx.push(t);
                rrx.push(r);
            }
            pcie_nic_tx.push(ntx);
            pcie_nic_rx.push(nrx);
            roce_tx.push(rtx);
            roce_rx.push(rrx);

            // NVMe drives: PCIe wire + bucketed device service per direction.
            let mut pw = Vec::new();
            let mut pr = Vec::new();
            let mut dw = Vec::new();
            let mut dr = Vec::new();
            for (d, _pl) in spec.nvme_layout.iter().enumerate() {
                let w = net.add_link(format!("n{n}nvme{d}.pcie.w"), spec.bw.pcie_nvme_dir);
                let r = net.add_link(format!("n{n}nvme{d}.pcie.r"), spec.bw.pcie_nvme_dir);
                reg(&mut class_links, n, LinkClass::PcieNvme, w);
                reg(&mut class_links, n, LinkClass::PcieNvme, r);
                pw.push(w);
                pr.push(r);
                let m = &spec.nvme_dev;
                let bw = net.add_bucketed_link(
                    format!("n{n}nvme{d}.dev.w"),
                    TokenBucket::new(m.cache_bytes, m.burst, m.sustained_write),
                );
                let br = net.add_bucketed_link(
                    format!("n{n}nvme{d}.dev.r"),
                    TokenBucket::new(
                        m.cache_bytes,
                        m.burst.min(m.sustained_read * 1.6),
                        m.sustained_read,
                    ),
                );
                reg(&mut class_links, n, LinkClass::NvmeDev, bw);
                reg(&mut class_links, n, LinkClass::NvmeDev, br);
                dw.push(bw);
                dr.push(br);
            }
            pcie_nvme_w.push(pw);
            pcie_nvme_r.push(pr);
            nvme_dev_w.push(dw);
            nvme_dev_r.push(dr);

            // NVLink: directed link per ordered GPU pair.
            for i in 0..gpn {
                for j in 0..gpn {
                    if i == j {
                        continue;
                    }
                    let id = net.add_link(format!("n{n}.nvlink.{i}to{j}"), spec.bw.nvlink_pair_dir);
                    reg(&mut class_links, n, LinkClass::NvLink, id);
                    nvlink.insert((n, i, j), id);
                }
            }

            // SerDes-pair virtual links used by the IOD contention model.
            let gps = spec.gpus_per_socket();
            for s in 0..spn {
                let mut sets: Vec<SerdesSet> = Vec::new();
                for lg in 0..gps {
                    sets.push(SerdesSet::PcieGpu(lg));
                }
                sets.push(SerdesSet::PcieNic);
                for (d, pl) in spec.nvme_layout.iter().enumerate() {
                    if pl.socket == s {
                        sets.push(SerdesSet::PcieNvme(d));
                    }
                }
                sets.push(SerdesSet::Xgmi);
                for x in 0..sets.len() {
                    for y in (x + 1)..sets.len() {
                        let (a, b) = (sets[x].min(sets[y]), sets[x].max(sets[y]));
                        let cap = Self::pair_capacity(&spec, a, b);
                        let id = net.add_link(format!("n{n}s{s}.iod.{a:?}-{b:?}"), cap);
                        reg(&mut class_links, n, LinkClass::IodPair, id);
                        pairs.insert((n, s, a, b), id);
                    }
                }
            }
        }

        // Fabric aggregation tiers: one up/down aggregate per group per
        // tier. Registered for reporting under the group's first node.
        let mut fabric_up = Vec::new();
        let mut fabric_down = Vec::new();
        for (t, tier) in spec.fabric.tiers.iter().enumerate() {
            let mut ups = Vec::new();
            let mut downs = Vec::new();
            for g in 0..spec.fabric.groups_at(nodes, t) {
                let up = net.add_link(format!("fab{t}g{g}.up"), tier.up_bytes_per_s);
                let down = net.add_link(format!("fab{t}g{g}.down"), tier.up_bytes_per_s);
                let home = g * tier.nodes_per_group;
                reg(&mut class_links, home, LinkClass::Fabric, up);
                reg(&mut class_links, home, LinkClass::Fabric, down);
                ups.push(up);
                downs.push(down);
            }
            fabric_up.push(ups);
            fabric_down.push(downs);
        }

        Ok(Cluster {
            spec,
            net,
            dram,
            xgmi,
            pcie_gpu_up,
            pcie_gpu_down,
            pcie_nic_tx,
            pcie_nic_rx,
            pcie_nvme_w,
            pcie_nvme_r,
            nvme_dev_w,
            nvme_dev_r,
            nvlink,
            roce_tx,
            roce_rx,
            pairs,
            fabric_up,
            fabric_down,
            class_links,
            volumes: Vec::new(),
            describe_cache: std::sync::OnceLock::new(),
        })
    }

    /// Fabric links (source-side uplinks then destination-side downlinks)
    /// and the extra latency an inter-node transfer `a_node → b_node`
    /// traverses above the NIC tier. Empty on the paper's flat switch and
    /// for nodes sharing their leaf group.
    fn fabric_path(&self, a_node: usize, b_node: usize) -> (Vec<LinkId>, f64) {
        let Some(top) = self.spec.fabric.crossing_tier(a_node, b_node) else {
            return (Vec::new(), 0.0);
        };
        let mut links = Vec::new();
        let mut lat = 0.0;
        for t in 0..=top {
            links.push(self.fabric_up[t][self.spec.fabric.group_of(a_node, t)]);
            lat += self.spec.fabric.tiers[t].latency_s;
        }
        for t in (0..=top).rev() {
            links.push(self.fabric_down[t][self.spec.fabric.group_of(b_node, t)]);
            lat += self.spec.fabric.tiers[t].latency_s;
        }
        (links, lat)
    }

    /// Locality distance between two nodes: 0 for the same node, 1 for
    /// nodes sharing a leaf switch (or any pair on a flat fabric), and
    /// `2 + t` when the highest fabric tier the pair crosses is `t`.
    pub fn node_distance(&self, a_node: usize, b_node: usize) -> usize {
        if a_node == b_node {
            return 0;
        }
        match self.spec.fabric.crossing_tier(a_node, b_node) {
            None => 1,
            Some(t) => 2 + t,
        }
    }

    /// Number of distinct locality levels GPU pairs can fall into:
    /// `2 + fabric tiers` (same node / same leaf switch / per tier).
    pub fn locality_levels(&self) -> usize {
        2 + self.spec.fabric.tiers.len()
    }

    /// One-direction bandwidth available across the contiguous even
    /// bisection of the node set (nodes `0..n/2` vs `n/2..n`), from the
    /// built links: the NIC aggregate of the smaller half, narrowed by
    /// every fabric tier whose group uplinks the cut crossing traverses.
    ///
    /// Returns `None` for single-node clusters (no cut to measure).
    pub fn bisection_bandwidth(&self) -> Option<f64> {
        let half = self.spec.nodes / 2;
        if half == 0 {
            return None;
        }
        let nics = (half * ClusterSpec::SOCKETS_PER_NODE) as f64;
        let mut bw = nics * self.spec.bw.roce_dir;
        for (t, tier) in self.spec.fabric.tiers.iter().enumerate() {
            let groups_in_half = half / tier.nodes_per_group;
            if groups_in_half == 0 {
                // The tier's groups span the cut: cross-cut pairs share a
                // group here, so its aggregates are never traversed.
                continue;
            }
            let cap: f64 = (0..groups_in_half)
                .map(|g| self.net.link_capacity(self.fabric_up[t][g]))
                .sum();
            bw = bw.min(cap);
        }
        Some(bw)
    }

    /// Capacity of the virtual pair link between SerDes sets `a` and `b`
    /// (Sec. III-C4 calibration).
    fn pair_capacity(spec: &ClusterSpec, a: SerdesSet, b: SerdesSet) -> f64 {
        let gpu_involved = matches!(a, SerdesSet::PcieGpu(_)) || matches!(b, SerdesSet::PcieGpu(_));
        match (a.is_xgmi() || b.is_xgmi(), gpu_involved) {
            (false, _) => spec.iod.pcie_pcie,
            (true, true) => spec.iod.pcie_gpu_xgmi,
            (true, false) => spec.iod.xgmi_pcie_io,
        }
    }

    /// The specification this cluster was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Immutable access to the underlying flow network.
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Mutable access to the underlying flow network (needed to run the
    /// DAG engine against this cluster).
    pub fn net_mut(&mut self) -> &mut FlowNet {
        &mut self.net
    }

    /// Links of `class` on `node` (Table IV per-node aggregation groups).
    pub fn links(&self, node: usize, class: LinkClass) -> &[LinkId] {
        self.class_links
            .get(&(node, class))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All GPUs of `node` in index order.
    pub fn node_gpus(&self, node: usize) -> Vec<GpuId> {
        (0..self.spec.gpus_per_node)
            .map(|gpu| GpuId { node, gpu })
            .collect()
    }

    /// All GPUs in the cluster, node-major.
    pub fn all_gpus(&self) -> Vec<GpuId> {
        (0..self.spec.nodes)
            .flat_map(|n| self.node_gpus(n))
            .collect()
    }

    /// Engine resource id of a GPU's compute queue.
    pub fn gpu_resource(&self, g: GpuId) -> ResourceId {
        ResourceId(g.node * self.spec.gpus_per_node + g.gpu)
    }

    /// Engine resource id of a CPU socket's compute capacity.
    pub fn cpu_resource(&self, s: SocketId) -> ResourceId {
        ResourceId(self.spec.total_gpus() + s.node * ClusterSpec::SOCKETS_PER_NODE + s.socket)
    }

    /// Slot counts for [`zerosim_simkit::DagEngine::new`]: one compute slot
    /// per GPU, one per CPU socket.
    pub fn resource_slots(&self) -> Vec<usize> {
        vec![1; self.spec.total_gpus() + self.spec.total_sockets()]
    }

    /// Socket hosting `g`'s PCIe link.
    pub fn gpu_socket(&self, g: GpuId) -> SocketId {
        g.socket(self.spec.gpus_per_socket())
    }

    fn pair_link(&self, node: usize, socket: usize, a: SerdesSet, b: SerdesSet) -> LinkId {
        let (lo, hi) = (a.min(b), a.max(b));
        *self
            .pairs
            .get(&(node, socket, lo, hi))
            .unwrap_or_else(|| panic!("no pair link n{node}s{socket} {lo:?}-{hi:?}"))
    }

    fn xgmi_dir(&self, node: usize, from_socket: usize, to_socket: usize) -> LinkId {
        debug_assert_ne!(from_socket, to_socket);
        if from_socket == 0 {
            self.xgmi[node][0]
        } else {
            self.xgmi[node][1]
        }
    }

    /// Route between two memory locations on the *same node*, or between
    /// GPUs/CPUs on different nodes using topology-preferred (same-socket)
    /// NICs. For explicit NIC selection use
    /// [`Cluster::route_internode_gpu`].
    ///
    /// # Panics
    /// Panics on unsupported endpoint combinations (e.g. NVMe on a remote
    /// node): the training strategies never generate them. Untrusted
    /// plans should use [`Cluster::try_route`].
    pub fn route(&self, from: MemLoc, to: MemLoc) -> Route {
        self.try_route(from, to).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::route`] for untrusted endpoint pairs
    /// (static analysis, serialized plans).
    ///
    /// # Errors
    /// [`HwError`] describing why the pair has no modeled path: endpoints
    /// off-cluster, cross-node GPU↔CPU / CPU↔NVMe pairs, GPU self-routes,
    /// or combinations the fabric does not support at all.
    pub fn try_route(&self, from: MemLoc, to: MemLoc) -> Result<Route, HwError> {
        self.check_loc(from)?;
        self.check_loc(to)?;
        match (from, to) {
            (MemLoc::Gpu(a), MemLoc::Gpu(b)) if a == b => Err(HwError::SelfRoute { at: from }),
            (MemLoc::Gpu(a), MemLoc::Gpu(b)) if a.node == b.node => Ok(self.route_gpu_gpu(a, b)),
            (MemLoc::Gpu(a), MemLoc::Gpu(b)) => {
                let src_nic = self.gpu_socket(a).socket;
                let dst_nic = self.gpu_socket(b).socket;
                Ok(self.route_internode_gpu(a, b, src_nic, dst_nic))
            }
            (MemLoc::Gpu(g), MemLoc::Cpu(c)) | (MemLoc::Cpu(c), MemLoc::Gpu(g))
                if g.node != c.node =>
            {
                Err(HwError::CrossNode { from, to })
            }
            (MemLoc::Gpu(g), MemLoc::Cpu(c)) => Ok(self.route_gpu_cpu(g, c, true)),
            (MemLoc::Cpu(c), MemLoc::Gpu(g)) => Ok(self.route_gpu_cpu(g, c, false)),
            (MemLoc::Cpu(a), MemLoc::Cpu(b)) if a.node == b.node => Ok(self.route_cpu_cpu(a, b)),
            (MemLoc::Cpu(a), MemLoc::Cpu(b)) => Ok(self.route_internode_cpu(a, b)),
            (MemLoc::Cpu(c), MemLoc::Nvme(d)) | (MemLoc::Nvme(d), MemLoc::Cpu(c))
                if c.node != d.node =>
            {
                Err(HwError::CrossNode { from, to })
            }
            (MemLoc::Cpu(c), MemLoc::Nvme(d)) => Ok(self.route_cpu_nvme(c, d, IoDir::Write)),
            (MemLoc::Nvme(d), MemLoc::Cpu(c)) => Ok(self.route_cpu_nvme(c, d, IoDir::Read)),
            (from, to) => Err(HwError::UnsupportedRoute { from, to }),
        }
    }

    /// Checks that `loc` names a device this cluster actually has.
    fn check_loc(&self, loc: MemLoc) -> Result<(), HwError> {
        let ok = match loc {
            MemLoc::Gpu(g) => g.node < self.spec.nodes && g.gpu < self.spec.gpus_per_node,
            MemLoc::Cpu(s) => s.node < self.spec.nodes && s.socket < ClusterSpec::SOCKETS_PER_NODE,
            MemLoc::Nvme(d) => d.node < self.spec.nodes && d.drive < self.spec.nvme_layout.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(HwError::OffCluster { loc })
        }
    }

    fn route_gpu_gpu(&self, a: GpuId, b: GpuId) -> Route {
        assert_eq!(a.node, b.node);
        assert_ne!(a.gpu, b.gpu, "route from a GPU to itself");
        let l = self.nvlink[&(a.node, a.gpu, b.gpu)];
        Route::new(vec![l], SimTime::from_secs(self.spec.lat.nvlink_s))
    }

    fn route_gpu_cpu(&self, g: GpuId, c: SocketId, gpu_to_cpu: bool) -> Route {
        assert_eq!(g.node, c.node, "GPU-CPU routes are intra-node");
        let gs = self.gpu_socket(g);
        let n = g.node;
        let local_gpu = g.gpu % self.spec.gpus_per_socket();
        let pcie = if gpu_to_cpu {
            self.pcie_gpu_up[n][g.gpu]
        } else {
            self.pcie_gpu_down[n][g.gpu]
        };
        let mut lat = self.spec.lat.pcie_s;
        let mut links = Vec::new();
        if gpu_to_cpu {
            links.push(pcie);
        }
        if gs.socket != c.socket {
            // Crosses the GPU-side IOD between the GPU PCIe set and xGMI.
            links.push(self.pair_link(
                n,
                gs.socket,
                SerdesSet::PcieGpu(local_gpu),
                SerdesSet::Xgmi,
            ));
            links.push(self.xgmi_dir(
                n,
                if gpu_to_cpu { gs.socket } else { c.socket },
                if gpu_to_cpu { c.socket } else { gs.socket },
            ));
            lat += self.spec.lat.xgmi_s + self.spec.iod.crossing_latency_s;
        }
        links.push(self.dram[n][c.socket]);
        if !gpu_to_cpu {
            // CPU -> GPU: traverse in the natural order.
            links.reverse();
            links.push(pcie);
        }
        Route::new(links, SimTime::from_secs(lat))
    }

    fn route_cpu_cpu(&self, a: SocketId, b: SocketId) -> Route {
        assert_eq!(a.node, b.node);
        if a.socket == b.socket {
            return Route::new(
                vec![self.dram[a.node][a.socket]],
                SimTime::from_secs(0.1e-6),
            );
        }
        Route::new(
            vec![
                self.dram[a.node][a.socket],
                self.xgmi_dir(a.node, a.socket, b.socket),
                self.dram[a.node][b.socket],
            ],
            SimTime::from_secs(self.spec.lat.xgmi_s),
        )
    }

    /// Explicit inter-node GPU route via chosen NICs (GPUDirect RDMA).
    pub fn route_internode_gpu(&self, a: GpuId, b: GpuId, src_nic: usize, dst_nic: usize) -> Route {
        assert_ne!(a.node, b.node, "use route() for intra-node GPU pairs");
        let mut links = Vec::new();
        let mut lat = self.spec.lat.pcie_s * 2.0 + self.spec.lat.roce_s;

        // Source side: GPU -> NIC.
        let gs = self.gpu_socket(a);
        let local = a.gpu % self.spec.gpus_per_socket();
        links.push(self.pcie_gpu_up[a.node][a.gpu]);
        if gs.socket == src_nic {
            links.push(self.pair_link(
                a.node,
                gs.socket,
                SerdesSet::PcieGpu(local),
                SerdesSet::PcieNic,
            ));
        } else {
            links.push(self.pair_link(
                a.node,
                gs.socket,
                SerdesSet::PcieGpu(local),
                SerdesSet::Xgmi,
            ));
            links.push(self.xgmi_dir(a.node, gs.socket, src_nic));
            links.push(self.pair_link(a.node, src_nic, SerdesSet::Xgmi, SerdesSet::PcieNic));
            lat += self.spec.lat.xgmi_s + 2.0 * self.spec.iod.crossing_latency_s;
        }
        links.push(self.pcie_nic_tx[a.node][src_nic]);
        links.push(self.roce_tx[a.node][src_nic]);

        // Switch fabric between the NICs (no-op on the flat testbed).
        let (fabric, fabric_lat) = self.fabric_path(a.node, b.node);
        links.extend(fabric);
        lat += fabric_lat;

        // Destination side: NIC -> GPU.
        links.push(self.roce_rx[b.node][dst_nic]);
        links.push(self.pcie_nic_rx[b.node][dst_nic]);
        let ds = self.gpu_socket(b);
        let dlocal = b.gpu % self.spec.gpus_per_socket();
        if ds.socket == dst_nic {
            links.push(self.pair_link(
                b.node,
                ds.socket,
                SerdesSet::PcieGpu(dlocal),
                SerdesSet::PcieNic,
            ));
        } else {
            links.push(self.pair_link(b.node, dst_nic, SerdesSet::Xgmi, SerdesSet::PcieNic));
            links.push(self.xgmi_dir(b.node, dst_nic, ds.socket));
            links.push(self.pair_link(
                b.node,
                ds.socket,
                SerdesSet::PcieGpu(dlocal),
                SerdesSet::Xgmi,
            ));
            lat += self.spec.lat.xgmi_s + 2.0 * self.spec.iod.crossing_latency_s;
        }
        links.push(self.pcie_gpu_down[b.node][b.gpu]);

        if gs.socket == src_nic && ds.socket == dst_nic {
            lat += 2.0 * self.spec.iod.crossing_latency_s;
        }
        Route::new(links, SimTime::from_secs(lat))
    }

    /// Inter-node CPU-to-CPU route through each side's same-socket NIC.
    fn route_internode_cpu(&self, a: SocketId, b: SocketId) -> Route {
        let (fabric, fabric_lat) = self.fabric_path(a.node, b.node);
        let mut links = vec![
            self.dram[a.node][a.socket],
            self.pcie_nic_tx[a.node][a.socket],
            self.roce_tx[a.node][a.socket],
        ];
        links.extend(fabric);
        links.extend([
            self.roce_rx[b.node][b.socket],
            self.pcie_nic_rx[b.node][b.socket],
            self.dram[b.node][b.socket],
        ]);
        Route::new(
            links,
            SimTime::from_secs(self.spec.lat.roce_s + 2.0 * self.spec.lat.pcie_s + fabric_lat),
        )
    }

    /// Inter-node CPU route with explicit NIC selection on the source side
    /// (used by the perftest cross-socket scenarios).
    pub fn route_internode_cpu_via(
        &self,
        a: SocketId,
        b: SocketId,
        src_nic: usize,
        dst_nic: usize,
    ) -> Route {
        let mut links = Vec::new();
        let mut lat = self.spec.lat.roce_s + 2.0 * self.spec.lat.pcie_s;
        links.push(self.dram[a.node][a.socket]);
        if a.socket != src_nic {
            links.push(self.xgmi_dir(a.node, a.socket, src_nic));
            links.push(self.pair_link(a.node, src_nic, SerdesSet::Xgmi, SerdesSet::PcieNic));
            lat += self.spec.lat.xgmi_s + self.spec.iod.crossing_latency_s;
        }
        links.push(self.pcie_nic_tx[a.node][src_nic]);
        links.push(self.roce_tx[a.node][src_nic]);
        let (fabric, fabric_lat) = self.fabric_path(a.node, b.node);
        links.extend(fabric);
        lat += fabric_lat;
        links.push(self.roce_rx[b.node][dst_nic]);
        links.push(self.pcie_nic_rx[b.node][dst_nic]);
        if b.socket != dst_nic {
            links.push(self.pair_link(b.node, dst_nic, SerdesSet::Xgmi, SerdesSet::PcieNic));
            links.push(self.xgmi_dir(b.node, dst_nic, b.socket));
            lat += self.spec.lat.xgmi_s + self.spec.iod.crossing_latency_s;
        }
        links.push(self.dram[b.node][b.socket]);
        Route::new(links, SimTime::from_secs(lat))
    }

    fn route_cpu_nvme(&self, c: SocketId, d: NvmeId, dir: IoDir) -> Route {
        assert_eq!(c.node, d.node, "NVMe routes are intra-node");
        let n = c.node;
        let drive_socket = self.spec.nvme_layout[d.drive].socket;
        let mut lat = self.spec.lat.pcie_s + self.spec.nvme_dev.latency_s;
        let mut links = vec![self.dram[n][c.socket]];
        if c.socket != drive_socket {
            links.push(self.xgmi_dir(
                n,
                if dir == IoDir::Write {
                    c.socket
                } else {
                    drive_socket
                },
                if dir == IoDir::Write {
                    drive_socket
                } else {
                    c.socket
                },
            ));
            links.push(self.pair_link(
                n,
                drive_socket,
                SerdesSet::Xgmi,
                SerdesSet::PcieNvme(d.drive),
            ));
            lat += self.spec.lat.xgmi_s + self.spec.iod.crossing_latency_s;
        }
        match dir {
            IoDir::Write => {
                links.push(self.pcie_nvme_w[n][d.drive]);
                links.push(self.nvme_dev_w[n][d.drive]);
            }
            IoDir::Read => {
                links.push(self.pcie_nvme_r[n][d.drive]);
                links.push(self.nvme_dev_r[n][d.drive]);
                links.reverse();
            }
        }
        Route::new(links, SimTime::from_secs(lat))
    }

    /// Registers a volume striping evenly across `members`.
    ///
    /// # Panics
    /// Panics if `members` is empty or references an unknown drive.
    pub fn create_volume(&mut self, members: Vec<NvmeId>) -> VolumeId {
        self.try_create_volume(members)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::create_volume`].
    ///
    /// # Errors
    /// [`HwError::EmptyVolume`] or [`HwError::UnknownDrive`].
    pub fn try_create_volume(&mut self, members: Vec<NvmeId>) -> Result<VolumeId, HwError> {
        if members.is_empty() {
            return Err(HwError::EmptyVolume);
        }
        for m in &members {
            if m.drive >= self.spec.nvme_layout.len() || m.node >= self.spec.nodes {
                return Err(HwError::UnknownDrive { drive: *m });
            }
        }
        let id = VolumeId(self.volumes.len());
        self.volumes.push(NvmeVolume { members });
        Ok(id)
    }

    /// The volume registered under `id`.
    ///
    /// # Panics
    /// Panics if `id` is unknown.
    pub fn volume(&self, id: VolumeId) -> &NvmeVolume {
        self.try_volume(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::volume`].
    ///
    /// # Errors
    /// [`HwError::UnknownVolume`] when `id` was never registered.
    pub fn try_volume(&self, id: VolumeId) -> Result<&NvmeVolume, HwError> {
        self.volumes
            .get(id.0)
            .ok_or(HwError::UnknownVolume { volume: id })
    }

    /// Number of registered NVMe volumes.
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }

    /// True when `id` names a registered volume (used by iteration-plan
    /// validation to check route feasibility before lowering).
    pub fn has_volume(&self, id: VolumeId) -> bool {
        id.0 < self.volumes.len()
    }

    /// Routes for a striped I/O of any size against `volume` issued from
    /// CPU socket `from`: one route per member, each carrying
    /// `1 / member_count` of the bytes.
    ///
    /// # Panics
    /// Panics if `volume` is unknown or spans a node other than `from`'s.
    pub fn volume_io_routes(&self, volume: VolumeId, from: SocketId, dir: IoDir) -> Vec<Route> {
        self.try_volume_io_routes(volume, from, dir)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::volume_io_routes`].
    ///
    /// # Errors
    /// [`HwError`] when the socket is off-cluster, the volume is
    /// unknown, or a member drive sits on a different node than `from`.
    pub fn try_volume_io_routes(
        &self,
        volume: VolumeId,
        from: SocketId,
        dir: IoDir,
    ) -> Result<Vec<Route>, HwError> {
        self.check_loc(MemLoc::Cpu(from))?;
        let v = self.try_volume(volume)?;
        for m in &v.members {
            if m.node != from.node {
                return Err(HwError::CrossNode {
                    from: MemLoc::Cpu(from),
                    to: MemLoc::Nvme(*m),
                });
            }
        }
        Ok(v.members
            .iter()
            .map(|m| self.route_cpu_nvme(from, *m, dir))
            .collect())
    }

    /// One NIC per socket: the NIC GPUs on that socket prefer.
    pub fn nic_for_socket(&self, s: SocketId) -> NicId {
        NicId {
            node: s.node,
            nic: s.socket,
        }
    }

    /// A human-readable topology dump (Fig. 2 substitute).
    ///
    /// Renders generated topologies faithfully: the fabric tier stack with
    /// per-tier oversubscription and the contiguous-cut bisection
    /// bandwidth, then a node template (nodes are identical, so large
    /// clusters show the first two and summarize the rest).
    ///
    /// The topology cannot change after construction, so the dump is
    /// rendered once per cluster and cached; repeated calls borrow it.
    pub fn describe(&self) -> &str {
        self.describe_cache.get_or_init(|| self.render_describe())
    }

    fn render_describe(&self) -> String {
        use std::fmt::Write as _;
        let spec = &self.spec;
        let spn = ClusterSpec::SOCKETS_PER_NODE;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cluster: {} node(s), {} GPUs/node ({} GPUs total), {} NVMe drive(s)/node",
            spec.nodes,
            spec.gpus_per_node,
            spec.total_gpus(),
            spec.nvme_layout.len()
        );
        if spec.fabric.is_flat() {
            let _ = writeln!(
                out,
                "fabric: single non-blocking switch, RoCE {:.1} GBps/dir/NIC",
                spec.bw.roce_dir / 1e9
            );
        } else {
            for (t, tier) in spec.fabric.tiers.iter().enumerate() {
                let nic_aggregate = (tier.nodes_per_group * spn) as f64 * spec.bw.roce_dir;
                let _ = writeln!(
                    out,
                    "fabric tier {t}: {} group(s) of {} node(s), uplink {:.1} GBps/dir \
                     ({:.2}:1 oversubscribed)",
                    spec.fabric.groups_at(spec.nodes, t),
                    tier.nodes_per_group,
                    tier.up_bytes_per_s / 1e9,
                    nic_aggregate / tier.up_bytes_per_s
                );
            }
        }
        if let Some(bisect) = self.bisection_bandwidth() {
            let _ = writeln!(
                out,
                "bisection: {:.1} GBps/dir (contiguous even cut)",
                bisect / 1e9
            );
        }
        let shown = spec.nodes.min(2);
        for n in 0..shown {
            let _ = writeln!(out, "node {n}:");
            for s in 0..spn {
                let gpus: Vec<usize> = (0..spec.gpus_per_node)
                    .filter(|g| g / spec.gpus_per_socket() == s)
                    .collect();
                let drives: Vec<usize> = spec
                    .nvme_layout
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.socket == s)
                    .map(|(i, _)| i)
                    .collect();
                let _ = writeln!(
                    out,
                    "  socket {s}: DRAM {:.1} GBps | GPUs {gpus:?} | NIC {s} | NVMe {drives:?}",
                    spec.bw.dram_socket / 1e9
                );
            }
        }
        if spec.nodes > shown {
            let _ = writeln!(out, "... {} more identical node(s)", spec.nodes - shown);
        }
        let _ = writeln!(
            out,
            "links: xGMI {:.0} GBps/dir, NVLink {:.0} GBps/dir/pair, RoCE {:.1} GBps/dir/NIC",
            spec.bw.xgmi_dir / 1e9,
            spec.bw.nvlink_pair_dir / 1e9,
            spec.bw.roce_dir / 1e9
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::default()).expect("default spec is valid")
    }

    #[test]
    fn builds_expected_link_groups() {
        let c = cluster();
        // Per node: 2 DRAM, 2 xGMI, 8 PCIe-GPU (4 GPUs × 2 dirs), 4 PCIe-NIC,
        // 4 PCIe-NVMe (2 drives × 2 dirs), 12 NVLink (4P2 ordered pairs), 4 RoCE.
        assert_eq!(c.links(0, LinkClass::Dram).len(), 2);
        assert_eq!(c.links(0, LinkClass::Xgmi).len(), 2);
        assert_eq!(c.links(0, LinkClass::PcieGpu).len(), 8);
        assert_eq!(c.links(0, LinkClass::PcieNic).len(), 4);
        assert_eq!(c.links(0, LinkClass::PcieNvme).len(), 4);
        assert_eq!(c.links(0, LinkClass::NvLink).len(), 12);
        assert_eq!(c.links(0, LinkClass::Roce).len(), 4);
        assert_eq!(c.links(1, LinkClass::NvLink).len(), 12);
        assert!(c.links(2, LinkClass::Dram).is_empty());
    }

    #[test]
    fn gpu_gpu_same_node_uses_nvlink() {
        let c = cluster();
        let r = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 1 }),
            MemLoc::Gpu(GpuId { node: 0, gpu: 2 }),
        );
        assert_eq!(r.hops(), 1);
        assert_eq!(c.net().link_capacity(r.links[0]), 100e9);
    }

    #[test]
    fn gpu_cpu_same_socket_route() {
        let c = cluster();
        let r = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
            MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
        );
        // pcie up + dram, no IOD pair.
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn gpu_cpu_cross_socket_crosses_iod() {
        let c = cluster();
        let r = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
            MemLoc::Cpu(SocketId { node: 0, socket: 1 }),
        );
        // pcie + pair + xgmi + dram.
        assert_eq!(r.hops(), 4);
        let names: Vec<&str> = r.links.iter().map(|l| c.net().link_name(*l)).collect();
        assert!(names.iter().any(|n| n.contains("iod")), "{names:?}");
    }

    #[test]
    fn internode_gpu_same_socket_nics() {
        let c = cluster();
        let r = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
            MemLoc::Gpu(GpuId { node: 1, gpu: 0 }),
        );
        let names: Vec<&str> = r.links.iter().map(|l| c.net().link_name(*l)).collect();
        // GPUDirect: no DRAM on the path.
        assert!(!names.iter().any(|n| n.contains("dram")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("roce.tx")));
        assert!(names.iter().any(|n| n.contains("roce.rx")));
        // Same-socket NIC: exactly one IOD pair per side (PCIe-PCIe class).
        let iod_count = names.iter().filter(|n| n.contains("iod")).count();
        assert_eq!(iod_count, 2);
    }

    #[test]
    fn internode_gpu_cross_socket_nics() {
        let c = cluster();
        let a = GpuId { node: 0, gpu: 0 }; // socket 0
        let b = GpuId { node: 1, gpu: 0 };
        let r = c.route_internode_gpu(a, b, 1, 1); // force remote NICs
        let names: Vec<&str> = r.links.iter().map(|l| c.net().link_name(*l)).collect();
        assert!(names.iter().any(|n| n.contains("xgmi")), "{names:?}");
        let iod_count = names.iter().filter(|n| n.contains("iod")).count();
        assert_eq!(iod_count, 4); // two crossings per side
    }

    #[test]
    fn cpu_nvme_routes() {
        let c = cluster();
        // Drive 0 is on socket 1; from socket 1: no xGMI.
        let r = c.route(
            MemLoc::Cpu(SocketId { node: 0, socket: 1 }),
            MemLoc::Nvme(NvmeId { node: 0, drive: 0 }),
        );
        let names: Vec<&str> = r.links.iter().map(|l| c.net().link_name(*l)).collect();
        assert!(!names.iter().any(|n| n.contains("xgmi")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("dev.w")));

        // From socket 0: crosses xGMI + IOD pair.
        let r2 = c.route(
            MemLoc::Cpu(SocketId { node: 0, socket: 0 }),
            MemLoc::Nvme(NvmeId { node: 0, drive: 0 }),
        );
        let names2: Vec<&str> = r2.links.iter().map(|l| c.net().link_name(*l)).collect();
        assert!(names2.iter().any(|n| n.contains("xgmi")));
        assert!(names2.iter().any(|n| n.contains("iod")));
    }

    #[test]
    fn nvme_read_route_is_reversed() {
        let c = cluster();
        let r = c.route(
            MemLoc::Nvme(NvmeId { node: 0, drive: 1 }),
            MemLoc::Cpu(SocketId { node: 0, socket: 1 }),
        );
        let names: Vec<&str> = r.links.iter().map(|l| c.net().link_name(*l)).collect();
        assert!(names.first().unwrap().contains("dev.r"), "{names:?}");
        assert!(names.last().unwrap().contains("dram"), "{names:?}");
    }

    #[test]
    fn volumes_stripe_across_members() {
        let mut c = cluster();
        let v = c.create_volume(vec![
            NvmeId { node: 0, drive: 0 },
            NvmeId { node: 0, drive: 1 },
        ]);
        let routes = c.volume_io_routes(v, SocketId { node: 0, socket: 1 }, IoDir::Write);
        assert_eq!(routes.len(), 2);
        assert_eq!(c.volume(v).members.len(), 2);
    }

    #[test]
    fn resource_ids_are_disjoint() {
        let c = cluster();
        let mut seen = std::collections::HashSet::new();
        for g in c.all_gpus() {
            assert!(seen.insert(c.gpu_resource(g)));
        }
        for n in 0..2 {
            for s in 0..2 {
                assert!(seen.insert(c.cpu_resource(SocketId { node: n, socket: s })));
            }
        }
        assert_eq!(c.resource_slots().len(), seen.len());
    }

    #[test]
    fn try_route_rejects_infeasible_pairs() {
        let c = cluster();
        let g0 = MemLoc::Gpu(GpuId { node: 0, gpu: 0 });
        let nv = MemLoc::Nvme(NvmeId { node: 0, drive: 0 });
        assert!(matches!(
            c.try_route(g0, nv),
            Err(HwError::UnsupportedRoute { .. })
        ));
        assert!(matches!(
            c.try_route(g0, g0),
            Err(HwError::SelfRoute { .. })
        ));
        assert!(matches!(
            c.try_route(g0, MemLoc::Cpu(SocketId { node: 1, socket: 0 })),
            Err(HwError::CrossNode { .. })
        ));
        assert!(matches!(
            c.try_route(g0, MemLoc::Gpu(GpuId { node: 5, gpu: 0 })),
            Err(HwError::OffCluster { .. })
        ));
        assert!(c
            .try_route(MemLoc::Cpu(SocketId { node: 0, socket: 0 }), nv)
            .is_ok());
    }

    #[test]
    fn try_volume_apis_reject_bad_inputs() {
        let mut c = cluster();
        assert!(matches!(
            c.try_create_volume(Vec::new()),
            Err(HwError::EmptyVolume)
        ));
        assert!(matches!(
            c.try_create_volume(vec![NvmeId { node: 0, drive: 9 }]),
            Err(HwError::UnknownDrive { .. })
        ));
        assert!(matches!(
            c.try_volume(VolumeId(0)),
            Err(HwError::UnknownVolume { .. })
        ));
        let v = c
            .try_create_volume(vec![NvmeId { node: 1, drive: 0 }])
            .unwrap();
        // Volume on node 1 cannot be reached from a node-0 socket.
        assert!(matches!(
            c.try_volume_io_routes(v, SocketId { node: 0, socket: 0 }, IoDir::Write),
            Err(HwError::CrossNode { .. })
        ));
        assert_eq!(
            c.try_volume_io_routes(v, SocketId { node: 1, socket: 0 }, IoDir::Read)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn describe_mentions_topology() {
        let c = cluster();
        let d = c.describe();
        assert!(d.contains("node 0"));
        assert!(d.contains("node 1"));
        assert!(d.contains("NVLink"));
    }

    #[test]
    fn describe_is_rendered_once_and_borrowed() {
        let c = cluster();
        let first: *const str = c.describe();
        let second: *const str = c.describe();
        assert!(std::ptr::eq(first, second));
    }

    fn tiered_cluster() -> Cluster {
        // 8 nodes: 2-node leaf groups (2:1 oversubscribed) under 4-node
        // spine halves (4:1 against each half's NIC aggregate).
        let spec = ClusterSpec::default()
            .with_nodes(8)
            .with_fabric(crate::FabricSpec {
                tiers: vec![
                    crate::FabricTier {
                        nodes_per_group: 2,
                        up_bytes_per_s: 2.0 * 2.0 * 0.93 * 25e9 / 2.0,
                        latency_s: 1e-6,
                    },
                    crate::FabricTier {
                        nodes_per_group: 4,
                        up_bytes_per_s: 4.0 * 2.0 * 0.93 * 25e9 / 4.0,
                        latency_s: 2e-6,
                    },
                ],
            });
        Cluster::new(spec).expect("tiered spec is valid")
    }

    #[test]
    fn flat_internode_routes_carry_no_fabric_links() {
        let c = cluster();
        let r = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
            MemLoc::Gpu(GpuId { node: 1, gpu: 0 }),
        );
        assert!(!r
            .links
            .iter()
            .any(|l| c.net().link_name(*l).starts_with("fab")));
        assert!(c.links(0, LinkClass::Fabric).is_empty());
    }

    #[test]
    fn tiered_routes_traverse_the_crossing_tiers() {
        let c = tiered_cluster();
        let names = |r: &crate::Route| -> Vec<String> {
            r.links
                .iter()
                .map(|l| c.net().link_name(*l).to_string())
                .collect()
        };
        // Same leaf group: no fabric hops.
        let same = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
            MemLoc::Gpu(GpuId { node: 1, gpu: 0 }),
        );
        assert!(!names(&same).iter().any(|n| n.starts_with("fab")));
        // Cross-spine: leaf up + spine up + spine down + leaf down, in order.
        let cross = c.route(
            MemLoc::Gpu(GpuId { node: 0, gpu: 0 }),
            MemLoc::Gpu(GpuId { node: 7, gpu: 0 }),
        );
        let fab: Vec<String> = names(&cross)
            .into_iter()
            .filter(|n| n.starts_with("fab"))
            .collect();
        assert_eq!(
            fab,
            ["fab0g0.up", "fab1g0.up", "fab1g1.down", "fab0g3.down"]
        );
        // CPU routes cross the same fabric.
        let cpu = c.route(
            MemLoc::Cpu(SocketId { node: 1, socket: 0 }),
            MemLoc::Cpu(SocketId { node: 6, socket: 0 }),
        );
        assert!(names(&cpu).iter().any(|n| n.starts_with("fab1")));
    }

    #[test]
    fn node_distance_follows_tiers() {
        let c = tiered_cluster();
        assert_eq!(c.node_distance(3, 3), 0);
        assert_eq!(c.node_distance(0, 1), 1); // same leaf group
        assert_eq!(c.node_distance(0, 3), 2); // differ at tier 0 only
        assert_eq!(c.node_distance(0, 7), 3); // cross-spine
        assert_eq!(c.locality_levels(), 4);
        let flat = cluster();
        assert_eq!(flat.node_distance(0, 1), 1);
        assert_eq!(flat.locality_levels(), 2);
    }

    #[test]
    fn bisection_narrows_with_tiers() {
        // Flat 2-node: limited by one node's two NICs.
        let flat = cluster();
        assert_eq!(flat.bisection_bandwidth().unwrap(), 2.0 * 0.93 * 25e9);
        // Tiered: the spine tier (8:1 vs the half's NIC aggregate) binds.
        let c = tiered_cluster();
        assert_eq!(
            c.bisection_bandwidth().unwrap(),
            4.0 * 2.0 * 0.93 * 25e9 / 4.0
        );
        // Single node: no cut.
        let one = Cluster::new(ClusterSpec::default().with_nodes(1)).unwrap();
        assert!(one.bisection_bandwidth().is_none());
    }

    #[test]
    fn describe_renders_tiers_and_summarizes_nodes() {
        let tiered = tiered_cluster();
        let d = tiered.describe();
        assert!(d.contains("fabric tier 0"), "{d}");
        assert!(d.contains("fabric tier 1"), "{d}");
        assert!(d.contains("oversubscribed"), "{d}");
        assert!(d.contains("bisection"), "{d}");
        assert!(d.contains("... 6 more identical node(s)"), "{d}");
        let flat_cluster = cluster();
        let flat = flat_cluster.describe();
        assert!(flat.contains("single non-blocking switch"), "{flat}");
    }

    #[test]
    fn pair_capacity_classes() {
        let spec = ClusterSpec::default();
        assert_eq!(
            Cluster::pair_capacity(&spec, SerdesSet::PcieGpu(0), SerdesSet::PcieNic),
            spec.iod.pcie_pcie
        );
        assert_eq!(
            Cluster::pair_capacity(&spec, SerdesSet::PcieGpu(1), SerdesSet::Xgmi),
            spec.iod.pcie_gpu_xgmi
        );
        assert_eq!(
            Cluster::pair_capacity(&spec, SerdesSet::Xgmi, SerdesSet::PcieNic),
            spec.iod.xgmi_pcie_io
        );
    }
}
