//! Plain-text table rendering for paper-style output.

use std::fmt::Write as _;

/// Errors from constructing presentation artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReportError {
    /// A table was constructed with no columns.
    EmptyHeaders,
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::EmptyHeaders => write!(f, "a table needs at least one column"),
        }
    }
}

impl std::error::Error for ReportError {}

/// A simple aligned text table.
///
/// ```
/// use zerosim_report::Table;
/// let mut t = Table::new(vec!["config", "TFLOP/s"]);
/// t.row(vec!["DDP".into(), "438".into()]);
/// t.row(vec!["ZeRO-2".into(), "524".into()]);
/// let s = t.render();
/// assert!(s.contains("DDP"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    /// Panics on an empty header list; [`Table::try_new`] is the
    /// non-panicking form.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table::try_new(headers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a table with the given column headers, or
    /// [`ReportError::EmptyHeaders`] when there are none.
    ///
    /// # Errors
    /// [`ReportError::EmptyHeaders`] on an empty header list.
    pub fn try_new<S: Into<String>>(headers: Vec<S>) -> Result<Self, ReportError> {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        if headers.is_empty() {
            return Err(ReportError::EmptyHeaders);
        }
        Ok(Table {
            headers,
            rows: Vec::new(),
        })
    }

    /// Appends a row, padding or truncating to the column count.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a header separator, and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let pad = widths[c] - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+');
                if numeric {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    for _ in 0..pad {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "123".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width for the value column alignment.
        assert!(lines[3].ends_with("123"));
        assert!(lines[2].ends_with("  1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn try_new_returns_typed_error() {
        let e = Table::try_new(Vec::<String>::new()).unwrap_err();
        assert_eq!(e, ReportError::EmptyHeaders);
        assert!(e.to_string().contains("at least one column"));
        assert!(Table::try_new(vec!["a"]).is_ok());
    }
}
