//! Serving runs are deterministic: the golden ext14 deployments (shared
//! with the `servesim --bench` scorecard via
//! [`zerosim_bench::experiments::serving::golden_deployments`]) yield the
//! same ordered label and digest vectors at any worker width, trace
//! sampling is a pure function of its seed, and re-executing a spec
//! reproduces its report byte-for-byte — scheduling must never leak into
//! serving results.

use zerosim_bench::experiments::serving::{golden_deployments, golden_trace};
use zerosim_core::{ServeRunner, TraceConfig};

#[test]
fn golden_serving_sweep_is_width_invariant() {
    let specs = golden_deployments();
    assert_eq!(specs.len(), 3, "golden serving matrix must stay at 3");

    // Serial execution is the reference ordering.
    let reference = ServeRunner::new(1)
        .run_parallel(specs.clone())
        .expect("golden deployments run");
    assert_eq!(reference.len(), 3);
    for run in &reference {
        assert_eq!(
            run.report.requests,
            golden_trace().requests,
            "{}: every request must complete",
            run.label
        );
    }

    for workers in [2usize, 4] {
        let runs = ServeRunner::new(workers)
            .run_parallel(specs.clone())
            .expect("golden deployments run");
        let labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
        let expect_labels: Vec<&str> = reference.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, expect_labels, "ordering broke at {workers} workers");
        for (run, want) in runs.iter().zip(&reference) {
            assert_eq!(
                run.digest, want.digest,
                "{}: digest changed at {workers} workers",
                run.label
            );
            assert_eq!(run.report, want.report, "{}: report drifted", run.label);
        }
    }
}

#[test]
fn serve_spec_replays_byte_identically_and_tracks_its_seed() {
    let spec = &golden_deployments()[0];
    let a = spec.clone().execute().expect("dense deployment runs");
    let b = spec.clone().execute().expect("dense deployment runs");
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.report, b.report);

    // A different trace seed must change the measurement.
    let mut reseeded = spec.clone();
    reseeded.trace.seed ^= 1;
    let c = reseeded.execute().expect("dense deployment runs");
    assert_ne!(a.digest, c.digest, "the trace seed must matter");
}

/// Every serving run terminates with all requests served under both
/// arrival processes. Folded in from the former `open_loop_hang.rs`
/// regression test for the open-loop admission hang: an
/// `ArrivalProcess::Open` arrival with a sub-tick remainder could never
/// satisfy `arrival <= t` after the idle branch jumped the clock to
/// that same (tick-rounded-down) arrival, so the scheduler spun forever
/// re-arming the jump. Closed-loop traces never exposed it because
/// their arrivals are 0.0 or released at an already-quantized
/// completion time — which is why this sweep covers both processes.
#[test]
fn both_arrival_processes_terminate_across_seeds() {
    use zerosim_core::{ArrivalProcess, ServeSpec};
    use zerosim_strategies::{ServingStrategy, TrainOptions};

    let arrivals = [
        ArrivalProcess::Open { rate_rps: 10.0 },
        ArrivalProcess::Closed { concurrency: 2 },
    ];
    for arrival in arrivals {
        for seed in 0..20u64 {
            let trace = TraceConfig {
                requests: 4,
                arrivals: arrival,
                prompt_tokens: (64, 128),
                output_tokens: (4, 8),
                seed,
            };
            let spec = ServeSpec::new(
                format!("{arrival:?}-{seed}"),
                ServingStrategy::Dense,
                zerosim_model::GptConfig::paper_model_with_params(1.4),
                TrainOptions::single_node(),
                trace,
            );
            let run = spec.execute().expect("serving run completes");
            assert_eq!(run.report.requests, 4, "{arrival:?} seed {seed}");
        }
    }
}

#[test]
fn trace_sampling_is_a_pure_function_of_the_config() {
    let cfg = golden_trace();
    assert_eq!(cfg.sample(), cfg.sample());
    let other = TraceConfig {
        seed: cfg.seed + 1,
        ..cfg.clone()
    };
    assert_ne!(cfg.sample(), other.sample());
}
