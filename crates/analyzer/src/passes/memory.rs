//! ZL001 — per-tier memory residency vs. hardware capacities.
//!
//! An abstract interpretation of byte liveness: the resident footprint
//! comes from the strategy's [`MemoryPlan`]; on top of it the pass
//! replays the workload plan phase by phase and adds the worst
//! single-phase *transient* staging bytes each tier receives
//! ([`PlanOp::TierTransfer`] / [`PlanOp::VolumeIo`] destinations). The
//! result is a static peak bound that can never be below what the
//! simulator observes, so an OOM config is flagged without running a
//! single flow — and the deny verdict reuses [`MemoryPlan::fits`]
//! verbatim, keeping ZL001 in exact agreement with the simulator's
//! capacity probe (`core::capacity`).
//!
//! Serving plans add a third byte class: [`PlanOp::KvAppend`] is
//! *cumulative* residency, not transient staging — the KV cache grows
//! monotonically over decode steps and is never freed within the
//! workload, so the pass sums appends per GPU (no per-phase max) and
//! counts the worst GPU's total as resident alongside the memory plan.
//! A batch whose cache outgrows HBM is denied statically.

use std::collections::HashMap;

use zerosim_hw::{Cluster, IoDir, MemLoc};
use zerosim_strategies::{IterPlan, MemoryPlan, Phase, PlanOp};

use crate::diag::{LintCode, Severity, Site};
use crate::pass::{Artifacts, MemoryVerdict, Pass, Sink};

/// ZL001 (see module docs).
#[derive(Debug)]
pub struct MemoryResidencyPass;

/// Worst single-phase transient bytes per tier, plus the worst GPU's
/// cumulative KV-cache growth.
#[derive(Debug, Default, Clone, Copy)]
struct Transients {
    gpu: f64,
    cpu: f64,
    nvme: f64,
    /// Cumulative [`PlanOp::KvAppend`] bytes on the most-loaded GPU —
    /// residency growth over decode steps, never freed within the plan.
    kv: f64,
}

/// Per-phase transient staging bytes flowing *into* each tier.
fn transients(plan: &IterPlan) -> Transients {
    // (phase, gpu) / (phase, node) -> staged bytes.
    let mut gpu: HashMap<(Phase, (usize, usize)), f64> = HashMap::new();
    let mut cpu: HashMap<(Phase, usize), f64> = HashMap::new();
    let mut nvme: HashMap<Phase, f64> = HashMap::new();
    // gpu -> cumulative KV bytes (no phase key: the cache accumulates).
    let mut kv: HashMap<(usize, usize), f64> = HashMap::new();
    for node in plan.nodes() {
        match &node.op {
            PlanOp::TierTransfer { dst, bytes, .. } => match *dst {
                MemLoc::Gpu(g) => {
                    *gpu.entry((node.phase, (g.node, g.gpu))).or_insert(0.0) += bytes;
                }
                MemLoc::Cpu(s) => {
                    *cpu.entry((node.phase, s.node)).or_insert(0.0) += bytes;
                }
                MemLoc::Nvme(_) => {
                    *nvme.entry(node.phase).or_insert(0.0) += bytes;
                }
            },
            PlanOp::VolumeIo { dir, bytes, .. } => match dir {
                // A write stages bytes onto the drives; a read stages
                // them back into host DRAM. Both are transient on top of
                // the resident plan.
                IoDir::Write => *nvme.entry(node.phase).or_insert(0.0) += bytes,
                IoDir::Read => {
                    if let PlanOp::VolumeIo { socket, .. } = &node.op {
                        *cpu.entry((node.phase, socket.node)).or_insert(0.0) += bytes;
                    }
                }
            },
            PlanOp::KvAppend { gpu: g, bytes } => {
                *kv.entry((g.node, g.gpu)).or_insert(0.0) += bytes;
            }
            _ => {}
        }
    }
    fn max_v<K>(m: &HashMap<K, f64>) -> f64 {
        m.values().copied().fold(0.0f64, f64::max)
    }
    Transients {
        gpu: max_v(&gpu),
        cpu: max_v(&cpu),
        nvme: max_v(&nvme),
        kv: max_v(&kv),
    }
}

fn verdict(cluster: &Cluster, memory: &MemoryPlan, t: Transients) -> MemoryVerdict {
    let mem = &cluster.spec().mem;
    #[allow(clippy::cast_precision_loss)]
    let nvme_capacity = cluster.spec().nvme_layout.len() as f64 * mem.nvme_bytes_per_drive;
    MemoryVerdict {
        per_gpu_resident: memory.per_gpu_bytes,
        kv_growth: t.kv,
        per_gpu_peak: memory.per_gpu_bytes + t.kv + t.gpu,
        gpu_capacity: mem.gpu_bytes,
        per_node_cpu_resident: memory.per_node_cpu_bytes,
        per_node_cpu_peak: memory.per_node_cpu_bytes + t.cpu,
        cpu_capacity: mem.cpu_bytes_per_node,
        nvme_resident: memory.nvme_bytes,
        nvme_peak: memory.nvme_bytes + t.nvme,
        nvme_capacity,
        fits: memory.fits(cluster),
        bottleneck: memory.bottleneck(cluster),
    }
}

fn gb(bytes: f64) -> f64 {
    (bytes / 1e8).round() / 10.0
}

impl Pass for MemoryResidencyPass {
    fn code(&self) -> LintCode {
        LintCode::MemoryResidency
    }

    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>) {
        let Some(memory) = art.memory else {
            return;
        };
        let t = art.plan.map(transients).unwrap_or_default();
        let v = verdict(art.cluster, memory, t);

        // Deny findings replicate MemoryPlan::fits exactly, one per
        // overflowing tier (checked in gpu -> cpu -> nvme order like
        // MemoryPlan::bottleneck).
        // KV-cache growth is genuine residency (decode steps only ever
        // append), so it rides in the GPU tier's deny bound — a serving
        // batch whose cache outgrows HBM is statically OOM.
        let gpu_help = if v.kv_growth > 0.0 {
            "shrink the running batch / generation length or shard the KV cache \
             across more GPUs (higher TP)"
        } else {
            "shard more state off the GPU (higher ZeRO stage / offload) or shrink the model"
        };
        let tiers = [
            (
                "gpu",
                "per-GPU",
                "HBM",
                v.per_gpu_resident + v.kv_growth,
                v.per_gpu_peak,
                v.gpu_capacity,
                gpu_help,
            ),
            (
                "cpu",
                "per-node host",
                "DRAM",
                v.per_node_cpu_resident,
                v.per_node_cpu_peak,
                v.cpu_capacity,
                "offload less to the host or push optimizer state to NVMe",
            ),
            (
                "nvme",
                "NVMe",
                "scratch volume",
                v.nvme_resident,
                v.nvme_peak,
                v.nvme_capacity,
                "add scratch drives to the volume or shrink the model",
            ),
        ];
        for (_, what, tier, resident, peak, cap, help) in tiers {
            if resident > cap {
                sink.report(
                    LintCode::MemoryResidency,
                    Site::Config,
                    format!(
                        "{what} residency {:.1} GB exceeds {tier} capacity {:.1} GB",
                        gb(resident),
                        gb(cap)
                    ),
                    help.to_string(),
                );
            } else if peak > cap {
                // Legal at rest but the plan's transient staging can spike
                // past the tier: advisory, never gate-failing on its own.
                sink.report_at_most(
                    LintCode::MemoryResidency,
                    Severity::Warning,
                    Site::Config,
                    format!(
                        "{what} static peak bound {:.1} GB (resident {:.1} GB + staging) \
                         exceeds {tier} capacity {:.1} GB",
                        gb(peak),
                        gb(resident),
                        gb(cap)
                    ),
                    "staging may overlap with frees the static bound cannot see; \
                     verify with a simulated run"
                        .to_string(),
                );
            }
        }
        sink.set_memory_verdict(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::pass::PassManager;
    use zerosim_hw::{ClusterSpec, GpuId, SocketId};
    use zerosim_strategies::PhaseStage;

    fn run(
        cluster: &Cluster,
        memory: &MemoryPlan,
        plan: Option<&IterPlan>,
    ) -> crate::pass::AnalysisReport {
        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(MemoryResidencyPass));
        let mut art = Artifacts::new(cluster).with_memory(memory);
        if let Some(p) = plan {
            art = art.with_plan(p);
        }
        pm.run(&art)
    }

    fn mem(gpu: f64, cpu: f64, nvme: f64) -> MemoryPlan {
        MemoryPlan {
            per_gpu_bytes: gpu,
            total_gpu_bytes: gpu * 8.0,
            per_node_cpu_bytes: cpu,
            total_cpu_bytes: cpu * 2.0,
            nvme_bytes: nvme,
            gpu_breakdown: Vec::new(),
        }
    }

    #[test]
    fn fitting_plan_is_clean_and_carries_verdict() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let r = run(&c, &mem(30e9, 100e9, 0.0), None);
        assert!(r.is_clean());
        let v = r.memory.unwrap();
        assert!(v.fits);
        assert_eq!(v.bottleneck, None);
        assert_eq!(v.per_gpu_peak, 30e9);
    }

    #[test]
    fn oom_tiers_each_fire_once() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let r = run(&c, &mem(62e9, 2048e9, 99e12), None);
        assert_eq!(r.deny_count(), 3);
        let v = r.memory.clone().unwrap();
        assert!(!v.fits);
        assert_eq!(v.bottleneck, Some("gpu"));
        assert!(r.diagnostics[0].message.contains("HBM"));
    }

    #[test]
    fn transient_staging_raises_peak_to_warning() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        let g = GpuId { node: 0, gpu: 0 };
        let s = SocketId { node: 0, socket: 0 };
        let mut plan = IterPlan::new();
        plan.set_phase(PhaseStage::Forward, 0);
        // Stage 20 GB into a GPU already holding 30 GB resident: peak
        // 50 GB > 40 GB HBM, but residency fits.
        plan.push(
            PlanOp::TierTransfer {
                src: MemLoc::Cpu(s),
                dst: MemLoc::Gpu(g),
                bytes: 20e9,
                label: "h2d",
                track: 0,
            },
            &[],
        );
        let r = run(&c, &mem(30e9, 100e9, 0.0), Some(&plan));
        assert_eq!(r.deny_count(), 0);
        assert_eq!(r.warning_count(), 1);
        let v = r.memory.unwrap();
        assert_eq!(v.per_gpu_peak, 50e9);
        assert!(v.fits);
    }
}
