//! Memory placement plans: how many bytes each tier holds under a given
//! strategy, and whether the placement fits the hardware.

use zerosim_hw::Cluster;

/// Per-tier memory requirement of a training configuration.
///
/// Quantities are totals across the run (the paper reports per-node and
/// total figures; per-GPU peaks decide feasibility).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Peak bytes on the most-loaded GPU.
    pub per_gpu_bytes: f64,
    /// Total GPU bytes across all participating GPUs.
    pub total_gpu_bytes: f64,
    /// Peak host (CPU DRAM) bytes on the most-loaded node.
    pub per_node_cpu_bytes: f64,
    /// Total host bytes across participating nodes.
    pub total_cpu_bytes: f64,
    /// Total bytes placed on NVMe volumes.
    pub nvme_bytes: f64,
    /// Labelled components of the per-GPU figure, for reporting.
    pub gpu_breakdown: Vec<(String, f64)>,
}

impl MemoryPlan {
    /// Grand total across all tiers (the stacked bars of Fig. 11-b /
    /// Fig. 13-c).
    pub fn total(&self) -> f64 {
        self.total_gpu_bytes + self.total_cpu_bytes + self.nvme_bytes
    }

    /// True when every tier fits its capacity on `cluster`.
    pub fn fits(&self, cluster: &Cluster) -> bool {
        let mem = &cluster.spec().mem;
        let nvme_capacity = cluster.spec().nvme_layout.len() as f64 * mem.nvme_bytes_per_drive;
        self.per_gpu_bytes <= mem.gpu_bytes
            && self.per_node_cpu_bytes <= mem.cpu_bytes_per_node
            && self.nvme_bytes <= nvme_capacity
    }

    /// The tier that overflows first, if any.
    pub fn bottleneck(&self, cluster: &Cluster) -> Option<&'static str> {
        let mem = &cluster.spec().mem;
        if self.per_gpu_bytes > mem.gpu_bytes {
            return Some("gpu");
        }
        if self.per_node_cpu_bytes > mem.cpu_bytes_per_node {
            return Some("cpu");
        }
        let nvme_capacity = cluster.spec().nvme_layout.len() as f64 * mem.nvme_bytes_per_drive;
        if self.nvme_bytes > nvme_capacity {
            return Some("nvme");
        }
        None
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct MemoryPlan {
        per_gpu_bytes, total_gpu_bytes, per_node_cpu_bytes, total_cpu_bytes,
        nvme_bytes, gpu_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn plan(gpu: f64, cpu: f64, nvme: f64) -> MemoryPlan {
        MemoryPlan {
            per_gpu_bytes: gpu,
            total_gpu_bytes: gpu * 4.0,
            per_node_cpu_bytes: cpu,
            total_cpu_bytes: cpu,
            nvme_bytes: nvme,
            gpu_breakdown: vec![("states".into(), gpu)],
        }
    }

    #[test]
    fn fit_checks_each_tier() {
        let c = Cluster::new(ClusterSpec::default()).unwrap();
        assert!(plan(39e9, 500e9, 1e12).fits(&c));
        assert_eq!(plan(41e9, 0.0, 0.0).bottleneck(&c), Some("gpu"));
        assert_eq!(plan(1e9, 2000e9, 0.0).bottleneck(&c), Some("cpu"));
        assert_eq!(plan(1e9, 1e9, 99e12).bottleneck(&c), Some("nvme"));
        assert_eq!(plan(1e9, 1e9, 1e9).bottleneck(&c), None);
    }

    #[test]
    fn totals() {
        let p = plan(10e9, 100e9, 5e9);
        assert_eq!(p.total(), 40e9 + 100e9 + 5e9);
    }
}
