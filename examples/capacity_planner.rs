//! Capacity planner: "I need to fine-tune an N-billion-parameter model on
//! this cluster — which configuration fits, and what throughput should I
//! expect?" — the question the paper's Sec. IV/V answers.
//!
//! Run with: `cargo run --release --example capacity_planner -- 11.4`

use zerosim_core::{max_model_size, RunConfig, TrainingSim};
use zerosim_hw::{ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_report::{billions, tflops, Table};
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(11.4);
    let model = GptConfig::paper_model_with_params(target);
    println!(
        "target: {:.1} B parameters ({} layers)\n",
        model.num_params() / 1e9,
        model.num_layers
    );

    let mut table = Table::new(vec![
        "configuration",
        "nodes",
        "max size B",
        "fits?",
        "TFLOP/s at target",
    ]);

    let candidates: Vec<(Strategy, usize)> = vec![
        (Strategy::Ddp, 1),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
    ];

    for (strategy, nodes) in candidates {
        let mut sim = TrainingSim::new(ClusterSpec::default())?;
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cap = max_model_size(sim.cluster(), &strategy, &opts, sim.calibration());
        let (max_b, fits) = match cap {
            Some(c) => (billions(c.params), c.billions() >= target),
            None => ("-".into(), false),
        };
        let tput = if fits {
            let r = sim.run(&strategy, &model, &opts, &RunConfig::quick())?;
            tflops(r.throughput_flops())
        } else {
            "-".into()
        };
        table.row(vec![
            strategy.name(),
            nodes.to_string(),
            max_b,
            if fits { "yes".into() } else { "no".into() },
            tput,
        ]);
    }

    // And the big gun: ZeRO-Infinity on the scratch RAID0.
    let mut sim = TrainingSim::new(ClusterSpec::default())?;
    let vol = sim.cluster_mut().create_volume(vec![
        NvmeId { node: 0, drive: 0 },
        NvmeId { node: 0, drive: 1 },
    ]);
    let strategy = Strategy::ZeroInfinity {
        offload_params: false,
        placement: InfinityPlacement::new(vec![vol]),
    };
    let opts = TrainOptions::single_node();
    let cap = max_model_size(sim.cluster(), &strategy, &opts, sim.calibration())
        .expect("infinity fits something");
    let fits = cap.billions() >= target;
    let tput = if fits {
        let r = sim.run(&strategy, &model, &opts, &RunConfig::quick())?;
        tflops(r.throughput_flops())
    } else {
        "-".into()
    };
    table.row(vec![
        strategy.name(),
        "1".into(),
        billions(cap.params),
        if fits { "yes".into() } else { "no".into() },
        tput,
    ]);

    println!("{}", table.render());
    println!("(throughput omitted for configurations the target does not fit)");
    Ok(())
}
