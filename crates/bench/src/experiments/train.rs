//! Training characterization experiments: Figs. 5–10, Tables IV and V.

use zerosim_core::{profile_tracks, RunConfig, TrainingReport};
use zerosim_hw::LinkClass;
use zerosim_model::GptConfig;
use zerosim_report::{downsample, gbps, scatter, sparkline, Table};
use zerosim_strategies::{Strategy, ZeroStage};

use crate::data::{self, NvmeConfig};

/// Paper reference values (Fig. 6): achieved model size in billions.
pub const PAPER_CAPACITY: [(&str, f64, f64); 5] = [
    ("PyTorch DDP", 1.4, 1.4),
    ("Megatron-LM", 5.5, 11.4),
    ("ZeRO-1", 4.4, 6.4),
    ("ZeRO-2", 5.2, 8.5),
    ("ZeRO-3", 6.6, 13.5),
];

/// Paper reference values (Fig. 7): throughput in TFLOP/s at max size.
pub const PAPER_THROUGHPUT: [(&str, f64, f64); 5] = [
    ("PyTorch DDP", 438.0, 640.0),
    ("Megatron-LM", 331.0, 121.0),
    ("ZeRO-1", 391.0, 395.0),
    ("ZeRO-2", 524.0, 424.0),
    ("ZeRO-3", 381.0, 458.0),
];

/// The nine configurations of Fig. 5, all at the 1.4 B model.
fn fig5_configs() -> Vec<(&'static str, Strategy, Option<NvmeConfig>)> {
    let mut v: Vec<(&'static str, Strategy, Option<NvmeConfig>)> = data::baselines(1)
        .into_iter()
        .map(|(n, s)| (n, s, None))
        .collect();
    v.push((
        "ZeRO-1 (CPU opt)",
        Strategy::ZeroOffload {
            stage: ZeroStage::One,
            offload_params: false,
        },
        None,
    ));
    v.push((
        "ZeRO-2 (CPU opt)",
        Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
        None,
    ));
    v.push(("ZeRO-3 (2xNVME opt)", Strategy::Ddp, Some(NvmeConfig::B)));
    v.push((
        "ZeRO-3 (2xNVME opt+param)",
        Strategy::Ddp,
        Some(NvmeConfig::B),
    ));
    v
}

fn run_fig5_config(name: &str, strategy: Strategy, nvme: Option<NvmeConfig>) -> TrainingReport {
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = data::opts(1);
    let cfg = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    match nvme {
        None => {
            let mut sim = data::sim();
            sim.run(&strategy, &model, &opts, &cfg).expect("runs")
        }
        Some(c) => {
            let (mut sim, placement) = c.build();
            let offload_params = name.contains("param");
            let s = Strategy::ZeroInfinity {
                offload_params,
                placement,
            };
            let cfg = RunConfig {
                warmup_iters: 3,
                allow_overflow: true,
                ..RunConfig::default()
            };
            sim.run(&s, &model, &opts, &cfg).expect("runs")
        }
    }
}

/// Fig. 5 — single-iteration characterization of all nine configurations
/// at 1.4 B parameters: iteration time plus GPU-0 busy breakdown.
pub fn fig5() -> String {
    let mut t = Table::new(vec![
        "configuration",
        "iter time",
        "gemm %",
        "elementwise %",
        "nccl %",
        "staging %",
        "idle %",
    ]);
    for (name, strategy, nvme) in fig5_configs() {
        let report = run_fig5_config(name, strategy, nvme);
        let profiles = profile_tracks(&report.spans);
        let gpu0 = profiles.iter().find(|p| p.track == 0);
        let (gemm, ew, nccl, staging, idle) = match gpu0 {
            Some(p) => {
                let ext = p.extent.as_secs().max(1e-12);
                let pct = |s: f64| 100.0 * s / ext;
                let nccl_s: f64 = [
                    "allreduce",
                    "allgather",
                    "reducescatter",
                    "reduce",
                    "broadcast",
                ]
                .iter()
                .map(|l| p.label_time(l).as_secs())
                .sum();
                let staging_s: f64 = ["h2d", "d2h", "nvme_read", "nvme_write"]
                    .iter()
                    .map(|l| p.label_time(l).as_secs())
                    .sum();
                let compute_s = p.label_time("gemm").as_secs()
                    + p.label_time("elementwise").as_secs()
                    + p.label_time("weight_update").as_secs()
                    + p.label_time("transform").as_secs();
                // Comm/staging run on separate streams and overlap compute;
                // GPU idle is what neither compute nor an exposed (serial)
                // stall covers.
                let idle =
                    (100.0 - pct(compute_s) - pct(nccl_s).min(100.0 - pct(compute_s))).max(0.0);
                (
                    pct(p.label_time("gemm").as_secs()),
                    pct(p.label_time("elementwise").as_secs()),
                    pct(nccl_s),
                    pct(staging_s),
                    idle,
                )
            }
            None => (0.0, 0.0, 0.0, 0.0, 100.0),
        };
        t.row(vec![
            name.into(),
            format!("{}", report.iter_time),
            format!("{gemm:.1}"),
            format!("{ew:.1}"),
            format!("{nccl:.1}"),
            format!("{staging:.1}"),
            format!("{idle:.1}"),
        ]);
    }
    format!(
        "Fig. 5 — single-iteration timeline characterization (1.4 B model, single node):\n{}",
        t.render()
    )
}

/// Fig. 6 — achieved model size for single- and dual-node training.
pub fn fig6() -> String {
    let mut t = Table::new(vec![
        "configuration",
        "1-node B",
        "paper",
        "2-node B",
        "paper",
    ]);
    for (i, (name, strategy)) in data::baselines(1).into_iter().enumerate() {
        let single = data::capacity(&strategy, 1);
        let dual_strategy = if matches!(strategy, Strategy::Megatron { .. }) {
            Strategy::Megatron { tp: 8, pp: 1 }
        } else {
            strategy.clone()
        };
        let dual = data::capacity(&dual_strategy, 2);
        t.row(vec![
            name.into(),
            format!("{:.1}", single.billions()),
            format!("{:.1}", PAPER_CAPACITY[i].1),
            format!("{:.1}", dual.billions()),
            format!("{:.1}", PAPER_CAPACITY[i].2),
        ]);
    }
    format!(
        "Fig. 6 — achieved model size (billions of parameters):\n{}",
        t.render()
    )
}

/// Runs the five baselines at their capacity for `nodes` nodes.
pub fn baseline_reports(nodes: usize, thorough: bool) -> Vec<(&'static str, TrainingReport)> {
    data::baselines(nodes)
        .into_iter()
        .map(|(name, strategy)| {
            let (_, report) = data::run_at_capacity(&strategy, nodes, thorough);
            (name, report)
        })
        .collect()
}

/// Fig. 7 — compute throughput at max model size.
pub fn fig7() -> String {
    let mut t = Table::new(vec![
        "configuration",
        "1-node TFLOP/s",
        "paper",
        "2-node TFLOP/s",
        "paper",
    ]);
    let single = baseline_reports(1, false);
    let dual = baseline_reports(2, false);
    for (i, ((name, s), (_, d))) in single.iter().zip(&dual).enumerate() {
        t.row(vec![
            (*name).into(),
            format!("{:.0}", s.throughput_tflops()),
            format!("{:.0}", PAPER_THROUGHPUT[i].1),
            format!("{:.0}", d.throughput_tflops()),
            format!("{:.0}", PAPER_THROUGHPUT[i].2),
        ]);
    }
    format!(
        "Fig. 7 — compute throughput at max model size:\n{}",
        t.render()
    )
}

/// Fig. 8 — throughput vs model-size trade-off scatter.
pub fn fig8() -> String {
    let mut out = String::new();
    for nodes in [1, 2] {
        let reports = baseline_reports(nodes, false);
        let pts: Vec<(f64, f64, &str)> = reports
            .iter()
            .map(|(name, r)| (r.model_billions(), r.throughput_tflops(), *name))
            .collect();
        out.push_str(&format!(
            "Fig. 8-{} — trade-off, {}-node (x: size B, y: TFLOP/s):\n{}\n",
            if nodes == 1 { 'a' } else { 'b' },
            nodes,
            scatter(&pts, 48, 12)
        ));
    }
    out
}

/// Fig. 9 — NVLink utilization pattern for single-node training.
pub fn fig9() -> String {
    let mut out = String::from("Fig. 9 — NVLink utilization pattern (single node, GBps):\n");
    for (name, report) in baseline_reports(1, true) {
        let series = report.bandwidth.tiled_series(0, LinkClass::NvLink, 10.0);
        let stats = report.bandwidth.stats(0, LinkClass::NvLink);
        out.push_str(&format!(
            "{name:<14} {}  avg {} / peak {}\n",
            sparkline(&downsample(&series, 60), Some(300e9)),
            gbps(stats.avg),
            gbps(stats.peak),
        ));
    }
    out
}

/// Fig. 10 — dual-node utilization patterns for NVLink, PCIe-GPU,
/// PCIe-NIC, and RoCE.
pub fn fig10() -> String {
    let mut out = String::from("Fig. 10 — dual-node utilization patterns (GBps):\n");
    let reports = baseline_reports(2, true);
    for class in [
        LinkClass::NvLink,
        LinkClass::PcieGpu,
        LinkClass::PcieNic,
        LinkClass::Roce,
    ] {
        out.push_str(&format!("{class}:\n"));
        for (name, report) in &reports {
            let series = report.bandwidth.tiled_series(0, class, 10.0);
            let stats = report.bandwidth.stats(0, class);
            out.push_str(&format!(
                "  {name:<14} {}  avg {} / peak {}\n",
                sparkline(&downsample(&series, 60), None),
                gbps(stats.avg),
                gbps(stats.peak),
            ));
        }
    }
    out
}

fn table4_row(t: &mut Table, name: &str, report: &TrainingReport) {
    let mut cells = vec![name.to_string()];
    for class in LinkClass::TABLE_IV {
        let s = report.bandwidth.stats(0, class);
        cells.push(gbps(s.avg));
        cells.push(gbps(s.p90));
        cells.push(gbps(s.peak));
    }
    t.row(cells);
}

fn table4_header() -> Table {
    let mut headers = vec!["configuration".to_string()];
    for class in LinkClass::TABLE_IV {
        for stat in ["avg", "90th", "peak"] {
            headers.push(format!("{class} {stat}"));
        }
    }
    Table::new(headers)
}

/// Table IV — bandwidth utilization for every configuration section.
pub fn table4() -> String {
    let mut out =
        String::from("Table IV — bandwidth utilization (GBps, node-0 aggregate bidirectional):\n");

    let mut t = table4_header();
    for (name, report) in baseline_reports(1, true) {
        table4_row(&mut t, name, &report);
    }
    out.push_str(&format!("\n[Single node]\n{}", t.render()));

    let mut t = table4_header();
    for (name, report) in baseline_reports(2, true) {
        table4_row(&mut t, name, &report);
    }
    out.push_str(&format!("\n[Dual nodes]\n{}", t.render()));

    // Consolidation rows at the 11.4 B model (Sec. V-A / V-B).
    let model = GptConfig::paper_model_with_params(11.4);
    let mut t = table4_header();
    for (name, strategy) in data::offload_strategies() {
        let mut sim = data::sim();
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::default()
        };
        let report = sim
            .run(&strategy, &model, &data::opts(1), &cfg)
            .expect("offload runs");
        table4_row(&mut t, name, &report);
    }
    out.push_str(&format!(
        "\n[Consolidate dual → single with ZeRO-Offload (CPU optimizer), 11.4 B]\n{}",
        t.render()
    ));

    for (nvme, label) in [(NvmeConfig::A, "1 x NVME"), (NvmeConfig::B, "2 x NVME")] {
        let mut t = table4_header();
        for offload_params in [false, true] {
            let (mut sim, placement) = nvme.build();
            let strategy = Strategy::ZeroInfinity {
                offload_params,
                placement,
            };
            let cfg = RunConfig {
                allow_overflow: true,
                ..RunConfig::default()
            };
            let report = sim
                .run(&strategy, &model, &data::opts(1), &cfg)
                .expect("infinity runs");
            let name = if offload_params {
                "Optimizer & Parameter"
            } else {
                "Optimizer"
            };
            table4_row(&mut t, name, &report);
        }
        out.push_str(&format!(
            "\n[Consolidate dual → single with ZeRO-Infinity ({label}), 11.4 B]\n{}",
            t.render()
        ));
    }

    // Largest single-node model per offload configuration (Sec. V-C rows).
    let mut t = table4_header();
    let largest: Vec<(&str, Strategy, Option<NvmeConfig>)> = vec![
        (
            "ZeRO-1 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::One,
                offload_params: false,
            },
            None,
        ),
        (
            "ZeRO-2 (CPU)",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            None,
        ),
        ("ZeRO-3 (2 x NVME)", Strategy::Ddp, Some(NvmeConfig::B)),
    ];
    for (name, strategy, nvme) in largest {
        let report = match nvme {
            None => {
                let (_, report) = data::run_at_capacity(&strategy, 1, true);
                report
            }
            Some(c) => {
                let (mut sim, placement) = c.build();
                let s = Strategy::ZeroInfinity {
                    offload_params: false,
                    placement,
                };
                let cap = zerosim_core::max_model_size(
                    sim.cluster(),
                    &s,
                    &data::opts(1),
                    sim.calibration(),
                )
                .expect("fits");
                let m = GptConfig::paper_model(cap.num_layers);
                let cfg = RunConfig {
                    warmup_iters: 1,
                    measure_iters: 1,
                    ..RunConfig::default()
                };
                sim.run(&s, &m, &data::opts(1), &cfg).expect("runs")
            }
        };
        table4_row(&mut t, name, &report);
    }
    out.push_str(&format!(
        "\n[Largest model for single node with ZeRO-Offload / ZeRO-Infinity]\n{}",
        t.render()
    ));

    out
}

/// The model sizes of Table V (billions).
pub const TABLE5_SIZES: [f64; 15] = [
    0.7, 1.4, 2.9, 4.4, 5.2, 5.5, 6.0, 6.6, 7.8, 8.9, 11.6, 14.2, 20.6, 26.9, 33.3,
];

/// Table V — throughput sensitivity to model size.
pub fn table5() -> String {
    let mut headers = vec!["configuration".to_string()];
    headers.extend(TABLE5_SIZES.iter().map(|s| format!("{s}")));
    let mut t = Table::new(headers);

    let mut configs: Vec<(&'static str, Strategy, Option<NvmeConfig>)> = data::baselines(1)
        .into_iter()
        .map(|(n, s)| (n, s, None))
        .collect();
    configs.push((
        "ZeRO-1 (CPU)",
        Strategy::ZeroOffload {
            stage: ZeroStage::One,
            offload_params: false,
        },
        None,
    ));
    configs.push((
        "ZeRO-2 (CPU)",
        Strategy::ZeroOffload {
            stage: ZeroStage::Two,
            offload_params: false,
        },
        None,
    ));
    configs.push(("ZeRO-3 (2xNVME)", Strategy::Ddp, Some(NvmeConfig::B)));

    for (name, strategy, nvme) in configs {
        let mut cells = vec![name.to_string()];
        for &billions in &TABLE5_SIZES {
            let model = GptConfig::paper_model_with_params(billions);
            let tput = match &nvme {
                None => {
                    let mut sim = data::sim();
                    sim.run(&strategy, &model, &data::opts(1), &RunConfig::quick())
                        .ok()
                        .map(|r| r.throughput_tflops())
                }
                Some(c) => {
                    let (mut sim, placement) = c.build();
                    let s = Strategy::ZeroInfinity {
                        offload_params: false,
                        placement,
                    };
                    // NVMe runs need several iterations to drain the
                    // drives' DRAM caches into steady state.
                    let cfg = RunConfig {
                        warmup_iters: 4,
                        measure_iters: 2,
                        ..RunConfig::default()
                    };
                    sim.run(&s, &model, &data::opts(1), &cfg)
                        .ok()
                        .map(|r| r.throughput_tflops())
                }
            };
            cells.push(tput.map(|v| format!("{v:.0}")).unwrap_or_default());
        }
        t.row(cells);
    }
    format!(
        "Table V — throughput (TFLOP/s) vs model size (billions), single node:\n{}",
        t.render()
    )
}

/// Quick sanity entry points used by tests.
pub mod checks {
    use super::*;

    /// Dual-node Megatron collapses relative to ZeRO (Sec. IV-C2).
    pub fn dual_node_megatron_collapses() -> bool {
        let reports = baseline_reports(2, false);
        let megatron = reports[1].1.throughput_tflops();
        let z3 = reports[4].1.throughput_tflops();
        megatron < 0.5 * z3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_capacities_render_with_paper_columns() {
        let s = fig6();
        assert!(s.contains("ZeRO-3"));
        assert!(s.contains("11.4"), "{s}");
    }

    #[test]
    fn fig7_ordering_matches_paper_shapes() {
        let single = baseline_reports(1, false);
        let by_name = |n: &str| {
            single
                .iter()
                .find(|(name, _)| *name == n)
                .map(|(_, r)| r.throughput_tflops())
                .unwrap()
        };
        let ddp = by_name("PyTorch DDP");
        let megatron = by_name("Megatron-LM");
        let z2 = by_name("ZeRO-2");
        let z3 = by_name("ZeRO-3");
        // Fig. 7-a: Megatron is the slowest baseline; ZeRO-2 beats ZeRO-3.
        assert!(megatron < ddp, "megatron {megatron} < ddp {ddp}");
        assert!(megatron < z3, "megatron {megatron} < z3 {z3}");
        assert!(z2 > z3, "z2 {z2} > z3 {z3}");
    }

    #[test]
    fn dual_node_megatron_collapse() {
        assert!(checks::dual_node_megatron_collapses());
    }

    #[test]
    fn fig5_covers_nine_configs() {
        let s = fig5();
        for name in [
            "PyTorch DDP",
            "Megatron-LM",
            "ZeRO-1",
            "ZeRO-2",
            "ZeRO-3",
            "ZeRO-1 (CPU opt)",
            "ZeRO-2 (CPU opt)",
            "ZeRO-3 (2xNVME opt)",
            "ZeRO-3 (2xNVME opt+param)",
        ] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }
}
