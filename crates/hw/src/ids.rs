//! Typed identifiers for devices and link groups.
//!
//! Every piece of hardware gets a newtype id so that "GPU 2 of node 1"
//! can never be confused with "NVMe drive 2 of node 1" at compile time.

use std::fmt;

/// A compute node (one Dell XE8545 chassis in the paper's cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// A CPU socket within a node (`socket` ∈ {0, 1} on the XE8545).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId {
    /// Owning node.
    pub node: usize,
    /// Socket index within the node.
    pub socket: usize,
}

/// A GPU. On the XE8545, GPUs 0–1 hang off socket 0 and GPUs 2–3 off
/// socket 1 (PCIe links #1 and #3 in Fig. 2-b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId {
    /// Owning node.
    pub node: usize,
    /// GPU index within the node.
    pub gpu: usize,
}

impl GpuId {
    /// Socket this GPU's PCIe link terminates on, assuming
    /// `gpus_per_socket` GPUs per socket.
    pub fn socket(&self, gpus_per_socket: usize) -> SocketId {
        SocketId {
            node: self.node,
            socket: self.gpu / gpus_per_socket,
        }
    }
}

/// A NIC. Each socket hosts exactly one ConnectX-6 (NIC index == socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NicId {
    /// Owning node.
    pub node: usize,
    /// NIC index within the node (equals the hosting socket).
    pub nic: usize,
}

/// A scratch NVMe drive (index into the node's drive layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NvmeId {
    /// Owning node.
    pub node: usize,
    /// Drive index within the node's scratch layout.
    pub drive: usize,
}

/// A RAID0 (or single-drive) volume registered with the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VolumeId(pub usize);

/// The interconnect classes the paper reports utilization for (Table IV),
/// plus the virtual I/O-die crossbar links of the contention model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkClass {
    /// CPU memory channels (half-duplex, per socket).
    Dram,
    /// Inter-socket Infinity Fabric (xGMI / IFIS).
    Xgmi,
    /// PCIe 4.0 x16 links to GPUs.
    PcieGpu,
    /// PCIe 4.0 x4 links to NVMe drives.
    PcieNvme,
    /// PCIe 4.0 x16 links to NICs.
    PcieNic,
    /// GPU-to-GPU NVLink 3.0 meshes.
    NvLink,
    /// Inter-node RDMA over Converged Ethernet.
    Roce,
    /// NVMe device service (NAND + DRAM cache), not a PCIe wire.
    NvmeDev,
    /// Virtual SerDes-pair crossbar links inside each CPU's I/O die.
    IodPair,
    /// Aggregated switch-fabric uplinks/downlinks above the NIC tier
    /// (generated multi-tier topologies only; absent on the paper's
    /// single-switch testbed).
    Fabric,
}

impl LinkClass {
    /// All classes the paper tabulates in Table IV, in the paper's column
    /// order.
    pub const TABLE_IV: [LinkClass; 7] = [
        LinkClass::Dram,
        LinkClass::Xgmi,
        LinkClass::PcieGpu,
        LinkClass::PcieNvme,
        LinkClass::PcieNic,
        LinkClass::NvLink,
        LinkClass::Roce,
    ];
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::Dram => "DRAM",
            LinkClass::Xgmi => "xGMI",
            LinkClass::PcieGpu => "PCIe-GPU",
            LinkClass::PcieNvme => "PCIe-NVME",
            LinkClass::PcieNic => "PCIe-NIC",
            LinkClass::NvLink => "NVLink",
            LinkClass::Roce => "RoCE",
            LinkClass::NvmeDev => "NVMe-Dev",
            LinkClass::IodPair => "IOD-Pair",
            LinkClass::Fabric => "Fabric",
        };
        f.write_str(s)
    }
}

/// A SerDes *set* on a CPU's I/O die. The paper hypothesizes (Sec. III-C4)
/// that traffic routed between two such sets contends inside the IOD
/// crossbar; the DRAM memory controller is not a SerDes set and is exempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SerdesSet {
    /// The x16 set wired to a local GPU (local index within the socket).
    PcieGpu(usize),
    /// The x16 set wired to the socket's NIC.
    PcieNic,
    /// The (bifurcated) set wired to an NVMe drive slot.
    PcieNvme(usize),
    /// The xGMI sets towards the other socket (treated as one aggregate).
    Xgmi,
}

impl SerdesSet {
    /// True if this set is an xGMI (inter-socket) set.
    pub fn is_xgmi(&self) -> bool {
        matches!(self, SerdesSet::Xgmi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_socket_mapping() {
        assert_eq!(GpuId { node: 0, gpu: 0 }.socket(2).socket, 0);
        assert_eq!(GpuId { node: 0, gpu: 1 }.socket(2).socket, 0);
        assert_eq!(GpuId { node: 0, gpu: 2 }.socket(2).socket, 1);
        assert_eq!(GpuId { node: 1, gpu: 3 }.socket(2).node, 1);
    }

    #[test]
    fn link_class_display() {
        assert_eq!(LinkClass::PcieNvme.to_string(), "PCIe-NVME");
        assert_eq!(LinkClass::Roce.to_string(), "RoCE");
    }

    #[test]
    fn table_iv_order_matches_paper() {
        let names: Vec<String> = LinkClass::TABLE_IV.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            names,
            [
                "DRAM",
                "xGMI",
                "PCIe-GPU",
                "PCIe-NVME",
                "PCIe-NIC",
                "NVLink",
                "RoCE"
            ]
        );
    }

    #[test]
    fn serdes_set_xgmi_flag() {
        assert!(SerdesSet::Xgmi.is_xgmi());
        assert!(!SerdesSet::PcieGpu(0).is_xgmi());
        assert!(!SerdesSet::PcieNvme(3).is_xgmi());
    }
}
