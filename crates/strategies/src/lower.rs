//! Lowering: compiles an [`IterPlan`] into an executable simkit [`Dag`].
//!
//! This is the **only** place in the strategy stack that knows about
//! `TaskSpec`s. Each semantic op expands to the exact task fragment the
//! seed implementation hand-emitted — collectives through
//! `zerosim-collectives` (ring / hierarchical schedules), tier transfers
//! through the hardware model's routing, volume I/O as striped per-drive
//! flows — so lowered DAGs are byte-identical to the pre-IR builders.
//!
//! Lowering separates **structure** from **stamping**:
//!
//! * *Structure* (topology, dependencies, routes, byte volumes) depends
//!   only on (strategy, model, cluster, options) and is computed once per
//!   configuration by [`lower`].
//! * *Stamping* ([`LoweredPlan::stamp`]) patches only the jitter-seeded
//!   GEMM durations (and their dependent element-wise spans) in place,
//!   once per iteration.
//!
//! The engine therefore performs one full DAG build per run instead of
//! `warmup + measure` of them; `crates/bench/benches/dag_build.rs`
//! measures the difference.

use zerosim_collectives::emit_collective_capped;
use zerosim_hw::Cluster;
use zerosim_simkit::{Dag, DagBuilder, SimTime, TaskId};

use crate::calib::Calibration;
use crate::error::StrategyError;
use crate::plan::{IterPlan, OptimizerDevice, PlanOp};

/// One jitter-stamped GEMM span and its dependent element-wise span.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ComputeStamp {
    /// The GEMM compute task (jittered at stamping time).
    gemm: TaskId,
    /// The trailing element-wise task (its duration tracks the GEMM's).
    elementwise: TaskId,
    /// Un-jittered GEMM duration in seconds.
    base_gemm_s: f64,
}

/// A plan compiled to a [`Dag`] whose structure is iteration-invariant.
///
/// Call [`LoweredPlan::stamp`] with the iteration's jitter seed before
/// executing; stamping only rewrites compute durations and is O(#layers),
/// not O(#tasks).
#[derive(Debug, Clone)]
pub struct LoweredPlan {
    dag: Dag,
    stamps: Vec<ComputeStamp>,
    jitter_amp: f64,
    elementwise_frac: f64,
    kernel_overhead_s: f64,
    /// Seed of the durations currently written into `dag`, when known.
    /// Lets fault replays that re-execute the same iteration skip the
    /// re-stamp entirely: the stamped durations are a pure function of
    /// the seed.
    last_seed: Option<u64>,
}

impl LoweredPlan {
    /// Re-stamps the jittered GEMM durations for `seed` and returns the
    /// ready-to-run DAG.
    ///
    /// Stamping the seed already in place is a no-op (the memo that keeps
    /// fault-replay rollbacks from rewriting identical durations).
    pub fn stamp(&mut self, seed: u64) -> &Dag {
        if self.last_seed == Some(seed) {
            return &self.dag;
        }
        self.last_seed = Some(seed);
        for s in &self.stamps {
            let gemm_s = s.base_gemm_s * jitter_factor(self.jitter_amp, seed, s.gemm.index());
            self.dag
                .set_compute_duration(s.gemm, SimTime::from_secs(gemm_s));
            let ew_s = (self.elementwise_frac * gemm_s).max(self.kernel_overhead_s);
            self.dag
                .set_compute_duration(s.elementwise, SimTime::from_secs(ew_s));
        }
        &self.dag
    }

    /// The lowered DAG as last stamped (base durations if never stamped).
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Consumes the plan, returning the DAG as last stamped.
    pub fn into_dag(self) -> Dag {
        self.dag
    }

    /// Number of tasks in the lowered DAG.
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// True when the DAG holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// How many GEMM spans stamping rewrites per iteration (the per-
    /// iteration work; everything else is reused).
    pub fn stamped_tasks(&self) -> usize {
        self.stamps.len()
    }
}

/// Deterministic per-task jitter factor in `1 ± amp`, keyed on the
/// iteration seed and the GEMM task's position in the DAG (SplitMix64).
///
/// Bit-exact with the seed implementation's `IterCtx::jitter`, which
/// hashed `dag.len()` at emission time — lowering replays tasks in the
/// identical order, so the stamped durations reproduce the pre-IR
/// pipeline exactly.
fn jitter_factor(amp: f64, seed: u64, position: usize) -> f64 {
    if amp == 0.0 {
        return 1.0;
    }
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(position as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + amp * (2.0 * u - 1.0)
}

/// Compiles `plan` against `cluster` and `calib`.
///
/// In debug/test builds the plan is first machine-checked by
/// [`IterPlan::validate`] (collective wire-volume closed forms, route
/// feasibility, phase ordering); release builds skip the check and trust
/// the strategy.
///
/// GEMM durations in the returned [`LoweredPlan`] are un-jittered; call
/// [`LoweredPlan::stamp`] before running.
///
/// # Errors
/// [`StrategyError::InvalidPlan`] when validation rejects the plan.
pub fn lower(
    plan: &IterPlan,
    cluster: &Cluster,
    calib: &Calibration,
) -> Result<LoweredPlan, StrategyError> {
    if cfg!(debug_assertions) {
        plan.validate(cluster)?;
    }
    let mut b = DagBuilder::new();
    let mut stamps: Vec<ComputeStamp> = Vec::new();
    // Done-task per op: the TaskId downstream ops hook their deps onto.
    let mut done: Vec<TaskId> = Vec::with_capacity(plan.len());

    for (i, node) in plan.nodes().iter().enumerate() {
        let deps: Vec<TaskId> = node.deps.iter().map(|d| done[d.index()]).collect();
        // A declared codec means the encoded blob is what moves: scale
        // the payload before the schedule or route prices it.
        let ratio = plan.codec_ratio_at(i);
        let task = match &node.op {
            PlanOp::Overhead => b.delay(SimTime::from_secs(calib.iteration_overhead_s), &deps),
            PlanOp::LayerCompute { gpu, flops, label } => {
                let res = cluster.gpu_resource(*gpu);
                // A transformer layer issues ~6 GEMM kernels; efficiency
                // is judged per kernel.
                let per_kernel = flops / 6.0;
                let base_gemm_s = 6.0 * calib.kernel_time_s(per_kernel);
                let gemm = b.compute(res, SimTime::from_secs(base_gemm_s), *label, &deps);
                let ew_s = (calib.elementwise_frac * base_gemm_s).max(calib.kernel_overhead_s);
                let ew = b.compute(res, SimTime::from_secs(ew_s), "elementwise", &[gemm]);
                stamps.push(ComputeStamp {
                    gemm,
                    elementwise: ew,
                    base_gemm_s,
                });
                ew
            }
            PlanOp::FixedCompute { gpu, secs, label } => {
                let res = cluster.gpu_resource(*gpu);
                b.compute(res, SimTime::from_secs(*secs), *label, &deps)
            }
            PlanOp::OptimizerStep { device, params } => match device {
                OptimizerDevice::Gpu(g) => {
                    let res = cluster.gpu_resource(*g);
                    b.compute(
                        res,
                        SimTime::from_secs(calib.gpu_adam_time_s(*params)),
                        "weight_update",
                        &deps,
                    )
                }
                OptimizerDevice::Cpu(s) => {
                    let res = cluster.cpu_resource(*s);
                    b.compute(
                        res,
                        SimTime::from_secs(calib.cpu_adam_time_s(*params)),
                        "cpu_adam",
                        &deps,
                    )
                }
            },
            PlanOp::Collective {
                kind,
                group,
                bytes,
                cap,
            } => {
                emit_collective_capped(&mut b, cluster, group, *kind, *bytes * ratio, &deps, *cap)
                    .done
            }
            PlanOp::TierTransfer {
                src,
                dst,
                bytes,
                label,
                track,
            } => {
                let route = cluster.route(*src, *dst);
                b.transfer_capped(
                    route.links,
                    (bytes * ratio).max(1.0),
                    route.latency,
                    route.cap,
                    *label,
                    *track,
                    &deps,
                )
            }
            PlanOp::VolumeIo {
                volume,
                socket,
                dir,
                bytes,
                label,
                track,
            } => {
                // Striped across the volume's member drives: one flow per
                // drive plus a join.
                let routes = cluster.volume_io_routes(*volume, *socket, *dir);
                let k = routes.len() as f64;
                let parts: Vec<TaskId> = routes
                    .into_iter()
                    .map(|r| {
                        b.transfer_capped(
                            r.links,
                            (bytes * ratio / k).max(1.0),
                            r.latency,
                            r.cap,
                            *label,
                            *track,
                            &deps,
                        )
                    })
                    .collect();
                b.marker(&parts)
            }
            PlanOp::Barrier => b.marker(&deps),
            // Residency, not time: the append itself is instantaneous
            // (attention cost over the cache rides in LayerCompute), so
            // it lowers to a join marker. Its bytes matter to planlint
            // ZL001 and the serving driver's KV accounting.
            PlanOp::KvAppend { .. } => b.marker(&deps),
        };
        done.push(task);
    }

    Ok(LoweredPlan {
        dag: b.build(),
        stamps,
        jitter_amp: calib.compute_jitter_frac,
        elementwise_frac: calib.elementwise_frac,
        kernel_overhead_s: calib.kernel_overhead_s,
        last_seed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OptimizerDevice, PhaseStage, PlanOp};
    use zerosim_hw::{ClusterSpec, GpuId};

    fn fixtures() -> (Cluster, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            Calibration::default(),
        )
    }

    fn small_plan() -> IterPlan {
        let g = GpuId { node: 0, gpu: 0 };
        let mut p = IterPlan::new();
        let pro = p.push(PlanOp::Overhead, &[]);
        p.set_phase(PhaseStage::Forward, 0);
        let fwd = p.push(
            PlanOp::LayerCompute {
                gpu: g,
                flops: 4e11,
                label: "gemm",
            },
            &[pro],
        );
        p.set_phase(PhaseStage::Step, 0);
        p.push(
            PlanOp::OptimizerStep {
                device: OptimizerDevice::Gpu(g),
                params: 1e9,
            },
            &[fwd],
        );
        p
    }

    #[test]
    fn lowering_expands_layer_compute_to_two_spans() {
        let (c, k) = fixtures();
        let lowered = lower(&small_plan(), &c, &k).unwrap();
        // delay + gemm + elementwise + weight_update.
        assert_eq!(lowered.len(), 4);
        assert_eq!(lowered.stamped_tasks(), 1);
    }

    #[test]
    fn stamping_changes_durations_not_structure() {
        let (c, k) = fixtures();
        let mut lowered = lower(&small_plan(), &c, &k).unwrap();
        let len = lowered.len();
        let d0 = lowered
            .stamp(0)
            .compute_demand(c.gpu_resource(GpuId { node: 0, gpu: 0 }));
        let d1 = lowered
            .stamp(1)
            .compute_demand(c.gpu_resource(GpuId { node: 0, gpu: 0 }));
        assert_ne!(d0, d1, "different seeds must stamp different jitter");
        assert_eq!(lowered.len(), len);
        // Stamping is deterministic per seed.
        let d0b = lowered
            .stamp(0)
            .compute_demand(c.gpu_resource(GpuId { node: 0, gpu: 0 }));
        assert_eq!(d0, d0b);
    }

    #[test]
    fn restamping_same_seed_is_a_memoized_noop() {
        let (c, k) = fixtures();
        let gpu = c.gpu_resource(GpuId { node: 0, gpu: 0 });
        let mut lowered = lower(&small_plan(), &c, &k).unwrap();
        let d = lowered.stamp(7).compute_demand(gpu);
        // Same seed again: memo hit, durations untouched (a fault replay
        // re-running one iteration must see identical stamped jitter).
        let d2 = lowered.stamp(7).compute_demand(gpu);
        assert_eq!(d, d2);
        // A different seed invalidates the memo, then returning to the
        // original seed reproduces the original durations exactly.
        let other = lowered.stamp(8).compute_demand(gpu);
        assert_ne!(d, other);
        assert_eq!(lowered.stamp(7).compute_demand(gpu), d);
    }

    #[test]
    fn zero_jitter_amp_is_identity() {
        assert_eq!(jitter_factor(0.0, 17, 99), 1.0);
        let f = jitter_factor(0.06, 17, 99);
        assert!((f - 1.0).abs() <= 0.06 + 1e-12);
    }

    #[test]
    fn invalid_plan_is_rejected_in_debug_builds() {
        let (c, k) = fixtures();
        let mut p = IterPlan::new();
        p.push(PlanOp::Overhead, &[]); // no optimizer step
        if cfg!(debug_assertions) {
            assert!(lower(&p, &c, &k).is_err());
        }
    }
}
