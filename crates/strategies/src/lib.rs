//! `zerosim-strategies` — the distributed training strategies the paper
//! compares: PyTorch DDP, Megatron-LM model parallelism, DeepSpeed ZeRO
//! stages 1–3, ZeRO-Offload (CPU) and ZeRO-Infinity (NVMe).
//!
//! Each [`Strategy`] compiles a model + cluster + options into (a) a
//! [`MemoryPlan`] describing bytes per tier and (b) a per-iteration task
//! graph ([`zerosim_simkit::Dag`]) of GPU/CPU compute spans, collectives,
//! and host/NVMe staging transfers. The simulation engine is strategy-
//! agnostic: adding a strategy never touches the event loop.
//!
//! ```
//! use zerosim_hw::{Cluster, ClusterSpec};
//! use zerosim_model::GptConfig;
//! use zerosim_strategies::{Calibration, Strategy, TrainOptions, ZeroStage};
//!
//! # fn main() -> Result<(), String> {
//! let cluster = Cluster::new(ClusterSpec::default().with_nodes(1))?;
//! let model = GptConfig::paper_model_with_params(1.4);
//! let opts = TrainOptions::single_node();
//! let calib = Calibration::default();
//!
//! let ddp = Strategy::Ddp.memory_plan(&cluster, &model, &opts, &calib);
//! let z3 = Strategy::Zero { stage: ZeroStage::Three }
//!     .memory_plan(&cluster, &model, &opts, &calib);
//! assert!(z3.per_gpu_bytes < ddp.per_gpu_bytes);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builders;
mod calib;
mod capability;
mod ddp;
mod megatron;
mod memory;
mod options;
mod zero;

pub use builders::IterCtx;
pub use calib::Calibration;
pub use capability::ZeroCapability;
pub use memory::MemoryPlan;
pub use options::TrainOptions;
pub use zero::{InfinityPlacement, StateTier, ZeroStage};

use zerosim_hw::Cluster;
use zerosim_model::GptConfig;
use zerosim_simkit::Dag;

/// A distributed training strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// PyTorch Distributed Data-Parallel.
    Ddp,
    /// Megatron-LM with tensor parallelism of degree `tp`, pipeline depth
    /// `pp`, and data parallelism over the remaining GPUs.
    Megatron {
        /// Tensor-parallel degree (layer slicing; all-reduce per layer).
        tp: usize,
        /// Pipeline depth (layer partitioning; activations cross stages).
        pp: usize,
    },
    /// DeepSpeed ZeRO, everything on GPU.
    Zero {
        /// Partitioning stage.
        stage: ZeroStage,
    },
    /// ZeRO-Offload: optimizer states and computation on the CPU.
    ZeroOffload {
        /// Partitioning stage (1, 2, or 3).
        stage: ZeroStage,
        /// Also keep the (ZeRO-3-partitioned) parameters in host memory.
        offload_params: bool,
    },
    /// ZeRO-Infinity: optimizer states on NVMe (requires ZeRO-3).
    ZeroInfinity {
        /// Also place parameters on NVMe.
        offload_params: bool,
        /// Rank-to-volume assignment.
        placement: InfinityPlacement,
    },
}

impl Strategy {
    /// Short display name matching the paper's figure legends.
    pub fn name(&self) -> String {
        match self {
            Strategy::Ddp => "PyTorch DDP".into(),
            Strategy::Megatron { tp, pp } => {
                if *pp == 1 {
                    format!("Megatron-LM (MP={tp})")
                } else {
                    format!("Megatron-LM (TP={tp},PP={pp})")
                }
            }
            Strategy::Zero { stage } => format!("ZeRO-{}", stage.number()),
            Strategy::ZeroOffload {
                stage,
                offload_params,
            } => {
                if *offload_params {
                    format!("ZeRO-{} (CPU opt+param)", stage.number())
                } else {
                    format!("ZeRO-{} (CPU)", stage.number())
                }
            }
            Strategy::ZeroInfinity { offload_params, .. } => {
                if *offload_params {
                    "ZeRO-Infinity (NVME opt+param)".into()
                } else {
                    "ZeRO-Infinity (NVME opt)".into()
                }
            }
        }
    }

    /// Megatron with tensor parallelism spanning all GPUs of the run (the
    /// paper's configuration).
    pub fn megatron_for(opts: &TrainOptions, cluster: &Cluster) -> Strategy {
        Strategy::Megatron {
            tp: opts.num_gpus(cluster),
            pp: 1,
        }
    }

    fn zero_variant(&self) -> Option<zero::ZeroVariant> {
        match self {
            Strategy::Zero { stage } => Some(zero::ZeroVariant {
                stage: *stage,
                optimizer_tier: StateTier::Gpu,
                params_tier: StateTier::Gpu,
                placement: None,
            }),
            Strategy::ZeroOffload {
                stage,
                offload_params,
            } => Some(zero::ZeroVariant {
                stage: *stage,
                optimizer_tier: StateTier::Cpu,
                params_tier: if *offload_params {
                    StateTier::Cpu
                } else {
                    StateTier::Gpu
                },
                placement: None,
            }),
            Strategy::ZeroInfinity {
                offload_params,
                placement,
            } => Some(zero::ZeroVariant {
                stage: ZeroStage::Three,
                optimizer_tier: StateTier::Nvme,
                params_tier: if *offload_params {
                    StateTier::Nvme
                } else {
                    StateTier::Gpu
                },
                placement: Some(placement.clone()),
            }),
            _ => None,
        }
    }

    /// Memory placement for training `model` on `cluster` under `opts`.
    pub fn memory_plan(
        &self,
        cluster: &Cluster,
        model: &GptConfig,
        opts: &TrainOptions,
        calib: &Calibration,
    ) -> MemoryPlan {
        let ctx = IterCtx {
            cluster,
            model,
            opts,
            calib,
        };
        match self {
            Strategy::Ddp => ddp::memory_plan(&ctx),
            Strategy::Megatron { tp, pp } => megatron::memory_plan(&ctx, *tp, *pp),
            _ => zero::memory_plan(&ctx, &self.zero_variant().expect("zero family")),
        }
    }

    /// Builds the task graph of one training iteration.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (e.g. Megatron `mp` not
    /// equal to the run's GPU count, or NVMe offload without volumes).
    pub fn build_iteration(
        &self,
        cluster: &Cluster,
        model: &GptConfig,
        opts: &TrainOptions,
        calib: &Calibration,
    ) -> Dag {
        let ctx = IterCtx {
            cluster,
            model,
            opts,
            calib,
        };
        match self {
            Strategy::Ddp => ddp::build_iteration(&ctx),
            Strategy::Megatron { tp, pp } => megatron::build_iteration(&ctx, *tp, *pp),
            _ => zero::build_iteration(&ctx, &self.zero_variant().expect("zero family")),
        }
    }

    /// The ZeRO capability row (Table I), if this is a ZeRO-family
    /// strategy.
    pub fn capability(&self) -> Option<ZeroCapability> {
        match self {
            Strategy::Zero { stage } | Strategy::ZeroOffload { stage, .. } => {
                Some(ZeroCapability::for_stage(*stage))
            }
            Strategy::ZeroInfinity { .. } => Some(ZeroCapability::for_stage(ZeroStage::Three)),
            _ => None,
        }
    }
}
