//! The in-tree passes, one module per artifact-layer analysis.

mod bandwidth;
mod codec;
mod conservation;
mod dag;
mod faults;
mod memory;
mod ordering;
mod steptime;

pub use bandwidth::BandwidthFeasibilityPass;
pub use codec::CodecLegalityPass;
pub use conservation::ByteConservationPass;
pub use dag::{DagCyclePass, DeadOpsPass};
pub use faults::FaultSchedulePass;
pub use memory::MemoryResidencyPass;
pub use ordering::PhaseOrderingPass;
pub use steptime::StepTimeBoundPass;

use crate::pass::Pass;

/// Every in-tree pass (ZL001–ZL009), in code order.
pub(crate) fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(MemoryResidencyPass),
        Box::new(ByteConservationPass),
        Box::new(PhaseOrderingPass),
        Box::new(BandwidthFeasibilityPass),
        Box::new(DeadOpsPass),
        Box::new(DagCyclePass),
        Box::new(FaultSchedulePass),
        Box::new(CodecLegalityPass),
        Box::new(StepTimeBoundPass),
    ]
}
