//! Generators for ZeroSim's domain shapes, expressed as plain data.
//!
//! The testkit must stay dependency-free (everything else depends on
//! it), so these generators produce *shape descriptions* — capacity
//! vectors, index paths, layer counts, node counts — that callers map
//! onto real `zerosim-hw` / `zerosim-model` types with one-line
//! constructors. This keeps the dependency graph acyclic while still
//! giving every property test the same vocabulary.

use crate::gen::{f64_range, tuple2, usize_range, vec_of, Gen, Tuple2, UsizeRange, VecOf};
use crate::rng::Rng;

/// Link-capacity vector in bytes/second: `count` links each in
/// `[1, 1e9)` — the range the seed proptest suite used for the max-min
/// fairness invariant.
pub fn link_caps(min_links: usize, max_links: usize) -> VecOf<crate::gen::F64Range> {
    vec_of(f64_range(1.0, 1e9), min_links, max_links)
}

/// A set of flows: each flow is a path (indices into a link vector,
/// caller maps them modulo the real link count) plus a byte volume.
pub type FlowPathSet = Vec<(Vec<usize>, f64)>;

/// Generator of [`FlowPathSet`] values: `min_flows..=max_flows` flows,
/// each with 1–3 path hops over `link_universe` virtual link indices and
/// a volume in `[1, 1e9)` bytes.
pub fn flow_paths(
    link_universe: usize,
    min_flows: usize,
    max_flows: usize,
) -> VecOf<Tuple2<VecOf<UsizeRange>, crate::gen::F64Range>> {
    vec_of(
        tuple2(
            vec_of(usize_range(0, link_universe), 1, 3),
            f64_range(1.0, 1e9),
        ),
        min_flows,
        max_flows,
    )
}

/// Shape of a GPT-2-like model, as plain numbers.
///
/// Mirrors the paper's workload (Sec. III-B2): hidden 2048, 16 heads,
/// sequence 256, with the layer count as the scaling knob. Callers build
/// a real `GptConfig` via `GptConfig::paper_model(shape.layers)` or use
/// the fields directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GptShape {
    /// Transformer layer count (the paper's model-size knob).
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq_len: usize,
}

/// Generator of [`GptShape`]s with the paper's fixed dimensions and a
/// layer count in `[min_layers, max_layers)`.
#[derive(Debug, Clone, Copy)]
pub struct GptShapeGen {
    layers: UsizeRange,
}

/// GPT shapes with `layers ∈ [min_layers, max_layers)`.
pub fn gpt_shape(min_layers: usize, max_layers: usize) -> GptShapeGen {
    GptShapeGen {
        layers: usize_range(min_layers, max_layers),
    }
}

impl Gen for GptShapeGen {
    type Value = GptShape;

    fn generate(&self, rng: &mut Rng) -> GptShape {
        GptShape {
            layers: self.layers.generate(rng),
            hidden: 2048,
            heads: 16,
            seq_len: 256,
        }
    }

    fn shrink(&self, value: &GptShape) -> Vec<GptShape> {
        self.layers
            .shrink(&value.layers)
            .into_iter()
            .map(|layers| GptShape { layers, ..*value })
            .collect()
    }
}

/// Shape of a simulated cluster, as plain numbers.
///
/// `gpus_per_node` is always even (the XE8545 splits GPUs across two
/// sockets), which is exactly the invariant `ClusterSpec::validate`
/// enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterShape {
    /// Node count (≥ 1).
    pub nodes: usize,
    /// GPUs per node; even, ≥ 2.
    pub gpus_per_node: usize,
    /// Scratch NVMe drives per node.
    pub nvme_drives: usize,
}

/// Generator of valid [`ClusterShape`]s.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShapeGen {
    nodes: UsizeRange,
    gpu_pairs: UsizeRange,
    drives: UsizeRange,
}

/// Cluster shapes with `nodes ∈ [1, max_nodes]`, `gpus_per_node ∈
/// {2, 4, …, 2·max_gpu_pairs}`, and up to `max_drives` NVMe drives.
pub fn cluster_shape(max_nodes: usize, max_gpu_pairs: usize, max_drives: usize) -> ClusterShapeGen {
    assert!(max_nodes >= 1 && max_gpu_pairs >= 1);
    ClusterShapeGen {
        nodes: usize_range(1, max_nodes + 1),
        gpu_pairs: usize_range(1, max_gpu_pairs + 1),
        drives: usize_range(0, max_drives + 1),
    }
}

impl Gen for ClusterShapeGen {
    type Value = ClusterShape;

    fn generate(&self, rng: &mut Rng) -> ClusterShape {
        ClusterShape {
            nodes: self.nodes.generate(rng),
            gpus_per_node: 2 * self.gpu_pairs.generate(rng),
            nvme_drives: self.drives.generate(rng),
        }
    }

    fn shrink(&self, value: &ClusterShape) -> Vec<ClusterShape> {
        let mut out = Vec::new();
        for nodes in self.nodes.shrink(&value.nodes) {
            out.push(ClusterShape { nodes, ..*value });
        }
        for pairs in self.gpu_pairs.shrink(&(value.gpus_per_node / 2)) {
            out.push(ClusterShape {
                gpus_per_node: 2 * pairs,
                ..*value
            });
        }
        for nvme_drives in self.drives.shrink(&value.nvme_drives) {
            out.push(ClusterShape {
                nvme_drives,
                ..*value
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{check, Config};

    #[test]
    fn cluster_shapes_are_always_valid() {
        check(
            "cluster_shapes_valid",
            &Config::from_env(256),
            &cluster_shape(8, 8, 4),
            |shape| {
                crate::prop_assert!(shape.nodes >= 1);
                crate::prop_assert!(shape.gpus_per_node >= 2);
                crate::prop_assert!(shape.gpus_per_node % 2 == 0, "odd GPU count {shape:?}");
                Ok(())
            },
        );
    }

    #[test]
    fn gpt_shapes_use_paper_dimensions() {
        let mut rng = Rng::new(11);
        let g = gpt_shape(1, 100);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert_eq!((s.hidden, s.heads, s.seq_len), (2048, 16, 256));
            assert!((1..100).contains(&s.layers));
        }
    }

    #[test]
    fn flow_paths_stay_in_universe() {
        let mut rng = Rng::new(4);
        let g = flow_paths(6, 1, 8);
        for _ in 0..200 {
            for (path, bytes) in g.generate(&mut rng) {
                assert!(!path.is_empty() && path.len() <= 3);
                assert!(path.iter().all(|i| *i < 6));
                assert!(bytes >= 1.0);
            }
        }
    }

    #[test]
    fn cluster_shape_shrink_preserves_evenness() {
        let g = cluster_shape(8, 8, 4);
        let v = ClusterShape {
            nodes: 5,
            gpus_per_node: 12,
            nvme_drives: 3,
        };
        for cand in g.shrink(&v) {
            assert!(
                cand.gpus_per_node % 2 == 0,
                "shrink broke evenness: {cand:?}"
            );
            assert!(cand.nodes >= 1);
        }
    }
}
