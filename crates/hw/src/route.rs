//! Memory locations and routes between them.

use zerosim_simkit::{LinkId, SimTime};

use crate::ids::{GpuId, NvmeId, SocketId};

/// A location data can live in (and be transferred between).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLoc {
    /// A GPU's HBM.
    Gpu(GpuId),
    /// A CPU socket's DRAM (NUMA-local).
    Cpu(SocketId),
    /// A scratch NVMe drive.
    Nvme(NvmeId),
}

impl MemLoc {
    /// The node this location belongs to.
    pub fn node(&self) -> usize {
        match self {
            MemLoc::Gpu(g) => g.node,
            MemLoc::Cpu(s) => s.node,
            MemLoc::Nvme(d) => d.node,
        }
    }
}

/// A concrete path through the simulated fabric.
///
/// Produced by [`crate::Cluster`] routing queries; consumed by DAG builders
/// as the `route`/`latency`/`cap` arguments of transfer tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links crossed, in order.
    pub links: Vec<LinkId>,
    /// Total startup latency of the path.
    pub latency: SimTime,
    /// Per-flow rate ceiling (`f64::INFINITY` when uncapped).
    pub cap: f64,
}

impl Route {
    /// Creates a route with no per-flow cap.
    pub fn new(links: Vec<LinkId>, latency: SimTime) -> Self {
        Route {
            links,
            latency,
            cap: f64::INFINITY,
        }
    }

    /// Number of links crossed.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memloc_node() {
        assert_eq!(MemLoc::Gpu(GpuId { node: 1, gpu: 2 }).node(), 1);
        assert_eq!(MemLoc::Cpu(SocketId { node: 0, socket: 1 }).node(), 0);
        assert_eq!(MemLoc::Nvme(NvmeId { node: 1, drive: 0 }).node(), 1);
    }

    #[test]
    fn route_basics() {
        let mut net = zerosim_simkit::FlowNet::new();
        let l = net.add_link("test", 1.0);
        let r = Route::new(vec![l], SimTime::from_us(5.0));
        assert_eq!(r.hops(), 1);
        assert!(r.cap.is_infinite());
    }
}
