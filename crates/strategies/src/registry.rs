//! A name-keyed registry of [`StrategyPlan`] implementations.
//!
//! The engine and the sweep drivers are strategy-agnostic: they accept
//! `&dyn StrategyPlan` and never match on the [`crate::Strategy`] enum.
//! The registry is the discovery side of that seam — callers look up
//! strategies by name (CLI flags, sweep configs) and out-of-tree
//! implementations register alongside the built-ins.

use crate::StrategyPlan;

/// A registry mapping short names to boxed [`StrategyPlan`]s.
#[derive(Debug, Default)]
pub struct StrategyRegistry {
    entries: Vec<(String, Box<dyn StrategyPlan>)>,
}

impl StrategyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StrategyRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers `strategy` under `key`, replacing any previous entry
    /// with the same key.
    pub fn register(&mut self, key: impl Into<String>, strategy: Box<dyn StrategyPlan>) {
        let key = key.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = strategy;
        } else {
            self.entries.push((key, strategy));
        }
    }

    /// Looks a strategy up by key.
    pub fn get(&self, key: &str) -> Option<&dyn StrategyPlan> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, s)| s.as_ref())
    }

    /// Registered keys, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Iterates over `(key, strategy)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &dyn StrategyPlan)> {
        self.entries.iter().map(|(k, s)| (k.as_str(), s.as_ref()))
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The paper's Fig. 4/5 strategy matrix: DDP, Megatron (full TP),
    /// ZeRO 1–3, and the CPU offload variants. ZeRO-Infinity is excluded
    /// because it additionally needs NVMe volumes registered on the
    /// cluster; register it per-run with the concrete placement.
    pub fn paper() -> Self {
        use crate::{Strategy, ZeroStage};
        let mut r = StrategyRegistry::new();
        let all: Vec<Strategy> = vec![
            Strategy::Ddp,
            Strategy::Megatron { tp: 4, pp: 1 },
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
        ];
        for s in all {
            r.register(s.name(), Box::new(s));
        }
        r
    }

    /// Extends the registry with the three ZeRO++ strategies
    /// (arXiv 2306.10209): qwZ, hpZ, and qgZ. Kept out of [`paper`]
    /// so the Fig. 4/5 sweep matrix is unchanged; planlint and ext15
    /// opt in explicitly.
    #[must_use]
    pub fn with_zeropp(mut self) -> Self {
        use crate::Strategy;
        for s in [Strategy::qwz(), Strategy::hpz(), Strategy::qgz()] {
            self.register(s.name(), Box::new(s));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;

    #[test]
    fn paper_registry_has_the_figure_legends() {
        let r = StrategyRegistry::paper();
        assert!(r.len() >= 7);
        assert!(r.get("PyTorch DDP").is_some());
        assert!(r.get("ZeRO-3").is_some());
        assert!(r.get("nonexistent").is_none());
        assert!(!r.is_empty());
        assert_eq!(r.names().len(), r.len());
        assert_eq!(r.iter().count(), r.len());
    }

    #[test]
    fn zeropp_family_registers_on_top_of_paper() {
        let r = StrategyRegistry::paper().with_zeropp();
        assert!(r.get("ZeRO++ (qwZ)").is_some());
        assert!(r.get("ZeRO++ (hpZ)").is_some());
        assert!(r.get("ZeRO++ (qgZ)").is_some());
        assert_eq!(r.len(), StrategyRegistry::paper().len() + 3);
    }

    #[test]
    fn register_replaces_same_key() {
        let mut r = StrategyRegistry::new();
        r.register("a", Box::new(Strategy::Ddp));
        r.register("a", Box::new(Strategy::Megatron { tp: 4, pp: 1 }));
        assert_eq!(r.len(), 1);
        assert!(r.get("a").unwrap().display_name().contains("Megatron"));
    }
}
