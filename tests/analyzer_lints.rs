//! `planlint` integration suite.
//!
//! Three layers of evidence that the static analyzer tells the truth:
//!
//! 1. **Seeded violations** — for every lint code ZL001–ZL009, an
//!    intentionally broken artifact proves the code fires *exactly once*
//!    and at the *right site*, through the public `zerosim_analyzer`
//!    API with the full default pass suite registered (so the fixtures
//!    also prove the other eight passes stay silent).
//! 2. **Self application** — every golden paper config lints completely
//!    clean (zero deny, zero warnings), which is what the
//!    `scripts/verify.sh` planlint gate enforces via the binary.
//! 3. **Simulator consistency** — ZL001's fit verdict flips at exactly
//!    the layer count where the simulator's capacity search
//!    (`core::max_model_size`) stops fitting, and ZL004's static link
//!    set covers every link the simulated run actually ranks hot.

use std::collections::HashSet;

use zerosim_analyzer::{
    analyze_strategy, Artifacts, GraphView, LintCode, LintConfig, PassManager, Severity, Site,
};
use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_core::{max_model_size, RunConfig, TrainingSim};
use zerosim_hw::{Cluster, ClusterSpec, GpuId, MemLoc, NvmeId, SocketId};
use zerosim_model::GptConfig;
use zerosim_simkit::{FaultKind, FaultSchedule};
use zerosim_strategies::{
    Calibration, Codec, Dtype, InfinityPlacement, IterCtx, IterPlan, MemoryPlan, OptimizerDevice,
    PhaseStage, PlanOp, ServingStrategy, Strategy, StrategyPlan, TrainOptions, WorkloadPlan,
    ZeroStage,
};
use zerosim_testkit::gen::usize_range;
use zerosim_testkit::{prop, prop_assert};

// ---------- shared fixtures ----------

fn g0() -> GpuId {
    GpuId { node: 0, gpu: 0 }
}

fn cpu0() -> MemLoc {
    MemLoc::Cpu(SocketId { node: 0, socket: 0 })
}

fn default_cluster() -> Cluster {
    Cluster::new(ClusterSpec::default()).unwrap()
}

fn opts_for(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

/// The 12 golden paper configs: the registry matrix plus ZeRO-Infinity
/// (which needs a per-cluster NVMe volume). Mirrors
/// `tests/plan_equivalence.rs` and the `planlint golden` set.
fn golden_case(idx: usize) -> (Cluster, Strategy, TrainOptions) {
    let configs: [(Strategy, usize); 11] = [
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ];
    if idx < configs.len() {
        let (strategy, nodes) = configs[idx].clone();
        (default_cluster(), strategy, opts_for(nodes))
    } else {
        let mut cluster = default_cluster();
        let d = |drive| NvmeId { node: 0, drive };
        let vol = cluster.create_volume(vec![d(0), d(1)]);
        let strategy = Strategy::ZeroInfinity {
            offload_params: true,
            placement: InfinityPlacement::new(vec![vol]),
        };
        (cluster, strategy, opts_for(1))
    }
}

const GOLDEN_COUNT: usize = 12;

fn lint(art: &Artifacts<'_>) -> zerosim_analyzer::AnalysisReport {
    PassManager::with_default_passes(LintConfig::new()).run(art)
}

// ---------- 1. every code fires exactly once, at the right site ----------

#[test]
fn zl001_fires_once_when_residency_exceeds_hbm() {
    let cluster = default_cluster();
    let memory = MemoryPlan {
        per_gpu_bytes: 62e9,
        total_gpu_bytes: 62e9 * 8.0,
        per_node_cpu_bytes: 100e9,
        total_cpu_bytes: 200e9,
        nvme_bytes: 0.0,
        gpu_breakdown: Vec::new(),
    };
    let r = lint(&Artifacts::new(&cluster).with_memory(&memory));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::MemoryResidency);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::Config);
    assert!(d.message.contains("HBM"), "{}", d.message);
    assert!(!r.memory.expect("verdict recorded").fits);
}

#[test]
fn zl002_fires_once_at_the_op_consuming_phantom_bytes() {
    // One h2d that reads 4 GB out of host DRAM nobody ever staged.
    let mut plan = IterPlan::new();
    plan.set_phase(PhaseStage::Step, 0);
    plan.push(
        PlanOp::TierTransfer {
            src: cpu0(),
            dst: MemLoc::Gpu(g0()),
            bytes: 4e9,
            label: "h2d",
            track: 0,
        },
        &[],
    );
    let cluster = default_cluster();
    let r = lint(&Artifacts::new(&cluster).with_plan(&plan));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::ByteConservation);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::PlanOp(0));
    assert!(d.message.contains("host DRAM of node 0"), "{}", d.message);
}

#[test]
fn zl003_fires_once_when_iteration_work_waits_on_the_step() {
    let mut plan = IterPlan::new();
    plan.set_phase(PhaseStage::Backward, 0);
    let b = plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[],
    );
    plan.set_phase(PhaseStage::Step, 0);
    let s = plan.push(
        PlanOp::OptimizerStep {
            device: OptimizerDevice::Gpu(g0()),
            params: 1e9,
        },
        &[b],
    );
    // Forward of the next micro-batch waiting on the weight update is
    // unsatisfiable inside one iteration.
    plan.set_phase(PhaseStage::Forward, 1);
    plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[s],
    );
    let cluster = default_cluster();
    let r = lint(&Artifacts::new(&cluster).with_plan(&plan));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::PhaseOrdering);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::PlanOp(2));
    assert!(d.message.contains("step-phase op"), "{}", d.message);
}

#[test]
fn zl004_fires_once_for_an_off_cluster_collective() {
    let cluster = default_cluster();
    let nodes = cluster.spec().nodes;
    // A group spanning a rank one node past the cluster's edge.
    let ghost = GpuId {
        node: nodes,
        gpu: 0,
    };
    let mut plan = IterPlan::new();
    plan.set_phase(PhaseStage::Backward, 0);
    let b = plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[],
    );
    let c = plan.push(
        PlanOp::Collective {
            kind: CollectiveKind::ReduceScatter,
            group: CommGroup::new(vec![g0(), ghost]),
            bytes: 1e9,
            cap: 1e12,
        },
        &[b],
    );
    plan.set_phase(PhaseStage::Step, 0);
    plan.push(
        PlanOp::OptimizerStep {
            device: OptimizerDevice::Gpu(g0()),
            params: 1e9,
        },
        &[c],
    );
    let r = lint(&Artifacts::new(&cluster).with_plan(&plan));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::BandwidthFeasibility);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::PlanOp(1));
    assert!(d.message.contains("not on the cluster"), "{}", d.message);
}

#[test]
fn zl005_warns_once_on_a_dead_gradient_collective() {
    let cluster = default_cluster();
    let mut plan = IterPlan::new();
    plan.set_phase(PhaseStage::Backward, 0);
    let b = plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[],
    );
    // Dead: a gradient reduction the optimizer never waits for.
    plan.push(
        PlanOp::Collective {
            kind: CollectiveKind::ReduceScatter,
            group: CommGroup::world(&cluster),
            bytes: 1e9,
            cap: 1e12,
        },
        &[b],
    );
    plan.set_phase(PhaseStage::Step, 0);
    let s = plan.push(
        PlanOp::OptimizerStep {
            device: OptimizerDevice::Gpu(g0()),
            params: 1e9,
        },
        &[b],
    );
    // Legal sink: the post-step parameter broadcast stays silent.
    plan.push(
        PlanOp::Collective {
            kind: CollectiveKind::AllGather,
            group: CommGroup::world(&cluster),
            bytes: 1e9,
            cap: 1e12,
        },
        &[s],
    );
    let r = lint(&Artifacts::new(&cluster).with_plan(&plan));
    assert_eq!(r.deny_count(), 0, "{}", r.render_text());
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::DeadOps);
    assert_eq!(d.severity, Severity::Warning, "ZL005 defaults to warn");
    assert_eq!(d.site, Site::PlanOp(1));
    assert!(d.message.contains("no op waits for"), "{}", d.message);

    // The same finding escalates to deny under a directive, exactly as
    // `planlint --level ZL005=deny` would apply it.
    let mut cfg = LintConfig::new();
    cfg.apply_directive("ZL005=deny").unwrap();
    let r = PassManager::with_default_passes(cfg).run(&Artifacts::new(&cluster).with_plan(&plan));
    assert_eq!(r.deny_count(), 1);
    assert_eq!(r.diagnostics[0].severity, Severity::Deny);
}

#[test]
fn zl006_fires_once_on_a_dependency_cycle() {
    let cluster = default_cluster();
    let graph = GraphView::from_edges(3, &[(0, 1), (1, 2), (2, 1)]);
    let r = lint(&Artifacts::new(&cluster).with_graph(&graph));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::DagCycle);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::DagTask(1));
    assert!(d.message.contains("cycle"), "{}", d.message);
}

#[test]
fn zl006_fires_once_on_a_dangling_edge() {
    let cluster = default_cluster();
    let graph = GraphView::from_edges(2, &[(0, 1), (7, 1)]);
    let r = lint(&Artifacts::new(&cluster).with_graph(&graph));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::DagCycle);
    assert_eq!(d.severity, Severity::Deny);
    assert!(d.message.contains("nonexistent task 7"), "{}", d.message);
}

#[test]
fn zl007_fires_once_on_overlapping_node_loss() {
    let cluster = default_cluster();
    let schedule = FaultSchedule::new(7)
        .at(1.0, FaultKind::NodeLoss { node: 1 })
        .at(2.0, FaultKind::NodeLoss { node: 1 });
    let r = lint(&Artifacts::new(&cluster).with_faults(&schedule));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::FaultSchedule);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::FaultEvent(1));
    assert!(d.message.contains("lost twice"), "{}", d.message);
}

#[test]
fn zl007_events_past_the_horizon_are_advisory_only() {
    let cluster = default_cluster();
    let schedule = FaultSchedule::new(7).at(50.0, FaultKind::NodeLoss { node: 1 });
    let r = lint(
        &Artifacts::new(&cluster)
            .with_faults(&schedule)
            .with_horizon_s(10.0),
    );
    assert_eq!(r.deny_count(), 0, "{}", r.render_text());
    assert_eq!(r.warning_count(), 1);
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::FaultSchedule);
    assert_eq!(d.site, Site::FaultEvent(0));
    assert!(d.message.contains("never fires"), "{}", d.message);
}

// ---------- serving workloads (Prefill/Decode plans) ----------

/// A hand-built decode-step plan: token h2d, one forward GEMM, the KV
/// append, and the sampled-token d2h. `wire_kv_to_compute` controls
/// whether the KV append depends on the forward compute (legal) or only
/// on the input staging (a decode-effect ordering violation).
fn decode_fixture(kv_bytes: f64, wire_kv_to_compute: bool) -> WorkloadPlan {
    let mut plan = IterPlan::new_decode();
    let h2d = plan.push(
        PlanOp::TierTransfer {
            src: cpu0(),
            dst: MemLoc::Gpu(g0()),
            bytes: 16.0,
            label: "token_h2d",
            track: 0,
        },
        &[],
    );
    plan.set_phase(PhaseStage::Decode, 0);
    let gemm = plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[h2d],
    );
    let kv_dep = if wire_kv_to_compute { gemm } else { h2d };
    let kv = plan.push(
        PlanOp::KvAppend {
            gpu: g0(),
            bytes: kv_bytes,
        },
        &[kv_dep],
    );
    plan.push(
        PlanOp::TierTransfer {
            src: MemLoc::Gpu(g0()),
            dst: cpu0(),
            bytes: 16.0,
            label: "token_d2h",
            track: 0,
        },
        &[gemm, kv],
    );
    plan
}

fn serving_memory(per_gpu: f64) -> MemoryPlan {
    MemoryPlan {
        per_gpu_bytes: per_gpu,
        total_gpu_bytes: per_gpu * 4.0,
        per_node_cpu_bytes: 100e9,
        total_cpu_bytes: 100e9,
        nvme_bytes: 0.0,
        gpu_breakdown: Vec::new(),
    }
}

#[test]
fn zl001_counts_kv_cache_growth_as_residency() {
    let cluster = default_cluster();
    // 30 GB of resident weights fit a 40 GB A100; a 15 GB KV cache on
    // top is a static OOM the simulator would never see (KvAppend is
    // zero-duration), so ZL001 must deny it.
    let plan = decode_fixture(15e9, true);
    let memory = serving_memory(30e9);
    let r = lint(
        &Artifacts::new(&cluster)
            .with_plan(&plan)
            .with_memory(&memory),
    );
    assert_eq!(r.deny_count(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::MemoryResidency);
    assert!(d.message.contains("HBM"), "{}", d.message);
    assert!(d.help.contains("KV cache"), "{}", d.help);
    let v = r.memory.expect("verdict recorded");
    assert_eq!(v.kv_growth, 15e9);
    assert!(!v.fits || v.per_gpu_resident + v.kv_growth > v.gpu_capacity);

    // The same batch with a small cache is clean — and the verdict
    // carries the growth either way.
    let plan = decode_fixture(1e9, true);
    let r = lint(
        &Artifacts::new(&cluster)
            .with_plan(&plan)
            .with_memory(&memory),
    );
    assert_eq!(r.deny_count(), 0, "{}", r.render_text());
    assert_eq!(r.memory.expect("verdict").kv_growth, 1e9);
}

#[test]
fn zl003_decode_effect_must_depend_on_that_steps_compute() {
    let cluster = default_cluster();
    // KV append wired to the input staging instead of the forward
    // compute: the cache write would commit before the step computed it.
    let plan = decode_fixture(1e9, false);
    let memory = serving_memory(10e9);
    let r = lint(
        &Artifacts::new(&cluster)
            .with_plan(&plan)
            .with_memory(&memory),
    );
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::PhaseOrdering);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::PlanOp(2));
    assert!(
        d.message
            .contains("does not depend on that step's forward compute"),
        "{}",
        d.message
    );
}

#[test]
fn zl005_kv_append_is_a_legal_sink_in_serving_phases() {
    let cluster = default_cluster();
    // Reorder so the KV append is dependent-less (token d2h hangs off
    // the compute only): the cache write *is* the effect, ZL005 stays
    // silent exactly as it does for checkpoint write-backs.
    let mut plan = IterPlan::new_decode();
    plan.set_phase(PhaseStage::Decode, 0);
    let gemm = plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[],
    );
    plan.push(
        PlanOp::KvAppend {
            gpu: g0(),
            bytes: 1e9,
        },
        &[gemm],
    );
    plan.push(
        PlanOp::TierTransfer {
            src: MemLoc::Gpu(g0()),
            dst: cpu0(),
            bytes: 16.0,
            label: "token_d2h",
            track: 0,
        },
        &[gemm],
    );
    let memory = serving_memory(10e9);
    let r = lint(
        &Artifacts::new(&cluster)
            .with_plan(&plan)
            .with_memory(&memory),
    );
    assert_eq!(r.deny_count(), 0, "{}", r.render_text());
    assert_eq!(r.warning_count(), 0, "{}", r.render_text());
}

/// Both serving strategies' prefill and decode plans lint completely
/// clean through the full default pass suite — the serving analogue of
/// `every_golden_config_lints_clean`.
#[test]
fn serving_strategy_plans_lint_clean() {
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let opts = TrainOptions::single_node();
    let mut cluster = default_cluster();
    let d = |drive| NvmeId { node: 0, drive };
    let vol = cluster.create_volume(vec![d(0), d(1)]);
    let strategies = [
        ServingStrategy::Dense,
        ServingStrategy::NvmeStreamed {
            placement: InfinityPlacement::new(vec![vol]),
        },
    ];
    for strategy in &strategies {
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let memory = strategy.plan_memory(&ctx);
        let prefill = strategy.plan_prefill(&ctx, 512, 4).unwrap();
        let decode = strategy.plan_decode(&ctx, 0, 4, 640).unwrap();
        for (what, plan) in [("prefill", &prefill), ("decode", &decode)] {
            plan.validate(&cluster).unwrap();
            let r = lint(
                &Artifacts::new(&cluster)
                    .with_plan(plan)
                    .with_memory(&memory),
            );
            assert_eq!(
                r.deny_count(),
                0,
                "{} {what}:\n{}",
                strategy.display_name(),
                r.render_text()
            );
            assert_eq!(
                r.warning_count(),
                0,
                "{} {what}:\n{}",
                strategy.display_name(),
                r.render_text()
            );
            assert!(r.memory.expect("ZL001 ran").kv_growth > 0.0);
        }
    }
}

// ---------- 2. self application: the golden matrix lints clean ----------

#[test]
fn every_golden_config_lints_clean() {
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    for idx in 0..GOLDEN_COUNT {
        let (cluster, strategy, opts) = golden_case(idx);
        let r = analyze_strategy(
            &cluster,
            &strategy,
            &model,
            &opts,
            &calib,
            LintConfig::new(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", strategy.name()));
        assert_eq!(
            r.deny_count(),
            0,
            "{}:\n{}",
            strategy.name(),
            r.render_text()
        );
        assert_eq!(
            r.warning_count(),
            0,
            "{}:\n{}",
            strategy.name(),
            r.render_text()
        );
        assert!(r.memory.expect("ZL001 ran").fits);
        assert!(!r.links.is_empty(), "ZL004 classified links");
    }
}

// ---------- 3. consistency with the simulator ----------

/// ZL001's fit verdict must flip at exactly the layer count where the
/// simulator's capacity search stops fitting (Fig. 6 methodology):
/// `fits == Some(true)` at the achieved maximum, anything else one layer
/// past it (a plan the strategy rejects outright also counts as not
/// fitting, matching `max_model_size`).
#[test]
fn zl001_verdict_flips_at_the_simulated_capacity_edge() {
    let calib = Calibration::default();
    for idx in 0..GOLDEN_COUNT {
        let (cluster, strategy, opts) = golden_case(idx);
        let cap = max_model_size(&cluster, &strategy, &opts, &calib)
            .unwrap_or_else(|| panic!("{} fits at least one layer", strategy.name()));
        let verdict_fits = |layers: usize| -> Option<bool> {
            let model = GptConfig::paper_model(layers);
            let ctx = IterCtx {
                cluster: &cluster,
                model: &model,
                opts: &opts,
                calib: &calib,
            };
            let memory = strategy.plan_memory(&ctx).ok()?;
            let r = lint(&Artifacts::new(&cluster).with_memory(&memory));
            let v = r.memory.clone().expect("ZL001 ran");
            // The deny findings replicate the verdict exactly.
            assert_eq!(v.fits, r.is_clean(), "{}", r.render_text());
            Some(v.fits)
        };
        assert_eq!(
            verdict_fits(cap.num_layers),
            Some(true),
            "{} fits at its achieved maximum ({} layers)",
            strategy.name(),
            cap.num_layers
        );
        assert_ne!(
            verdict_fits(cap.num_layers + 1),
            Some(true),
            "{} must not fit one layer past the capacity edge",
            strategy.name()
        );
    }
}

/// Every link the simulated run ranks hot must be a link the static
/// ZL004 model loaded, and the analyzer's top-demand link must show up
/// in the simulated hot-link ranking: the static bandwidth model and
/// the flow-level simulation agree on *where* the traffic goes.
#[test]
fn zl004_static_link_set_covers_the_simulated_hot_links() {
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let cases: [(Strategy, usize); 3] = [
        (Strategy::Ddp, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
    ];
    for (strategy, nodes) in cases {
        let opts = opts_for(nodes);
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let simulated = sim
            .run(&strategy, &model, &opts, &RunConfig::quick())
            .unwrap();
        let cluster = default_cluster();
        let linted = analyze_strategy(
            &cluster,
            &strategy,
            &model,
            &opts,
            &calib,
            LintConfig::new(),
        )
        .unwrap();
        let static_names: HashSet<&str> = linted.links.iter().map(|l| l.name.as_str()).collect();
        let hot: Vec<_> = simulated.hot_links.iter().filter(|h| h.avg > 0.0).collect();
        assert!(!hot.is_empty(), "{} moved bytes", strategy.name());
        for h in &hot {
            assert!(
                static_names.contains(h.name.as_str()),
                "{}: simulated hot link {} missing from the static ZL004 set {:?}",
                strategy.name(),
                h.name,
                static_names
            );
        }
        // Verdicts are sorted hottest-demand first.
        let top = &linted.links[0];
        assert!(
            simulated.hot_links.iter().any(|h| h.name == top.name),
            "{}: static top link {} not in the simulated hot ranking",
            strategy.name(),
            top.name
        );
    }
}

// ---------- ZL008 / ZL009: codecs and static step-time bounds ----------

#[test]
fn zl008_fires_once_on_compute_consuming_encoded_bytes() {
    let cluster = default_cluster();
    let mut plan = IterPlan::new();
    plan.set_phase(PhaseStage::Forward, 0);
    let gather = plan.push(
        PlanOp::Collective {
            kind: CollectiveKind::AllGather,
            group: CommGroup::new(vec![g0(), GpuId { node: 0, gpu: 1 }]),
            bytes: 1e9,
            cap: 1e12,
        },
        &[],
    );
    plan.set_codec(gather, Codec::quantize(Dtype::Fp16, Dtype::Int8, 2048));
    // The compute consumes the Int8 wire bytes directly: missing decode.
    plan.push(
        PlanOp::LayerCompute {
            gpu: g0(),
            flops: 1e12,
            label: "gemm",
        },
        &[gather],
    );
    let r = lint(&Artifacts::new(&cluster).with_plan(&plan));
    assert_eq!(r.diagnostics.len(), 1, "{}", r.render_text());
    let d = &r.diagnostics[0];
    assert_eq!(d.code, LintCode::CodecLegality);
    assert_eq!(d.severity, Severity::Deny);
    assert_eq!(d.site, Site::PlanOp(1));
    assert!(d.message.contains("without a decode"), "{}", d.message);
}

/// ISSUE acceptance: the static byte accounting must show qgZ's Int4
/// gradient reduce-scatter cutting inter-node backward reduction volume
/// by at least 3.5x against plain ZeRO-3's ring reduce-scatter on the
/// dual-node cluster. Priced exactly as ZL004 prices it: flat-ring
/// `bytes_sent_per_rank` over the encoded wire payload.
#[test]
fn qgz_cuts_static_internode_gradient_volume_over_3_5x() {
    let cluster = default_cluster();
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let opts = opts_for(2);
    let backward_reduce_volume = |strategy: &Strategy| -> f64 {
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let plan = strategy.plan_iteration(&ctx).unwrap();
        plan.nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| match &n.op {
                PlanOp::Collective {
                    kind: kind @ CollectiveKind::ReduceScatter,
                    group,
                    bytes,
                    ..
                } if n.phase.stage == PhaseStage::Backward && !group.is_single_node() => {
                    kind.bytes_sent_per_rank(group.len(), bytes * plan.codec_ratio_at(i))
                }
                _ => 0.0,
            })
            .sum()
    };
    let z3 = backward_reduce_volume(&Strategy::Zero {
        stage: ZeroStage::Three,
    });
    let qgz = backward_reduce_volume(&Strategy::qgz());
    assert!(z3 > 0.0, "ZeRO-3 reduces gradients across nodes");
    assert!(qgz > 0.0, "qgZ still reduces gradients across nodes");
    let reduction = z3 / qgz;
    assert!(
        reduction >= 3.5,
        "qgZ inter-node reduction volume must drop >= 3.5x, got {reduction:.2}x \
         ({z3:.3e} vs {qgz:.3e} bytes/rank)"
    );
}

/// ZL009's protocol bound must lower-bound the simulated iteration time
/// for the whole ZeRO++ family across jitter seeds (the golden dozen is
/// swept the same way by `planlint --bench`, which verify.sh gates on).
#[test]
fn zl009_bound_lower_bounds_simulation_for_the_zeropp_family() {
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let opts = opts_for(2);
    let strategies = [
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
        Strategy::qwz(),
        Strategy::hpz(),
        Strategy::qgz(),
    ];
    for strategy in &strategies {
        let cluster = default_cluster();
        let r =
            analyze_strategy(&cluster, strategy, &model, &opts, &calib, LintConfig::new()).unwrap();
        assert_eq!(
            r.deny_count(),
            0,
            "{}:\n{}",
            strategy.name(),
            r.render_text()
        );
        assert_eq!(
            r.warning_count(),
            0,
            "{}:\n{}",
            strategy.name(),
            r.render_text()
        );
        let b = r.bound.clone().expect("ZL009 emitted a bound");
        assert!(
            b.wire_sol_s <= b.protocol_s * (1.0 + 1e-9),
            "{}: wire SoL must not exceed the protocol bound",
            strategy.name()
        );
        for seed in [0u64, 1, 7, 42] {
            let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
            let t = sim
                .run(
                    strategy,
                    &model,
                    &opts.with_jitter_seed(seed),
                    &RunConfig::quick(),
                )
                .unwrap()
                .iter_time
                .as_secs();
            assert!(
                b.protocol_s <= t * (1.0 + 1e-9),
                "{} seed {seed}: static bound {} above simulated {t}",
                strategy.name(),
                b.protocol_s
            );
        }
    }
}

// ---------- 4. properties ----------

prop! {
    /// The ZL001 static peak bound dominates the resident footprint the
    /// simulator enforces at admission, tier by tier, and the fit
    /// verdict is byte-identical with `MemoryPlan::fits` — for every
    /// golden config.
    #[cases(12)]
    fn zl001_static_peak_dominates_residency(idx in usize_range(0, 12)) {
        let (cluster, strategy, opts) = golden_case(idx);
        let model = GptConfig::paper_model_with_params(1.4);
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let memory = strategy.plan_memory(&ctx).unwrap();
        let plan = strategy.plan_iteration(&ctx).unwrap();
        let r = PassManager::with_default_passes(LintConfig::new())
            .run(&Artifacts::new(&cluster).with_plan(&plan).with_memory(&memory));
        let v = r.memory.expect("ZL001 ran");
        prop_assert!(v.per_gpu_peak >= v.per_gpu_resident);
        prop_assert!(v.per_node_cpu_peak >= v.per_node_cpu_resident);
        prop_assert!(v.nvme_peak >= v.nvme_resident);
        prop_assert!(v.per_gpu_resident == memory.per_gpu_bytes);
        prop_assert!(v.fits == memory.fits(&cluster));
    }

    /// ZL001 agrees with `MemoryPlan::fits` at arbitrary model depths,
    /// not just the paper's 1.4B point: a deny appears iff the plan
    /// does not fit.
    #[cases(32)]
    fn zl001_fit_verdict_matches_memory_plan_for_random_depths(
        layers in usize_range(1, 160),
        idx in usize_range(0, 12),
    ) {
        let (cluster, strategy, opts) = golden_case(idx);
        let model = GptConfig::paper_model(layers);
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        // Some strategies reject some depths (e.g. fewer layers than
        // pipeline stages); rejection is not a lint concern.
        if let Ok(memory) = strategy.plan_memory(&ctx) {
            let r = PassManager::with_default_passes(LintConfig::new())
                .run(&Artifacts::new(&cluster).with_memory(&memory));
            let v = r.memory.clone().expect("ZL001 ran");
            prop_assert!(v.fits == memory.fits(&cluster));
            prop_assert!(r.is_clean() == v.fits);
        }
    }
    /// Codec-aware pool accounting: a narrowing d2h stages exactly
    /// `bytes x ratio` encoded bytes into host DRAM, for every dtype
    /// pair and block size — a downstream read of exactly that many
    /// bytes is clean, and an oversized read denies at the consumer.
    #[cases(24)]
    fn zl002_pools_credit_encoded_bytes_at_ratio(
        pair in usize_range(0, 5),
        block_pow in usize_range(4, 13),
        gbs in usize_range(1, 9),
    ) {
        let (din, dout) = [
            (Dtype::Fp32, Dtype::Fp16),
            (Dtype::Fp32, Dtype::Int8),
            (Dtype::Fp32, Dtype::Int4),
            (Dtype::Fp16, Dtype::Int8),
            (Dtype::Fp16, Dtype::Int4),
        ][pair];
        let codec = Codec::quantize(din, dout, 1 << block_pow);
        #[allow(clippy::cast_precision_loss)]
        let bytes = gbs as f64 * 1e9;
        let staged = bytes * codec.ratio;
        let build = |consume: f64| {
            let mut plan = IterPlan::new();
            plan.set_phase(PhaseStage::Backward, 0);
            let d2h = plan.push(
                PlanOp::TierTransfer {
                    src: MemLoc::Gpu(g0()),
                    dst: cpu0(),
                    bytes,
                    label: "d2h",
                    track: 0,
                },
                &[],
            );
            plan.set_codec(d2h, codec);
            plan.set_phase(PhaseStage::Step, 0);
            plan.push(
                PlanOp::TierTransfer {
                    src: cpu0(),
                    dst: MemLoc::Gpu(g0()),
                    bytes: consume,
                    label: "h2d",
                    track: 0,
                },
                &[d2h],
            );
            plan
        };
        let cluster = default_cluster();
        let clean = lint(&Artifacts::new(&cluster).with_plan(&build(staged)));
        prop_assert!(clean.is_clean());
        let over = lint(&Artifacts::new(&cluster).with_plan(&build(staged * 1.5 + 16.0)));
        prop_assert!(over.deny_count() == 1);
        prop_assert!(over.diagnostics[0].code == LintCode::ByteConservation);
        prop_assert!(over.diagnostics[0].site == Site::PlanOp(1));
    }

    /// Stripping the codec declarations off a ZeRO++ quantized plan
    /// flips ZL002 from clean to deny, sited at exactly the formerly
    /// quantized transfers: their dequant markers now claim encoded
    /// bytes nobody produced.
    #[cases(8)]
    fn zl002_denies_stripped_zeropp_codec_at_the_quantized_op(
        which in usize_range(0, 2),
        nodes in usize_range(1, 3),
    ) {
        let strategy = if which == 0 {
            Strategy::qwz()
        } else {
            Strategy::qgz()
        };
        let cluster = default_cluster();
        let model = GptConfig::paper_model_with_params(1.4);
        let calib = Calibration::default();
        let opts = opts_for(nodes);
        let ctx = IterCtx {
            cluster: &cluster,
            model: &model,
            opts: &opts,
            calib: &calib,
        };
        let memory = strategy.plan_memory(&ctx).unwrap();
        let mut plan = strategy.plan_iteration(&ctx).unwrap();
        let quantized: HashSet<usize> = plan.codecs().map(|(id, _)| id.index()).collect();
        prop_assert!(!quantized.is_empty());
        let clean = lint(
            &Artifacts::new(&cluster)
                .with_plan(&plan)
                .with_memory(&memory),
        );
        prop_assert!(clean.deny_count() == 0);
        plan.strip_codecs();
        let r = lint(
            &Artifacts::new(&cluster)
                .with_plan(&plan)
                .with_memory(&memory),
        );
        prop_assert!(r.deny_count() >= 1);
        for d in r.diagnostics.iter().filter(|d| d.severity == Severity::Deny) {
            prop_assert!(d.code == LintCode::ByteConservation);
            match &d.site {
                Site::PlanOp(op) => prop_assert!(quantized.contains(op)),
                other => prop_assert!(false, "unexpected site {other:?}"),
            }
        }
    }
}
