//! The pass framework: analysis inputs, the diagnostic sink, the
//! [`Pass`] trait, and the [`PassManager`] that runs a configured suite
//! and folds findings into an [`AnalysisReport`].

use zerosim_hw::Cluster;
use zerosim_simkit::{Dag, FaultSchedule};
use zerosim_strategies::{Calibration, IterPlan, MemoryPlan};
use zerosim_testkit::json::Json;

use crate::diag::{Diagnostic, LintCode, LintConfig, LintLevel, Severity, Site};
use crate::graph::GraphView;

/// Everything a lint run may inspect. Passes skip silently when their
/// input layer is absent, so callers lint whatever artifacts they have:
/// a bare fault schedule, a plan without a lowering, or the full stack.
#[derive(Debug, Clone, Copy)]
pub struct Artifacts<'a> {
    /// The hardware model everything is checked against.
    pub cluster: &'a Cluster,
    /// The iteration-plan IR (ZL001–ZL004).
    pub plan: Option<&'a IterPlan>,
    /// The strategy's memory placement (ZL001 residency, ZL002 credit).
    pub memory: Option<&'a MemoryPlan>,
    /// The lowered DAG (ZL005/ZL006).
    pub dag: Option<&'a Dag>,
    /// An untrusted dependency graph (ZL006); takes precedence over
    /// `dag` for the cycle check when present.
    pub graph: Option<&'a GraphView>,
    /// The fault schedule (ZL007).
    pub faults: Option<&'a FaultSchedule>,
    /// Simulation horizon in seconds; fault events past it never fire.
    pub horizon_s: Option<f64>,
    /// The calibration used to lower the plan (ZL009 prices compute at
    /// the calibrated un-jittered kernel times).
    pub calib: Option<&'a Calibration>,
}

impl<'a> Artifacts<'a> {
    /// Artifacts over `cluster` with every optional layer absent.
    pub fn new(cluster: &'a Cluster) -> Self {
        Artifacts {
            cluster,
            plan: None,
            memory: None,
            dag: None,
            graph: None,
            faults: None,
            horizon_s: None,
            calib: None,
        }
    }

    /// Attaches the iteration plan.
    #[must_use]
    pub fn with_plan(mut self, plan: &'a IterPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attaches the memory placement.
    #[must_use]
    pub fn with_memory(mut self, memory: &'a MemoryPlan) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Attaches the lowered DAG.
    #[must_use]
    pub fn with_dag(mut self, dag: &'a Dag) -> Self {
        self.dag = Some(dag);
        self
    }

    /// Attaches an untrusted dependency graph.
    #[must_use]
    pub fn with_graph(mut self, graph: &'a GraphView) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Attaches a fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: &'a FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the horizon for fault-event reachability.
    #[must_use]
    pub fn with_horizon_s(mut self, horizon_s: f64) -> Self {
        self.horizon_s = Some(horizon_s);
        self
    }

    /// Attaches the lowering calibration.
    #[must_use]
    pub fn with_calibration(mut self, calib: &'a Calibration) -> Self {
        self.calib = Some(calib);
        self
    }
}

/// Static per-tier residency bound computed by ZL001.
///
/// `*_resident` is the strategy's placed state ([`MemoryPlan`]);
/// `*_peak` adds the worst single-phase transient staging bytes the plan
/// moves into the tier, so `peak >= resident >= simulated residency`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryVerdict {
    /// Resident bytes on the most-loaded GPU.
    pub per_gpu_resident: f64,
    /// Cumulative KV-cache bytes appended on the most-loaded GPU over the
    /// plan's decode steps (serving plans; `0` for training). Residency,
    /// not staging: it adds to the deny bound, not just the peak.
    pub kv_growth: f64,
    /// Static peak bound on the most-loaded GPU.
    pub per_gpu_peak: f64,
    /// HBM capacity per GPU.
    pub gpu_capacity: f64,
    /// Resident host bytes on the most-loaded node.
    pub per_node_cpu_resident: f64,
    /// Static peak bound on the most-loaded node.
    pub per_node_cpu_peak: f64,
    /// DRAM capacity per node.
    pub cpu_capacity: f64,
    /// Resident bytes across NVMe volumes.
    pub nvme_resident: f64,
    /// Static peak bound across NVMe volumes.
    pub nvme_peak: f64,
    /// Aggregate NVMe capacity.
    pub nvme_capacity: f64,
    /// Whether the resident placement fits every tier (exactly
    /// [`MemoryPlan::fits`] semantics, so ZL001 agrees with the
    /// simulator's capacity probe).
    pub fits: bool,
    /// First overflowing tier (`"gpu"` / `"cpu"` / `"nvme"`), if any.
    pub bottleneck: Option<&'static str>,
}

impl MemoryVerdict {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("per_gpu_resident".into(), Json::Num(self.per_gpu_resident)),
            ("kv_growth".into(), Json::Num(self.kv_growth)),
            ("per_gpu_peak".into(), Json::Num(self.per_gpu_peak)),
            ("gpu_capacity".into(), Json::Num(self.gpu_capacity)),
            (
                "per_node_cpu_resident".into(),
                Json::Num(self.per_node_cpu_resident),
            ),
            (
                "per_node_cpu_peak".into(),
                Json::Num(self.per_node_cpu_peak),
            ),
            ("cpu_capacity".into(), Json::Num(self.cpu_capacity)),
            ("nvme_resident".into(), Json::Num(self.nvme_resident)),
            ("nvme_peak".into(), Json::Num(self.nvme_peak)),
            ("nvme_capacity".into(), Json::Num(self.nvme_capacity)),
            ("fits".into(), Json::Bool(self.fits)),
            (
                "bottleneck".into(),
                match self.bottleneck {
                    Some(t) => Json::Str(t.into()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Which side of the attainment equation binds a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// The physical wire rate binds: flows can saturate the link.
    Wire,
    /// A per-flow protocol cap binds below the wire rate (the paper's
    /// "engine efficiency" ceilings): the wire can never saturate.
    Protocol,
}

impl BoundKind {
    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            BoundKind::Wire => "wire",
            BoundKind::Protocol => "protocol",
        }
    }
}

/// Static per-link load classification computed by ZL004.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkVerdict {
    /// Link name in the flow network.
    pub name: String,
    /// Nominal capacity (sustained rate for bucketed links).
    pub wire_capacity: f64,
    /// Tightest per-flow cap among flows crossing the link
    /// (`f64::INFINITY` when uncapped).
    pub flow_cap: f64,
    /// Total bytes the plan pushes across the link.
    pub demand_bytes: f64,
    /// Number of distinct flows crossing the link.
    pub flows: usize,
    /// Wire-bound vs protocol-bound.
    pub bound: BoundKind,
}

impl LinkVerdict {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("wire_capacity".into(), Json::Num(self.wire_capacity)),
            (
                "flow_cap".into(),
                if self.flow_cap.is_finite() {
                    Json::Num(self.flow_cap)
                } else {
                    Json::Null
                },
            ),
            ("demand_bytes".into(), Json::Num(self.demand_bytes)),
            ("flows".into(), Json::Num(num(self.flows))),
            ("bound".into(), Json::Str(self.bound.label().into())),
        ])
    }
}

/// Static step-time lower bound computed by ZL009.
///
/// Both bounds walk the lowered DAG's longest path. `wire_sol_s` prices
/// every transfer at the physical wire rate of its slowest hop (a
/// speed-of-light floor no schedule can beat); `protocol_s` additionally
/// applies each transfer's per-flow protocol cap, so it is the tighter
/// bound and the one compared against simulated iteration time.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTimeBound {
    /// Longest-path time with transfers at wire speed-of-light.
    pub wire_sol_s: f64,
    /// Longest-path time with per-flow protocol caps applied.
    pub protocol_s: f64,
    /// Tasks on the protocol-bound critical path.
    pub critical_tasks: usize,
    /// Seconds of the protocol-bound path spent in transfers.
    pub transfer_s: f64,
    /// Seconds of the protocol-bound path spent in compute and delays.
    pub compute_s: f64,
}

impl StepTimeBound {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("wire_sol_s".into(), Json::Num(self.wire_sol_s)),
            ("protocol_s".into(), Json::Num(self.protocol_s)),
            ("critical_tasks".into(), Json::Num(num(self.critical_tasks))),
            ("transfer_s".into(), Json::Num(self.transfer_s)),
            ("compute_s".into(), Json::Num(self.compute_s)),
        ])
    }
}

#[allow(clippy::cast_precision_loss)]
fn num(i: usize) -> f64 {
    i as f64
}

/// Collects findings during a run, applying the configured lint levels.
#[derive(Debug)]
pub struct Sink<'c> {
    config: &'c LintConfig,
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,
    memory: Option<MemoryVerdict>,
    links: Vec<LinkVerdict>,
    bound: Option<StepTimeBound>,
}

impl<'c> Sink<'c> {
    fn new(config: &'c LintConfig) -> Self {
        Sink {
            config,
            diagnostics: Vec::new(),
            suppressed: 0,
            memory: None,
            links: Vec::new(),
            bound: None,
        }
    }

    fn push(
        &mut self,
        code: LintCode,
        severity: Severity,
        site: Site,
        message: String,
        help: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            site,
            message,
            help,
        });
    }

    /// Reports a finding at the code's configured level (`deny` level
    /// yields [`Severity::Deny`], `warn` yields [`Severity::Warning`],
    /// `allow` suppresses).
    pub fn report(&mut self, code: LintCode, site: Site, message: String, help: String) {
        match self.config.level(code) {
            LintLevel::Allow => self.suppressed += 1,
            LintLevel::Warn => self.push(code, Severity::Warning, site, message, help),
            LintLevel::Deny => self.push(code, Severity::Deny, site, message, help),
        }
    }

    /// Reports an advisory finding that never exceeds `max` severity,
    /// regardless of the configured level. Used for "suspicious but
    /// legal" findings inside deny-level lints.
    pub fn report_at_most(
        &mut self,
        code: LintCode,
        max: Severity,
        site: Site,
        message: String,
        help: String,
    ) {
        let configured = match self.config.level(code) {
            LintLevel::Allow => {
                self.suppressed += 1;
                return;
            }
            LintLevel::Warn => Severity::Warning,
            LintLevel::Deny => Severity::Deny,
        };
        let sev = configured.min(max);
        self.push(code, sev, site, message, help);
    }

    /// Records the ZL001 verdict for the report.
    pub fn set_memory_verdict(&mut self, v: MemoryVerdict) {
        self.memory = Some(v);
    }

    /// Records one ZL004 link verdict for the report.
    pub fn push_link_verdict(&mut self, v: LinkVerdict) {
        self.links.push(v);
    }

    /// Records the ZL009 step-time bound for the report.
    pub fn set_step_bound(&mut self, b: StepTimeBound) {
        self.bound = Some(b);
    }
}

/// One static analysis over some artifact layer.
pub trait Pass: std::fmt::Debug {
    /// The stable code of the findings this pass emits.
    fn code(&self) -> LintCode;
    /// Runs the analysis, reporting findings into `sink`.
    fn run(&self, art: &Artifacts<'_>, sink: &mut Sink<'_>);
}

/// The outcome of a lint run: diagnostics plus the structured verdicts
/// the consistency tests cross-check against the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in pass-registration then site order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings dropped by `allow`-level configuration.
    pub suppressed: usize,
    /// ZL001's static residency bound, when the pass ran.
    pub memory: Option<MemoryVerdict>,
    /// ZL004's per-link classification, when the pass ran.
    pub links: Vec<LinkVerdict>,
    /// ZL009's static step-time lower bound, when the pass ran.
    pub bound: Option<StepTimeBound>,
}

impl AnalysisReport {
    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True when no deny-severity finding was produced.
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders every diagnostic plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "planlint: {} deny, {} warning(s), {} note(s), {} suppressed\n",
            self.deny_count(),
            self.warning_count(),
            self.note_count(),
            self.suppressed
        ));
        out
    }

    /// Machine-readable form of the full report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "diagnostics".into(),
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            ("deny".into(), Json::Num(num(self.deny_count()))),
            ("warnings".into(), Json::Num(num(self.warning_count()))),
            ("notes".into(), Json::Num(num(self.note_count()))),
            ("suppressed".into(), Json::Num(num(self.suppressed))),
            (
                "memory".into(),
                match &self.memory {
                    Some(m) => m.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "links".into(),
                Json::Arr(self.links.iter().map(LinkVerdict::to_json).collect()),
            ),
            (
                "bound".into(),
                match &self.bound {
                    Some(b) => b.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Runs a registered suite of passes under a [`LintConfig`].
#[derive(Debug)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    config: LintConfig,
}

impl PassManager {
    /// An empty manager with `config`.
    pub fn new(config: LintConfig) -> Self {
        PassManager {
            passes: Vec::new(),
            config,
        }
    }

    /// A manager with every in-tree pass (ZL001–ZL009) registered.
    pub fn with_default_passes(config: LintConfig) -> Self {
        let mut pm = PassManager::new(config);
        for pass in crate::passes::default_passes() {
            pm.register(pass);
        }
        pm
    }

    /// Registers an additional pass; passes run in registration order.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The lint-level configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Mutable access to the lint-level configuration.
    pub fn config_mut(&mut self) -> &mut LintConfig {
        &mut self.config
    }

    /// Codes of the registered passes, in run order.
    pub fn pass_codes(&self) -> Vec<LintCode> {
        self.passes.iter().map(|p| p.code()).collect()
    }

    /// Runs every registered pass over `art`.
    pub fn run(&self, art: &Artifacts<'_>) -> AnalysisReport {
        let mut sink = Sink::new(&self.config);
        for pass in &self.passes {
            pass.run(art, &mut sink);
        }
        AnalysisReport {
            diagnostics: sink.diagnostics,
            suppressed: sink.suppressed,
            memory: sink.memory,
            links: sink.links,
            bound: sink.bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    #[derive(Debug)]
    struct AlwaysFires;
    impl Pass for AlwaysFires {
        fn code(&self) -> LintCode {
            LintCode::DeadOps
        }
        fn run(&self, _art: &Artifacts<'_>, sink: &mut Sink<'_>) {
            sink.report(
                LintCode::DeadOps,
                Site::Config,
                "synthetic finding".into(),
                String::new(),
            );
        }
    }

    #[test]
    fn sink_applies_lint_levels() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let art = Artifacts::new(&cluster);

        let mut pm = PassManager::new(LintConfig::new());
        pm.register(Box::new(AlwaysFires));
        let r = pm.run(&art);
        assert_eq!(r.warning_count(), 1, "default level for ZL005 is warn");
        assert!(r.is_clean());

        let mut pm = PassManager::new(LintConfig::new().with(LintCode::DeadOps, LintLevel::Deny));
        pm.register(Box::new(AlwaysFires));
        let r = pm.run(&art);
        assert_eq!(r.deny_count(), 1);
        assert!(!r.is_clean());

        let mut pm = PassManager::new(LintConfig::new().with(LintCode::DeadOps, LintLevel::Allow));
        pm.register(Box::new(AlwaysFires));
        let r = pm.run(&art);
        assert_eq!(r.diagnostics.len(), 0);
        assert_eq!(r.suppressed, 1);
        assert!(r.render_text().contains("1 suppressed"));
    }

    #[test]
    fn default_manager_registers_all_nine_passes() {
        let pm = PassManager::with_default_passes(LintConfig::new());
        let codes = pm.pass_codes();
        assert_eq!(codes.len(), 9);
        for c in LintCode::ALL {
            assert!(codes.contains(&c), "missing pass {c}");
        }
        assert_eq!(pm.config().level(LintCode::DagCycle), LintLevel::Deny);
    }

    #[test]
    fn report_json_has_summary_fields() {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let pm = PassManager::with_default_passes(LintConfig::new());
        let r = pm.run(&Artifacts::new(&cluster));
        let j = r.to_json().render();
        assert!(j.contains("\"diagnostics\""));
        assert!(j.contains("\"deny\""));
        assert!(j.contains("\"links\""));
        assert!(j.contains("\"bound\""));
    }
}
