//! The characterization engine: runs a strategy on the simulated cluster
//! and measures throughput, bandwidth, memory, and timelines — the
//! simulated equivalent of the paper's measurement methodology
//! (Sec. III-B).

use zerosim_hw::{Cluster, ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_simkit::{BandwidthRecorder, Dag, DagEngine, EngineMode, FlowObserver, SimTime};
use zerosim_strategies::{
    lower, plan_checkpoint, plan_restore, Calibration, CheckpointSink, IterCtx, StrategyPlan,
    TrainOptions,
};

use crate::error::CoreError;
use crate::faults::FaultConfig;
use crate::report::{rank_hot_links, BandwidthReport, ResilienceMetrics, TrainingReport};

/// How a characterization run samples and averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Warm-up iterations excluded from all measurements (the paper warms
    /// up before collecting from the fifth iteration).
    pub warmup_iters: usize,
    /// Measured iterations.
    pub measure_iters: usize,
    /// Bandwidth sampling bucket (hardware-counter sampling period).
    pub bucket: SimTime,
    /// Run even if the memory plan does not fit (for what-if studies).
    pub allow_overflow: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_iters: 1,
            measure_iters: 3,
            bucket: SimTime::from_ms(50.0),
            allow_overflow: false,
        }
    }
}

impl RunConfig {
    /// A faster configuration for sweeps: no warm-up, one measured
    /// iteration.
    pub fn quick() -> Self {
        RunConfig {
            warmup_iters: 0,
            measure_iters: 1,
            ..Self::default()
        }
    }
}

/// Owns a simulated cluster and characterizes training runs on it.
///
/// ```
/// use zerosim_core::TrainingSim;
/// use zerosim_hw::ClusterSpec;
/// use zerosim_model::GptConfig;
/// use zerosim_strategies::{Strategy, TrainOptions};
///
/// # fn main() -> Result<(), zerosim_core::CoreError> {
/// let mut sim = TrainingSim::new(ClusterSpec::default())?;
/// let report = sim.run(
///     &Strategy::Ddp,
///     &GptConfig::paper_model_with_params(1.4),
///     &TrainOptions::single_node(),
///     &zerosim_core::RunConfig::quick(),
/// )?;
/// assert!(report.throughput_tflops() > 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrainingSim {
    cluster: Cluster,
    calib: Calibration,
    engine_mode: EngineMode,
}

impl TrainingSim {
    /// Builds a simulator over a fresh cluster.
    ///
    /// # Errors
    /// Returns [`CoreError::BadCluster`] for inconsistent specs.
    pub fn new(spec: ClusterSpec) -> Result<Self, CoreError> {
        Ok(TrainingSim {
            cluster: Cluster::new(spec).map_err(CoreError::BadCluster)?,
            calib: Calibration::default(),
            engine_mode: EngineMode::default(),
        })
    }

    /// Builds a simulator with custom calibration constants.
    ///
    /// # Errors
    /// Returns [`CoreError::BadCluster`] for inconsistent specs.
    pub fn with_calibration(spec: ClusterSpec, calib: Calibration) -> Result<Self, CoreError> {
        Ok(TrainingSim {
            cluster: Cluster::new(spec).map_err(CoreError::BadCluster)?,
            calib,
            engine_mode: EngineMode::default(),
        })
    }

    /// The DAG-executor implementation runs will use
    /// ([`EngineMode::Arena`] unless overridden by `ZEROSIM_ENGINE`).
    pub fn engine_mode(&self) -> EngineMode {
        self.engine_mode
    }

    /// Selects the DAG-executor implementation for subsequent runs — the
    /// differential equivalence suite uses this to pin one simulator to
    /// [`EngineMode::Reference`] and compare digests against the arena.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.engine_mode = mode;
    }

    /// The simulated cluster (e.g. to create NVMe volumes before an
    /// Infinity run).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The calibration constants in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Characterizes one training configuration.
    ///
    /// The strategy's [`zerosim_strategies::IterPlan`] is lowered to a
    /// task graph **once**; each warm-up and measured iteration only
    /// re-stamps the jitter-seeded compute durations
    /// ([`zerosim_strategies::LoweredPlan::stamp`]) before execution.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] if the strategy rejects the
    /// configuration; [`CoreError::DoesNotFit`] if the memory plan
    /// overflows a tier (and `cfg.allow_overflow` is false);
    /// [`CoreError::Sim`] if the DAG deadlocks (cannot happen for the
    /// built-in strategies).
    pub fn run(
        &mut self,
        strategy: &dyn StrategyPlan,
        model: &GptConfig,
        opts: &TrainOptions,
        cfg: &RunConfig,
    ) -> Result<TrainingReport, CoreError> {
        let ctx = IterCtx {
            cluster: &self.cluster,
            model,
            opts,
            calib: &self.calib,
        };
        let memory = strategy.plan_memory(&ctx)?;
        if !cfg.allow_overflow {
            if let Some(tier) = memory.bottleneck(&self.cluster) {
                let requested = match tier {
                    "gpu" => memory.per_gpu_bytes,
                    "cpu" => memory.per_node_cpu_bytes,
                    _ => memory.nvme_bytes,
                };
                return Err(CoreError::DoesNotFit { tier, requested });
            }
        }

        // Plan + lower once: structure is iteration-invariant.
        let plan = strategy.plan_iteration(&ctx)?;
        let mut lowered = lower(&plan, &self.cluster, &self.calib)?;
        let plan_lowerings = 1usize;

        let mut engine = DagEngine::new(self.cluster.resource_slots());
        engine.set_mode(self.engine_mode);

        // Warm-up (unrecorded). Each iteration re-stamps with its own
        // jitter seed so the measured window shows realistic run-to-run
        // variation.
        let mut t = SimTime::ZERO;
        let mut seed = opts.jitter_seed;
        for _ in 0..cfg.warmup_iters {
            let dag = lowered.stamp(seed);
            seed += 1;
            t = engine.run(self.cluster.net_mut(), dag, t, None)?.finished;
        }
        engine.take_spans(); // discard warm-up spans

        // Measured iterations.
        let solver_before = self.cluster.net().solver_stats();
        let mut rec = BandwidthRecorder::with_origin(cfg.bucket, t);
        let mut total = SimTime::ZERO;
        let n_measured = cfg.measure_iters.max(1);
        for _ in 0..n_measured {
            let dag = lowered.stamp(seed);
            seed += 1;
            let out = engine.run(self.cluster.net_mut(), dag, t, Some(&mut rec))?;
            total += out.makespan();
            t = out.finished;
        }
        let iter_time = total / (n_measured as u64);

        // Per-(node, class) aggregation, Table IV style.
        let mut bandwidth = BandwidthReport::new(cfg.bucket);
        for node in 0..opts.nodes {
            for class in LinkClass::TABLE_IV {
                let links = self.cluster.links(node, class);
                let stats = rec.stats(links);
                let series = rec.aggregate_series(links);
                bandwidth.insert(node, class, stats, series);
            }
        }

        // Per-link "hot wires" ranking across every physical link class.
        let hot_links = rank_hot_links(&self.cluster, opts.nodes, &rec, total.as_secs());

        let tokens = model.tokens_per_iteration(opts.per_gpu_batch, opts.num_gpus(&self.cluster))
            * opts.grad_accum as f64;
        Ok(TrainingReport {
            strategy: strategy.display_name(),
            model_params: model.num_params(),
            nodes: opts.nodes,
            iter_time,
            flops_per_iteration: model.iteration_flops(tokens).total(),
            tokens_per_iteration: tokens,
            memory,
            bandwidth,
            spans: engine.take_spans(),
            hot_links,
            plan_lowerings,
            resilience: None,
            solver: self
                .cluster
                .net()
                .solver_stats()
                .delta_since(&solver_before),
            engine: engine.stats(),
        })
    }

    /// Characterizes one training configuration under a fault schedule,
    /// with checkpoint/restart recovery.
    ///
    /// Semantics match [`TrainingSim::run`] exactly when `faults` is
    /// [`FaultConfig::healthy`] — same seed sequence, same recorder
    /// origin, byte-identical [`TrainingReport::digest`]. On top of that:
    ///
    /// * the fault schedule is consumed by one [`zerosim_simkit::FaultCursor`]
    ///   shared across all iterations, so the virtual clock and the fault
    ///   clock stay aligned;
    /// * every `policy.checkpoint_interval` committed iterations, the
    ///   strategy's checkpoint plan (state snapshot to `sink`) runs on the
    ///   same engine — lowered once, like the iteration plan;
    /// * a node loss aborts the in-flight iteration; the run restarts
    ///   after `policy.restart_delay_s`, replays the restore plan if a
    ///   snapshot exists, rolls back to the last committed checkpoint,
    ///   and replays the lost iterations — up to `policy.max_recoveries`
    ///   times.
    ///
    /// The returned report carries [`ResilienceMetrics`] (goodput,
    /// iteration-time percentiles, replay/recovery accounting, and the
    /// schedule digest). When the call returns — success or
    /// [`CoreError::RecoveryExhausted`] — every link is restored to its
    /// nominal capacity, so the same simulator can run further
    /// characterizations; the faults belong to the run, not the cluster.
    ///
    /// Measures the cost of one checkpoint snapshot on this cluster: the
    /// makespan (seconds) of the strategy-independent `plan_checkpoint`
    /// state-movement plan for `model` under `opts`, executed on an
    /// otherwise idle network. This is the `C` that drives Young/Daly
    /// interval selection in [`crate::fleet`] — measured from the same
    /// lowered DAG [`TrainingSim::run_resilient`] replays at every
    /// checkpoint, not estimated from bandwidth math.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] when the checkpoint plan does not
    /// validate against the cluster (e.g. an NVMe sink whose volumes do
    /// not exist); [`CoreError::Sim`] if the DAG cannot execute.
    pub fn checkpoint_cost(
        &mut self,
        model: &GptConfig,
        opts: &TrainOptions,
        sink: &CheckpointSink,
    ) -> Result<f64, CoreError> {
        let ctx = IterCtx {
            cluster: &self.cluster,
            model,
            opts,
            calib: &self.calib,
        };
        let save = plan_checkpoint(&ctx, sink);
        save.validate(&self.cluster)?;
        let dag = lower(&save, &self.cluster, &self.calib)?.into_dag();
        let mut engine = DagEngine::new(self.cluster.resource_slots());
        engine.set_mode(self.engine_mode);
        let out = engine.run(self.cluster.net_mut(), &dag, SimTime::ZERO, None)?;
        Ok(out.makespan().as_secs())
    }

    /// # Errors
    /// Everything [`TrainingSim::run`] returns, plus
    /// [`CoreError::RecoveryExhausted`] when node losses outrun the
    /// recovery budget.
    pub fn run_resilient(
        &mut self,
        strategy: &dyn StrategyPlan,
        model: &GptConfig,
        opts: &TrainOptions,
        cfg: &RunConfig,
        faults: &FaultConfig,
    ) -> Result<TrainingReport, CoreError> {
        let ctx = IterCtx {
            cluster: &self.cluster,
            model,
            opts,
            calib: &self.calib,
        };
        let memory = strategy.plan_memory(&ctx)?;
        if !cfg.allow_overflow {
            if let Some(tier) = memory.bottleneck(&self.cluster) {
                let requested = match tier {
                    "gpu" => memory.per_gpu_bytes,
                    "cpu" => memory.per_node_cpu_bytes,
                    _ => memory.nvme_bytes,
                };
                return Err(CoreError::DoesNotFit { tier, requested });
            }
        }

        // Plan + lower once, as in `run`; checkpoint and restore plans
        // are likewise lowered exactly once.
        let plan = strategy.plan_iteration(&ctx)?;
        let mut lowered = lower(&plan, &self.cluster, &self.calib)?;
        let plan_lowerings = 1usize;
        let ckpt_dags: Option<(Dag, Dag)> = if faults.policy.checkpoint_interval > 0 {
            let save = plan_checkpoint(&ctx, &faults.sink);
            let restore = plan_restore(&ctx, &faults.sink);
            save.validate(&self.cluster)?;
            restore.validate(&self.cluster)?;
            Some((
                lower(&save, &self.cluster, &self.calib)?.into_dag(),
                lower(&restore, &self.cluster, &self.calib)?.into_dag(),
            ))
        } else {
            None
        };

        let mut engine = DagEngine::new(self.cluster.resource_slots());
        engine.set_mode(self.engine_mode);
        let mut cursor = faults.schedule.cursor();
        let scheduled_faults = cursor.remaining();

        let mut t = SimTime::ZERO;
        let mut seed = opts.jitter_seed;
        let n_measured = cfg.measure_iters.max(1);
        let target = cfg.warmup_iters + n_measured;

        // Accounting.
        let mut completed: Vec<SimTime> = Vec::new(); // every finished execution
        let mut committed_times: Vec<SimTime> = Vec::new(); // surviving commits
        let mut executed = 0usize;
        let mut committed = 0usize;
        let mut replayed = 0usize;
        let mut recoveries = 0usize;
        let mut checkpoints_taken = 0usize;
        let mut checkpoint_time = SimTime::ZERO;
        let mut recovery_time = SimTime::ZERO;
        let mut last_ckpt_commit = 0usize;

        let mut rec: Option<BandwidthRecorder> = None;
        let mut measure_start = SimTime::ZERO;
        let mut solver_before = None;

        // Reborrows the recorder as a flow observer for one engine call.
        macro_rules! obs {
            () => {
                rec.as_mut().map(|r| r as &mut dyn FlowObserver)
            };
        }
        // Node-loss recovery: charge the restart delay, replay the restore
        // traffic (itself interruptible), roll back to the last committed
        // checkpoint, and yield the time at which training resumes.
        macro_rules! recover {
            ($fault_at:expr) => {{
                let mut fault_at = $fault_at;
                loop {
                    recoveries += 1;
                    if recoveries > faults.policy.max_recoveries {
                        self.cluster.net_mut().restore_all_links();
                        return Err(CoreError::RecoveryExhausted {
                            budget: faults.policy.max_recoveries,
                        });
                    }
                    let mut resume = fault_at + SimTime::from_secs(faults.policy.restart_delay_s);
                    replayed += committed - last_ckpt_commit;
                    committed = last_ckpt_commit;
                    committed_times.truncate(last_ckpt_commit);
                    if checkpoints_taken > 0 {
                        if let Some((_, restore)) = &ckpt_dags {
                            let out = engine.run_faulted(
                                self.cluster.net_mut(),
                                restore,
                                resume,
                                obs!(),
                                &mut cursor,
                            )?;
                            if out.interrupted {
                                // A second loss mid-restore: restart again.
                                recovery_time += out.finished - fault_at;
                                fault_at = out.finished;
                                continue;
                            }
                            resume = out.finished;
                        }
                    }
                    recovery_time += resume - fault_at;
                    break resume;
                }
            }};
        }

        while committed < target {
            // Entering the measured window: discard warm-up spans and
            // anchor the recorder, exactly as `run` does. Once created,
            // the recorder keeps counting through replays and recoveries
            // (hardware counters do not pause for a crash).
            if rec.is_none() && committed >= cfg.warmup_iters {
                engine.take_spans();
                measure_start = t;
                solver_before = Some(self.cluster.net().solver_stats());
                rec = Some(BandwidthRecorder::with_origin(cfg.bucket, t));
            }

            let dag = lowered.stamp(seed);
            seed += 1;
            executed += 1;
            let out = engine.run_faulted(self.cluster.net_mut(), dag, t, obs!(), &mut cursor)?;
            if out.interrupted {
                t = recover!(out.finished);
                continue;
            }
            let makespan = out.makespan();
            t = out.finished;
            completed.push(makespan);
            committed_times.push(makespan);
            committed += 1;

            // Checkpoint cadence (also taken during warm-up: faults do
            // not wait for the measured window).
            if let Some((save, _)) = &ckpt_dags {
                if committed.is_multiple_of(faults.policy.checkpoint_interval) {
                    let out =
                        engine.run_faulted(self.cluster.net_mut(), save, t, obs!(), &mut cursor)?;
                    if out.interrupted {
                        t = recover!(out.finished);
                        continue;
                    }
                    checkpoint_time += out.makespan();
                    t = out.finished;
                    checkpoints_taken += 1;
                    last_ckpt_commit = committed;
                }
            }
        }

        // Leave the cluster healthy: faults belong to this run, not to the
        // simulator. (The straggler scale dies with the local engine; link
        // scales live in the network and must be reset explicitly.)
        self.cluster.net_mut().restore_all_links();

        // Mean over the surviving measured iterations (identical to
        // `run`'s arithmetic when nothing faults).
        let mut total = SimTime::ZERO;
        for &mk in &committed_times[cfg.warmup_iters..] {
            total += mk;
        }
        let iter_time = total / (n_measured as u64);
        let measured_wall = t - measure_start;

        let rec = rec.unwrap_or_else(|| BandwidthRecorder::with_origin(cfg.bucket, t));
        let mut bandwidth = BandwidthReport::new(cfg.bucket);
        for node in 0..opts.nodes {
            for class in LinkClass::TABLE_IV {
                let links = self.cluster.links(node, class);
                let stats = rec.stats(links);
                let series = rec.aggregate_series(links);
                bandwidth.insert(node, class, stats, series);
            }
        }
        let hot_links = rank_hot_links(&self.cluster, opts.nodes, &rec, measured_wall.as_secs());

        let tokens = model.tokens_per_iteration(opts.per_gpu_batch, opts.num_gpus(&self.cluster))
            * opts.grad_accum as f64;
        let flops_per_iteration = model.iteration_flops(tokens).total();

        let mut sorted = completed.clone();
        sorted.sort_unstable();
        let percentile = |q: f64| -> SimTime {
            if sorted.is_empty() {
                return SimTime::ZERO;
            }
            // q in [0,1], so the rank is bounded by len: exact as usize.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = ((q * sorted.len() as f64).ceil() as usize)
                .saturating_sub(1)
                .min(sorted.len() - 1);
            sorted[idx]
        };
        let resilience = ResilienceMetrics {
            goodput_flops: flops_per_iteration * n_measured as f64
                / measured_wall.as_secs().max(1e-12),
            iter_p50: percentile(0.50),
            iter_p90: percentile(0.90),
            iter_p99: percentile(0.99),
            executed_iterations: executed,
            committed_iterations: committed,
            replayed_iterations: replayed,
            checkpoints_taken,
            checkpoint_time,
            recoveries,
            recovery_time,
            faults_applied: scheduled_faults - cursor.remaining(),
            wall_time: t,
            schedule_digest: faults.schedule.digest(),
        };

        Ok(TrainingReport {
            strategy: strategy.display_name(),
            model_params: model.num_params(),
            nodes: opts.nodes,
            iter_time,
            flops_per_iteration,
            tokens_per_iteration: tokens,
            memory,
            bandwidth,
            spans: engine.take_spans(),
            hot_links,
            plan_lowerings,
            resilience: Some(resilience),
            solver: self
                .cluster
                .net()
                .solver_stats()
                .delta_since(&solver_before.unwrap_or_default()),
            engine: engine.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_strategies::Strategy;

    fn sim() -> TrainingSim {
        TrainingSim::new(ClusterSpec::default()).unwrap()
    }

    #[test]
    fn ddp_run_produces_sane_report() {
        let mut s = sim();
        let report = s
            .run(
                &Strategy::Ddp,
                &GptConfig::paper_model_with_params(1.4),
                &TrainOptions::single_node(),
                &RunConfig::default(),
            )
            .unwrap();
        assert!(report.throughput_tflops() > 200.0);
        assert!(report.throughput_tflops() < 1248.0, "below 4×A100 peak");
        // Single-node: RoCE silent, NVLink busy.
        let roce = report.bandwidth.stats(0, LinkClass::Roce);
        assert_eq!(roce.avg, 0.0);
        let nvl = report.bandwidth.stats(0, LinkClass::NvLink);
        assert!(nvl.avg > 1e9, "NVLink avg {} too low", nvl.avg);
        assert!(!report.spans.spans().is_empty());
        // The lower-once / re-stamp cache: 4 iterations, one lowering.
        assert_eq!(report.plan_lowerings, 1);
    }

    #[test]
    fn infeasible_strategy_config_is_a_typed_error() {
        let mut s = sim();
        let err = s
            .run(
                &Strategy::Megatron { tp: 3, pp: 1 },
                &GptConfig::paper_model_with_params(1.4),
                &TrainOptions::single_node(),
                &RunConfig::quick(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("must divide the GPU count"));
    }

    #[test]
    fn oversized_model_is_rejected() {
        let mut s = sim();
        let err = s
            .run(
                &Strategy::Ddp,
                &GptConfig::paper_model_with_params(5.5),
                &TrainOptions::single_node(),
                &RunConfig::quick(),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::DoesNotFit { tier: "gpu", .. }));
    }

    #[test]
    fn allow_overflow_runs_anyway() {
        let mut s = sim();
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        let r = s
            .run(
                &Strategy::Ddp,
                &GptConfig::paper_model_with_params(2.9),
                &TrainOptions::single_node(),
                &cfg,
            )
            .unwrap();
        assert!(r.throughput_tflops() > 0.0);
    }

    #[test]
    fn resilient_run_without_faults_matches_plain_run() {
        let model = GptConfig::paper_model_with_params(1.4);
        let opts = TrainOptions::single_node();
        let cfg = RunConfig::default();
        let plain = sim().run(&Strategy::Ddp, &model, &opts, &cfg).unwrap();
        let resilient = sim()
            .run_resilient(&Strategy::Ddp, &model, &opts, &cfg, &FaultConfig::healthy())
            .unwrap();
        assert_eq!(plain.digest(), resilient.digest());
        assert_eq!(plain.iter_time, resilient.iter_time);
        let m = resilient.resilience.as_ref().unwrap();
        assert_eq!(m.recoveries, 0);
        assert_eq!(m.replayed_iterations, 0);
        assert_eq!(m.faults_applied, 0);
        // Equal up to the nanosecond truncation of the mean iteration time.
        let rel = (m.goodput_flops - resilient.throughput_flops()).abs() / m.goodput_flops;
        assert!(rel < 1e-6, "goodput deviates: rel {rel}");
        assert_eq!(resilient.plan_lowerings, 1);
    }

    #[test]
    fn node_loss_recovers_from_checkpoint_and_replays() {
        use crate::faults::{FaultConfig, FaultScenario};
        use zerosim_strategies::{CheckpointSink, RecoveryPolicy};

        let model = GptConfig::paper_model_with_params(1.4);
        let opts = TrainOptions::single_node();
        let cfg = RunConfig {
            warmup_iters: 0,
            measure_iters: 6,
            ..RunConfig::default()
        };
        // Find a healthy iteration time, then kill the node mid-run.
        let mut s = sim();
        let healthy = s
            .run_resilient(&Strategy::Ddp, &model, &opts, &cfg, &FaultConfig::healthy())
            .unwrap();
        let wall = healthy.resilience.as_ref().unwrap().wall_time.as_secs();
        let schedule = FaultScenario::NodeLoss {
            node: 0,
            at_s: 0.55 * wall,
        }
        .compile(s.cluster(), 42);
        let faults = FaultConfig::new(
            schedule,
            RecoveryPolicy::every(2).with_restart_delay(0.5),
            CheckpointSink::Dram,
        );
        let mut s2 = sim();
        let faulted = s2
            .run_resilient(&Strategy::Ddp, &model, &opts, &cfg, &faults)
            .unwrap();
        let m = faulted.resilience.as_ref().unwrap();
        assert_eq!(m.recoveries, 1);
        assert_eq!(m.faults_applied, 1);
        // Lost work is bounded by the checkpoint interval (zero when the
        // loss lands right after a checkpoint commit).
        assert!(m.replayed_iterations <= faults.policy.checkpoint_interval);
        assert!(m.checkpoints_taken >= 1);
        assert!(m.recovery_time >= SimTime::from_secs(0.5));
        assert!(m.time_to_recover() >= SimTime::from_secs(0.5));
        assert_eq!(m.committed_iterations, 6);
        assert!(m.executed_iterations > 6);
        // Replay + recovery strictly reduce goodput below the healthy run.
        assert!(
            m.goodput_flops < healthy.resilience.as_ref().unwrap().goodput_flops,
            "goodput under node loss must drop"
        );
        assert_eq!(faulted.plan_lowerings, 1);

        // Same seed + same schedule => byte-identical reports.
        let mut s3 = sim();
        let again = s3
            .run_resilient(&Strategy::Ddp, &model, &opts, &cfg, &faults)
            .unwrap();
        assert_eq!(faulted.digest(), again.digest());
        assert_eq!(faulted.resilience, again.resilience);
    }

    #[test]
    fn node_loss_without_recovery_budget_is_a_typed_error() {
        use crate::faults::{FaultConfig, FaultScenario};

        let model = GptConfig::paper_model_with_params(1.4);
        let opts = TrainOptions::single_node();
        let mut s = sim();
        let schedule = FaultScenario::NodeLoss { node: 0, at_s: 0.1 }.compile(s.cluster(), 0);
        let err = s
            .run_resilient(
                &Strategy::Ddp,
                &model,
                &opts,
                &RunConfig::quick(),
                &FaultConfig::without_checkpoints(schedule),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::RecoveryExhausted { budget: 0 }));
    }

    #[test]
    fn straggler_stretches_iteration_tail() {
        use crate::faults::{FaultConfig, FaultScenario};
        use zerosim_hw::GpuId;

        let model = GptConfig::paper_model_with_params(1.4);
        let opts = TrainOptions::single_node();
        let cfg = RunConfig {
            warmup_iters: 0,
            measure_iters: 4,
            ..RunConfig::default()
        };
        let mut s = sim();
        let healthy = s
            .run_resilient(&Strategy::Ddp, &model, &opts, &cfg, &FaultConfig::healthy())
            .unwrap();
        let schedule = FaultScenario::Straggler {
            gpu: GpuId { node: 0, gpu: 1 },
            factor: 0.5,
            at_s: 0.0,
        }
        .compile(s.cluster(), 0);
        let mut s2 = sim();
        let slow = s2
            .run_resilient(
                &Strategy::Ddp,
                &model,
                &opts,
                &cfg,
                &FaultConfig::without_checkpoints(schedule),
            )
            .unwrap();
        let hm = healthy.resilience.as_ref().unwrap();
        let sm = slow.resilience.as_ref().unwrap();
        assert!(
            sm.iter_p50 > hm.iter_p50,
            "straggler must stretch iterations: {} vs {}",
            sm.iter_p50,
            hm.iter_p50
        );
        assert!(sm.goodput_flops < hm.goodput_flops);
        assert!(sm.iter_p99 >= sm.iter_p50);
    }

    #[test]
    fn dual_node_uses_roce() {
        let mut s = sim();
        let report = s
            .run(
                &Strategy::Zero {
                    stage: zerosim_strategies::ZeroStage::Three,
                },
                &GptConfig::paper_model_with_params(1.4),
                &TrainOptions::dual_node(),
                &RunConfig::quick(),
            )
            .unwrap();
        for node in 0..2 {
            let roce = report.bandwidth.stats(node, LinkClass::Roce);
            assert!(roce.avg > 0.0, "node {node} RoCE idle");
        }
    }
}
