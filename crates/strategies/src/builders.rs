//! Shared building blocks for iteration task graphs.

use zerosim_hw::{Cluster, GpuId, MemLoc, Route, SocketId};
use zerosim_model::GptConfig;
use zerosim_simkit::{DagBuilder, SimTime, TaskId};

use crate::calib::Calibration;
use crate::options::TrainOptions;

/// Everything an iteration builder needs to consult.
#[derive(Debug, Clone, Copy)]
pub struct IterCtx<'a> {
    /// The simulated cluster.
    pub cluster: &'a Cluster,
    /// The model being trained.
    pub model: &'a GptConfig,
    /// Run options.
    pub opts: &'a TrainOptions,
    /// Performance-model constants.
    pub calib: &'a Calibration,
}

impl<'a> IterCtx<'a> {
    /// Tokens processed per iteration across the whole run, including all
    /// gradient-accumulation micro-steps.
    pub fn total_tokens(&self) -> f64 {
        self.model
            .tokens_per_iteration(self.opts.per_gpu_batch, self.opts.num_gpus(self.cluster))
            * self.opts.grad_accum as f64
    }

    /// Forward FLOPs of one transformer layer over `tokens` tokens,
    /// divided across `mp` model-parallel ranks.
    pub fn layer_fwd_flops(&self, tokens: f64, mp: usize) -> f64 {
        let h = self.model.hidden_size as f64;
        let dense = 2.0 * self.model.layer_params() * tokens;
        let attention = 4.0 * self.model.seq_len as f64 * h * tokens;
        (dense + attention) / mp as f64
    }

    /// Forward FLOPs of the embedding + vocabulary projection over
    /// `tokens` tokens, divided across `mp` ranks.
    pub fn embedding_fwd_flops(&self, tokens: f64, mp: usize) -> f64 {
        2.0 * self.model.embedding_params() * tokens / mp as f64
    }

    /// Deterministic per-task jitter factor in
    /// `1 ± compute_jitter_frac`, keyed on the iteration seed and the
    /// task's position in the DAG (SplitMix64).
    fn jitter(&self, dag: &DagBuilder) -> f64 {
        let amp = self.calib.compute_jitter_frac;
        if amp == 0.0 {
            return 1.0;
        }
        let mut z = self
            .opts
            .jitter_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(dag.len() as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + amp * (2.0 * u - 1.0)
    }

    /// Emits one layer's (or phase's) GPU compute: the GEMM span plus a
    /// short element-wise span, serialized on the GPU.
    pub fn emit_layer_compute(
        &self,
        dag: &mut DagBuilder,
        gpu: GpuId,
        flops: f64,
        label: &str,
        deps: &[TaskId],
    ) -> TaskId {
        let res = self.cluster.gpu_resource(gpu);
        // A transformer layer issues ~6 GEMM kernels; efficiency is judged
        // per kernel.
        let per_kernel = flops / 6.0;
        let gemm_s = 6.0 * self.calib.kernel_time_s(per_kernel) * self.jitter(dag);
        let gemm = dag.compute(res, SimTime::from_secs(gemm_s), label, deps);
        let ew_s = self.calib.elementwise_frac * gemm_s;
        dag.compute(
            res,
            SimTime::from_secs(ew_s.max(self.calib.kernel_overhead_s)),
            "elementwise",
            &[gemm],
        )
    }

    /// Emits the weight-update (GPU Adam) span for `params` parameters.
    pub fn emit_gpu_adam(
        &self,
        dag: &mut DagBuilder,
        gpu: GpuId,
        params: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let res = self.cluster.gpu_resource(gpu);
        dag.compute(
            res,
            SimTime::from_secs(self.calib.gpu_adam_time_s(params)),
            "weight_update",
            deps,
        )
    }

    /// Emits the CPU Adam span for `params` parameters on `socket`.
    pub fn emit_cpu_adam(
        &self,
        dag: &mut DagBuilder,
        socket: SocketId,
        params: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let res = self.cluster.cpu_resource(socket);
        dag.compute(
            res,
            SimTime::from_secs(self.calib.cpu_adam_time_s(params)),
            "cpu_adam",
            deps,
        )
    }

    /// Emits a host↔device (or host↔host, host↔NVMe) transfer along
    /// `route`.
    pub fn emit_transfer(
        &self,
        dag: &mut DagBuilder,
        route: Route,
        bytes: f64,
        label: &str,
        track: u32,
        deps: &[TaskId],
    ) -> TaskId {
        dag.transfer_capped(
            route.links,
            bytes.max(1.0),
            route.latency,
            route.cap,
            label,
            track,
            deps,
        )
    }

    /// The fixed per-iteration overhead delay every GPU chain hangs off.
    pub fn emit_iteration_prologue(&self, dag: &mut DagBuilder) -> TaskId {
        dag.delay(SimTime::from_secs(self.calib.iteration_overhead_s), &[])
    }

    /// Emits the input-pipeline H2D copy for one GPU (token ids plus the
    /// framework's small per-iteration host traffic), preceded by the
    /// data-loader's DRAM activity on the GPU's socket.
    pub fn emit_input_h2d(&self, dag: &mut DagBuilder, gpu: GpuId, deps: &[TaskId]) -> TaskId {
        let socket = self.cluster.gpu_socket(gpu);
        let track = self.cluster.gpu_resource(gpu).0 as u32;
        // Host-side shuffling/bookkeeping: DRAM-only traffic.
        let dram_route = self.cluster.route(MemLoc::Cpu(socket), MemLoc::Cpu(socket));
        let prep = self.emit_transfer(
            dag,
            dram_route,
            self.calib.host_dram_bytes_per_iter,
            "host_prep",
            track,
            deps,
        );
        let route = self.cluster.route(MemLoc::Cpu(socket), MemLoc::Gpu(gpu));
        let bytes = (self.opts.per_gpu_batch * self.model.seq_len * 4) as f64
            + self.calib.host_pcie_bytes_per_iter;
        self.emit_transfer(dag, route, bytes, "h2d", track, &[prep])
    }

    /// Socket a rank's host-side partition lives on. A
    /// `offload_cross_socket_frac` share of ranks gets mis-placed on the
    /// neighbouring socket, reproducing the paper's observation that
    /// DeepSpeed's offload path is not NUMA-aware (Sec. V-A3).
    pub fn offload_socket(&self, rank: usize, gpu: GpuId) -> SocketId {
        let natural = self.cluster.gpu_socket(gpu);
        let stride = (1.0 / self.calib.offload_cross_socket_frac.max(1e-9)).round() as usize;
        if stride > 0 && rank % stride.max(1) == stride.max(1) - 1 {
            SocketId {
                node: natural.node,
                socket: 1 - natural.socket,
            }
        } else {
            natural
        }
    }

    /// Number of layers grouped per communication bucket, bounding DAG
    /// size for very deep models.
    pub fn comm_bucket_layers(&self) -> usize {
        self.model.num_layers.div_ceil(48).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn fixtures() -> (Cluster, GptConfig, TrainOptions, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            GptConfig::default(),
            TrainOptions::single_node(),
            Calibration::default(),
        )
    }

    #[test]
    fn layer_flops_split_by_mp() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let f1 = ctx.layer_fwd_flops(4096.0, 1);
        let f4 = ctx.layer_fwd_flops(4096.0, 4);
        assert!((f1 / f4 - 4.0).abs() < 1e-12);
        assert_eq!(ctx.total_tokens(), 16384.0 * o.grad_accum as f64);
    }

    #[test]
    fn compute_emission_produces_two_spans() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let mut dag = DagBuilder::new();
        let g = GpuId { node: 0, gpu: 0 };
        ctx.emit_layer_compute(&mut dag, g, 1e11, "gemm", &[]);
        assert_eq!(dag.len(), 2); // gemm + elementwise
    }

    #[test]
    fn offload_socket_misplaces_some_ranks() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let gpus = o.gpus(&c);
        let misplaced = gpus
            .iter()
            .enumerate()
            .filter(|(r, g)| ctx.offload_socket(*r, **g) != c.gpu_socket(**g))
            .count();
        assert!(misplaced >= 1, "some rank must land cross-socket");
        assert!(misplaced < gpus.len(), "not all ranks cross-socket");
    }

    #[test]
    fn comm_buckets_bound_dag_size() {
        let (c, _, o, k) = fixtures();
        let deep = GptConfig::paper_model(659);
        let ctx = IterCtx {
            cluster: &c,
            model: &deep,
            opts: &o,
            calib: &k,
        };
        assert!(ctx.comm_bucket_layers() >= 13);
        let shallow = GptConfig::paper_model(26);
        let ctx2 = IterCtx {
            cluster: &c,
            model: &shallow,
            opts: &o,
            calib: &k,
        };
        assert_eq!(ctx2.comm_bucket_layers(), 1);
    }
}
