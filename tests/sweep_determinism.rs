//! Parallel sweeps are deterministic: fanning the 12 golden paper
//! configurations (the strategy × node matrix of `plan_equivalence.rs`
//! plus ZeRO-Infinity, shared via `zerosim_bench::data::golden_specs`)
//! across 1, 2, and 8 workers yields the same ordered label and digest
//! vectors — scheduling must never leak into results. Worker counts
//! beyond the machine are clamped ([`SweepRunner::new`]), and the clamp
//! must be equally invisible in the output.

use zerosim_bench::data::golden_specs;
use zerosim_core::SweepRunner;

#[test]
fn golden_sweep_is_width_invariant() {
    let specs = golden_specs();
    assert_eq!(specs.len(), 12, "golden matrix must stay at 12 configs");

    // Serial execution is the reference ordering.
    let reference = SweepRunner::new(1)
        .run_parallel(specs.clone())
        .expect("golden configs run");
    assert_eq!(reference.len(), 12);

    for workers in [2usize, 8] {
        let runs = SweepRunner::new(workers)
            .run_parallel(specs.clone())
            .expect("golden configs run");
        let labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
        let expect_labels: Vec<&str> = reference.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, expect_labels, "ordering broke at {workers} workers");
        for (run, want) in runs.iter().zip(&reference) {
            assert_eq!(
                run.digest, want.digest,
                "digest drifted at {workers} workers for {}",
                run.label
            );
            // The digest excludes solver accounting; check the work
            // counters separately — they must match too, because each
            // run's event sequence is spec-determined.
            assert_eq!(
                run.report.solver, want.report.solver,
                "solver accounting drifted at {workers} workers for {}",
                run.label
            );
        }
    }
}

#[test]
fn sweep_digests_distinguish_the_golden_configs() {
    let runs = SweepRunner::new(8)
        .run_parallel(golden_specs())
        .expect("golden configs run");
    let mut digests: Vec<u64> = runs.iter().map(|r| r.digest).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), runs.len(), "golden digests must be distinct");
}

#[test]
fn oversubscribed_workers_are_clamped_without_changing_digests() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // An absurd request is clamped to the machine, but the ask survives
    // for reporting.
    let wide = SweepRunner::new(64);
    assert_eq!(wide.requested_workers(), 64);
    assert_eq!(wide.workers(), 64.min(cores));
    assert!(wide.workers() <= cores, "pool must not oversubscribe");

    // Requests at or under the machine width pass through unclamped.
    let serial = SweepRunner::new(1);
    assert_eq!(serial.requested_workers(), 1);
    assert_eq!(serial.workers(), 1);

    // The clamp is invisible in results: a subset of the golden matrix
    // digests identically at width 1 and width 64-clamped.
    let specs: Vec<_> = golden_specs().into_iter().take(3).collect();
    let reference = serial.run_parallel(specs.clone()).expect("subset runs");
    let clamped = wide.run_parallel(specs).expect("subset runs");
    for (c, r) in clamped.iter().zip(&reference) {
        assert_eq!(c.label, r.label);
        assert_eq!(
            c.digest, r.digest,
            "clamping changed digest for {}",
            c.label
        );
    }
}
