//! ext13 — fleet-scale resilience economics.
//!
//! Two studies compose the PR-8 fleet layer end to end:
//!
//! 1. **The fleetplan cost search** — rank (strategy × placement ×
//!    checkpoint interval) by dollars-to-train on a fat-tree fleet at a
//!    production failure rate, charging amortized capital plus energy
//!    against failure-adjusted goodput.
//! 2. **Young/Daly validation** — for three golden configurations, replay
//!    the *same* MTBF-sampled fault ensembles at half, exactly, and twice
//!    the analytic checkpoint interval and confirm the analytic optimum
//!    wins on simulated goodput. The ensembles run at a compressed MTBF
//!    (the Young/Daly trade-off is self-similar in `√(C·M)`, so a
//!    seconds-scale window exercises the same physics as a 50-day one in
//!    a tractable number of simulated iterations).
//!
//! Everything is seed-stamped and byte-identical at any sweep width; the
//! `fleetplan --bench` scorecard gates on it in `verify.sh`.

use zerosim_core::{
    fleet_search, young_daly_bracket, CheckpointSink, EnsembleConfig, FleetCostConfig,
    FleetProfile, FleetReport, RecoveryPolicy, RunConfig, SweepSpec, TrainingSim, YoungDalyBracket,
};
use zerosim_hw::{ClusterSpec, TopologySpec};
use zerosim_model::GptConfig;
use zerosim_report::Table;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

use crate::data;

/// Model size of the golden bracket configs (the paper's 1.4 B baseline).
pub const GOLDEN_BILLIONS: f64 = 1.4;

/// Samples per ensemble in the release artifact (the acceptance floor).
pub const ENSEMBLE_SAMPLES: usize = 32;

/// Seed stamped onto every golden ensemble.
pub const ENSEMBLE_SEED: u64 = 2024;

/// Measured iterations per sample: long enough that checkpoint cadence
/// and mid-run losses both move goodput.
pub const GOLDEN_MEASURE_ITERS: usize = 24;

/// The compressed-MTBF calibration targets the Young interval at this
/// many iterations, so the 0.5×/1×/2× bracket spans distinct cadences.
const K_TARGET: f64 = 4.0;

/// The three golden configurations the Young/Daly gate covers: the
/// paper's replication baseline, a sharded-optimizer config, and a fully
/// partitioned dual-node config (checkpoint shards shrink with world
/// size, so `C` — and with it the optimal interval — differs per row).
pub fn golden_configs() -> Vec<(&'static str, Strategy, usize)> {
    vec![
        ("PyTorch DDP @ 1 node", Strategy::Ddp, 1),
        (
            "ZeRO-2 @ 1 node",
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            "ZeRO-3 @ 2 nodes",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
    ]
}

/// Runs the Young/Daly bracket for one golden configuration: measures the
/// healthy iteration time and the DRAM checkpoint cost, compresses the
/// node-fatal MTBF so the analytic interval lands near [`K_TARGET`]
/// iterations, and replays the same `samples` sampled schedules at half,
/// exactly, and twice that interval.
///
/// # Panics
/// Panics when the golden configuration fails to fit or run — these are
/// the paper's own baseline shapes, so that is a harness bug.
pub fn golden_bracket(
    name: &str,
    strategy: &Strategy,
    nodes: usize,
    samples: usize,
    measure_iters: usize,
    workers: usize,
) -> YoungDalyBracket {
    let model = GptConfig::paper_model_with_params(GOLDEN_BILLIONS);
    let cluster = ClusterSpec::default().with_nodes(nodes);
    let opts = TrainOptions::for_nodes(nodes);
    let run = RunConfig {
        warmup_iters: 0,
        measure_iters,
        ..RunConfig::default()
    };
    let base = SweepSpec::new(format!("fleet / {name}"), strategy.clone(), model, opts)
        .with_cluster(cluster.clone())
        .with_run(run);
    let healthy = base.execute().expect("golden config runs healthy");
    let iter_s = healthy.report.iter_time.as_secs();
    let wall_s = iter_s * measure_iters as f64;

    let mut sim = TrainingSim::new(cluster).expect("golden cluster builds");
    let ckpt_cost_s = sim
        .checkpoint_cost(&model, &opts, &CheckpointSink::Dram)
        .expect("checkpoint plan lowers");

    // Compress the fatal MTBF so τ_young = √(2·C·M) = K_TARGET
    // iterations: M_eff = (K·t_iter)² / (2C). The sampler caps losses at
    // one per node, so invert that cap to find the per-node mean whose
    // capped sampling realizes M_eff over the window.
    let mtbf_eff = (K_TARGET * iter_s).powi(2) / (2.0 * ckpt_cost_s);
    let mtbf_node = FleetProfile::node_mtbf_for_effective(nodes, wall_s, mtbf_eff)
        // When the target cadence would need more losses than the
        // one-per-node cap can deliver, saturate at an 80% per-node loss
        // probability — the bracket recomputes the optimum from the
        // *realized* effective rate, so it stays self-consistent.
        .unwrap_or(-wall_s / 0.2f64.ln());
    // Vacuous-bracket guard: a bracket where losses never fire measures
    // only checkpoint overhead and always crowns the laziest cadence.
    // Keep the per-node loss probability high enough for ≈8 expected
    // losses across the whole ensemble (capped at 80%); at the release
    // budget (32 samples) the natural rate already clears this.
    let p_nat = 1.0 - (-wall_s / mtbf_node).exp();
    let p_floor = (8.0 / (samples * nodes) as f64).min(0.8);
    let mtbf_node = if p_nat < p_floor {
        -wall_s / (1.0 - p_floor).ln()
    } else {
        mtbf_node
    };
    let profile = FleetProfile::node_only(mtbf_node);
    let cfg = EnsembleConfig::new(samples, wall_s)
        .with_seed(ENSEMBLE_SEED)
        .with_workers(workers)
        .with_policy(
            RecoveryPolicy::every(1)
                .with_restart_delay((0.5 * iter_s).max(1e-3))
                .with_max_recoveries(64),
        );
    young_daly_bracket(&base, &profile, &cfg, ckpt_cost_s, iter_s).expect("bracket ensembles run")
}

/// All three golden brackets at the artifact's sample count.
pub fn golden_brackets(samples: usize, workers: usize) -> Vec<(&'static str, YoungDalyBracket)> {
    golden_configs()
        .into_iter()
        .map(|(name, strategy, nodes)| {
            (
                name,
                golden_bracket(
                    name,
                    &strategy,
                    nodes,
                    samples,
                    GOLDEN_MEASURE_ITERS,
                    workers,
                ),
            )
        })
        .collect()
}

/// The ext13 fleet search: the paper's 1.4 B model on a 4-node fat-tree
/// at a production failure rate.
pub fn ext13_search() -> FleetReport {
    let topology = TopologySpec::FatTree {
        racks: 2,
        nodes_per_rack: 2,
        oversubscription: 2.0,
    };
    let cfg = FleetCostConfig::new(
        topology,
        GptConfig::paper_model_with_params(GOLDEN_BILLIONS),
        0.05,
    )
    .with_workers(data::sweep_workers())
    .with_top(4);
    fleet_search(&cfg).expect("fleet search runs")
}

/// Renders the bracket table shared by the artifact and the scorecard.
pub fn bracket_table(brackets: &[(&'static str, YoungDalyBracket)]) -> String {
    let mut t = Table::new(vec![
        "config",
        "C (s)",
        "M_sys (s)",
        "tau (s)",
        "gp @ tau/2",
        "gp @ tau",
        "gp @ 2tau",
        "YD wins",
    ]);
    for (name, b) in brackets {
        t.row(vec![
            (*name).to_string(),
            format!("{:.3}", b.ckpt_cost_s),
            format!("{:.2}", b.mtbf_s),
            format!("{:.2}", b.interval_s),
            format!("{:.1}", b.half.mean_goodput_tflops),
            format!("{:.1}", b.opt.mean_goodput_tflops),
            format!("{:.1}", b.double.mean_goodput_tflops),
            if b.yd_wins() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.render()
}

/// The full ext13 artifact: the fleetplan cost ranking plus the
/// Young/Daly validation table.
pub fn ext13_fleet_economics() -> String {
    let report = ext13_search();
    let brackets = golden_brackets(ENSEMBLE_SAMPLES, data::sweep_workers());
    format!(
        "{}\n\
         Checkpoint shards shrink with world size (a ZeRO-partitioned\n\
         save), so C — and with it the Young/Daly interval — is a\n\
         per-configuration quantity, not a cluster constant.\n\n\
         Young/Daly validation — mean goodput (TFLOP/s) over {} MTBF-sampled\n\
         fault ensembles per cell, same sampled schedules at every cadence\n\
         (compressed MTBF, seed {}):\n{}",
        report.render_text(),
        ENSEMBLE_SAMPLES,
        ENSEMBLE_SEED,
        bracket_table(&brackets),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_bracket_daly_wins() {
        // Debug-budget bracket: fewer samples, shorter runs. The win
        // assertion is the same physics the release gate checks at 32
        // samples; width-invariance of the digests is gated in release by
        // `scripts/verify.sh` (fleetplan --workers 1 vs 4) and by the
        // core ensemble tests.
        let (name, strategy, nodes) = golden_configs().remove(0);
        let a = golden_bracket(name, &strategy, nodes, 8, 12, 2);
        assert!(
            a.yd_wins(),
            "Young/Daly must beat both bracket points: {:?} vs {:?} / {:?}",
            a.opt,
            a.half,
            a.double
        );
        assert!(
            a.opt.failed == 0,
            "golden ensembles must not exhaust recovery"
        );
    }

    #[test]
    fn search_ranks_feasible_candidates() {
        let report = ext13_search();
        assert!(!report.candidates.is_empty());
        let best = report.best().expect("at least one costed candidate");
        assert!(best.feasible);
        assert!(best.dollars_to_train > 0.0);
        assert!(best.goodput_tflops <= best.throughput_tflops);
        // Ranking is cheapest-first.
        for w in report.candidates.windows(2) {
            if w[0].feasible && w[1].feasible {
                assert!(w[0].dollars_to_train <= w[1].dollars_to_train);
            }
        }
    }
}
