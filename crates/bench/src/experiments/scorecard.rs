//! The reproduction scorecard: every headline number of the paper next to
//! the simulated value, with the relative delta and a pass/fail verdict —
//! EXPERIMENTS.md as machine-checkable code.

use zerosim_core::{max_model_size, RunConfig, SweepRun, TrainingSim};
use zerosim_hw::{ClusterSpec, LinkClass};
use zerosim_model::GptConfig;
use zerosim_perftest::{stress_test, StressScenario};
use zerosim_report::Table;
use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

use crate::data::{self, NvmeConfig};

/// One scorecard line.
#[derive(Debug, Clone)]
pub struct ScoreRow {
    /// What is being compared (artifact + metric).
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// ZeroSim's value.
    pub sim: f64,
    /// Acceptable relative deviation for a pass.
    pub tolerance: f64,
}

impl ScoreRow {
    /// Relative deviation of sim from paper.
    pub fn delta(&self) -> f64 {
        (self.sim - self.paper) / self.paper
    }

    /// True when within tolerance.
    pub fn pass(&self) -> bool {
        self.delta().abs() <= self.tolerance
    }
}

fn capacity_b(strategy: &Strategy, nodes: usize) -> f64 {
    data::capacity(strategy, nodes).billions()
}

/// Every `TrainingSim` run the scorecard needs, as one spec batch in a
/// fixed order (capacity searches stay serial: they are analytic, not
/// simulation runs). The order here is consumed positionally by
/// [`compute_rows`].
fn scorecard_specs() -> Vec<zerosim_core::SweepSpec> {
    let mut specs = Vec::new();

    // fig7: each baseline at its own capacity, quick measurement.
    for nodes in [1usize, 2] {
        for (name, strategy) in data::baselines(nodes) {
            let cap = data::capacity(&strategy, nodes);
            specs.push(data::spec(
                format!("fig7 {name} {nodes}n"),
                strategy,
                GptConfig::paper_model(cap.num_layers),
                nodes,
                false,
            ));
        }
    }

    // fig11: consolidation runs at 11.4 B, overflow allowed.
    let model = GptConfig::paper_model_with_params(11.4);
    let overflow = RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    };
    specs.push(
        data::spec(
            "fig11 megatron 2n",
            Strategy::Megatron { tp: 8, pp: 1 },
            model,
            2,
            false,
        )
        .with_run(overflow),
    );
    specs.push(
        data::spec(
            "fig11 zero2-cpu 1n",
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            model,
            1,
            false,
        )
        .with_run(overflow),
    );
    let inf_rc = RunConfig {
        allow_overflow: true,
        warmup_iters: 1,
        measure_iters: 1,
        ..RunConfig::default()
    };
    specs.push(NvmeConfig::A.spec("fig11 infinity A", model, inf_rc));
    specs.push(NvmeConfig::B.spec("fig11 infinity B", model, inf_rc));

    // table4: DDP / ZeRO-3 dual-node at capacity, thorough measurement.
    for strategy in [
        Strategy::Ddp,
        Strategy::Zero {
            stage: ZeroStage::Three,
        },
    ] {
        let cap = data::capacity(&strategy, 2);
        specs.push(data::spec(
            format!("table4 {} 2n", strategy.name()),
            strategy,
            GptConfig::paper_model(cap.num_layers),
            2,
            true,
        ));
    }

    // table6: every NVMe placement at 33.3 B.
    let big = GptConfig::paper_model_with_params(33.3);
    for cfg in NvmeConfig::ALL {
        specs.push(cfg.spec(format!("table6 config {}", cfg.letter()), big, inf_rc));
    }

    specs
}

/// Computes every scorecard row. Capacity searches run serially; all
/// simulation runs fan out through [`data::sweep`] at the configured
/// worker count (`repro --workers N`).
pub fn compute_rows() -> Vec<ScoreRow> {
    let mut rows = Vec::new();
    let mut add = |metric: &str, paper: f64, sim: f64, tolerance: f64| {
        rows.push(ScoreRow {
            metric: metric.to_string(),
            paper,
            sim,
            tolerance,
        });
    };

    // Fan every TrainingSim run out in one parallel sweep up front;
    // results come back in spec order and are consumed positionally.
    let runs = data::sweep(scorecard_specs());
    let mut runs = runs.into_iter();
    let mut next = || -> SweepRun { runs.next().expect("scorecard spec batch exhausted") };

    // --- Fig. 4: stress-test fractions (tight: these calibrate the model).
    for (name, scenario, paper) in [
        (
            "fig4: CPU-RoCE same-socket %",
            StressScenario::CpuRoce {
                cross_socket: false,
            },
            93.0,
        ),
        (
            "fig4: CPU-RoCE cross-socket %",
            StressScenario::CpuRoce { cross_socket: true },
            47.0,
        ),
        (
            "fig4: GPU-RoCE same-socket %",
            StressScenario::GpuRoce {
                cross_socket: false,
            },
            52.0,
        ),
        (
            "fig4: GPU-RoCE cross-socket %",
            StressScenario::GpuRoce { cross_socket: true },
            42.0,
        ),
    ] {
        add(
            name,
            paper,
            stress_test(scenario).roce_fraction * 100.0,
            0.06,
        );
    }

    // --- Fig. 6: capacities.
    let baselines = data::baselines(1);
    let paper_cap_1 = [1.4, 5.5, 4.4, 5.2, 6.6];
    let paper_cap_2 = [1.4, 11.4, 6.4, 8.5, 13.5];
    for (i, (name, strategy)) in baselines.iter().enumerate() {
        add(
            &format!("fig6: {name} capacity 1-node B"),
            paper_cap_1[i],
            capacity_b(strategy, 1),
            0.20,
        );
    }
    for (i, (name, strategy)) in data::baselines(2).iter().enumerate() {
        add(
            &format!("fig6: {name} capacity 2-node B"),
            paper_cap_2[i],
            capacity_b(strategy, 2),
            0.20,
        );
    }

    // --- Fig. 7: throughputs (sweep positions 0–9).
    let paper_tput_1 = [438.0, 331.0, 391.0, 524.0, 381.0];
    let paper_tput_2 = [640.0, 121.0, 395.0, 424.0, 458.0];
    for (i, (name, _)) in data::baselines(1).iter().enumerate() {
        add(
            &format!("fig7: {name} TFLOP/s 1-node"),
            paper_tput_1[i],
            next().report.throughput_tflops(),
            0.25,
        );
    }
    for (i, (name, _)) in data::baselines(2).iter().enumerate() {
        add(
            &format!("fig7: {name} TFLOP/s 2-node"),
            paper_tput_2[i],
            next().report.throughput_tflops(),
            0.30,
        );
    }

    // --- Fig. 11: consolidation (sweep positions 10–13).
    let megatron_dual = next().report.throughput_tflops();
    let z2_cpu = next().report.throughput_tflops();
    add(
        "fig11: Megatron 2-node TFLOP/s @11.4B",
        121.0,
        megatron_dual,
        0.25,
    );
    add("fig11: ZeRO-2 CPU TFLOP/s @11.4B", 191.0, z2_cpu, 0.25);
    add(
        "fig11: consolidation speedup x",
        1.578,
        z2_cpu / megatron_dual,
        0.20,
    );

    // ZeRO-Infinity with one and two drives.
    add(
        "fig11: Infinity 1xNVME opt TFLOP/s",
        20.4,
        next().report.throughput_tflops(),
        0.30,
    );
    add(
        "fig11: Infinity 2xNVME opt TFLOP/s",
        38.1,
        next().report.throughput_tflops(),
        0.30,
    );

    // --- Fig. 13: largest single-node offload models.
    add(
        "fig13: ZeRO-2 CPU capacity B",
        14.2,
        capacity_b(
            &Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        0.20,
    );
    {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let d = |drive| zerosim_hw::NvmeId { node: 0, drive };
        let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
        let s = Strategy::ZeroInfinity {
            offload_params: false,
            placement: zerosim_strategies::InfinityPlacement::new(vec![vol]),
        };
        let cap = max_model_size(
            sim.cluster(),
            &s,
            &TrainOptions::single_node(),
            sim.calibration(),
        )
        .unwrap()
        .billions();
        add("fig13: ZeRO-Infinity capacity B", 33.3, cap, 0.20);
    }

    // --- Table IV spot checks (sweep positions 14–15): dual-node RoCE
    // averages (loose: counter conventions differ; see EXPERIMENTS.md).
    let roce_avg =
        |run: SweepRun| -> f64 { run.report.bandwidth.stats(0, LinkClass::Roce).avg / 1e9 };
    add(
        "table4: DDP 2-node RoCE avg GBps",
        9.28,
        roce_avg(next()),
        1.5,
    );
    add(
        "table4: ZeRO-3 2-node RoCE avg GBps",
        16.3,
        roce_avg(next()),
        1.0,
    );

    // --- Table VI (sweep positions 16–22): NVMe placements at 33.3 B.
    let paper_t6 = [19.6, 37.16, 35.43, 40.22, 51.22, 64.61, 65.16];
    for (i, cfg) in NvmeConfig::ALL.into_iter().enumerate() {
        add(
            &format!("table6: config {} TFLOP/s", cfg.letter()),
            paper_t6[i],
            next().report.throughput_tflops(),
            0.30,
        );
    }

    assert!(runs.next().is_none(), "unconsumed scorecard sweep results");
    rows
}

/// Renders the scorecard.
pub fn scorecard() -> String {
    let rows = compute_rows();
    let mut t = Table::new(vec!["metric", "paper", "sim", "delta %", "verdict"]);
    let mut passes = 0;
    for r in &rows {
        if r.pass() {
            passes += 1;
        }
        t.row(vec![
            r.metric.clone(),
            format!("{:.2}", r.paper),
            format!("{:.2}", r.sim),
            format!("{:+.1}", r.delta() * 100.0),
            if r.pass() {
                "pass".into()
            } else {
                "MISS".into()
            },
        ]);
    }
    format!(
        "Reproduction scorecard ({passes}/{} within tolerance):\n{}\n\
         Tolerances per row reflect how directly the quantity is calibrated\n\
         (stress tests ±6%) vs emergent (throughputs ±25–30%, counters looser).\n\
         Rows marked MISS are the known deviations listed in EXPERIMENTS.md.\n",
        rows.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_mostly_passes() {
        let rows = compute_rows();
        let passes = rows.iter().filter(|r| r.pass()).count();
        let misses: Vec<&ScoreRow> = rows.iter().filter(|r| !r.pass()).collect();
        // The two known deviations (ZeRO-1 throughputs) may miss; nothing
        // else should.
        assert!(
            passes + 3 >= rows.len(),
            "too many misses ({} of {}): {:#?}",
            rows.len() - passes,
            rows.len(),
            misses
        );
        for r in &misses {
            assert!(
                r.metric.contains("ZeRO-1")
                    || r.metric.contains("config D")
                    || r.metric.contains("config G"),
                "unexpected miss: {r:?}"
            );
        }
    }
}
