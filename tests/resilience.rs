//! Resilience invariants across the stack: fault-free resilient runs are
//! byte-identical to plain runs for every golden paper configuration;
//! degrade-then-restore windows never speed a run up; node-loss replay is
//! bounded by the checkpoint interval; and identical seeds + schedules
//! reproduce identical reports under faults.

use zerosim_core::{
    CheckpointSink, FaultConfig, FaultScenario, RecoveryPolicy, RunConfig, TrainingSim,
};
use zerosim_hw::{ClusterSpec, LinkClass, NvmeDrivePlacement, NvmeId};
use zerosim_model::GptConfig;
use zerosim_simkit::{DagBuilder, DagEngine, FaultKind, FaultSchedule, FlowNet, SimTime, TaskId};
use zerosim_strategies::{InfinityPlacement, Strategy, TrainOptions, ZeroStage};
use zerosim_testkit::gen::{f64_range, usize_range};
use zerosim_testkit::{prop, prop_assert};

/// The golden strategy × node-count matrix of `tests/plan_equivalence.rs`.
fn paper_configs() -> Vec<(Strategy, usize)> {
    vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ]
}

/// The 12th golden config: ZeRO-Infinity on a two-drive RAID0 scratch.
fn infinity_sim() -> (TrainingSim, Strategy) {
    let s = |socket| NvmeDrivePlacement { socket };
    let spec = ClusterSpec::default().with_nvme_layout(vec![s(1), s(1)]);
    let mut sim = TrainingSim::new(spec).unwrap();
    let d = |drive| NvmeId { node: 0, drive };
    let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
    let strategy = Strategy::ZeroInfinity {
        offload_params: false,
        placement: InfinityPlacement::new(vec![vol; 4]),
    };
    (sim, strategy)
}

fn opts_for(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

fn quick_cfg() -> RunConfig {
    RunConfig {
        allow_overflow: true,
        ..RunConfig::quick()
    }
}

// ---------- fault-free byte identity ----------

#[test]
fn fault_free_resilient_runs_are_byte_identical_for_every_paper_config() {
    let model = GptConfig::paper_model_with_params(1.4);
    for (strategy, nodes) in paper_configs() {
        let opts = opts_for(nodes);
        let mut plain_sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let plain = plain_sim
            .run(&strategy, &model, &opts, &quick_cfg())
            .unwrap();
        let mut res_sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let resilient = res_sim
            .run_resilient(
                &strategy,
                &model,
                &opts,
                &quick_cfg(),
                &FaultConfig::healthy(),
            )
            .unwrap();
        assert_eq!(
            plain.digest(),
            resilient.digest(),
            "{} on {nodes} node(s): empty schedule must not perturb the run",
            strategy.name()
        );
        let m = resilient.resilience.expect("resilient runs carry metrics");
        assert_eq!(m.faults_applied, 0);
        assert_eq!(m.replayed_iterations, 0);
        assert_eq!(m.recoveries, 0);
    }
}

#[test]
fn fault_free_resilient_run_is_byte_identical_for_zero_infinity() {
    let model = GptConfig::paper_model_with_params(1.4);
    let (mut plain_sim, strategy) = infinity_sim();
    let plain = plain_sim
        .run(
            &strategy,
            &model,
            &TrainOptions::single_node(),
            &quick_cfg(),
        )
        .unwrap();
    let (mut res_sim, _) = infinity_sim();
    let resilient = res_sim
        .run_resilient(
            &strategy,
            &model,
            &TrainOptions::single_node(),
            &quick_cfg(),
            &FaultConfig::healthy(),
        )
        .unwrap();
    assert_eq!(plain.digest(), resilient.digest());
}

// ---------- degraded links ----------

#[test]
fn deep_roce_brownout_slows_dual_node_megatron_deterministically() {
    let model = GptConfig::paper_model_with_params(1.4);
    let strategy = Strategy::Megatron { tp: 8, pp: 1 };
    let opts = TrainOptions::dual_node();
    let cfg = RunConfig {
        warmup_iters: 0,
        measure_iters: 3,
        ..RunConfig::default()
    };
    let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
    let healthy = sim
        .run_resilient(&strategy, &model, &opts, &cfg, &FaultConfig::healthy())
        .unwrap();
    let hm = healthy.resilience.as_ref().unwrap();
    let scenario = FaultScenario::DegradeClass {
        node: 0,
        class: LinkClass::Roce,
        factor: 0.1,
        at_s: 0.25 * hm.wall_time.as_secs(),
        dur_s: None,
    };
    let schedule = scenario.compile(sim.cluster(), 42);
    let run = |sim: &mut TrainingSim| {
        sim.run_resilient(
            &strategy,
            &model,
            &opts,
            &cfg,
            &FaultConfig::without_checkpoints(schedule.clone()),
        )
        .unwrap()
    };
    let a = run(&mut sim);
    let b = run(&mut sim);
    assert_eq!(a.digest(), b.digest(), "same seed + schedule, same bytes");
    assert_eq!(a.resilience, b.resilience);
    let am = a.resilience.as_ref().unwrap();
    assert!(am.faults_applied > 0, "brownout events must fire");
    assert!(
        am.goodput_flops < 0.9 * hm.goodput_flops,
        "TP=8 dual-node is RoCE-bound below the protocol cap: {} vs {}",
        am.goodput_flops,
        hm.goodput_flops
    );
    assert!(am.wall_time > hm.wall_time);
}

prop! {
    /// A degrade window (scale to `factor`, restore `dur` later) can only
    /// slow a run down, never speed it up — for any onset, depth, and
    /// length, including windows entirely after the healthy makespan.
    #[cases(64)]
    fn degrade_then_restore_never_decreases_makespan(
        factor in f64_range(0.05, 1.0),
        at in f64_range(0.0, 1.2),
        dur in f64_range(0.01, 1.5),
    ) {
        // Four chained 25-byte transfers over a 100 B/s wire: healthy
        // makespan exactly 1 s.
        let build = || {
            let mut net = FlowNet::new();
            let l = net.add_link("wire", 100.0);
            let mut b = DagBuilder::new();
            let mut prev: Vec<TaskId> = Vec::new();
            for _ in 0..4 {
                let t = b.transfer(vec![l], 25.0, SimTime::ZERO, "x", 0, &prev);
                prev = vec![t];
            }
            (net, b.build(), l)
        };
        let (mut net, dag, _) = build();
        let mut eng = DagEngine::new(vec![]);
        let healthy = eng
            .run(&mut net, &dag, SimTime::ZERO, None)
            .unwrap()
            .makespan();
        let (mut net2, dag2, link) = build();
        let sched = FaultSchedule::new(1)
            .at(at, FaultKind::ScaleLink { link, factor })
            .at(at + dur, FaultKind::RestoreLink { link });
        let mut cur = sched.cursor();
        let mut eng2 = DagEngine::new(vec![]);
        let faulted = eng2
            .run_faulted(&mut net2, &dag2, SimTime::ZERO, None, &mut cur)
            .unwrap()
            .makespan();
        prop_assert!(
            faulted.as_secs() + 1e-9 >= healthy.as_secs(),
            "degrade window sped the run up: {} < {}",
            faulted.as_secs(),
            healthy.as_secs()
        );
        // A window that overlaps the transfer at a real slowdown must bite.
        if factor < 0.999 && at < healthy.as_secs() {
            prop_assert!(
                faulted > healthy,
                "overlapping slowdown had no effect: factor {factor}, at {at}"
            );
        }
    }
}

// ---------- checkpoint/restart ----------

prop! {
    /// After a node loss, the iterations lost to replay never exceed the
    /// checkpoint interval, and goodput never exceeds the healthy run's.
    #[cases(6)]
    fn replay_loss_is_bounded_by_the_checkpoint_interval(
        interval in usize_range(1, 5),
        frac in f64_range(0.15, 0.85),
    ) {
        let model = GptConfig::paper_model_with_params(1.4);
        let strategy = Strategy::Ddp;
        let opts = TrainOptions::dual_node();
        let cfg = RunConfig {
            warmup_iters: 0,
            measure_iters: 5,
            ..RunConfig::default()
        };
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let healthy = sim
            .run_resilient(&strategy, &model, &opts, &cfg, &FaultConfig::healthy())
            .unwrap();
        let hm = healthy.resilience.as_ref().unwrap();
        let schedule = FaultScenario::NodeLoss {
            node: 1,
            at_s: frac * hm.wall_time.as_secs(),
        }
        .compile(sim.cluster(), 9);
        let faults = FaultConfig::new(
            schedule,
            RecoveryPolicy::every(interval).with_restart_delay(0.25),
            CheckpointSink::Dram,
        );
        let lost = sim
            .run_resilient(&strategy, &model, &opts, &cfg, &faults)
            .unwrap();
        let m = lost.resilience.as_ref().unwrap();
        prop_assert!(m.recoveries == 1, "one loss, one recovery: {}", m.recoveries);
        prop_assert!(
            m.replayed_iterations <= interval,
            "replayed {} > interval {interval}",
            m.replayed_iterations
        );
        prop_assert!(
            m.goodput_flops < hm.goodput_flops,
            "recovery is never free: {} vs {}",
            m.goodput_flops,
            hm.goodput_flops
        );
    }
}
