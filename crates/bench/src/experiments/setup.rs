//! Background/setup artifacts: Fig. 1, Fig. 2, Tables I–III.

use zerosim_hw::{Cluster, ClusterSpec};
use zerosim_report::Table;
use zerosim_strategies::ZeroCapability;

/// Fig. 1 — the LLM-size vs GPU-memory growth trend the paper opens with
/// (historical data; nothing to simulate).
pub fn fig1() -> String {
    let mut t = Table::new(vec!["year", "model", "params (B)", "GPU", "HBM (GB)"]);
    for (year, model, params, gpu, mem) in [
        ("2018", "ELMo", "0.094", "Tesla V100", "16"),
        ("2019", "GPT-2", "1.5", "Tesla V100", "32"),
        ("2020", "T5-11B", "11", "A100", "40"),
        ("2020", "GPT-3", "175", "A100", "40"),
        ("2021", "MT-NLG 530B", "530", "A100", "80"),
        ("2023", "GPT-4 (est.)", "1760", "H100", "80"),
    ] {
        t.row(vec![
            year.into(),
            model.into(),
            params.into(),
            gpu.into(),
            mem.into(),
        ]);
    }
    format!(
        "Fig. 1 — model size grows ~1000x in two years; GPU memory ~5x:\n{}",
        t.render()
    )
}

/// Fig. 2 — the cluster topology dump.
pub fn fig2() -> String {
    let cluster = Cluster::new(ClusterSpec::default()).expect("default spec");
    format!(
        "Fig. 2 — simulated cluster topology:\n{}",
        cluster.describe()
    )
}

/// Table I — ZeRO stage and offload capability matrix.
pub fn table1() -> String {
    let mut t = Table::new(vec![
        "stage",
        "opt",
        "grad",
        "param",
        "opt CPU",
        "opt NVME",
        "param CPU",
        "param NVME",
    ]);
    let yn = |b: bool| if b { "yes" } else { "-" }.to_string();
    for c in ZeroCapability::table() {
        t.row(vec![
            c.stage.to_string(),
            yn(c.partitions_optimizer),
            yn(c.partitions_gradients),
            yn(c.partitions_parameters),
            yn(c.optimizer_cpu_offload),
            yn(c.optimizer_nvme_offload),
            yn(c.parameter_cpu_offload),
            yn(c.parameter_nvme_offload),
        ]);
    }
    format!(
        "Table I — DeepSpeed ZeRO stage and offload capability:\n{}",
        t.render()
    )
}

/// Table II — hardware/software setup (the simulated substitutions).
pub fn table2() -> String {
    let spec = ClusterSpec::default();
    let mut t = Table::new(vec!["component", "simulated configuration"]);
    let rows = [
        ("Platform", "Dell PowerEdge XE8545 (simulated)".to_string()),
        (
            "CPU",
            "2 × AMD EPYC 7763-class sockets per node".to_string(),
        ),
        (
            "Memory",
            format!(
                "{:.0} GB DRAM per node ({:.1} GBps per socket, half-duplex)",
                spec.mem.cpu_bytes_per_node / 1e9,
                spec.bw.dram_socket / 1e9
            ),
        ),
        (
            "GPU",
            format!(
                "{} × A100-SXM4-40GB-class per node (312 TFLOP/s FP16 peak)",
                spec.gpus_per_node
            ),
        ),
        (
            "NVME",
            format!(
                "{} scratch drive(s) per node, {:.1} TB each",
                spec.nvme_layout.len(),
                spec.mem.nvme_bytes_per_drive / 1e12
            ),
        ),
        ("NIC", "2 × ConnectX-6-class 200 Gbps per node".to_string()),
        (
            "Fabric",
            "RoCE over SN3700-class switch (flow-level model)".to_string(),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    format!("Table II — hardware and software setup:\n{}", t.render())
}

/// Table III — interconnect theoretical bandwidths as modelled.
pub fn table3() -> String {
    let spec = ClusterSpec::default();
    let mut t = Table::new(vec![
        "interconnect",
        "interface",
        "links/node",
        "bidir GBps/link",
    ]);
    let rows: [(&str, &str, String, f64); 7] = [
        (
            "CPU-DRAM",
            "DRAM",
            "2 sockets".into(),
            spec.bw.dram_socket / 1e9,
        ),
        (
            "CPU-CPU",
            "xGMI",
            "1 aggregate".into(),
            2.0 * spec.bw.xgmi_dir / 1e9,
        ),
        (
            "CPU-GPU",
            "PCIe-GPU",
            format!("{}", spec.gpus_per_node),
            2.0 * spec.bw.pcie_gpu_dir / 1e9,
        ),
        (
            "GPU-GPU",
            "NVLink",
            "12 pair-dirs".into(),
            2.0 * spec.bw.nvlink_pair_dir / 1e9,
        ),
        (
            "CPU-NIC",
            "PCIe-NIC",
            "2".into(),
            2.0 * spec.bw.pcie_nic_dir / 1e9,
        ),
        (
            "CPU-NVME",
            "PCIe-NVME",
            format!("{}", spec.nvme_layout.len()),
            2.0 * spec.bw.pcie_nvme_dir / 1e9,
        ),
        (
            "Internode",
            "RoCE",
            "2 NICs".into(),
            2.0 * spec.bw.roce_dir / 1e9,
        ),
    ];
    for (a, b, c, bw) in rows {
        t.row(vec![a.into(), b.into(), c, format!("{bw:.1}")]);
    }
    format!("Table III — modelled link bandwidths:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_artifacts_render() {
        assert!(fig1().contains("GPT-3"));
        assert!(fig2().contains("socket 1"));
        let t1 = table1();
        assert!(t1.contains("NVME"));
        assert!(t1.lines().count() >= 5);
        assert!(table2().contains("A100"));
        assert!(table3().contains("NVLink"));
    }
}
