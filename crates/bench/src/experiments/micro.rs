//! Microbenchmarks: Fig. 3 (RoCE latency) and Fig. 4 (bandwidth stress).

use zerosim_hw::{ClusterSpec, LinkClass};
use zerosim_perftest::{latency_sweep, paper_message_sizes, RdmaSemantic, StressScenario};
use zerosim_report::{gbps, Table};

/// Fig. 3 — RoCE latency vs message size for SEND / RDMA READ / RDMA
/// WRITE, same- and cross-socket.
pub fn fig3() -> String {
    let spec = ClusterSpec::default();
    let sizes = paper_message_sizes();
    let mut out = String::new();
    for semantic in RdmaSemantic::ALL {
        let same = latency_sweep(&spec, semantic, false, &sizes);
        let cross = latency_sweep(&spec, semantic, true, &sizes);
        let mut t = Table::new(vec!["msg bytes", "same-socket us", "cross-socket us"]);
        for (s, c) in same.iter().zip(&cross) {
            t.row(vec![
                s.msg_bytes.to_string(),
                format!("{:.2}", s.latency.as_micros()),
                format!("{:.2}", c.latency.as_micros()),
            ]);
        }
        out.push_str(&format!(
            "Fig. 3 — {} latency:\n{}\n",
            semantic.label(),
            t.render()
        ));
    }
    out
}

/// Fig. 4 — stress-test attained bandwidth per interconnect for the four
/// scenarios.
pub fn fig4() -> String {
    let mut t = Table::new(vec![
        "scenario",
        "RoCE avg",
        "RoCE peak",
        "% of theoretical",
        "PCIe-NIC avg",
        "PCIe-GPU avg",
        "xGMI avg",
        "DRAM avg",
    ]);
    for scenario in [
        StressScenario::CpuRoce {
            cross_socket: false,
        },
        StressScenario::CpuRoce { cross_socket: true },
        StressScenario::GpuRoce {
            cross_socket: false,
        },
        StressScenario::GpuRoce { cross_socket: true },
    ] {
        let out = zerosim_perftest::stress_test(scenario);
        t.row(vec![
            scenario.label(),
            gbps(out.class(LinkClass::Roce).avg),
            gbps(out.class(LinkClass::Roce).peak),
            format!("{:.0}%", out.roce_fraction * 100.0),
            gbps(out.class(LinkClass::PcieNic).avg),
            gbps(out.class(LinkClass::PcieGpu).avg),
            gbps(out.class(LinkClass::Xgmi).avg),
            gbps(out.class(LinkClass::Dram).avg),
        ]);
    }
    format!(
        "Fig. 4 — bandwidth stress tests (GBps, node aggregate bidirectional):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_renders_all_semantics() {
        let s = fig3();
        assert!(s.contains("SEND"));
        assert!(s.contains("RDMA READ"));
        assert!(s.contains("RDMA WRITE"));
        assert!(s.contains("8388608"));
    }

    #[test]
    fn fig4_reproduces_paper_fractions() {
        // Assert on the underlying outcomes with tolerance; the rendered
        // table rounds the steady-state fraction slightly differently.
        for (scenario, expected) in [
            (
                StressScenario::CpuRoce {
                    cross_socket: false,
                },
                0.93,
            ),
            (StressScenario::CpuRoce { cross_socket: true }, 0.47),
            (
                StressScenario::GpuRoce {
                    cross_socket: false,
                },
                0.52,
            ),
            (StressScenario::GpuRoce { cross_socket: true }, 0.42),
        ] {
            let out = zerosim_perftest::stress_test(scenario);
            assert!(
                (out.roce_fraction - expected).abs() < 0.04,
                "{}: {:.2} vs paper {expected}",
                scenario.label(),
                out.roce_fraction
            );
        }
        let s = fig4();
        assert!(s.contains("CPU-RoCE (same-socket)"));
        assert!(s.contains("GPU-RoCE (cross-socket)"));
    }
}
