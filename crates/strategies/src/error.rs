//! Typed configuration errors for strategy compilation.
//!
//! Every precondition that the seed implementation enforced with a panic
//! (`expect("zero family")`, Megatron layout asserts, missing NVMe
//! placements) is now a [`StrategyError`] so callers — the
//! characterization engine, sweeps, out-of-tree strategies — can report
//! infeasible configurations instead of aborting.

use std::error::Error;
use std::fmt;

/// Why a strategy could not compile (model, cluster, options) into a
/// memory plan or iteration plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StrategyError {
    /// A parallel layout does not match the participating hardware
    /// (e.g. Megatron `tp × pp` not dividing the GPU count).
    InvalidLayout(String),
    /// A state placement violates Table I (e.g. parameter offload
    /// without ZeRO-3, NVMe tiers without a volume placement).
    InvalidPlacement(String),
    /// The emitted iteration plan failed validation against the paper's
    /// conservation laws (collective closed forms, route feasibility,
    /// phase ordering).
    InvalidPlan(String),
}

impl StrategyError {
    /// Convenience constructor for layout errors.
    pub fn layout(msg: impl Into<String>) -> Self {
        StrategyError::InvalidLayout(msg.into())
    }

    /// Convenience constructor for placement errors.
    pub fn placement(msg: impl Into<String>) -> Self {
        StrategyError::InvalidPlacement(msg.into())
    }

    /// Convenience constructor for plan-validation errors.
    pub fn plan(msg: impl Into<String>) -> Self {
        StrategyError::InvalidPlan(msg.into())
    }
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::InvalidLayout(m) => write!(f, "invalid parallel layout: {m}"),
            StrategyError::InvalidPlacement(m) => write!(f, "invalid state placement: {m}"),
            StrategyError::InvalidPlan(m) => write!(f, "invalid iteration plan: {m}"),
        }
    }
}

impl Error for StrategyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        assert!(StrategyError::layout("tp=3").to_string().contains("tp=3"));
        assert!(StrategyError::placement("no volume")
            .to_string()
            .contains("no volume"));
        assert!(StrategyError::plan("cycle").to_string().contains("cycle"));
    }
}
