//! Deterministic fault injection: timed perturbations of link capacities,
//! compute service rates, and node availability.
//!
//! A [`FaultSchedule`] is a seed-stamped list of [`FaultEvent`]s — "at
//! t = 40 s, RoCE drops to 50%", "at t = 10 s, GPU 3 runs at 0.7× speed",
//! "at t = 60 s, node 1 disappears". The engine consumes the schedule
//! through a [`FaultCursor`] while executing a DAG: link events rescale
//! [`crate::flow::FlowNet`] capacities mid-run (in-flight flows re-converge
//! to the new max-min fair allocation), resource events rescale compute
//! service rates at task-launch granularity, and a node loss aborts the run
//! so a higher layer can model checkpoint/restart.
//!
//! Determinism contract: a schedule is plain data — the same seed and the
//! same events replayed against the same simulation produce byte-identical
//! results. [`FaultSchedule::digest`] provides a stable fingerprint that
//! reports can embed so two runs can be compared for equality.

use crate::error::SimError;
use crate::flow::LinkId;
use crate::time::SimTime;

/// Residual capacity factor used for a "down" link during a flap.
///
/// A flapping NIC is modelled as retaining a trickle of capacity rather
/// than exactly zero: with a zero-rate link the max-min allocation of flows
/// pinned to it would be 0 B/s and the network would stop generating
/// events, turning a transient fault into an artificial deadlock. One
/// thousandth of nominal keeps rates well-defined while being slow enough
/// to dominate any realistic makespan.
pub const FLAP_FLOOR: f64 = 1e-3;

/// One kind of perturbation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Set a link to an absolute capacity in bytes/second.
    SetLinkCap {
        /// The link to rescale.
        link: LinkId,
        /// New absolute capacity (sustained rate for bucketed links).
        bytes_per_sec: f64,
    },
    /// Scale a link to `factor` × its nominal capacity (absolute w.r.t.
    /// nominal, not cumulative).
    ScaleLink {
        /// The link to rescale.
        link: LinkId,
        /// Fraction of nominal capacity, in `(0, ∞)`.
        factor: f64,
    },
    /// Restore a link to its nominal capacity.
    RestoreLink {
        /// The link to restore.
        link: LinkId,
    },
    /// Slow a compute resource to `factor` × its nominal speed (a
    /// straggler). Applied at task-launch granularity: tasks that start
    /// while the slowdown is active run `1/factor` × longer.
    SlowResource {
        /// Engine resource index (see `ResourceId`).
        resource: usize,
        /// Speed multiplier in `(0, 1]` for a straggler; `> 1` models a
        /// boost.
        factor: f64,
    },
    /// Restore a compute resource to nominal speed.
    RestoreResource {
        /// Engine resource index.
        resource: usize,
    },
    /// A node disappears. The engine aborts the current run at the event
    /// time (cancelling the flows it started); recovery —
    /// restart-from-checkpoint and replay — is modelled by the layer above.
    NodeLoss {
        /// Topology-level node index (opaque to the engine).
        node: usize,
    },
}

/// A [`FaultKind`] pinned to a point on the virtual time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulation time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A seed-stamped, ordered collection of timed fault events.
///
/// Events may be pushed in any order; consumption through
/// [`FaultSchedule::cursor`] is stably sorted by time (ties fire in
/// insertion order). The `seed` does not drive any randomness inside the
/// schedule itself — it stamps the scenario so that derived artifacts
/// (jittered compute, reports) can tie their provenance together.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Creates an empty (healthy) schedule stamped with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// The stamp this schedule was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no fault ever fires.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled events in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedules `kind` at `secs` seconds and returns the schedule for
    /// chaining.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite. Use
    /// [`FaultSchedule::try_at`] when the time comes from external input.
    pub fn at(self, secs: f64, kind: FaultKind) -> Self {
        match self.try_at(secs, kind) {
            Ok(s) => s,
            Err(_) => panic!("FaultSchedule::at: invalid event time {secs}"),
        }
    }

    /// Fallible variant of [`FaultSchedule::at`]: rejects negative, NaN, or
    /// infinite times with [`SimError::BadFaultTime`] instead of panicking.
    pub fn try_at(mut self, secs: f64, kind: FaultKind) -> Result<Self, SimError> {
        let at = SimTime::checked_from_secs(secs).ok_or(SimError::BadFaultTime)?;
        self.push(at, kind);
        Ok(self)
    }

    /// Schedules `kind` at an absolute [`SimTime`].
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Sugar: a link flap — the link drops to [`FLAP_FLOOR`] × nominal at
    /// `at_secs` and is restored `down_secs` later.
    ///
    /// # Panics
    /// Panics if either time is negative or not finite. Use
    /// [`FaultSchedule::try_flap`] for external input.
    pub fn flap(self, link: LinkId, at_secs: f64, down_secs: f64) -> Self {
        match self.try_flap(link, at_secs, down_secs) {
            Ok(s) => s,
            Err(_) => panic!("FaultSchedule::flap: invalid window [{at_secs}, +{down_secs}]"),
        }
    }

    /// Fallible variant of [`FaultSchedule::flap`].
    pub fn try_flap(self, link: LinkId, at_secs: f64, down_secs: f64) -> Result<Self, SimError> {
        self.try_at(
            at_secs,
            FaultKind::ScaleLink {
                link,
                factor: FLAP_FLOOR,
            },
        )?
        .try_at(at_secs + down_secs, FaultKind::RestoreLink { link })
    }

    /// Sugar: degrade `link` to `factor` × nominal at `at_secs` and restore
    /// it `dur_secs` later.
    ///
    /// # Panics
    /// Panics if either time is negative or not finite. Use
    /// [`FaultSchedule::try_degrade_window`] for external input.
    pub fn degrade_window(self, link: LinkId, at_secs: f64, factor: f64, dur_secs: f64) -> Self {
        match self.try_degrade_window(link, at_secs, factor, dur_secs) {
            Ok(s) => s,
            Err(_) => {
                panic!("FaultSchedule::degrade_window: invalid window [{at_secs}, +{dur_secs}]")
            }
        }
    }

    /// Fallible variant of [`FaultSchedule::degrade_window`].
    pub fn try_degrade_window(
        self,
        link: LinkId,
        at_secs: f64,
        factor: f64,
        dur_secs: f64,
    ) -> Result<Self, SimError> {
        self.try_at(at_secs, FaultKind::ScaleLink { link, factor })?
            .try_at(at_secs + dur_secs, FaultKind::RestoreLink { link })
    }

    /// A stable 64-bit fingerprint of the seed and every event (kind,
    /// parameters, and firing time). Two schedules with equal digests are
    /// behaviourally identical; reports embed the digest so byte-identity
    /// across runs can be asserted cheaply.
    pub fn digest(&self) -> u64 {
        let mut h = mix(0x9e37_79b9_7f4a_7c15, self.seed);
        for ev in &self.events {
            h = mix(h, ev.at.as_nanos());
            h = match &ev.kind {
                FaultKind::SetLinkCap {
                    link,
                    bytes_per_sec,
                } => mix(mix(mix(h, 1), link.index() as u64), bytes_per_sec.to_bits()),
                FaultKind::ScaleLink { link, factor } => {
                    mix(mix(mix(h, 2), link.index() as u64), factor.to_bits())
                }
                FaultKind::RestoreLink { link } => mix(mix(h, 3), link.index() as u64),
                FaultKind::SlowResource { resource, factor } => {
                    mix(mix(mix(h, 4), *resource as u64), factor.to_bits())
                }
                FaultKind::RestoreResource { resource } => mix(mix(h, 5), *resource as u64),
                FaultKind::NodeLoss { node } => mix(mix(h, 6), *node as u64),
            };
        }
        h
    }

    /// A consuming view over the events in firing order (stable by time,
    /// then insertion order). The cursor is independent of the schedule:
    /// one schedule can drive many runs.
    pub fn cursor(&self) -> FaultCursor {
        let mut idx: Vec<usize> = (0..self.events.len()).collect();
        idx.sort_by_key(|&i| (self.events[i].at, i));
        FaultCursor {
            events: idx.into_iter().map(|i| self.events[i].clone()).collect(),
            pos: 0,
        }
    }
}

/// SplitMix64-style mixing step used by [`FaultSchedule::digest`].
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Iteration state over a [`FaultSchedule`], shared across the back-to-back
/// runs of a multi-iteration simulation so the virtual clock and the fault
/// clock stay aligned.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultCursor {
    events: Vec<FaultEvent>,
    pos: usize,
}

impl FaultCursor {
    /// A cursor over no events (the healthy schedule).
    pub fn empty() -> Self {
        FaultCursor::default()
    }

    /// Firing time of the next pending event, if any.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.events.get(self.pos).map(|e| e.at)
    }

    /// Pops the next event if it fires at or before `now`.
    pub fn next_due(&mut self, now: SimTime) -> Option<&FaultEvent> {
        let ev = self.events.get(self.pos)?;
        if ev.at <= now {
            self.pos += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Number of events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(i: usize) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn cursor_fires_in_time_order() {
        let s = FaultSchedule::new(7)
            .at(5.0, FaultKind::RestoreLink { link: link(0) })
            .at(
                1.0,
                FaultKind::ScaleLink {
                    link: link(0),
                    factor: 0.5,
                },
            );
        let mut c = s.cursor();
        assert_eq!(c.remaining(), 2);
        assert_eq!(c.peek_at(), Some(SimTime::from_secs(1.0)));
        assert!(c.next_due(SimTime::ZERO).is_none());
        let first = c.next_due(SimTime::from_secs(1.0)).unwrap();
        assert!(matches!(first.kind, FaultKind::ScaleLink { .. }));
        assert_eq!(c.remaining(), 1);
        let second = c.next_due(SimTime::from_secs(10.0)).unwrap();
        assert!(matches!(second.kind, FaultKind::RestoreLink { .. }));
        assert!(c.next_due(SimTime::MAX).is_none());
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let s = FaultSchedule::new(0)
            .at(1.0, FaultKind::RestoreResource { resource: 0 })
            .at(
                1.0,
                FaultKind::SlowResource {
                    resource: 0,
                    factor: 0.7,
                },
            );
        let mut c = s.cursor();
        let t = SimTime::from_secs(1.0);
        assert!(matches!(
            c.next_due(t).unwrap().kind,
            FaultKind::RestoreResource { .. }
        ));
        assert!(matches!(
            c.next_due(t).unwrap().kind,
            FaultKind::SlowResource { .. }
        ));
    }

    #[test]
    fn flap_expands_to_scale_and_restore() {
        let s = FaultSchedule::new(0).flap(link(3), 2.0, 0.5);
        assert_eq!(s.len(), 2);
        assert!(matches!(
            s.events()[0].kind,
            FaultKind::ScaleLink { factor, .. } if factor == FLAP_FLOOR
        ));
        assert_eq!(s.events()[1].at, SimTime::from_secs(2.5));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = FaultSchedule::new(1).flap(link(0), 1.0, 1.0);
        let b = FaultSchedule::new(1).flap(link(0), 1.0, 1.0);
        assert_eq!(a.digest(), b.digest());
        let c = FaultSchedule::new(2).flap(link(0), 1.0, 1.0);
        assert_ne!(a.digest(), c.digest());
        let d = FaultSchedule::new(1).flap(link(1), 1.0, 1.0);
        assert_ne!(a.digest(), d.digest());
        let e = FaultSchedule::new(1).flap(link(0), 1.0, 2.0);
        assert_ne!(a.digest(), e.digest());
        assert_ne!(FaultSchedule::new(0).digest(), 0);
    }

    #[test]
    fn try_builders_reject_bad_times() {
        let healthy = FaultSchedule::new(0);
        assert_eq!(
            healthy
                .clone()
                .try_at(-1.0, FaultKind::RestoreLink { link: link(0) })
                .unwrap_err(),
            SimError::BadFaultTime
        );
        assert_eq!(
            healthy
                .clone()
                .try_flap(link(0), f64::NAN, 1.0)
                .unwrap_err(),
            SimError::BadFaultTime
        );
        assert_eq!(
            healthy
                .clone()
                .try_degrade_window(link(0), 1.0, 0.5, f64::INFINITY)
                .unwrap_err(),
            SimError::BadFaultTime
        );
        let ok = healthy.try_degrade_window(link(0), 1.0, 0.5, 2.0).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(
            ok.digest(),
            FaultSchedule::new(0)
                .degrade_window(link(0), 1.0, 0.5, 2.0)
                .digest()
        );
    }

    #[test]
    #[should_panic(expected = "invalid event time")]
    fn at_panics_on_negative_time() {
        let _ = FaultSchedule::new(0).at(-0.5, FaultKind::RestoreLink { link: link(0) });
    }

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::new(9);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.seed(), 9);
        let mut c = s.cursor();
        assert_eq!(c.peek_at(), None);
        assert!(c.next_due(SimTime::MAX).is_none());
        assert_eq!(FaultCursor::empty().remaining(), 0);
    }
}
