//! Shared building blocks for iteration plans.
//!
//! [`IterCtx`] carries the read-only inputs of strategy compilation and
//! the pure performance-model arithmetic; [`PlanCtx`] wraps it with an
//! in-progress [`IterPlan`] and the semantic op emitters that replaced
//! the seed implementation's raw `DagBuilder` helpers.

use std::ops::Deref;

use zerosim_collectives::{CollectiveKind, CommGroup};
use zerosim_hw::{Cluster, GpuId, IoDir, MemLoc, SocketId, VolumeId};
use zerosim_model::GptConfig;

use crate::calib::Calibration;
use crate::options::TrainOptions;
use crate::plan::{Codec, IterPlan, OpId, PhaseStage, PlanOp};

/// Everything an iteration planner needs to consult.
#[derive(Debug, Clone, Copy)]
pub struct IterCtx<'a> {
    /// The simulated cluster.
    pub cluster: &'a Cluster,
    /// The model being trained.
    pub model: &'a GptConfig,
    /// Run options.
    pub opts: &'a TrainOptions,
    /// Performance-model constants.
    pub calib: &'a Calibration,
}

impl<'a> IterCtx<'a> {
    /// Tokens processed per iteration across the whole run, including all
    /// gradient-accumulation micro-steps.
    pub fn total_tokens(&self) -> f64 {
        self.model
            .tokens_per_iteration(self.opts.per_gpu_batch, self.opts.num_gpus(self.cluster))
            * self.opts.grad_accum as f64
    }

    /// Forward FLOPs of one transformer layer over `tokens` tokens,
    /// divided across `mp` model-parallel ranks.
    pub fn layer_fwd_flops(&self, tokens: f64, mp: usize) -> f64 {
        let h = self.model.hidden_size as f64;
        let dense = 2.0 * self.model.layer_params() * tokens;
        let attention = 4.0 * self.model.seq_len as f64 * h * tokens;
        (dense + attention) / mp as f64
    }

    /// Forward FLOPs of the embedding + vocabulary projection over
    /// `tokens` tokens, divided across `mp` ranks.
    pub fn embedding_fwd_flops(&self, tokens: f64, mp: usize) -> f64 {
        2.0 * self.model.embedding_params() * tokens / mp as f64
    }

    /// Socket a rank's host-side partition lives on. A
    /// `offload_cross_socket_frac` share of ranks gets mis-placed on the
    /// neighbouring socket, reproducing the paper's observation that
    /// DeepSpeed's offload path is not NUMA-aware (Sec. V-A3).
    pub fn offload_socket(&self, rank: usize, gpu: GpuId) -> SocketId {
        let natural = self.cluster.gpu_socket(gpu);
        // The fraction is clamped >= 1e-9, so the stride is finite and
        // positive; realistic values are single digits.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let stride = (1.0 / self.calib.offload_cross_socket_frac.max(1e-9)).round() as usize;
        if stride > 0 && rank % stride.max(1) == stride.max(1) - 1 {
            SocketId {
                node: natural.node,
                socket: 1 - natural.socket,
            }
        } else {
            natural
        }
    }

    /// Number of layers grouped per communication bucket, bounding DAG
    /// size for very deep models.
    pub fn comm_bucket_layers(&self) -> usize {
        self.model.num_layers.div_ceil(48).max(1)
    }

    /// The span-log track for a GPU (its resource index, by convention).
    // Resource ids are small (one per GPU on the cluster).
    #[allow(clippy::cast_possible_truncation)]
    pub fn gpu_track(&self, gpu: GpuId) -> u32 {
        self.cluster.gpu_resource(gpu).0 as u32
    }
}

/// An [`IterCtx`] plus the [`IterPlan`] being emitted.
///
/// Strategies describe one training iteration through these emitters;
/// none of them touches simkit. The expansion into tasks (collective ring
/// schedules, tier routing, jittered durations) happens later in
/// [`crate::lower::lower`].
#[derive(Debug)]
pub struct PlanCtx<'a> {
    ctx: IterCtx<'a>,
    plan: IterPlan,
}

impl<'a> Deref for PlanCtx<'a> {
    type Target = IterCtx<'a>;
    fn deref(&self) -> &IterCtx<'a> {
        &self.ctx
    }
}

impl<'a> PlanCtx<'a> {
    /// Starts an empty plan (in the input phase) for `ctx`.
    pub fn new(ctx: IterCtx<'a>) -> Self {
        PlanCtx {
            ctx,
            plan: IterPlan::new(),
        }
    }

    /// Starts an empty checkpoint/restore plan for `ctx`; all emitted ops
    /// carry the [`PhaseStage::Checkpoint`] phase label.
    pub fn new_checkpoint(ctx: IterCtx<'a>) -> Self {
        PlanCtx {
            ctx,
            plan: IterPlan::new_checkpoint(),
        }
    }

    /// Starts an empty serving-prefill plan for `ctx` (input phase; enter
    /// [`PhaseStage::Prefill`] before emitting compute).
    pub fn new_prefill(ctx: IterCtx<'a>) -> Self {
        PlanCtx {
            ctx,
            plan: IterPlan::new_prefill(),
        }
    }

    /// Starts an empty serving decode-step plan for `ctx` (input phase;
    /// enter [`PhaseStage::Decode`] before emitting compute).
    pub fn new_decode(ctx: IterCtx<'a>) -> Self {
        PlanCtx {
            ctx,
            plan: IterPlan::new_decode(),
        }
    }

    /// Finalizes the plan.
    pub fn finish(self) -> IterPlan {
        self.plan
    }

    /// Enters a new phase; subsequent ops carry this label.
    pub fn set_phase(&mut self, stage: PhaseStage, micro: u32) {
        self.plan.set_phase(stage, micro);
    }

    /// Number of ops emitted so far.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// True when no ops have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The fixed per-iteration overhead every chain hangs off.
    pub fn prologue(&mut self) -> OpId {
        self.plan.push(PlanOp::Overhead, &[])
    }

    /// One layer's (or fused phase's) GPU compute: GEMM + element-wise
    /// spans, serialized on the GPU.
    pub fn layer_compute(
        &mut self,
        gpu: GpuId,
        flops: f64,
        label: &'static str,
        deps: &[OpId],
    ) -> OpId {
        self.plan
            .push(PlanOp::LayerCompute { gpu, flops, label }, deps)
    }

    /// A fixed-duration (un-jittered) GPU span.
    pub fn fixed_compute(
        &mut self,
        gpu: GpuId,
        secs: f64,
        label: &'static str,
        deps: &[OpId],
    ) -> OpId {
        self.plan
            .push(PlanOp::FixedCompute { gpu, secs, label }, deps)
    }

    /// The weight-update (GPU Adam) op for `params` parameters.
    pub fn gpu_adam(&mut self, gpu: GpuId, params: f64, deps: &[OpId]) -> OpId {
        self.plan.push(
            PlanOp::OptimizerStep {
                device: crate::plan::OptimizerDevice::Gpu(gpu),
                params,
            },
            deps,
        )
    }

    /// The CPU Adam op for `params` parameters on `socket`.
    pub fn cpu_adam(&mut self, socket: SocketId, params: f64, deps: &[OpId]) -> OpId {
        self.plan.push(
            PlanOp::OptimizerStep {
                device: crate::plan::OptimizerDevice::Cpu(socket),
                params,
            },
            deps,
        )
    }

    /// A collective over `group` with a per-flow inter-node rate ceiling
    /// (`f64::INFINITY` for raw RDMA-grade NCCL).
    pub fn collective(
        &mut self,
        kind: CollectiveKind,
        group: CommGroup,
        bytes: f64,
        cap: f64,
        deps: &[OpId],
    ) -> OpId {
        self.plan.push(
            PlanOp::Collective {
                kind,
                group,
                bytes,
                cap,
            },
            deps,
        )
    }

    /// A collective whose payload moves through a declared wire codec
    /// (ZeRO++-style quantized communication). `bytes` stays the
    /// full-precision payload; lowering and the analyzer price the wire
    /// at `bytes × codec.ratio`.
    #[allow(clippy::too_many_arguments)]
    pub fn collective_with_codec(
        &mut self,
        kind: CollectiveKind,
        group: CommGroup,
        bytes: f64,
        cap: f64,
        codec: Codec,
        deps: &[OpId],
    ) -> OpId {
        let id = self.collective(kind, group, bytes, cap, deps);
        self.plan.set_codec(id, codec);
        id
    }

    /// A point-to-point transfer between memory tiers; the route is
    /// resolved by the hardware model at lowering time.
    pub fn transfer(
        &mut self,
        src: MemLoc,
        dst: MemLoc,
        bytes: f64,
        label: &'static str,
        track: u32,
        deps: &[OpId],
    ) -> OpId {
        self.plan.push(
            PlanOp::TierTransfer {
                src,
                dst,
                bytes,
                label,
                track,
            },
            deps,
        )
    }

    /// A striped read/write against an NVMe volume from `socket`.
    #[allow(clippy::too_many_arguments)]
    pub fn volume_io(
        &mut self,
        volume: VolumeId,
        socket: SocketId,
        dir: IoDir,
        bytes: f64,
        label: &'static str,
        track: u32,
        deps: &[OpId],
    ) -> OpId {
        self.plan.push(
            PlanOp::VolumeIo {
                volume,
                socket,
                dir,
                bytes,
                label,
                track,
            },
            deps,
        )
    }

    /// A zero-cost join point over `deps`.
    pub fn barrier(&mut self, deps: &[OpId]) -> OpId {
        self.plan.push(PlanOp::Barrier, deps)
    }

    /// Appends `bytes` of KV-cache entries on `gpu` (serving plans only;
    /// residency tracked by planlint ZL001, zero-duration at lowering).
    pub fn kv_append(&mut self, gpu: GpuId, bytes: f64, deps: &[OpId]) -> OpId {
        self.plan.push(PlanOp::KvAppend { gpu, bytes }, deps)
    }

    /// The input-pipeline H2D staging for one GPU (token ids plus the
    /// framework's small per-iteration host traffic), preceded by the
    /// data-loader's DRAM activity on the GPU's socket.
    pub fn input_h2d(&mut self, gpu: GpuId, deps: &[OpId]) -> OpId {
        let socket = self.ctx.cluster.gpu_socket(gpu);
        let track = self.ctx.gpu_track(gpu);
        // Host-side shuffling/bookkeeping: DRAM-only traffic.
        let prep = self.transfer(
            MemLoc::Cpu(socket),
            MemLoc::Cpu(socket),
            self.ctx.calib.host_dram_bytes_per_iter,
            "host_prep",
            track,
            deps,
        );
        let bytes = (self.ctx.opts.per_gpu_batch * self.ctx.model.seq_len * 4) as f64
            + self.ctx.calib.host_pcie_bytes_per_iter;
        self.transfer(
            MemLoc::Cpu(socket),
            MemLoc::Gpu(gpu),
            bytes,
            "h2d",
            track,
            &[prep],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerosim_hw::ClusterSpec;

    fn fixtures() -> (Cluster, GptConfig, TrainOptions, Calibration) {
        (
            Cluster::new(ClusterSpec::default()).unwrap(),
            GptConfig::default(),
            TrainOptions::single_node(),
            Calibration::default(),
        )
    }

    #[test]
    fn layer_flops_split_by_mp() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let f1 = ctx.layer_fwd_flops(4096.0, 1);
        let f4 = ctx.layer_fwd_flops(4096.0, 4);
        assert!((f1 / f4 - 4.0).abs() < 1e-12);
        assert_eq!(ctx.total_tokens(), 16384.0 * o.grad_accum as f64);
    }

    #[test]
    fn input_h2d_emits_prep_then_copy() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let mut p = PlanCtx::new(ctx);
        assert!(p.is_empty());
        let pro = p.prologue();
        let g = GpuId { node: 0, gpu: 0 };
        p.input_h2d(g, &[pro]);
        assert_eq!(p.len(), 3); // prologue + host_prep + h2d
        let plan = p.finish();
        assert!(matches!(
            plan.nodes()[1].op,
            PlanOp::TierTransfer {
                label: "host_prep",
                ..
            }
        ));
        assert!(matches!(
            plan.nodes()[2].op,
            PlanOp::TierTransfer { label: "h2d", .. }
        ));
    }

    #[test]
    fn offload_socket_misplaces_some_ranks() {
        let (c, m, o, k) = fixtures();
        let ctx = IterCtx {
            cluster: &c,
            model: &m,
            opts: &o,
            calib: &k,
        };
        let gpus = o.gpus(&c);
        let misplaced = gpus
            .iter()
            .enumerate()
            .filter(|(r, g)| ctx.offload_socket(*r, **g) != c.gpu_socket(**g))
            .count();
        assert!(misplaced >= 1, "some rank must land cross-socket");
        assert!(misplaced < gpus.len(), "not all ranks cross-socket");
    }

    #[test]
    fn comm_buckets_bound_dag_size() {
        let (c, _, o, k) = fixtures();
        let deep = GptConfig::paper_model(659);
        let ctx = IterCtx {
            cluster: &c,
            model: &deep,
            opts: &o,
            calib: &k,
        };
        assert!(ctx.comm_bucket_layers() >= 13);
        let shallow = GptConfig::paper_model(26);
        let ctx2 = IterCtx {
            cluster: &c,
            model: &shallow,
            opts: &o,
            calib: &k,
        };
        assert_eq!(ctx2.comm_bucket_layers(), 1);
    }
}
