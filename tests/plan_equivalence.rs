//! Golden equivalence of the iteration-plan pipeline.
//!
//! The IR refactor must be **observationally invisible**: for every paper
//! strategy configuration, lowering a cached plan once and re-stamping
//! per seed has to produce the same simulated numbers — makespan, total
//! wire bytes, task count — as building a fresh DAG per iteration
//! (tolerance 0). Plus the plan-level conservation properties the
//! validator enforces, checked per strategy family by the testkit
//! harness.

use zerosim_hw::{Cluster, ClusterSpec, NvmeId};
use zerosim_model::GptConfig;
use zerosim_simkit::{DagEngine, SimTime};
use zerosim_strategies::{
    lower, Calibration, InfinityPlacement, IterCtx, Strategy, StrategyPlan, StrategyRegistry,
    TrainOptions, ZeroStage,
};
use zerosim_testkit::gen::{u64_range, usize_range};
use zerosim_testkit::{prop, prop_assert};

/// The paper's strategy matrix (plus NVMe variants needing volumes).
fn paper_configs() -> Vec<(Strategy, usize)> {
    vec![
        (Strategy::Ddp, 1),
        (Strategy::Ddp, 2),
        (Strategy::Megatron { tp: 4, pp: 1 }, 1),
        (Strategy::Megatron { tp: 8, pp: 1 }, 2),
        (Strategy::Megatron { tp: 4, pp: 2 }, 2),
        (
            Strategy::Zero {
                stage: ZeroStage::One,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Two,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            1,
        ),
        (
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            2,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Two,
                offload_params: false,
            },
            1,
        ),
        (
            Strategy::ZeroOffload {
                stage: ZeroStage::Three,
                offload_params: true,
            },
            1,
        ),
    ]
}

fn infinity_cluster() -> (Cluster, Strategy) {
    let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let d = |drive| NvmeId { node: 0, drive };
    let vol = cluster.create_volume(vec![d(0), d(1)]);
    let strategy = Strategy::ZeroInfinity {
        offload_params: true,
        placement: InfinityPlacement::new(vec![vol]),
    };
    (cluster, strategy)
}

fn opts_for(nodes: usize) -> TrainOptions {
    if nodes == 1 {
        TrainOptions::single_node()
    } else {
        TrainOptions::dual_node()
    }
}

/// Makespan + total wire bytes + task count of one stamped execution.
fn observe(cluster: &Cluster, dag: &zerosim_simkit::Dag) -> (f64, f64, usize) {
    let mut fresh = Cluster::new(cluster.spec().clone()).unwrap();
    let mut eng = DagEngine::new(fresh.resource_slots());
    let out = eng.run(fresh.net_mut(), dag, SimTime::ZERO, None).unwrap();
    (
        out.makespan().as_secs(),
        dag.total_transfer_bytes(),
        dag.len(),
    )
}

fn assert_equivalent(cluster: &Cluster, strategy: &Strategy, opts: &TrainOptions) {
    let model = GptConfig::paper_model_with_params(1.4);
    let calib = Calibration::default();
    let ctx = IterCtx {
        cluster,
        model: &model,
        opts,
        calib: &calib,
    };
    let plan = strategy.plan_iteration(&ctx).unwrap();
    plan.validate(cluster).unwrap();
    let mut cached = lower(&plan, cluster, &calib).unwrap();
    for seed in [0u64, 1, 7, 42] {
        // Cached: lower once, re-stamp per seed.
        let (mk_a, bytes_a, len_a) = observe(cluster, cached.stamp(seed));
        // Fresh: full plan → lower → stamp pipeline per seed (what the
        // seed implementation did every iteration).
        let o = opts.with_jitter_seed(seed);
        let dag = strategy
            .build_iteration(cluster, &model, &o, &calib)
            .unwrap();
        let (mk_b, bytes_b, len_b) = observe(cluster, &dag);
        // Tolerance 0: bit-identical structure and timing.
        assert_eq!(len_a, len_b, "{} task count", strategy.name());
        assert_eq!(bytes_a, bytes_b, "{} wire bytes", strategy.name());
        assert_eq!(mk_a, mk_b, "{} makespan (seed {seed})", strategy.name());
    }
}

#[test]
fn restamped_plans_match_fresh_builds_for_every_paper_config() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    for (strategy, nodes) in paper_configs() {
        assert_equivalent(&cluster, &strategy, &opts_for(nodes));
    }
}

#[test]
fn restamped_plan_matches_fresh_build_for_zero_infinity() {
    let (cluster, strategy) = infinity_cluster();
    assert_equivalent(&cluster, &strategy, &opts_for(1));
}

#[test]
fn zero3_moves_about_fifty_percent_more_collective_payload_than_ddp() {
    // Sec. IV-C1: ZeRO-3 adds parameter all-gathers (forward *and*
    // backward re-gather in this DeepSpeed configuration) on top of the
    // gradient reduction all strategies share — at least 50% more
    // collective payload than DDP, and bounded by the 3-pass worst case.
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = TrainOptions::single_node();
    let calib = Calibration::default();
    let ctx = IterCtx {
        cluster: &cluster,
        model: &model,
        opts: &opts,
        calib: &calib,
    };
    let payload = |s: &Strategy| s.plan_iteration(&ctx).unwrap().collective_payload_bytes();
    let ddp = payload(&Strategy::Ddp);
    let z3 = payload(&Strategy::Zero {
        stage: ZeroStage::Three,
    });
    let ratio = z3 / ddp;
    assert!(
        (1.5..=3.05).contains(&ratio),
        "z3/ddp payload ratio {ratio:.3}, expected ≥1.5"
    );
}

#[test]
fn registry_covers_the_paper_matrix_and_all_plans_validate() {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let model = GptConfig::paper_model_with_params(1.4);
    let opts = TrainOptions::single_node();
    let calib = Calibration::default();
    let ctx = IterCtx {
        cluster: &cluster,
        model: &model,
        opts: &opts,
        calib: &calib,
    };
    let reg = StrategyRegistry::paper();
    assert!(reg.len() >= 7);
    for (name, s) in reg.iter() {
        let plan = s.plan_iteration(&ctx).unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
        plan.validate(&cluster).unwrap();
        assert_eq!(s.display_name(), name);
    }
}

// ---------- golden-dozen digest pin across the workload-IR refactor ----------

/// Digests of all 12 paper configurations × jitter seeds {0, 1, 7, 42},
/// captured from the pre-`WorkloadKind` (v0.9.0, `PlanKind`-era) code.
/// The generalization of the plan IR to serving workloads must be
/// observationally invisible to training: every one of these 48 numbers
/// has to keep reproducing byte-identically.
const GOLDEN_DIGESTS: [(u64, &str, u64); 48] = [
    (0, "golden-00 PyTorch DDP 1n", 0x1dc0034c5881c635),
    (0, "golden-01 PyTorch DDP 2n", 0x4467c7b443b880b3),
    (0, "golden-02 Megatron-LM (MP=4) 1n", 0xd1fa8dd0bdd6e35d),
    (0, "golden-03 Megatron-LM (MP=8) 2n", 0xad049396e9fe98f0),
    (
        0,
        "golden-04 Megatron-LM (TP=4,PP=2) 2n",
        0xbf40502f8d642ff8,
    ),
    (0, "golden-05 ZeRO-1 1n", 0x0895303659084461),
    (0, "golden-06 ZeRO-2 1n", 0xbddcc5ce52a0da37),
    (0, "golden-07 ZeRO-3 1n", 0x12b5a755d29601d5),
    (0, "golden-08 ZeRO-3 2n", 0x857688ce45f1c8e1),
    (0, "golden-09 ZeRO-2 (CPU) 1n", 0xa3ed7e9eb7dc4233),
    (0, "golden-10 ZeRO-3 (CPU opt+param) 1n", 0x813df1c82aa43b22),
    (0, "golden-11 ZeRO-Infinity 1n", 0xa99ac6f1fb2d08fd),
    (1, "golden-00 PyTorch DDP 1n", 0x822870bf4929cde6),
    (1, "golden-01 PyTorch DDP 2n", 0xfaf158bc72b0c8e1),
    (1, "golden-02 Megatron-LM (MP=4) 1n", 0xd1251311f1ac64f5),
    (1, "golden-03 Megatron-LM (MP=8) 2n", 0xd1e4ca285077dcba),
    (
        1,
        "golden-04 Megatron-LM (TP=4,PP=2) 2n",
        0x25a8a41ba5bfeec7,
    ),
    (1, "golden-05 ZeRO-1 1n", 0xc5e139c3f320140e),
    (1, "golden-06 ZeRO-2 1n", 0x39f07a2a67c06880),
    (1, "golden-07 ZeRO-3 1n", 0x80315faa6442522e),
    (1, "golden-08 ZeRO-3 2n", 0x2dbc5be2960c17e8),
    (1, "golden-09 ZeRO-2 (CPU) 1n", 0xc432f7a8924ce20e),
    (1, "golden-10 ZeRO-3 (CPU opt+param) 1n", 0x2842190395ca10d3),
    (1, "golden-11 ZeRO-Infinity 1n", 0xdc4ca018e7530e9e),
    (7, "golden-00 PyTorch DDP 1n", 0xea6b9e67fcd1647b),
    (7, "golden-01 PyTorch DDP 2n", 0x566b235e36949768),
    (7, "golden-02 Megatron-LM (MP=4) 1n", 0x99acf0009f2d2492),
    (7, "golden-03 Megatron-LM (MP=8) 2n", 0x87e6fda2a960d07d),
    (
        7,
        "golden-04 Megatron-LM (TP=4,PP=2) 2n",
        0x3d80a997dbbbca44,
    ),
    (7, "golden-05 ZeRO-1 1n", 0x82beed4406351fb8),
    (7, "golden-06 ZeRO-2 1n", 0x17a1d476ad98bf76),
    (7, "golden-07 ZeRO-3 1n", 0x48e66b2a8b79aa17),
    (7, "golden-08 ZeRO-3 2n", 0x651bdfe9c90bcac0),
    (7, "golden-09 ZeRO-2 (CPU) 1n", 0xf287ed6c22ea71e8),
    (7, "golden-10 ZeRO-3 (CPU opt+param) 1n", 0xd44534cbeecc133c),
    (7, "golden-11 ZeRO-Infinity 1n", 0x18459d416e191113),
    (42, "golden-00 PyTorch DDP 1n", 0xee92fe76d5e8e48d),
    (42, "golden-01 PyTorch DDP 2n", 0xfe79046d0124e3db),
    (42, "golden-02 Megatron-LM (MP=4) 1n", 0x0a21de00b9793fdf),
    (42, "golden-03 Megatron-LM (MP=8) 2n", 0x95f711af9924beac),
    (
        42,
        "golden-04 Megatron-LM (TP=4,PP=2) 2n",
        0xbd7b8b932ebe8476,
    ),
    (42, "golden-05 ZeRO-1 1n", 0xf116644fa48ab7f4),
    (42, "golden-06 ZeRO-2 1n", 0xaae1a9160de590d6),
    (42, "golden-07 ZeRO-3 1n", 0x0c5f2d02ad7c4544),
    (42, "golden-08 ZeRO-3 2n", 0xf97a7526848e22a2),
    (42, "golden-09 ZeRO-2 (CPU) 1n", 0x5c563bdf03ab0c32),
    (
        42,
        "golden-10 ZeRO-3 (CPU opt+param) 1n",
        0xf04cc5e729b24ede,
    ),
    (42, "golden-11 ZeRO-Infinity 1n", 0x4122fcd3e53ce4af),
];

#[test]
fn golden_dozen_digests_survive_the_workload_ir_refactor() {
    let mut it = GOLDEN_DIGESTS.iter();
    for seed in [0u64, 1, 7, 42] {
        for mut spec in zerosim_bench::data::golden_specs() {
            spec.opts.jitter_seed = seed;
            let run = spec.execute().expect("golden spec runs");
            let &(want_seed, want_label, want_digest) = it
                .next()
                .expect("48 pinned digests cover 4 seeds x 12 configs");
            assert_eq!(seed, want_seed);
            assert_eq!(run.label, want_label);
            assert_eq!(
                run.report.digest(),
                want_digest,
                "digest drifted for {} at seed {seed}",
                run.label
            );
        }
    }
}

// ---------- per-family validation properties ----------

prop! {
    /// DDP plans validate for any depth/batch/accumulation combination.
    #[cases(48)]
    fn ddp_plans_always_validate(
        layers in usize_range(1, 120),
        batch in usize_range(1, 8),
        accum in usize_range(1, 4),
    ) {
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let mut opts = TrainOptions::single_node();
        opts.per_gpu_batch = batch;
        opts.grad_accum = accum;
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let plan = Strategy::Ddp.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        // Gradient payload: one all-reduce per bucket covering every
        // layer and embedding parameter exactly once (the final norm's
        // handful of parameters ride inside the last bucket's fusion).
        let expected =
            2.0 * (model.num_layers as f64 * model.layer_params() + model.embedding_params());
        let got = plan.collective_payload_bytes();
        prop_assert!((got - expected).abs() / expected < 1e-9);
    }

    /// Megatron plans validate for every feasible (tp, pp) split of the
    /// single-node GPU count.
    #[cases(48)]
    fn megatron_plans_always_validate(
        layers in usize_range(4, 80),
        pick in usize_range(0, 5),
    ) {
        let (tp, pp) = [(4, 1), (2, 2), (1, 4), (2, 1), (1, 1), (4, 1)][pick];
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let plan = Strategy::Megatron { tp, pp }.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
    }

    /// ZeRO plans validate across stages and node counts, and stage 3
    /// always moves at least as much collective payload as stage 1.
    #[cases(48)]
    fn zero_plans_always_validate(
        layers in usize_range(1, 120),
        stage_idx in usize_range(0, 3),
        seed in u64_range(0, u64::MAX),
    ) {
        let stage = [ZeroStage::One, ZeroStage::Two, ZeroStage::Three][stage_idx];
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node().with_jitter_seed(seed);
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let s = Strategy::Zero { stage };
        let plan = s.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        let z1 = Strategy::Zero { stage: ZeroStage::One }
            .plan_iteration(&ctx)
            .unwrap();
        prop_assert!(
            plan.collective_payload_bytes() >= z1.collective_payload_bytes() * (1.0 - 1e-9)
        );
    }

    /// ZeRO-Offload plans validate and always stage bytes through the
    /// host (CPU Adam traffic), unlike GPU-resident ZeRO.
    #[cases(48)]
    fn zero_offload_plans_always_validate(
        layers in usize_range(1, 80),
        stage_idx in usize_range(0, 3),
        offload_params in usize_range(0, 2),
    ) {
        let stage = [ZeroStage::One, ZeroStage::Two, ZeroStage::Three][stage_idx];
        // Parameter offload requires ZeRO-3 (Table I).
        let offload_params = offload_params == 1 && stage == ZeroStage::Three;
        let cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let s = Strategy::ZeroOffload { stage, offload_params };
        let plan = s.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        let resident = Strategy::Zero { stage }.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.staging_bytes() > resident.staging_bytes());
    }

    /// ZeRO-Infinity plans validate whenever a volume placement exists,
    /// and are rejected with a typed error when it is missing.
    #[cases(32)]
    fn zero_infinity_plans_validate_with_volumes(
        layers in usize_range(1, 80),
        offload_params in usize_range(0, 2),
    ) {
        let mut cluster = Cluster::new(ClusterSpec::default()).unwrap();
        let d = |drive| NvmeId { node: 0, drive };
        let vol = cluster.create_volume(vec![d(0), d(1)]);
        let model = GptConfig::paper_model(layers);
        let opts = TrainOptions::single_node();
        let calib = Calibration::default();
        let ctx = IterCtx { cluster: &cluster, model: &model, opts: &opts, calib: &calib };
        let s = Strategy::ZeroInfinity {
            offload_params: offload_params == 1,
            placement: InfinityPlacement::new(vec![vol]),
        };
        let plan = s.plan_iteration(&ctx).unwrap();
        prop_assert!(plan.validate(&cluster).is_ok());
        // NVMe traffic must actually hit the volume.
        prop_assert!(plan.staging_bytes() > 0.0);
    }
}
