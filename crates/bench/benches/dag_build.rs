//! Cost of compiling strategies into task graphs (the per-configuration
//! setup overhead of every experiment).

use zerosim_testkit::bench::Bench;
use zerosim_hw::{Cluster, ClusterSpec};
use zerosim_model::GptConfig;
use zerosim_strategies::{Calibration, Strategy, TrainOptions, ZeroStage};

fn bench_dag_build(c: &mut Bench) {
    let cluster = Cluster::new(ClusterSpec::default()).unwrap();
    let calib = Calibration::default();
    let mut group = c.benchmark_group("dag_build");
    for (name, strategy, billions, nodes) in [
        ("ddp_1p4", Strategy::Ddp, 1.4, 1usize),
        (
            "zero3_6p6",
            Strategy::Zero {
                stage: ZeroStage::Three,
            },
            6.6,
            1,
        ),
        (
            "megatron_tp8_11b",
            Strategy::Megatron { tp: 8, pp: 1 },
            11.2,
            2,
        ),
    ] {
        let model = GptConfig::paper_model_with_params(billions);
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        group.bench_function(name, |b| {
            b.iter(|| strategy.build_iteration(&cluster, &model, &opts, &calib).len());
        });
    }
    group.finish();
}

zerosim_testkit::bench_main!(bench_dag_build);
