//! Infrastructure-cost accounting — quantifying the paper's conclusion
//! that NVMe/CPU offloading "significantly reduces infrastructure costs
//! and allows many researchers to have access to state-of-the-art models".
//!
//! Costs are list-price-class estimates for the paper's era of hardware;
//! what matters for the analysis is their ratio, not their absolute value.

use zerosim_hw::LinkClass;

use crate::report::TrainingReport;

/// Capital cost of the cluster pieces, USD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One A100-SXM4-40GB module.
    pub gpu_usd: f64,
    /// One XE8545-class chassis (2 CPUs, 1 TB DRAM, NICs), GPUs excluded.
    pub node_base_usd: f64,
    /// One D7-P5600-class 3.2 TB NVMe drive.
    pub nvme_usd: f64,
    /// Per-port share of the SN3700-class switch.
    pub switch_port_usd: f64,
    /// Rated write endurance of one drive, bytes (D7-P5600 3.2 TB class:
    /// ~3 drive-writes-per-day over the 5-year warranty ≈ 17.5 PB TBW).
    /// Flash is a consumable: NVMe offload rewrites the optimizer
    /// partition every iteration, so sustained training traffic buys the
    /// drive a measurable fraction of its lifetime.
    pub nvme_endurance_bytes: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gpu_usd: 12_000.0,
            node_base_usd: 30_000.0,
            nvme_usd: 900.0,
            switch_port_usd: 1_500.0,
            nvme_endurance_bytes: 17.5e15,
        }
    }
}

/// Cost-efficiency of one characterized configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Capital cost of everything the run occupies, USD.
    pub capital_usd: f64,
    /// Aggregate throughput, FLOP/s.
    pub throughput_flops: f64,
    /// Drive-replacement cost accrued per second of training from NVMe
    /// write wear, USD/s (zero when the run never touches flash).
    pub nvme_wear_usd_per_s: f64,
}

impl CostReport {
    /// Throughput bought per dollar (TFLOP/s per k$; higher is better).
    pub fn tflops_per_kusd(&self) -> f64 {
        self.throughput_flops / 1e12 / (self.capital_usd / 1000.0)
    }

    /// Flash-endurance cost of `train_secs` of sustained training, USD.
    pub fn wear_usd(&self, train_secs: f64) -> f64 {
        self.nvme_wear_usd_per_s * train_secs
    }
}

impl CostModel {
    /// Prices the hardware a run occupies: its nodes (with their GPUs and
    /// scratch drives) and, for multi-node runs, the switch ports — plus
    /// the wear rate its measured NVMe traffic inflicts on the drives.
    pub fn estimate(
        &self,
        report: &TrainingReport,
        gpus_per_node: usize,
        nvme_per_node: usize,
    ) -> CostReport {
        let nodes = report.nodes as f64;
        let mut capital = nodes
            * (self.node_base_usd
                + gpus_per_node as f64 * self.gpu_usd
                + nvme_per_node as f64 * self.nvme_usd);
        if report.nodes > 1 {
            capital += nodes * 2.0 * self.switch_port_usd;
        }
        // Wear: charge drive replacement at the rate training writes to
        // flash, measured on the PCIe x4 wires to the drives (the Table
        // IV "PCIe-NVMe" cells). Reads are wear-free, and the offload
        // traffic pattern is read/write symmetric (states stream out and
        // back every iteration), so writes are half the measured traffic.
        // Pooling bytes across a node's drives makes the rate independent
        // of the stripe width: rate / (k · endurance) · (k · price).
        let write_rate: f64 = (0..report.nodes)
            .map(|n| 0.5 * report.bandwidth.stats(n, LinkClass::PcieNvme).avg)
            .sum();
        CostReport {
            capital_usd: capital,
            throughput_flops: report.throughput_flops(),
            nvme_wear_usd_per_s: write_rate / self.nvme_endurance_bytes * self.nvme_usd,
        }
    }
}

// JSON codec (in-house serde replacement; see crates/testkit).
zerosim_testkit::impl_json! {
    struct CostModel {
        gpu_usd, node_base_usd, nvme_usd, switch_port_usd,
        nvme_endurance_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunConfig, TrainingSim};
    use zerosim_hw::{ClusterSpec, NvmeId};
    use zerosim_model::GptConfig;
    use zerosim_strategies::{Strategy, TrainOptions, ZeroStage};

    fn report(strategy: Strategy, billions: f64, nodes: usize) -> TrainingReport {
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let opts = if nodes == 1 {
            TrainOptions::single_node()
        } else {
            TrainOptions::dual_node()
        };
        let cfg = RunConfig {
            allow_overflow: true,
            ..RunConfig::quick()
        };
        sim.run(
            &strategy,
            &GptConfig::paper_model_with_params(billions),
            &opts,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn consolidation_is_cheaper_per_tflops() {
        // The paper's Sec. V-A headline as economics: ZeRO-2 CPU offload on
        // ONE node beats Megatron on TWO nodes in throughput AND costs half
        // the hardware.
        let cost = CostModel::default();
        let megatron = cost.estimate(&report(Strategy::Megatron { tp: 8, pp: 1 }, 11.2, 2), 4, 2);
        let offload = cost.estimate(
            &report(
                Strategy::ZeroOffload {
                    stage: ZeroStage::Two,
                    offload_params: false,
                },
                11.2,
                1,
            ),
            4,
            2,
        );
        assert!(offload.capital_usd < 0.6 * megatron.capital_usd);
        assert!(offload.tflops_per_kusd() > 2.0 * megatron.tflops_per_kusd());
    }

    #[test]
    fn nvme_wear_charges_flash_traffic_and_only_flash_traffic() {
        use zerosim_strategies::InfinityPlacement;

        // DDP never touches flash: wear must be exactly zero.
        let cost = CostModel::default();
        let ddp = cost.estimate(&report(Strategy::Ddp, 1.4, 1), 4, 2);
        assert_eq!(ddp.nvme_wear_usd_per_s, 0.0);
        assert_eq!(ddp.wear_usd(1e9), 0.0);

        // ZeRO-Infinity streams optimizer state over NVMe every
        // iteration; its measured device traffic must pin the wear rate.
        let mut sim = TrainingSim::new(ClusterSpec::default()).unwrap();
        let d = |drive| NvmeId { node: 0, drive };
        let vol = sim.cluster_mut().create_volume(vec![d(0), d(1)]);
        let strategy = Strategy::ZeroInfinity {
            offload_params: false,
            placement: InfinityPlacement::new(vec![vol]),
        };
        let r = sim
            .run(
                &strategy,
                &GptConfig::paper_model_with_params(5.5),
                &TrainOptions::single_node(),
                &RunConfig::quick(),
            )
            .unwrap();
        let infinity = cost.estimate(&r, 4, 2);
        // Pin the wear term to the model: half the measured NVMe device
        // traffic (the write half), one drive-cost per endurance budget.
        let write_rate = 0.5 * r.bandwidth.stats(0, LinkClass::PcieNvme).avg;
        assert!(write_rate > 1e8, "offload must move real flash traffic");
        let want = write_rate / cost.nvme_endurance_bytes * cost.nvme_usd;
        assert!(
            (infinity.nvme_wear_usd_per_s - want).abs() < 1e-12 * want.max(1.0),
            "wear {} != pinned {want}",
            infinity.nvme_wear_usd_per_s
        );
        // Magnitude: cents-to-dollars per hour, not noise and not capital.
        let per_hour = infinity.wear_usd(3600.0);
        assert!(
            per_hour > 0.01 && per_hour < 50.0,
            "wear {per_hour} $/h out of band"
        );
        // Halving the endurance doubles the charge, price held fixed.
        let fragile = CostModel {
            nvme_endurance_bytes: cost.nvme_endurance_bytes / 2.0,
            ..cost
        };
        let doubled = fragile.estimate(&r, 4, 2);
        assert!((doubled.nvme_wear_usd_per_s / infinity.nvme_wear_usd_per_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nvme_drives_are_cheap_capacity() {
        // Adding scratch drives barely moves the capital cost.
        let cost = CostModel::default();
        let r = report(Strategy::Ddp, 1.4, 1);
        let without = cost.estimate(&r, 4, 0).capital_usd;
        let with8 = cost.estimate(&r, 4, 8).capital_usd;
        assert!(with8 / without < 1.12);
    }
}
